file(REMOVE_RECURSE
  "../bench/fig3_tradeoff"
  "../bench/fig3_tradeoff.pdb"
  "CMakeFiles/fig3_tradeoff.dir/fig3_tradeoff.cpp.o"
  "CMakeFiles/fig3_tradeoff.dir/fig3_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
