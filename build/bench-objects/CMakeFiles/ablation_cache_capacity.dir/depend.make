# Empty dependencies file for ablation_cache_capacity.
# This may be replaced when dependencies are built.
