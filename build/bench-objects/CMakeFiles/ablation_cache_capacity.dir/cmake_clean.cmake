file(REMOVE_RECURSE
  "../bench/ablation_cache_capacity"
  "../bench/ablation_cache_capacity.pdb"
  "CMakeFiles/ablation_cache_capacity.dir/ablation_cache_capacity.cpp.o"
  "CMakeFiles/ablation_cache_capacity.dir/ablation_cache_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
