file(REMOVE_RECURSE
  "../bench/micro_analysis"
  "../bench/micro_analysis.pdb"
  "CMakeFiles/micro_analysis.dir/micro_analysis.cpp.o"
  "CMakeFiles/micro_analysis.dir/micro_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
