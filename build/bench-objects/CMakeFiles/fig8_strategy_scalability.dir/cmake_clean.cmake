file(REMOVE_RECURSE
  "../bench/fig8_strategy_scalability"
  "../bench/fig8_strategy_scalability.pdb"
  "CMakeFiles/fig8_strategy_scalability.dir/fig8_strategy_scalability.cpp.o"
  "CMakeFiles/fig8_strategy_scalability.dir/fig8_strategy_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_strategy_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
