file(REMOVE_RECURSE
  "../bench/table7_ipm_characterization"
  "../bench/table7_ipm_characterization.pdb"
  "CMakeFiles/table7_ipm_characterization.dir/table7_ipm_characterization.cpp.o"
  "CMakeFiles/table7_ipm_characterization.dir/table7_ipm_characterization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_ipm_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
