# Empty dependencies file for table7_ipm_characterization.
# This may be replaced when dependencies are built.
