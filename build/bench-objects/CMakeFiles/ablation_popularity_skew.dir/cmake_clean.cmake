file(REMOVE_RECURSE
  "../bench/ablation_popularity_skew"
  "../bench/ablation_popularity_skew.pdb"
  "CMakeFiles/ablation_popularity_skew.dir/ablation_popularity_skew.cpp.o"
  "CMakeFiles/ablation_popularity_skew.dir/ablation_popularity_skew.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_popularity_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
