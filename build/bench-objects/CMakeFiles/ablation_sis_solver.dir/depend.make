# Empty dependencies file for ablation_sis_solver.
# This may be replaced when dependencies are built.
