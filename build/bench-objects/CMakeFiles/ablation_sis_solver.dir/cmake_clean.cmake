file(REMOVE_RECURSE
  "../bench/ablation_sis_solver"
  "../bench/ablation_sis_solver.pdb"
  "CMakeFiles/ablation_sis_solver.dir/ablation_sis_solver.cpp.o"
  "CMakeFiles/ablation_sis_solver.dir/ablation_sis_solver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sis_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
