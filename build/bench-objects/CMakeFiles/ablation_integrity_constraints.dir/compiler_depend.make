# Empty compiler generated dependencies file for ablation_integrity_constraints.
# This may be replaced when dependencies are built.
