file(REMOVE_RECURSE
  "../bench/ablation_integrity_constraints"
  "../bench/ablation_integrity_constraints.pdb"
  "CMakeFiles/ablation_integrity_constraints.dir/ablation_integrity_constraints.cpp.o"
  "CMakeFiles/ablation_integrity_constraints.dir/ablation_integrity_constraints.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_integrity_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
