file(REMOVE_RECURSE
  "../bench/fig7_exposure_reduction"
  "../bench/fig7_exposure_reduction.pdb"
  "CMakeFiles/fig7_exposure_reduction.dir/fig7_exposure_reduction.cpp.o"
  "CMakeFiles/fig7_exposure_reduction.dir/fig7_exposure_reduction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_exposure_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
