# Empty dependencies file for fig7_exposure_reduction.
# This may be replaced when dependencies are built.
