# Empty compiler generated dependencies file for table2_toystore_invalidation.
# This may be replaced when dependencies are built.
