file(REMOVE_RECURSE
  "../bench/table2_toystore_invalidation"
  "../bench/table2_toystore_invalidation.pdb"
  "CMakeFiles/table2_toystore_invalidation.dir/table2_toystore_invalidation.cpp.o"
  "CMakeFiles/table2_toystore_invalidation.dir/table2_toystore_invalidation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_toystore_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
