file(REMOVE_RECURSE
  "../bench/micro_sql"
  "../bench/micro_sql.pdb"
  "CMakeFiles/micro_sql.dir/micro_sql.cpp.o"
  "CMakeFiles/micro_sql.dir/micro_sql.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
