file(REMOVE_RECURSE
  "../bench/table4_toystore_ipm"
  "../bench/table4_toystore_ipm.pdb"
  "CMakeFiles/table4_toystore_ipm.dir/table4_toystore_ipm.cpp.o"
  "CMakeFiles/table4_toystore_ipm.dir/table4_toystore_ipm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_toystore_ipm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
