# Empty dependencies file for table4_toystore_ipm.
# This may be replaced when dependencies are built.
