file(REMOVE_RECURSE
  "../bench/multi_tenant_consolidation"
  "../bench/multi_tenant_consolidation.pdb"
  "CMakeFiles/multi_tenant_consolidation.dir/multi_tenant_consolidation.cpp.o"
  "CMakeFiles/multi_tenant_consolidation.dir/multi_tenant_consolidation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
