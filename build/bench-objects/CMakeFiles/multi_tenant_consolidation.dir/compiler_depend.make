# Empty compiler generated dependencies file for multi_tenant_consolidation.
# This may be replaced when dependencies are built.
