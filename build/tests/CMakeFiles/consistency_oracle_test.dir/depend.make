# Empty dependencies file for consistency_oracle_test.
# This may be replaced when dependencies are built.
