file(REMOVE_RECURSE
  "CMakeFiles/consistency_oracle_test.dir/consistency_oracle_test.cc.o"
  "CMakeFiles/consistency_oracle_test.dir/consistency_oracle_test.cc.o.d"
  "consistency_oracle_test"
  "consistency_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
