# Empty compiler generated dependencies file for unique_constraint_test.
# This may be replaced when dependencies are built.
