file(REMOVE_RECURSE
  "CMakeFiles/unique_constraint_test.dir/unique_constraint_test.cc.o"
  "CMakeFiles/unique_constraint_test.dir/unique_constraint_test.cc.o.d"
  "unique_constraint_test"
  "unique_constraint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unique_constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
