# Empty dependencies file for template_roundtrip_test.
# This may be replaced when dependencies are built.
