file(REMOVE_RECURSE
  "CMakeFiles/template_roundtrip_test.dir/template_roundtrip_test.cc.o"
  "CMakeFiles/template_roundtrip_test.dir/template_roundtrip_test.cc.o.d"
  "template_roundtrip_test"
  "template_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
