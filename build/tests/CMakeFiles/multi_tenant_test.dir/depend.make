# Empty dependencies file for multi_tenant_test.
# This may be replaced when dependencies are built.
