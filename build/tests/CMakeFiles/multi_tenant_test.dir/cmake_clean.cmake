file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_test.dir/multi_tenant_test.cc.o"
  "CMakeFiles/multi_tenant_test.dir/multi_tenant_test.cc.o.d"
  "multi_tenant_test"
  "multi_tenant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
