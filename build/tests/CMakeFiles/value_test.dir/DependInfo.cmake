
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/value_test.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/value_test.dir/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/dssp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dssp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dssp/CMakeFiles/dssp_service.dir/DependInfo.cmake"
  "/root/repo/build/src/invalidation/CMakeFiles/dssp_invalidation.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dssp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dssp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/templates/CMakeFiles/dssp_templates.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dssp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dssp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dssp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dssp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
