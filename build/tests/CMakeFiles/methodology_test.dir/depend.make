# Empty dependencies file for methodology_test.
# This may be replaced when dependencies are built.
