file(REMOVE_RECURSE
  "CMakeFiles/methodology_free_test.dir/methodology_free_test.cc.o"
  "CMakeFiles/methodology_free_test.dir/methodology_free_test.cc.o.d"
  "methodology_free_test"
  "methodology_free_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology_free_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
