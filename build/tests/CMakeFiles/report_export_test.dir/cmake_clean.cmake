file(REMOVE_RECURSE
  "CMakeFiles/report_export_test.dir/report_export_test.cc.o"
  "CMakeFiles/report_export_test.dir/report_export_test.cc.o.d"
  "report_export_test"
  "report_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
