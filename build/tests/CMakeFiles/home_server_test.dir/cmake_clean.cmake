file(REMOVE_RECURSE
  "CMakeFiles/home_server_test.dir/home_server_test.cc.o"
  "CMakeFiles/home_server_test.dir/home_server_test.cc.o.d"
  "home_server_test"
  "home_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
