file(REMOVE_RECURSE
  "CMakeFiles/stack_property_test.dir/stack_property_test.cc.o"
  "CMakeFiles/stack_property_test.dir/stack_property_test.cc.o.d"
  "stack_property_test"
  "stack_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
