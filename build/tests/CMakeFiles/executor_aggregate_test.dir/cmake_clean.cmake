file(REMOVE_RECURSE
  "CMakeFiles/executor_aggregate_test.dir/executor_aggregate_test.cc.o"
  "CMakeFiles/executor_aggregate_test.dir/executor_aggregate_test.cc.o.d"
  "executor_aggregate_test"
  "executor_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
