file(REMOVE_RECURSE
  "CMakeFiles/dssp_sim.dir/histogram.cc.o"
  "CMakeFiles/dssp_sim.dir/histogram.cc.o.d"
  "CMakeFiles/dssp_sim.dir/search.cc.o"
  "CMakeFiles/dssp_sim.dir/search.cc.o.d"
  "CMakeFiles/dssp_sim.dir/simulator.cc.o"
  "CMakeFiles/dssp_sim.dir/simulator.cc.o.d"
  "CMakeFiles/dssp_sim.dir/trace.cc.o"
  "CMakeFiles/dssp_sim.dir/trace.cc.o.d"
  "libdssp_sim.a"
  "libdssp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
