file(REMOVE_RECURSE
  "libdssp_sim.a"
)
