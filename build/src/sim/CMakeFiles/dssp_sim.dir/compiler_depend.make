# Empty compiler generated dependencies file for dssp_sim.
# This may be replaced when dependencies are built.
