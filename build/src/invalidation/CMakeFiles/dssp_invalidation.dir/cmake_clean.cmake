file(REMOVE_RECURSE
  "CMakeFiles/dssp_invalidation.dir/independence.cc.o"
  "CMakeFiles/dssp_invalidation.dir/independence.cc.o.d"
  "CMakeFiles/dssp_invalidation.dir/strategies.cc.o"
  "CMakeFiles/dssp_invalidation.dir/strategies.cc.o.d"
  "libdssp_invalidation.a"
  "libdssp_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
