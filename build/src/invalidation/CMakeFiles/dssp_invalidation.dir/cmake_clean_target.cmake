file(REMOVE_RECURSE
  "libdssp_invalidation.a"
)
