# Empty compiler generated dependencies file for dssp_invalidation.
# This may be replaced when dependencies are built.
