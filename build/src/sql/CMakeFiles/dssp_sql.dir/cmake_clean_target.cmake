file(REMOVE_RECURSE
  "libdssp_sql.a"
)
