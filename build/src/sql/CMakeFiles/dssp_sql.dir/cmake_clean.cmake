file(REMOVE_RECURSE
  "CMakeFiles/dssp_sql.dir/ast.cc.o"
  "CMakeFiles/dssp_sql.dir/ast.cc.o.d"
  "CMakeFiles/dssp_sql.dir/parser.cc.o"
  "CMakeFiles/dssp_sql.dir/parser.cc.o.d"
  "CMakeFiles/dssp_sql.dir/tokenizer.cc.o"
  "CMakeFiles/dssp_sql.dir/tokenizer.cc.o.d"
  "CMakeFiles/dssp_sql.dir/value.cc.o"
  "CMakeFiles/dssp_sql.dir/value.cc.o.d"
  "libdssp_sql.a"
  "libdssp_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
