# Empty dependencies file for dssp_sql.
# This may be replaced when dependencies are built.
