# Empty dependencies file for dssp_workloads.
# This may be replaced when dependencies are built.
