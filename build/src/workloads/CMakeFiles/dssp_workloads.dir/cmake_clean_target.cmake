file(REMOVE_RECURSE
  "libdssp_workloads.a"
)
