file(REMOVE_RECURSE
  "CMakeFiles/dssp_workloads.dir/application.cc.o"
  "CMakeFiles/dssp_workloads.dir/application.cc.o.d"
  "CMakeFiles/dssp_workloads.dir/auction.cc.o"
  "CMakeFiles/dssp_workloads.dir/auction.cc.o.d"
  "CMakeFiles/dssp_workloads.dir/bboard.cc.o"
  "CMakeFiles/dssp_workloads.dir/bboard.cc.o.d"
  "CMakeFiles/dssp_workloads.dir/bookstore.cc.o"
  "CMakeFiles/dssp_workloads.dir/bookstore.cc.o.d"
  "CMakeFiles/dssp_workloads.dir/toystore.cc.o"
  "CMakeFiles/dssp_workloads.dir/toystore.cc.o.d"
  "libdssp_workloads.a"
  "libdssp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
