# Empty compiler generated dependencies file for dssp_crypto.
# This may be replaced when dependencies are built.
