file(REMOVE_RECURSE
  "CMakeFiles/dssp_crypto.dir/cipher.cc.o"
  "CMakeFiles/dssp_crypto.dir/cipher.cc.o.d"
  "CMakeFiles/dssp_crypto.dir/keyring.cc.o"
  "CMakeFiles/dssp_crypto.dir/keyring.cc.o.d"
  "libdssp_crypto.a"
  "libdssp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
