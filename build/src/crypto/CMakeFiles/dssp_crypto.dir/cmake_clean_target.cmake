file(REMOVE_RECURSE
  "libdssp_crypto.a"
)
