# Empty compiler generated dependencies file for dssp_templates.
# This may be replaced when dependencies are built.
