file(REMOVE_RECURSE
  "libdssp_templates.a"
)
