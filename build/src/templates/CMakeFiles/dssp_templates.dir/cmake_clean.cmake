file(REMOVE_RECURSE
  "CMakeFiles/dssp_templates.dir/template.cc.o"
  "CMakeFiles/dssp_templates.dir/template.cc.o.d"
  "CMakeFiles/dssp_templates.dir/template_set.cc.o"
  "CMakeFiles/dssp_templates.dir/template_set.cc.o.d"
  "libdssp_templates.a"
  "libdssp_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
