# Empty compiler generated dependencies file for dssp_engine.
# This may be replaced when dependencies are built.
