file(REMOVE_RECURSE
  "CMakeFiles/dssp_engine.dir/database.cc.o"
  "CMakeFiles/dssp_engine.dir/database.cc.o.d"
  "CMakeFiles/dssp_engine.dir/eval.cc.o"
  "CMakeFiles/dssp_engine.dir/eval.cc.o.d"
  "CMakeFiles/dssp_engine.dir/executor.cc.o"
  "CMakeFiles/dssp_engine.dir/executor.cc.o.d"
  "CMakeFiles/dssp_engine.dir/query_result.cc.o"
  "CMakeFiles/dssp_engine.dir/query_result.cc.o.d"
  "CMakeFiles/dssp_engine.dir/table.cc.o"
  "CMakeFiles/dssp_engine.dir/table.cc.o.d"
  "libdssp_engine.a"
  "libdssp_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
