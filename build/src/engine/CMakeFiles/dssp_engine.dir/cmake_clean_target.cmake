file(REMOVE_RECURSE
  "libdssp_engine.a"
)
