
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/dssp_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/dssp_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/eval.cc" "src/engine/CMakeFiles/dssp_engine.dir/eval.cc.o" "gcc" "src/engine/CMakeFiles/dssp_engine.dir/eval.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/dssp_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/dssp_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/query_result.cc" "src/engine/CMakeFiles/dssp_engine.dir/query_result.cc.o" "gcc" "src/engine/CMakeFiles/dssp_engine.dir/query_result.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/dssp_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/dssp_engine.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/dssp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dssp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dssp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
