# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dssp_engine.
