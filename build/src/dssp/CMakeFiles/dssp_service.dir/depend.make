# Empty dependencies file for dssp_service.
# This may be replaced when dependencies are built.
