file(REMOVE_RECURSE
  "libdssp_service.a"
)
