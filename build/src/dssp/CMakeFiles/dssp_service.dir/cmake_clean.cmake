file(REMOVE_RECURSE
  "CMakeFiles/dssp_service.dir/app.cc.o"
  "CMakeFiles/dssp_service.dir/app.cc.o.d"
  "CMakeFiles/dssp_service.dir/cache.cc.o"
  "CMakeFiles/dssp_service.dir/cache.cc.o.d"
  "CMakeFiles/dssp_service.dir/home_server.cc.o"
  "CMakeFiles/dssp_service.dir/home_server.cc.o.d"
  "CMakeFiles/dssp_service.dir/node.cc.o"
  "CMakeFiles/dssp_service.dir/node.cc.o.d"
  "CMakeFiles/dssp_service.dir/protocol.cc.o"
  "CMakeFiles/dssp_service.dir/protocol.cc.o.d"
  "libdssp_service.a"
  "libdssp_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
