file(REMOVE_RECURSE
  "libdssp_common.a"
)
