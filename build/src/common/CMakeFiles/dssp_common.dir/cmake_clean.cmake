file(REMOVE_RECURSE
  "CMakeFiles/dssp_common.dir/hash.cc.o"
  "CMakeFiles/dssp_common.dir/hash.cc.o.d"
  "CMakeFiles/dssp_common.dir/random.cc.o"
  "CMakeFiles/dssp_common.dir/random.cc.o.d"
  "CMakeFiles/dssp_common.dir/status.cc.o"
  "CMakeFiles/dssp_common.dir/status.cc.o.d"
  "CMakeFiles/dssp_common.dir/strings.cc.o"
  "CMakeFiles/dssp_common.dir/strings.cc.o.d"
  "libdssp_common.a"
  "libdssp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
