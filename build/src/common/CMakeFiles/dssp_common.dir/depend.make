# Empty dependencies file for dssp_common.
# This may be replaced when dependencies are built.
