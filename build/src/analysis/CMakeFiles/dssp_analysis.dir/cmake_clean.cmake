file(REMOVE_RECURSE
  "CMakeFiles/dssp_analysis.dir/exposure.cc.o"
  "CMakeFiles/dssp_analysis.dir/exposure.cc.o.d"
  "CMakeFiles/dssp_analysis.dir/ipm.cc.o"
  "CMakeFiles/dssp_analysis.dir/ipm.cc.o.d"
  "CMakeFiles/dssp_analysis.dir/methodology.cc.o"
  "CMakeFiles/dssp_analysis.dir/methodology.cc.o.d"
  "CMakeFiles/dssp_analysis.dir/report_export.cc.o"
  "CMakeFiles/dssp_analysis.dir/report_export.cc.o.d"
  "libdssp_analysis.a"
  "libdssp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
