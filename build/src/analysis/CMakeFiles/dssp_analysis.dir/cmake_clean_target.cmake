file(REMOVE_RECURSE
  "libdssp_analysis.a"
)
