
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/exposure.cc" "src/analysis/CMakeFiles/dssp_analysis.dir/exposure.cc.o" "gcc" "src/analysis/CMakeFiles/dssp_analysis.dir/exposure.cc.o.d"
  "/root/repo/src/analysis/ipm.cc" "src/analysis/CMakeFiles/dssp_analysis.dir/ipm.cc.o" "gcc" "src/analysis/CMakeFiles/dssp_analysis.dir/ipm.cc.o.d"
  "/root/repo/src/analysis/methodology.cc" "src/analysis/CMakeFiles/dssp_analysis.dir/methodology.cc.o" "gcc" "src/analysis/CMakeFiles/dssp_analysis.dir/methodology.cc.o.d"
  "/root/repo/src/analysis/report_export.cc" "src/analysis/CMakeFiles/dssp_analysis.dir/report_export.cc.o" "gcc" "src/analysis/CMakeFiles/dssp_analysis.dir/report_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/templates/CMakeFiles/dssp_templates.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dssp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dssp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dssp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
