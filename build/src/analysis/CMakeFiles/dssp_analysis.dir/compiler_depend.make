# Empty compiler generated dependencies file for dssp_analysis.
# This may be replaced when dependencies are built.
