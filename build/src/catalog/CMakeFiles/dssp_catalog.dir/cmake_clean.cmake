file(REMOVE_RECURSE
  "CMakeFiles/dssp_catalog.dir/schema.cc.o"
  "CMakeFiles/dssp_catalog.dir/schema.cc.o.d"
  "libdssp_catalog.a"
  "libdssp_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
