# Empty dependencies file for dssp_catalog.
# This may be replaced when dependencies are built.
