file(REMOVE_RECURSE
  "libdssp_catalog.a"
)
