# Empty compiler generated dependencies file for dssp_shell.
# This may be replaced when dependencies are built.
