file(REMOVE_RECURSE
  "CMakeFiles/dssp_shell.dir/dssp_shell.cpp.o"
  "CMakeFiles/dssp_shell.dir/dssp_shell.cpp.o.d"
  "dssp_shell"
  "dssp_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssp_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
