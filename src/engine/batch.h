#ifndef DSSP_ENGINE_BATCH_H_
#define DSSP_ENGINE_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/table.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace dssp::engine {

// The vectorized engine's working set: slot ids that survived the filters
// applied so far, in scan order. Kernels take a selection vector in and
// compact it in place — the surviving order is always a subsequence of the
// input order, which is what keeps compiled-program results bit-identical
// to the row-at-a-time interpreter.
using SelectionVector = std::vector<uint32_t>;

// Fills `sel` with every live slot of `table`, ascending — the same order
// Table::AllSlots returns, without the per-call size_t vector.
void SelectLiveSlots(const Table& table, SelectionVector* sel);

// Filters `sel` in place, keeping slots where `table.col <op> rhs` holds
// under the interpreter's semantics: a NULL on either side is false, int64
// vs int64 compares exactly, any double involved compares via AsDouble(),
// strings compare lexicographically. `rhs` must be NULL or of a type
// comparable with the column's declared type (the program compiler checks
// this); the kernel dispatches to one tight typed loop per (layout, op)
// pair and never materializes a sql::Value per row.
void FilterColumnVsValue(const Table& table, size_t col, sql::CompareOp op,
                         const sql::Value& rhs, SelectionVector* sel);

// Filters `sel` in place, keeping slots where
// `table.lhs_col <op> table.rhs_col` holds (both columns of the same
// table), with the same NULL/numeric semantics as above.
void FilterColumnVsColumn(const Table& table, size_t lhs_col,
                          sql::CompareOp op, size_t rhs_col,
                          SelectionVector* sel);

// Fused SelectLiveSlots + FilterColumnVsValue: fills `sel` from scratch
// with the live slots where the predicate holds, in one pass over the
// table instead of two. Equivalent to SelectLiveSlots followed by the
// corresponding Filter* call — the first filter of a full scan uses this
// so the (mostly-discarded) live list is never materialized.
void SelectLiveWhereColumnVsValue(const Table& table, size_t col,
                                  sql::CompareOp op, const sql::Value& rhs,
                                  SelectionVector* sel);

// Fused variant of FilterColumnVsColumn, same contract as above.
void SelectLiveWhereColumnVsColumn(const Table& table, size_t lhs_col,
                                   sql::CompareOp op, size_t rhs_col,
                                   SelectionVector* sel);

// Reorders `order` (which must be a permutation of 0..n-1 in ascending
// order, i.e. the identity) so that its first min(k, n) elements are
// exactly the first min(k, n) elements std::stable_sort would produce
// under the three-way key comparison `cmp(a, b) -> {-1, 0, +1}`.
//
// Stability falls out of the index tie-break: because `order` starts as
// the identity, breaking key ties by element value == breaking them by
// original position, so sorting by (key, index) is a total order whose
// prefix equals the stable sort's prefix. With k < n this is
// std::partial_sort (O(n log k)) — the ORDER BY + LIMIT fast path.
template <typename ThreeWay>
void StableTopK(std::vector<size_t>& order, size_t k, ThreeWay&& cmp) {
  const auto less = [&cmp](size_t a, size_t b) {
    const int c = cmp(a, b);
    if (c != 0) return c < 0;
    return a < b;
  };
  if (k < order.size()) {
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<ptrdiff_t>(k), order.end(),
                      less);
    order.resize(k);
  } else {
    std::sort(order.begin(), order.end(), less);
  }
}

}  // namespace dssp::engine

#endif  // DSSP_ENGINE_BATCH_H_
