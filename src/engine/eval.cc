#include "engine/eval.h"

namespace dssp::engine {

bool CompareValues(const sql::Value& lhs, sql::CompareOp op,
                   const sql::Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  const bool comparable =
      (lhs.is_numeric() && rhs.is_numeric()) ||
      (lhs.type() == sql::ValueType::kString &&
       rhs.type() == sql::ValueType::kString);
  DSSP_CHECK(comparable);
  const int c = lhs.Compare(rhs);
  switch (op) {
    case sql::CompareOp::kEq:
      return c == 0;
    case sql::CompareOp::kLt:
      return c < 0;
    case sql::CompareOp::kLe:
      return c <= 0;
    case sql::CompareOp::kGt:
      return c > 0;
    case sql::CompareOp::kGe:
      return c >= 0;
  }
  DSSP_UNREACHABLE("bad CompareOp");
}

namespace {

StatusOr<sql::Value> ResolveOperand(const catalog::TableSchema& schema,
                                    const sql::Operand& op, const Row& row,
                                    std::string_view alias) {
  if (sql::IsLiteral(op)) return std::get<sql::Value>(op);
  if (sql::IsParameter(op)) {
    return InvalidArgumentError("unbound parameter in predicate");
  }
  const sql::ColumnRef& ref = std::get<sql::ColumnRef>(op);
  if (!ref.table.empty() && ref.table != schema.name() &&
      ref.table != alias) {
    return InvalidArgumentError("column " + ref.ToString() +
                                " does not belong to table " + schema.name());
  }
  const std::optional<size_t> idx = schema.ColumnIndex(ref.column);
  if (!idx.has_value()) {
    return NotFoundError("column " + ref.column + " in table " +
                         schema.name());
  }
  return row[*idx];
}

}  // namespace

StatusOr<bool> EvalPredicateOnRow(const catalog::TableSchema& schema,
                                  const std::vector<sql::Comparison>& where,
                                  const Row& row, std::string_view alias) {
  for (const sql::Comparison& cmp : where) {
    DSSP_ASSIGN_OR_RETURN(sql::Value lhs,
                          ResolveOperand(schema, cmp.lhs, row, alias));
    DSSP_ASSIGN_OR_RETURN(sql::Value rhs,
                          ResolveOperand(schema, cmp.rhs, row, alias));
    if (!lhs.is_null() && !rhs.is_null()) {
      const bool comparable =
          (lhs.is_numeric() && rhs.is_numeric()) ||
          (lhs.type() == sql::ValueType::kString &&
           rhs.type() == sql::ValueType::kString);
      if (!comparable) {
        return InvalidArgumentError("incomparable types in predicate");
      }
    }
    if (!CompareValues(lhs, cmp.op, rhs)) return false;
  }
  return true;
}

namespace {

// Static resolution of one operand for BoundPredicate::Bind. Mirrors
// ResolveOperand's checks and error text, but yields an index/literal
// instead of a per-row value copy.
Status BindOneOperand(const catalog::TableSchema& schema,
                      const sql::Operand& op, std::string_view alias,
                      bool* is_col, size_t* col, sql::Value* lit) {
  if (sql::IsLiteral(op)) {
    *is_col = false;
    *lit = std::get<sql::Value>(op);
    return Status::Ok();
  }
  if (sql::IsParameter(op)) {
    return InvalidArgumentError("unbound parameter in predicate");
  }
  const sql::ColumnRef& ref = std::get<sql::ColumnRef>(op);
  if (!ref.table.empty() && ref.table != schema.name() &&
      ref.table != alias) {
    return InvalidArgumentError("column " + ref.ToString() +
                                " does not belong to table " + schema.name());
  }
  const std::optional<size_t> idx = schema.ColumnIndex(ref.column);
  if (!idx.has_value()) {
    return NotFoundError("column " + ref.column + " in table " +
                         schema.name());
  }
  *is_col = true;
  *col = *idx;
  return Status::Ok();
}

// Type class of a bound operand's non-null runtime values: 0 numeric,
// 1 string, -1 never-non-null (NULL literal). A column's non-null values
// always match its declared type class.
int BoundOperandClass(const catalog::TableSchema& schema, bool is_col,
                      size_t col, const sql::Value& lit) {
  if (is_col) {
    return schema.columns()[col].type == catalog::ColumnType::kString ? 1 : 0;
  }
  if (lit.is_null()) return -1;
  return lit.is_numeric() ? 0 : 1;
}

}  // namespace

BoundPredicate BoundPredicate::Bind(const catalog::TableSchema& schema,
                                    const std::vector<sql::Comparison>& where,
                                    std::string_view alias) {
  BoundPredicate bound;
  bound.conjuncts_.reserve(where.size());
  for (const sql::Comparison& cmp : where) {
    Conjunct c;
    c.op = cmp.op;
    Status status =
        BindOneOperand(schema, cmp.lhs, alias, &c.lhs_is_col, &c.lhs_col,
                       &c.lhs_lit);
    if (status.ok()) {
      status = BindOneOperand(schema, cmp.rhs, alias, &c.rhs_is_col,
                              &c.rhs_col, &c.rhs_lit);
    }
    if (!status.ok()) {
      c.error = true;
      c.status = std::move(status);
    } else {
      const int lhs_class =
          BoundOperandClass(schema, c.lhs_is_col, c.lhs_col, c.lhs_lit);
      const int rhs_class =
          BoundOperandClass(schema, c.rhs_is_col, c.rhs_col, c.rhs_lit);
      // An incomparable pair is an error only for rows where both sides are
      // non-null; with a NULL involved the conjunct is plainly false.
      c.incomparable = lhs_class >= 0 && rhs_class >= 0 &&
                       lhs_class != rhs_class;
    }
    bound.conjuncts_.push_back(std::move(c));
  }
  return bound;
}

StatusOr<bool> BoundPredicate::Matches(const Row& row) const {
  for (const Conjunct& c : conjuncts_) {
    if (c.error) return c.status;
    const sql::Value& lhs = c.lhs_is_col ? row[c.lhs_col] : c.lhs_lit;
    const sql::Value& rhs = c.rhs_is_col ? row[c.rhs_col] : c.rhs_lit;
    if (c.incomparable) {
      if (lhs.is_null() || rhs.is_null()) return false;
      return InvalidArgumentError("incomparable types in predicate");
    }
    if (!CompareValues(lhs, c.op, rhs)) return false;
  }
  return true;
}

}  // namespace dssp::engine
