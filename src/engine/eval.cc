#include "engine/eval.h"

namespace dssp::engine {

bool CompareValues(const sql::Value& lhs, sql::CompareOp op,
                   const sql::Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  const bool comparable =
      (lhs.is_numeric() && rhs.is_numeric()) ||
      (lhs.type() == sql::ValueType::kString &&
       rhs.type() == sql::ValueType::kString);
  DSSP_CHECK(comparable);
  const int c = lhs.Compare(rhs);
  switch (op) {
    case sql::CompareOp::kEq:
      return c == 0;
    case sql::CompareOp::kLt:
      return c < 0;
    case sql::CompareOp::kLe:
      return c <= 0;
    case sql::CompareOp::kGt:
      return c > 0;
    case sql::CompareOp::kGe:
      return c >= 0;
  }
  DSSP_UNREACHABLE("bad CompareOp");
}

namespace {

StatusOr<sql::Value> ResolveOperand(const catalog::TableSchema& schema,
                                    const sql::Operand& op, const Row& row,
                                    std::string_view alias) {
  if (sql::IsLiteral(op)) return std::get<sql::Value>(op);
  if (sql::IsParameter(op)) {
    return InvalidArgumentError("unbound parameter in predicate");
  }
  const sql::ColumnRef& ref = std::get<sql::ColumnRef>(op);
  if (!ref.table.empty() && ref.table != schema.name() &&
      ref.table != alias) {
    return InvalidArgumentError("column " + ref.ToString() +
                                " does not belong to table " + schema.name());
  }
  const std::optional<size_t> idx = schema.ColumnIndex(ref.column);
  if (!idx.has_value()) {
    return NotFoundError("column " + ref.column + " in table " +
                         schema.name());
  }
  return row[*idx];
}

}  // namespace

StatusOr<bool> EvalPredicateOnRow(const catalog::TableSchema& schema,
                                  const std::vector<sql::Comparison>& where,
                                  const Row& row, std::string_view alias) {
  for (const sql::Comparison& cmp : where) {
    DSSP_ASSIGN_OR_RETURN(sql::Value lhs,
                          ResolveOperand(schema, cmp.lhs, row, alias));
    DSSP_ASSIGN_OR_RETURN(sql::Value rhs,
                          ResolveOperand(schema, cmp.rhs, row, alias));
    if (!lhs.is_null() && !rhs.is_null()) {
      const bool comparable =
          (lhs.is_numeric() && rhs.is_numeric()) ||
          (lhs.type() == sql::ValueType::kString &&
           rhs.type() == sql::ValueType::kString);
      if (!comparable) {
        return InvalidArgumentError("incomparable types in predicate");
      }
    }
    if (!CompareValues(lhs, cmp.op, rhs)) return false;
  }
  return true;
}

}  // namespace dssp::engine
