#include "engine/database.h"

#include "engine/eval.h"
#include "engine/executor.h"
#include "sql/parser.h"

namespace dssp::engine {

namespace {

// Candidate rows for a single-table conjunctive predicate: probes the hash
// index when an `column = literal` conjunct exists, else scans.
std::vector<size_t> CandidateSlots(const Table& table,
                                   const std::vector<sql::Comparison>& where) {
  const catalog::TableSchema& schema = table.schema();
  for (const sql::Comparison& cmp : where) {
    if (cmp.op != sql::CompareOp::kEq) continue;
    const sql::Operand* col_op = nullptr;
    const sql::Operand* lit_op = nullptr;
    if (sql::IsColumn(cmp.lhs) && sql::IsLiteral(cmp.rhs)) {
      col_op = &cmp.lhs;
      lit_op = &cmp.rhs;
    } else if (sql::IsColumn(cmp.rhs) && sql::IsLiteral(cmp.lhs)) {
      col_op = &cmp.rhs;
      lit_op = &cmp.lhs;
    } else {
      continue;
    }
    const sql::ColumnRef& ref = std::get<sql::ColumnRef>(*col_op);
    if (!ref.table.empty() && ref.table != schema.name()) continue;
    const std::optional<size_t> idx = schema.ColumnIndex(ref.column);
    if (!idx.has_value()) continue;
    return table.SlotsWithValue(*idx, std::get<sql::Value>(*lit_op));
  }
  return table.AllSlots();
}

}  // namespace

Status Database::CreateTable(catalog::TableSchema schema) {
  DSSP_RETURN_IF_ERROR(catalog_.AddTable(schema));
  const catalog::TableSchema& stored = catalog_.GetTable(schema.name());
  tables_.emplace(stored.name(), Table(stored));
  return Status::Ok();
}

const Table* Database::FindTable(std::string_view name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Table* Database::FindMutableTable(std::string_view name) {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const Table& Database::GetTable(std::string_view name) const {
  const Table* table = FindTable(name);
  DSSP_CHECK(table != nullptr);
  return *table;
}

StatusOr<QueryResult> Database::ExecuteQuery(
    const sql::Statement& stmt) const {
  if (stmt.kind() != sql::StatementKind::kSelect) {
    return InvalidArgumentError("ExecuteQuery requires a SELECT");
  }
  if (stmt.num_params != 0) {
    return InvalidArgumentError("query has unbound parameters");
  }
  return ExecuteSelect(*this, stmt.select());
}

StatusOr<UpdateEffect> Database::ExecuteUpdate(const sql::Statement& stmt) {
  if (stmt.num_params != 0) {
    return InvalidArgumentError("update has unbound parameters");
  }
  switch (stmt.kind()) {
    case sql::StatementKind::kInsert:
      return ExecuteInsert(stmt.insert());
    case sql::StatementKind::kDelete:
      return ExecuteDelete(stmt.del());
    case sql::StatementKind::kUpdate:
      return ExecuteModify(stmt.update());
    case sql::StatementKind::kSelect:
      return InvalidArgumentError("ExecuteUpdate requires a non-SELECT");
  }
  DSSP_UNREACHABLE("bad StatementKind");
}

StatusOr<UpdateEffect> Database::ExecuteInsert(
    const sql::InsertStatement& stmt) {
  Table* table = FindMutableTable(stmt.table);
  if (table == nullptr) return NotFoundError("table " + stmt.table);
  const catalog::TableSchema& schema = table->schema();

  // The paper's insertion statements fully specify a row; require every
  // column to be present exactly once.
  if (stmt.columns.size() != schema.num_columns()) {
    return InvalidArgumentError("INSERT into " + stmt.table +
                                " must specify all columns");
  }
  Row row(schema.num_columns());
  std::vector<bool> seen(schema.num_columns(), false);
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    const std::optional<size_t> idx = schema.ColumnIndex(stmt.columns[i]);
    if (!idx.has_value()) {
      return NotFoundError("column " + stmt.columns[i] + " in table " +
                           stmt.table);
    }
    if (seen[*idx]) {
      return InvalidArgumentError("duplicate column " + stmt.columns[i]);
    }
    seen[*idx] = true;
    if (!sql::IsLiteral(stmt.values[i])) {
      return InvalidArgumentError("INSERT values must be bound literals");
    }
    row[*idx] = std::get<sql::Value>(stmt.values[i]);
  }

  DSSP_RETURN_IF_ERROR(InsertRow(stmt.table, std::move(row)));
  return UpdateEffect{1};
}

Status Database::InsertRow(std::string_view table_name, Row row) {
  Table* table = FindMutableTable(table_name);
  if (table == nullptr) {
    return NotFoundError("table " + std::string(table_name));
  }
  const catalog::TableSchema& schema = table->schema();
  if (row.size() != schema.num_columns()) {
    return InvalidArgumentError("row arity mismatch for " +
                                std::string(table_name));
  }
  // Foreign-key existence checks.
  for (const catalog::ForeignKey& fk : schema.foreign_keys()) {
    const size_t local = *schema.ColumnIndex(fk.column);
    if (row[local].is_null()) continue;
    const Table* ref_table = FindTable(fk.ref_table);
    DSSP_CHECK(ref_table != nullptr);
    const size_t ref_col = *ref_table->schema().ColumnIndex(fk.ref_column);
    // A self-referencing FK may be satisfied by the row being inserted
    // (e.g. a root employee who is their own manager).
    if (fk.ref_table == table_name &&
        !row[ref_col].is_null() &&
        row[ref_col].Compare(row[local]) == 0) {
      continue;
    }
    if (!ref_table->ContainsValue(ref_col, row[local])) {
      return ConstraintViolationError(
          "foreign key violation: " + std::string(table_name) + "." +
          fk.column + " -> " + fk.ref_table + "." + fk.ref_column);
    }
  }
  return table->Insert(std::move(row));
}

StatusOr<UpdateEffect> Database::ExecuteDelete(
    const sql::DeleteStatement& stmt) {
  Table* table = FindMutableTable(stmt.table);
  if (table == nullptr) return NotFoundError("table " + stmt.table);
  const catalog::TableSchema& schema = table->schema();

  std::vector<size_t> to_delete;
  const BoundPredicate predicate = BoundPredicate::Bind(schema, stmt.where);
  for (size_t slot : CandidateSlots(*table, stmt.where)) {
    DSSP_ASSIGN_OR_RETURN(bool matches, predicate.Matches(table->RowAt(slot)));
    if (matches) to_delete.push_back(slot);
  }
  for (size_t slot : to_delete) table->DeleteSlot(slot);
  return UpdateEffect{to_delete.size()};
}

StatusOr<UpdateEffect> Database::ExecuteModify(
    const sql::UpdateStatement& stmt) {
  Table* table = FindMutableTable(stmt.table);
  if (table == nullptr) return NotFoundError("table " + stmt.table);
  const catalog::TableSchema& schema = table->schema();

  // Validate SET targets: existing, non-key columns (the paper's
  // modification class), bound literal values of a fitting type.
  std::vector<std::pair<size_t, sql::Value>> assignments;
  for (const auto& [col_name, operand] : stmt.set) {
    const std::optional<size_t> idx = schema.ColumnIndex(col_name);
    if (!idx.has_value()) {
      return NotFoundError("column " + col_name + " in table " + stmt.table);
    }
    if (schema.IsPrimaryKeyColumn(col_name)) {
      return InvalidArgumentError(
          "modifications must not change primary-key column " + col_name);
    }
    if (!sql::IsLiteral(operand)) {
      return InvalidArgumentError("UPDATE values must be bound literals");
    }
    const sql::Value& value = std::get<sql::Value>(operand);
    if (!catalog::ValueFitsColumn(value.type(), schema.columns()[*idx].type)) {
      return InvalidArgumentError("type mismatch assigning to " + col_name);
    }
    assignments.emplace_back(*idx, value);
  }

  std::vector<size_t> matched;
  const BoundPredicate predicate = BoundPredicate::Bind(schema, stmt.where);
  for (size_t slot : CandidateSlots(*table, stmt.where)) {
    DSSP_ASSIGN_OR_RETURN(bool matches, predicate.Matches(table->RowAt(slot)));
    if (matches) matched.push_back(slot);
  }

  // Atomic UNIQUE validation before any row is touched: a non-null value
  // assigned to a unique column must not be held by any unmatched row, and
  // cannot be given to more than one matched row.
  for (const auto& [col, value] : assignments) {
    const std::string& col_name = schema.columns()[col].name;
    if (value.is_null() || !schema.IsUniqueColumn(col_name)) continue;
    if (matched.size() > 1) {
      return ConstraintViolationError(
          "assigning unique column " + col_name + " to multiple rows");
    }
    for (size_t holder : table->SlotsWithValue(col, value)) {
      if (matched.empty() || holder != matched[0]) {
        return ConstraintViolationError("duplicate value for unique column " +
                                        stmt.table + "." + col_name);
      }
    }
  }

  for (size_t slot : matched) {
    for (const auto& [col, value] : assignments) {
      table->UpdateSlot(slot, col, value);
    }
  }
  return UpdateEffect{matched.size()};
}

StatusOr<QueryResult> Database::Query(std::string_view sql) const {
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return ExecuteQuery(stmt);
}

StatusOr<UpdateEffect> Database::Update(std::string_view sql) {
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return ExecuteUpdate(stmt);
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table.num_rows();
  return total;
}

}  // namespace dssp::engine
