#include "engine/query_result.h"

#include <algorithm>

#include "common/hash.h"

namespace dssp::engine {

namespace {

std::string EncodeRow(const Row& row) {
  std::string out;
  for (const sql::Value& v : row) out += v.EncodeForKey();
  return out;
}

std::vector<std::string> EncodedRows(const std::vector<Row>& rows,
                                     bool sorted) {
  std::vector<std::string> encoded;
  encoded.reserve(rows.size());
  for (const Row& row : rows) encoded.push_back(EncodeRow(row));
  if (sorted) std::sort(encoded.begin(), encoded.end());
  return encoded;
}

}  // namespace

bool QueryResult::SameResult(const QueryResult& other) const {
  if (column_names_ != other.column_names_) return false;
  if (rows_.size() != other.rows_.size()) return false;
  if (ordered_ != other.ordered_) return false;
  const std::vector<std::string> a = EncodedRows(rows_, !ordered_);
  const std::vector<std::string> b = EncodedRows(other.rows_, !other.ordered_);
  return a == b;
}

uint64_t QueryResult::Fingerprint() const {
  uint64_t h = Hash64(ordered_ ? "ordered" : "unordered");
  for (const std::string& name : column_names_) {
    h = HashCombine(h, Hash64(name));
  }
  for (const std::string& row : EncodedRows(rows_, !ordered_)) {
    h = HashCombine(h, Hash64(row));
  }
  return h;
}

std::string QueryResult::Serialize() const {
  std::string out;
  out.push_back(ordered_ ? 1 : 0);
  const uint64_t ncols = column_names_.size();
  out.append(reinterpret_cast<const char*>(&ncols), sizeof(ncols));
  for (const std::string& name : column_names_) {
    const uint64_t len = name.size();
    out.append(reinterpret_cast<const char*>(&len), sizeof(len));
    out += name;
  }
  const uint64_t nrows = rows_.size();
  out.append(reinterpret_cast<const char*>(&nrows), sizeof(nrows));
  for (const Row& row : rows_) {
    for (const sql::Value& v : row) out += v.EncodeForKey();
  }
  return out;
}

StatusOr<QueryResult> QueryResult::Deserialize(std::string_view data) {
  size_t pos = 0;
  const auto read_u64 = [&](uint64_t* out) {
    if (pos + sizeof(uint64_t) > data.size()) return false;
    std::memcpy(out, data.data() + pos, sizeof(uint64_t));
    pos += sizeof(uint64_t);
    return true;
  };
  if (data.empty()) return InvalidArgumentError("empty result blob");
  const bool ordered = data[pos++] != 0;

  uint64_t ncols = 0;
  if (!read_u64(&ncols) || ncols > (1u << 20)) {
    return InvalidArgumentError("malformed result blob (columns)");
  }
  std::vector<std::string> names;
  names.reserve(ncols);
  for (uint64_t i = 0; i < ncols; ++i) {
    uint64_t len = 0;
    if (!read_u64(&len) || pos + len > data.size()) {
      return InvalidArgumentError("malformed result blob (column name)");
    }
    names.emplace_back(data.substr(pos, len));
    pos += len;
  }

  uint64_t nrows = 0;
  if (!read_u64(&nrows)) {
    return InvalidArgumentError("malformed result blob (row count)");
  }
  std::vector<Row> rows;
  rows.reserve(nrows);
  for (uint64_t r = 0; r < nrows; ++r) {
    Row row;
    row.reserve(ncols);
    for (uint64_t c = 0; c < ncols; ++c) {
      sql::Value value;
      if (!sql::Value::DecodeFromKey(data, &pos, &value)) {
        return InvalidArgumentError("malformed result blob (value)");
      }
      row.push_back(std::move(value));
    }
    rows.push_back(std::move(row));
  }
  if (pos != data.size()) {
    return InvalidArgumentError("trailing bytes in result blob");
  }
  return QueryResult(std::move(names), std::move(rows), ordered);
}

std::string QueryResult::ToDebugString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (i != 0) out += " | ";
    out += column_names_[i];
  }
  out += "\n";
  size_t shown = 0;
  for (const Row& row : rows_) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows_.size() - max_rows) +
             " more rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += " | ";
      out += row[i].ToSqlLiteral();
    }
    out += "\n";
  }
  out += "(" + std::to_string(rows_.size()) + " rows)";
  return out;
}

}  // namespace dssp::engine
