#include "engine/executor.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "engine/batch.h"
#include "engine/database.h"
#include "engine/eval.h"

namespace dssp::engine {

namespace {

// A column resolved to (FROM slot, column index).
struct BoundColumn {
  size_t slot;
  size_t col;
};

// A predicate operand after binding: a column or a literal.
struct BoundOperand {
  bool is_column = false;
  BoundColumn column{0, 0};
  sql::Value literal;
};

struct BoundComparison {
  BoundOperand lhs;
  sql::CompareOp op;
  BoundOperand rhs;
  std::vector<size_t> slots;  // Sorted unique FROM slots referenced.
  bool applied = false;
};

// A join tuple: one row slot per FROM slot (prefix while building).
using Tuple = std::vector<size_t>;

class SelectExecution {
 public:
  SelectExecution(const Database& db, const sql::SelectStatement& stmt)
      : db_(db), stmt_(stmt) {}

  StatusOr<QueryResult> Run() {
    DSSP_RETURN_IF_ERROR(BindFrom());
    DSSP_RETURN_IF_ERROR(BindWhere());
    DSSP_RETURN_IF_ERROR(ResolveLimit());
    DSSP_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, Join());
    if (stmt_.has_aggregate() || !stmt_.group_by.empty()) {
      return Aggregate(tuples);
    }
    return Project(tuples);
  }

 private:
  StatusOr<BoundColumn> BindColumn(const sql::ColumnRef& ref) const {
    if (!ref.table.empty()) {
      for (size_t s = 0; s < tables_.size(); ++s) {
        if (stmt_.from[s].effective_name() == ref.table) {
          const std::optional<size_t> col =
              tables_[s]->schema().ColumnIndex(ref.column);
          if (!col.has_value()) {
            return NotFoundError("column " + ref.ToString());
          }
          return BoundColumn{s, *col};
        }
      }
      return NotFoundError("table " + ref.table + " in FROM clause");
    }
    std::optional<BoundColumn> found;
    for (size_t s = 0; s < tables_.size(); ++s) {
      const std::optional<size_t> col =
          tables_[s]->schema().ColumnIndex(ref.column);
      if (col.has_value()) {
        if (found.has_value()) {
          return InvalidArgumentError("ambiguous column " + ref.column);
        }
        found = BoundColumn{s, *col};
      }
    }
    if (!found.has_value()) return NotFoundError("column " + ref.column);
    return *found;
  }

  Status BindFrom() {
    if (stmt_.from.empty()) {
      return InvalidArgumentError("empty FROM clause");
    }
    std::set<std::string> names;
    for (const sql::TableRef& ref : stmt_.from) {
      const Table* table = db_.FindTable(ref.table);
      if (table == nullptr) return NotFoundError("table " + ref.table);
      if (!names.insert(ref.effective_name()).second) {
        return InvalidArgumentError("duplicate FROM name " +
                                    ref.effective_name());
      }
      tables_.push_back(table);
    }
    return Status::Ok();
  }

  StatusOr<BoundOperand> BindOperand(const sql::Operand& op) const {
    BoundOperand bound;
    if (sql::IsLiteral(op)) {
      bound.literal = std::get<sql::Value>(op);
      return bound;
    }
    if (sql::IsParameter(op)) {
      return InvalidArgumentError("unbound parameter in query");
    }
    bound.is_column = true;
    DSSP_ASSIGN_OR_RETURN(bound.column,
                          BindColumn(std::get<sql::ColumnRef>(op)));
    return bound;
  }

  // Type class for comparability checking: 0 = numeric, 1 = string,
  // -1 = unknown (NULL literal; comparisons with NULL are simply false).
  int OperandTypeClass(const BoundOperand& op) const {
    if (op.is_column) {
      const catalog::ColumnType type =
          tables_[op.column.slot]->schema().columns()[op.column.col].type;
      return type == catalog::ColumnType::kString ? 1 : 0;
    }
    if (op.literal.is_null()) return -1;
    return op.literal.is_numeric() ? 0 : 1;
  }

  Status BindWhere() {
    for (const sql::Comparison& cmp : stmt_.where) {
      BoundComparison bound;
      DSSP_ASSIGN_OR_RETURN(bound.lhs, BindOperand(cmp.lhs));
      DSSP_ASSIGN_OR_RETURN(bound.rhs, BindOperand(cmp.rhs));
      bound.op = cmp.op;
      const int lhs_type = OperandTypeClass(bound.lhs);
      const int rhs_type = OperandTypeClass(bound.rhs);
      if (lhs_type >= 0 && rhs_type >= 0 && lhs_type != rhs_type) {
        return InvalidArgumentError("incomparable types in predicate");
      }
      if (bound.lhs.is_column) bound.slots.push_back(bound.lhs.column.slot);
      if (bound.rhs.is_column) bound.slots.push_back(bound.rhs.column.slot);
      std::sort(bound.slots.begin(), bound.slots.end());
      bound.slots.erase(std::unique(bound.slots.begin(), bound.slots.end()),
                        bound.slots.end());
      where_.push_back(std::move(bound));
    }
    return Status::Ok();
  }

  Status ResolveLimit() {
    if (!stmt_.limit.has_value()) return Status::Ok();
    if (!sql::IsLiteral(*stmt_.limit)) {
      return InvalidArgumentError("unbound LIMIT parameter");
    }
    const sql::Value& v = std::get<sql::Value>(*stmt_.limit);
    if (v.type() != sql::ValueType::kInt64 || v.AsInt64() < 0) {
      return InvalidArgumentError("LIMIT must be a non-negative integer");
    }
    limit_ = static_cast<size_t>(v.AsInt64());
    return Status::Ok();
  }

  sql::Value OperandValue(const BoundOperand& op, const Tuple& tuple) const {
    if (!op.is_column) return op.literal;
    return tables_[op.column.slot]->RowAt(tuple[op.column.slot])
        [op.column.col];
  }

  bool EvalComparison(const BoundComparison& cmp, const Tuple& tuple) const {
    return CompareValues(OperandValue(cmp.lhs, tuple), cmp.op,
                         OperandValue(cmp.rhs, tuple));
  }

  // Candidate row slots for FROM slot `s` after applying its single-table
  // conjuncts (marking them applied). Uses a hash index when an equality
  // conjunct against a literal is present.
  std::vector<size_t> SingleTableCandidates(size_t s) {
    const Table& table = *tables_[s];
    // Prefer an index probe: column(s) = literal.
    const BoundComparison* probe = nullptr;
    for (BoundComparison& cmp : where_) {
      if (cmp.applied || cmp.slots != std::vector<size_t>{s}) continue;
      if (cmp.op != sql::CompareOp::kEq) continue;
      if (cmp.lhs.is_column != cmp.rhs.is_column) {
        probe = &cmp;
        break;
      }
    }
    std::vector<size_t> candidates;
    if (probe != nullptr) {
      const BoundOperand& col = probe->lhs.is_column ? probe->lhs
                                                     : probe->rhs;
      const BoundOperand& lit = probe->lhs.is_column ? probe->rhs
                                                     : probe->lhs;
      candidates = table.SlotsWithValue(col.column.col, lit.literal);
    } else {
      candidates = table.AllSlots();
    }
    // Filter by the remaining single-table conjuncts of slot s.
    std::vector<const BoundComparison*> filters;
    for (BoundComparison& cmp : where_) {
      if (cmp.applied || cmp.slots != std::vector<size_t>{s}) continue;
      cmp.applied = true;
      if (&cmp != probe) filters.push_back(&cmp);
    }
    if (filters.empty()) return candidates;
    std::vector<size_t> out;
    Tuple fake(tables_.size(), 0);
    for (size_t row_slot : candidates) {
      fake[s] = row_slot;
      bool keep = true;
      for (const BoundComparison* f : filters) {
        if (!EvalComparison(*f, fake)) {
          keep = false;
          break;
        }
      }
      if (keep) out.push_back(row_slot);
    }
    return out;
  }

  StatusOr<std::vector<Tuple>> Join() {
    // Evaluate literal-vs-literal conjuncts once.
    for (BoundComparison& cmp : where_) {
      if (cmp.slots.empty()) {
        cmp.applied = true;
        if (!CompareValues(cmp.lhs.literal, cmp.op, cmp.rhs.literal)) {
          return std::vector<Tuple>{};
        }
      }
    }

    std::vector<Tuple> tuples;
    for (size_t row_slot : SingleTableCandidates(0)) {
      Tuple t(tables_.size(), 0);
      t[0] = row_slot;
      tuples.push_back(std::move(t));
    }

    for (size_t s = 1; s < tables_.size(); ++s) {
      const std::vector<size_t> candidates = SingleTableCandidates(s);

      // Conjuncts that become fully evaluable once slot s joins.
      std::vector<BoundComparison*> applicable;
      BoundComparison* equi = nullptr;  // col(s) = col(joined) probe.
      for (BoundComparison& cmp : where_) {
        if (cmp.applied) continue;
        bool ready = true;
        bool uses_s = false;
        for (size_t slot : cmp.slots) {
          if (slot > s) ready = false;
          if (slot == s) uses_s = true;
        }
        if (!ready || !uses_s) continue;
        applicable.push_back(&cmp);
        cmp.applied = true;
        if (equi == nullptr && cmp.op == sql::CompareOp::kEq &&
            cmp.lhs.is_column && cmp.rhs.is_column &&
            (cmp.lhs.column.slot == s) != (cmp.rhs.column.slot == s)) {
          equi = &cmp;
        }
      }

      std::vector<Tuple> next;
      if (equi != nullptr) {
        // Hash join: build on slot-s candidates keyed by the join column.
        const BoundColumn s_col = equi->lhs.column.slot == s
                                      ? equi->lhs.column
                                      : equi->rhs.column;
        const BoundColumn other_col = equi->lhs.column.slot == s
                                          ? equi->rhs.column
                                          : equi->lhs.column;
        std::unordered_multimap<uint64_t, size_t> build;
        build.reserve(candidates.size());
        for (size_t row_slot : candidates) {
          const sql::Value& v = tables_[s]->RowAt(row_slot)[s_col.col];
          if (v.is_null()) continue;
          build.emplace(v.Hash(), row_slot);
        }
        for (const Tuple& tuple : tuples) {
          const sql::Value& probe =
              tables_[other_col.slot]->RowAt(tuple[other_col.slot])
                  [other_col.col];
          if (probe.is_null()) continue;
          auto [begin, end] = build.equal_range(probe.Hash());
          for (auto it = begin; it != end; ++it) {
            Tuple extended = tuple;
            extended[s] = it->second;
            // Re-check the probe conjunct (hash collisions) and the others.
            bool keep = true;
            for (BoundComparison* cmp : applicable) {
              if (!EvalComparison(*cmp, extended)) {
                keep = false;
                break;
              }
            }
            if (keep) next.push_back(std::move(extended));
          }
        }
      } else {
        // Nested-loop join.
        for (const Tuple& tuple : tuples) {
          for (size_t row_slot : candidates) {
            Tuple extended = tuple;
            extended[s] = row_slot;
            bool keep = true;
            for (BoundComparison* cmp : applicable) {
              if (!EvalComparison(*cmp, extended)) {
                keep = false;
                break;
              }
            }
            if (keep) next.push_back(std::move(extended));
          }
        }
      }
      tuples = std::move(next);
    }
    return tuples;
  }

  // ----- Projection (non-aggregate path). -----

  std::string OutputName(const sql::SelectItem& item) const {
    if (item.func != sql::AggregateFunc::kNone) {
      std::string name = sql::AggregateFuncName(item.func);
      name += "(";
      name += item.star ? "*" : item.column.ToString();
      name += ")";
      return name;
    }
    return item.column.ToString();
  }

  StatusOr<QueryResult> Project(const std::vector<Tuple>& tuples) {
    // Expand the projection into bound columns and names.
    std::vector<BoundColumn> out_cols;
    std::vector<std::string> names;
    for (const sql::SelectItem& item : stmt_.items) {
      if (item.star) {
        for (size_t s = 0; s < tables_.size(); ++s) {
          const catalog::TableSchema& schema = tables_[s]->schema();
          for (size_t c = 0; c < schema.num_columns(); ++c) {
            out_cols.push_back(BoundColumn{s, c});
            names.push_back(stmt_.from[s].effective_name() + "." +
                            schema.columns()[c].name);
          }
        }
      } else {
        DSSP_ASSIGN_OR_RETURN(BoundColumn col, BindColumn(item.column));
        out_cols.push_back(col);
        names.push_back(OutputName(item));
      }
    }

    // Bind ORDER BY keys (evaluated on the joined tuple, pre-projection).
    std::vector<std::pair<BoundColumn, bool>> order_cols;
    for (const sql::OrderByItem& item : stmt_.order_by) {
      DSSP_ASSIGN_OR_RETURN(BoundColumn col, BindColumn(item.column));
      order_cols.emplace_back(col, item.descending);
    }

    std::vector<size_t> order(tuples.size());
    std::iota(order.begin(), order.end(), size_t{0});
    const size_t n = limit_.has_value()
                         ? std::min(*limit_, tuples.size())
                         : tuples.size();
    if (!order_cols.empty()) {
      // Bounded top-k: with a LIMIT this is a partial sort (O(n log k))
      // whose prefix equals the former full std::stable_sort, tie order
      // included (index tie-break == stability, see StableTopK).
      StableTopK(order, n, [&](size_t a, size_t b) {
        for (const auto& [col, desc] : order_cols) {
          const sql::Value& va =
              tables_[col.slot]->RowAt(tuples[a][col.slot])[col.col];
          const sql::Value& vb =
              tables_[col.slot]->RowAt(tuples[b][col.slot])[col.col];
          const int c = va.Compare(vb);
          if (c != 0) return desc ? -c : c;
        }
        return 0;
      });
    }

    std::vector<Row> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Tuple& tuple = tuples[order[i]];
      Row row;
      row.reserve(out_cols.size());
      for (const BoundColumn& col : out_cols) {
        row.push_back(tables_[col.slot]->RowAt(tuple[col.slot])[col.col]);
      }
      rows.push_back(std::move(row));
    }
    return QueryResult(std::move(names), std::move(rows),
                       !stmt_.order_by.empty());
  }

  // ----- Aggregation path. -----

  StatusOr<QueryResult> Aggregate(const std::vector<Tuple>& tuples) {
    // Bind group-by columns.
    std::vector<BoundColumn> group_cols;
    for (const sql::ColumnRef& ref : stmt_.group_by) {
      DSSP_ASSIGN_OR_RETURN(BoundColumn col, BindColumn(ref));
      group_cols.push_back(col);
    }

    // Validate items: non-aggregate items must appear in GROUP BY.
    struct OutItem {
      sql::AggregateFunc func;
      bool star;
      std::optional<BoundColumn> col;  // Unset for COUNT(*).
      std::optional<size_t> group_index;  // For non-aggregate items.
    };
    std::vector<OutItem> out_items;
    std::vector<std::string> names;
    for (const sql::SelectItem& item : stmt_.items) {
      OutItem out{item.func, item.star, std::nullopt, std::nullopt};
      if (item.func == sql::AggregateFunc::kNone) {
        if (item.star) {
          return InvalidArgumentError("SELECT * cannot mix with aggregates");
        }
        DSSP_ASSIGN_OR_RETURN(BoundColumn col, BindColumn(item.column));
        bool found = false;
        for (size_t g = 0; g < group_cols.size(); ++g) {
          if (group_cols[g].slot == col.slot &&
              group_cols[g].col == col.col) {
            out.group_index = g;
            found = true;
            break;
          }
        }
        if (!found) {
          return InvalidArgumentError("non-aggregated column " +
                                      item.column.ToString() +
                                      " not in GROUP BY");
        }
      } else if (!item.star) {
        DSSP_ASSIGN_OR_RETURN(BoundColumn col, BindColumn(item.column));
        out.col = col;
      }
      out_items.push_back(out);
      names.push_back(OutputName(item));
    }

    // Group tuples.
    struct Group {
      Row key;
      std::vector<const Tuple*> tuples;
    };
    std::map<std::string, Group> groups;
    for (const Tuple& tuple : tuples) {
      Row key;
      std::string encoded;
      for (const BoundColumn& col : group_cols) {
        const sql::Value& v =
            tables_[col.slot]->RowAt(tuple[col.slot])[col.col];
        key.push_back(v);
        encoded += v.EncodeForKey();
      }
      Group& group = groups[encoded];
      if (group.tuples.empty()) group.key = std::move(key);
      group.tuples.push_back(&tuple);
    }

    // SQL semantics: a global aggregate (no GROUP BY) over an empty input
    // yields one row; a grouped aggregate yields zero rows.
    const bool global = group_cols.empty();
    if (global && groups.empty()) {
      groups.emplace("", Group{});
    }

    std::vector<Row> rows;
    for (auto& [encoded, group] : groups) {
      Row row;
      for (const OutItem& item : out_items) {
        if (item.func == sql::AggregateFunc::kNone) {
          row.push_back(group.key[*item.group_index]);
          continue;
        }
        row.push_back(ComputeAggregate(item.func, item.star, item.col,
                                       group.tuples));
      }
      rows.push_back(std::move(row));
    }

    // ORDER BY over grouped output: keys must be group-by columns.
    if (!stmt_.order_by.empty()) {
      std::vector<std::pair<size_t, bool>> order_keys;
      for (const sql::OrderByItem& item : stmt_.order_by) {
        DSSP_ASSIGN_OR_RETURN(BoundColumn col, BindColumn(item.column));
        bool found = false;
        for (size_t g = 0; g < group_cols.size(); ++g) {
          if (group_cols[g].slot == col.slot &&
              group_cols[g].col == col.col) {
            // Locate an output item carrying this group column; ORDER BY on
            // grouped queries must reference projected group columns.
            for (size_t o = 0; o < out_items.size(); ++o) {
              if (out_items[o].group_index == g) {
                order_keys.emplace_back(o, item.descending);
                found = true;
                break;
              }
            }
            break;
          }
        }
        if (!found) {
          return InvalidArgumentError(
              "ORDER BY on aggregate query must use projected GROUP BY "
              "columns");
        }
      }
      // Bounded top-k over group rows (the LIMIT applies post-sort): the
      // first min(limit, n) entries of the former full std::stable_sort.
      const size_t k = limit_.has_value() ? std::min(*limit_, rows.size())
                                          : rows.size();
      std::vector<size_t> order(rows.size());
      std::iota(order.begin(), order.end(), size_t{0});
      StableTopK(order, k, [&](size_t a, size_t b) {
        for (const auto& [idx, desc] : order_keys) {
          const int c = rows[a][idx].Compare(rows[b][idx]);
          if (c != 0) return desc ? -c : c;
        }
        return 0;
      });
      std::vector<Row> sorted;
      sorted.reserve(k);
      for (size_t i = 0; i < k; ++i) sorted.push_back(std::move(rows[order[i]]));
      rows = std::move(sorted);
    } else if (limit_.has_value() && rows.size() > *limit_) {
      rows.resize(*limit_);
    }
    return QueryResult(std::move(names), std::move(rows),
                       !stmt_.order_by.empty());
  }

  sql::Value ComputeAggregate(sql::AggregateFunc func, bool star,
                              const std::optional<BoundColumn>& col,
                              const std::vector<const Tuple*>& tuples) const {
    if (func == sql::AggregateFunc::kCount && star) {
      return sql::Value(static_cast<int64_t>(tuples.size()));
    }
    DSSP_CHECK(col.has_value());
    int64_t count = 0;
    double dsum = 0;
    int64_t isum = 0;
    bool saw_double = false;
    std::optional<sql::Value> min_v;
    std::optional<sql::Value> max_v;
    for (const Tuple* tuple : tuples) {
      const sql::Value& v =
          tables_[col->slot]->RowAt((*tuple)[col->slot])[col->col];
      if (v.is_null()) continue;
      ++count;
      switch (func) {
        case sql::AggregateFunc::kSum:
        case sql::AggregateFunc::kAvg:
          if (v.type() == sql::ValueType::kDouble) {
            saw_double = true;
            dsum += v.AsDouble();
          } else {
            isum += v.AsInt64();
            dsum += v.AsDouble();
          }
          break;
        case sql::AggregateFunc::kMin:
          if (!min_v.has_value() || v.Compare(*min_v) < 0) min_v = v;
          break;
        case sql::AggregateFunc::kMax:
          if (!max_v.has_value() || v.Compare(*max_v) > 0) max_v = v;
          break;
        case sql::AggregateFunc::kCount:
          break;
        case sql::AggregateFunc::kNone:
          DSSP_UNREACHABLE("aggregate dispatch");
      }
    }
    switch (func) {
      case sql::AggregateFunc::kCount:
        return sql::Value(count);
      case sql::AggregateFunc::kSum:
        if (count == 0) return sql::Value::Null();
        return saw_double ? sql::Value(dsum) : sql::Value(isum);
      case sql::AggregateFunc::kAvg:
        if (count == 0) return sql::Value::Null();
        return sql::Value(dsum / static_cast<double>(count));
      case sql::AggregateFunc::kMin:
        return min_v.value_or(sql::Value::Null());
      case sql::AggregateFunc::kMax:
        return max_v.value_or(sql::Value::Null());
      case sql::AggregateFunc::kNone:
        break;
    }
    DSSP_UNREACHABLE("aggregate dispatch");
  }

  const Database& db_;
  const sql::SelectStatement& stmt_;
  std::vector<const Table*> tables_;
  std::vector<BoundComparison> where_;
  std::optional<size_t> limit_;
};

}  // namespace

StatusOr<QueryResult> ExecuteSelect(const Database& db,
                                    const sql::SelectStatement& stmt) {
  SelectExecution execution(db, stmt);
  return execution.Run();
}

}  // namespace dssp::engine
