#ifndef DSSP_ENGINE_DATABASE_H_
#define DSSP_ENGINE_DATABASE_H_

#include <map>
#include <string>
#include <string_view>

#include "catalog/schema.h"
#include "common/status.h"
#include "engine/query_result.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace dssp::engine {

// The effect of applying an update statement.
struct UpdateEffect {
  size_t rows_affected = 0;

  // True if the database changed (the paper's assumption D != D + U holds
  // when this is true).
  bool changed() const { return rows_affected > 0; }
};

// An in-memory relational database: the "home server" master copy in the
// DSSP architecture. Enforces primary-key uniqueness and (on insert)
// foreign-key existence; plays the role MySQL4 plays in the paper's testbed.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Registers a table (see catalog::Catalog::AddTable for failure modes).
  Status CreateTable(catalog::TableSchema schema);

  const catalog::Catalog& catalog() const { return catalog_; }

  const Table* FindTable(std::string_view name) const;
  Table* FindMutableTable(std::string_view name);
  const Table& GetTable(std::string_view name) const;

  // Executes a parameter-free SELECT.
  StatusOr<QueryResult> ExecuteQuery(const sql::Statement& stmt) const;

  // Executes a parameter-free INSERT / DELETE / UPDATE.
  //  - INSERT must supply every column; checks PK uniqueness and FK
  //    existence.
  //  - DELETE removes all rows satisfying the conjunctive predicate.
  //  - UPDATE must not modify primary-key columns (the paper's modification
  //    class only touches non-key attributes).
  StatusOr<UpdateEffect> ExecuteUpdate(const sql::Statement& stmt);

  // Inserts a full row (schema column order) with the same PK/FK checks as
  // an INSERT statement. Fast path for bulk population.
  Status InsertRow(std::string_view table, Row row);

  // Parses and executes; convenience for examples and tests.
  StatusOr<QueryResult> Query(std::string_view sql) const;
  StatusOr<UpdateEffect> Update(std::string_view sql);

  size_t TotalRows() const;

 private:
  StatusOr<UpdateEffect> ExecuteInsert(const sql::InsertStatement& stmt);
  StatusOr<UpdateEffect> ExecuteDelete(const sql::DeleteStatement& stmt);
  StatusOr<UpdateEffect> ExecuteModify(const sql::UpdateStatement& stmt);

  catalog::Catalog catalog_;
  std::map<std::string, Table, std::less<>> tables_;
};

}  // namespace dssp::engine

#endif  // DSSP_ENGINE_DATABASE_H_
