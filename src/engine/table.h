#ifndef DSSP_ENGINE_TABLE_H_
#define DSSP_ENGINE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "engine/query_result.h"
#include "sql/value.h"

namespace dssp::engine {

// In-memory storage for one base relation. Rows live in slots; deleted slots
// go on a free list and are reused. Every column carries a hash index
// (value-hash -> slots), so equality predicates — the dominant predicate
// shape in the paper's benchmark applications — are O(matches).
//
// Alongside the row store, every column maintains a typed columnar sidecar
// (runtime tag + int64/double/string-pointer arrays, slot-indexed) that the
// vectorized engine (engine/batch.h) reads with tight per-type loops instead
// of touching sql::Value variants row by row. The sidecar is kept in sync by
// Insert/DeleteSlot/UpdateSlot; entries of dead slots are stale and must be
// guarded by live().
class Table {
 public:
  explicit Table(const catalog::TableSchema& schema);

  // Not copyable (indexes reference slots); movable.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const catalog::TableSchema& schema() const { return *schema_; }

  // Inserts `row` (full row in schema column order). Fails on arity/type
  // mismatch or primary-key violation. Foreign keys are checked by the
  // Database (it can see the referenced tables).
  Status Insert(Row row);

  // Deletes the row in `slot` (must be live).
  void DeleteSlot(size_t slot);

  // Overwrites column `col` of the live row in `slot`. The caller must not
  // change primary-key columns (enforced by the Database layer).
  void UpdateSlot(size_t slot, size_t col, sql::Value value);

  bool IsLive(size_t slot) const { return live_[slot]; }
  const Row& RowAt(size_t slot) const { return rows_[slot]; }

  // All live slots, ascending.
  std::vector<size_t> AllSlots() const;

  // Live slots where column `col` equals `value` (via the hash index).
  std::vector<size_t> SlotsWithValue(size_t col, const sql::Value& value) const;

  // True if some live row has `value` in column `col`.
  bool ContainsValue(size_t col, const sql::Value& value) const;

  size_t num_rows() const { return num_live_; }

  // ----- Allocation-free scan API (the vectorized engine's entry points;
  // AllSlots/SlotsWithValue materialize a vector per call and remain only
  // for the row-at-a-time reference interpreter). -----

  // Total slot count, including dead slots; guard reads with live().
  size_t slot_count() const { return rows_.size(); }

  // One byte per slot, nonzero = live. Ascending iteration over live slots
  // visits rows in AllSlots order.
  const char* live() const { return live_.data(); }

  // Streaming equivalent of SlotsWithValue: invokes fn(slot) for each live
  // slot whose `col` equals `value`, in exactly the order SlotsWithValue
  // would return them (the engine's result order depends on it).
  template <typename Fn>
  void ForEachSlotWithValue(size_t col, const sql::Value& value,
                            Fn&& fn) const {
    auto [begin, end] = indexes_[col].equal_range(IndexKey(col, value));
    for (auto it = begin; it != end; ++it) {
      if (live_[it->second] && rows_[it->second][col] == value) {
        fn(it->second);
      }
    }
  }

  // ----- Columnar sidecar (slot-indexed, parallel to the row store). -----

  // Runtime type tag per slot. Matches sql::ValueType's numeric values.
  enum : uint8_t {
    kTagNull = 0,
    kTagInt64 = 1,
    kTagDouble = 2,
    kTagString = 3,
  };

  // Tags for `col`; maintained for every column.
  const uint8_t* tags(size_t col) const { return columns_[col].tag.data(); }

  // Raw int64 values; valid where tags()==kTagInt64. Maintained for
  // int64- and double-declared columns (a double column stores int64 values
  // verbatim so exact int-vs-int comparison semantics survive).
  const int64_t* ints(size_t col) const { return columns_[col].i64.data(); }

  // Values as double (AsDouble image); valid where the tag is numeric.
  // Maintained for double-declared columns.
  const double* doubles(size_t col) const {
    return columns_[col].f64.data();
  }

  // Pointers to the row store's strings; nullptr where the value is NULL.
  // Maintained for string-declared columns. The pointees are stable until
  // the owning slot is deleted or overwritten.
  const std::string* const* strings(size_t col) const {
    return columns_[col].str.data();
  }

 private:
  // Typed mirror of one column. Only the arrays relevant to the declared
  // column type are populated (see SyncColumn).
  struct ColumnStore {
    std::vector<uint8_t> tag;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<const std::string*> str;
  };

  uint64_t IndexKey(size_t col, const sql::Value& value) const;
  void IndexRow(size_t slot);
  void UnindexRow(size_t slot);
  void SyncColumn(size_t slot, size_t col);

  const catalog::TableSchema* schema_;
  std::vector<Row> rows_;
  std::vector<char> live_;
  std::vector<size_t> free_slots_;
  size_t num_live_ = 0;
  // One multimap per column: value-hash -> slot. Collisions are resolved by
  // re-checking the stored value.
  std::vector<std::unordered_multimap<uint64_t, size_t>> indexes_;
  std::vector<ColumnStore> columns_;
};

}  // namespace dssp::engine

#endif  // DSSP_ENGINE_TABLE_H_
