#ifndef DSSP_ENGINE_TABLE_H_
#define DSSP_ENGINE_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "engine/query_result.h"
#include "sql/value.h"

namespace dssp::engine {

// In-memory storage for one base relation. Rows live in slots; deleted slots
// go on a free list and are reused. Every column carries a hash index
// (value-hash -> slots), so equality predicates — the dominant predicate
// shape in the paper's benchmark applications — are O(matches).
class Table {
 public:
  explicit Table(const catalog::TableSchema& schema);

  // Not copyable (indexes reference slots); movable.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const catalog::TableSchema& schema() const { return *schema_; }

  // Inserts `row` (full row in schema column order). Fails on arity/type
  // mismatch or primary-key violation. Foreign keys are checked by the
  // Database (it can see the referenced tables).
  Status Insert(Row row);

  // Deletes the row in `slot` (must be live).
  void DeleteSlot(size_t slot);

  // Overwrites column `col` of the live row in `slot`. The caller must not
  // change primary-key columns (enforced by the Database layer).
  void UpdateSlot(size_t slot, size_t col, sql::Value value);

  bool IsLive(size_t slot) const { return live_[slot]; }
  const Row& RowAt(size_t slot) const { return rows_[slot]; }

  // All live slots, ascending.
  std::vector<size_t> AllSlots() const;

  // Live slots where column `col` equals `value` (via the hash index).
  std::vector<size_t> SlotsWithValue(size_t col, const sql::Value& value) const;

  // True if some live row has `value` in column `col`.
  bool ContainsValue(size_t col, const sql::Value& value) const;

  size_t num_rows() const { return num_live_; }

 private:
  uint64_t IndexKey(size_t col, const sql::Value& value) const;
  void IndexRow(size_t slot);
  void UnindexRow(size_t slot);

  const catalog::TableSchema* schema_;
  std::vector<Row> rows_;
  std::vector<char> live_;
  std::vector<size_t> free_slots_;
  size_t num_live_ = 0;
  // One multimap per column: value-hash -> slot. Collisions are resolved by
  // re-checking the stored value.
  std::vector<std::unordered_multimap<uint64_t, size_t>> indexes_;
};

}  // namespace dssp::engine

#endif  // DSSP_ENGINE_TABLE_H_
