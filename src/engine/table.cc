#include "engine/table.h"

#include "common/hash.h"

namespace dssp::engine {

Table::Table(const catalog::TableSchema& schema) : schema_(&schema) {
  indexes_.resize(schema.num_columns());
  columns_.resize(schema.num_columns());
}

uint64_t Table::IndexKey(size_t col, const sql::Value& value) const {
  return HashCombine(static_cast<uint64_t>(col), value.Hash());
}

void Table::IndexRow(size_t slot) {
  const Row& row = rows_[slot];
  for (size_t col = 0; col < row.size(); ++col) {
    indexes_[col].emplace(IndexKey(col, row[col]), slot);
  }
}

void Table::UnindexRow(size_t slot) {
  const Row& row = rows_[slot];
  for (size_t col = 0; col < row.size(); ++col) {
    auto [begin, end] = indexes_[col].equal_range(IndexKey(col, row[col]));
    for (auto it = begin; it != end; ++it) {
      if (it->second == slot) {
        indexes_[col].erase(it);
        break;
      }
    }
  }
}

void Table::SyncColumn(size_t slot, size_t col) {
  ColumnStore& cs = columns_[col];
  const catalog::ColumnType declared = schema_->columns()[col].type;
  if (cs.tag.size() <= slot) {
    const size_t n = rows_.size();
    cs.tag.resize(n, kTagNull);
    if (declared == catalog::ColumnType::kInt64 ||
        declared == catalog::ColumnType::kDouble) {
      cs.i64.resize(n, 0);
    }
    if (declared == catalog::ColumnType::kDouble) cs.f64.resize(n, 0.0);
    if (declared == catalog::ColumnType::kString) {
      cs.str.resize(n, nullptr);
    }
  }
  const sql::Value& v = rows_[slot][col];
  switch (v.type()) {
    case sql::ValueType::kNull:
      cs.tag[slot] = kTagNull;
      if (declared == catalog::ColumnType::kString) cs.str[slot] = nullptr;
      break;
    case sql::ValueType::kInt64:
      // Reaches int64-declared columns and (via ValueFitsColumn widening)
      // double-declared columns, which keep both the exact integer and its
      // double image so kernels can match Value::Compare bit-for-bit.
      cs.tag[slot] = kTagInt64;
      cs.i64[slot] = v.AsInt64();
      if (declared == catalog::ColumnType::kDouble) {
        cs.f64[slot] = v.AsDouble();
      }
      break;
    case sql::ValueType::kDouble:
      cs.tag[slot] = kTagDouble;
      cs.f64[slot] = v.AsDouble();
      break;
    case sql::ValueType::kString:
      cs.tag[slot] = kTagString;
      cs.str[slot] = &v.AsString();
      break;
  }
}

Status Table::Insert(Row row) {
  if (row.size() != schema_->num_columns()) {
    return InvalidArgumentError("row arity mismatch for table " +
                                schema_->name());
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!catalog::ValueFitsColumn(row[i].type(), schema_->columns()[i].type)) {
      return InvalidArgumentError(
          "type mismatch for " + schema_->name() + "." +
          schema_->columns()[i].name + ": got " +
          sql::ValueTypeName(row[i].type()));
    }
  }
  // Primary-key uniqueness.
  if (!schema_->primary_key().empty()) {
    const size_t pk0 =
        *schema_->ColumnIndex(schema_->primary_key()[0]);
    for (size_t slot : SlotsWithValue(pk0, row[pk0])) {
      bool all_equal = true;
      for (const std::string& pk_col : schema_->primary_key()) {
        const size_t c = *schema_->ColumnIndex(pk_col);
        if (!(rows_[slot][c] == row[c])) {
          all_equal = false;
          break;
        }
      }
      if (all_equal) {
        return ConstraintViolationError("duplicate primary key in " +
                                        schema_->name());
      }
    }
  }
  // UNIQUE-column constraints (NULLs are exempt, as in SQL).
  for (const std::string& unique : schema_->unique_columns()) {
    const size_t col = *schema_->ColumnIndex(unique);
    if (!row[col].is_null() && ContainsValue(col, row[col])) {
      return ConstraintViolationError("duplicate value for unique column " +
                                      schema_->name() + "." + unique);
    }
  }
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    rows_[slot] = std::move(row);
    live_[slot] = 1;
  } else {
    slot = rows_.size();
    rows_.push_back(std::move(row));
    live_.push_back(1);
  }
  ++num_live_;
  IndexRow(slot);
  for (size_t col = 0; col < schema_->num_columns(); ++col) {
    SyncColumn(slot, col);
  }
  return Status::Ok();
}

void Table::DeleteSlot(size_t slot) {
  DSSP_CHECK(slot < rows_.size() && live_[slot]);
  UnindexRow(slot);
  live_[slot] = 0;
  free_slots_.push_back(slot);
  --num_live_;
  // Sidecar entries of a dead slot are never read (kernels consult live()),
  // but the string pointer would dangle once the row is overwritten on slot
  // reuse — drop it eagerly.
  for (size_t col = 0; col < schema_->num_columns(); ++col) {
    if (!columns_[col].str.empty()) columns_[col].str[slot] = nullptr;
  }
}

void Table::UpdateSlot(size_t slot, size_t col, sql::Value value) {
  DSSP_CHECK(slot < rows_.size() && live_[slot]);
  DSSP_CHECK(col < schema_->num_columns());
  // Re-index just the touched column.
  auto [begin, end] =
      indexes_[col].equal_range(IndexKey(col, rows_[slot][col]));
  for (auto it = begin; it != end; ++it) {
    if (it->second == slot) {
      indexes_[col].erase(it);
      break;
    }
  }
  rows_[slot][col] = std::move(value);
  indexes_[col].emplace(IndexKey(col, rows_[slot][col]), slot);
  SyncColumn(slot, col);
}

std::vector<size_t> Table::AllSlots() const {
  std::vector<size_t> slots;
  slots.reserve(num_live_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (live_[i]) slots.push_back(i);
  }
  return slots;
}

std::vector<size_t> Table::SlotsWithValue(size_t col,
                                          const sql::Value& value) const {
  std::vector<size_t> slots;
  auto [begin, end] = indexes_[col].equal_range(IndexKey(col, value));
  for (auto it = begin; it != end; ++it) {
    if (live_[it->second] && rows_[it->second][col] == value) {
      slots.push_back(it->second);
    }
  }
  return slots;
}

bool Table::ContainsValue(size_t col, const sql::Value& value) const {
  auto [begin, end] = indexes_[col].equal_range(IndexKey(col, value));
  for (auto it = begin; it != end; ++it) {
    if (live_[it->second] && rows_[it->second][col] == value) return true;
  }
  return false;
}

}  // namespace dssp::engine
