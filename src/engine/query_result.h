#ifndef DSSP_ENGINE_QUERY_RESULT_H_
#define DSSP_ENGINE_QUERY_RESULT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/value.h"

namespace dssp::engine {

using Row = std::vector<sql::Value>;

// The materialized result of a query: the unit the DSSP caches, encrypts,
// and invalidates.
class QueryResult {
 public:
  QueryResult() = default;
  QueryResult(std::vector<std::string> column_names, std::vector<Row> rows,
              bool ordered)
      : column_names_(std::move(column_names)),
        rows_(std::move(rows)),
        ordered_(ordered) {}

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& rows() { return rows_; }

  // True if the query had an ORDER BY (row order is part of the result).
  bool ordered() const { return ordered_; }

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return column_names_.size(); }
  bool empty() const { return rows_.empty(); }

  // Result equality per the paper's correctness definition Q[D] = Q[D+U]:
  // sequence equality for ordered results, multiset equality otherwise.
  bool SameResult(const QueryResult& other) const;

  // Deterministic digest consistent with SameResult.
  uint64_t Fingerprint() const;

  // Serialized form (what gets encrypted and shipped over the simulated
  // network). Approximately proportional to real wire size.
  std::string Serialize() const;

  // Inverse of Serialize. Returns an error on malformed input.
  static StatusOr<QueryResult> Deserialize(std::string_view data);

  // Approximate wire size in bytes.
  size_t ByteSize() const { return Serialize().size(); }

  // Human-readable table for examples/demos.
  std::string ToDebugString(size_t max_rows = 20) const;

 private:
  std::vector<std::string> column_names_;
  std::vector<Row> rows_;
  bool ordered_ = false;
};

}  // namespace dssp::engine

#endif  // DSSP_ENGINE_QUERY_RESULT_H_
