#include "engine/batch.h"

#include "catalog/schema.h"
#include "common/macros.h"

namespace dssp::engine {
namespace {

// Compacts `sel` in place, keeping slots for which keep(slot) is true.
// Preserves relative order (the bit-identical-results invariant).
template <typename Keep>
void Compact(SelectionVector* sel, Keep keep) {
  uint32_t* out = sel->data();
  for (const uint32_t s : *sel) {
    if (keep(s)) *out++ = s;
  }
  sel->resize(static_cast<size_t>(out - sel->data()));
}

// Fills `sel` with the live slots for which keep(slot) is true, ascending.
// keep() is only evaluated for live slots — dead slots may hold stale
// column data (dangling string pointers included).
template <typename Keep>
void FillLive(const Table& table, SelectionVector* sel, Keep keep) {
  sel->reserve(table.num_rows());
  const char* live = table.live();
  const size_t n = table.slot_count();
  for (size_t s = 0; s < n; ++s) {
    const uint32_t u = static_cast<uint32_t>(s);
    if (live[s] && keep(u)) sel->push_back(u);
  }
}

// Instantiates `body` with a concrete comparator for `op`, so the per-row
// loop compiles to a direct comparison instead of switching per row.
//
// The comparators are phrased in terms of < and > only, exactly as
// sql::Value::Compare derives its three-way result — so even double NaN
// (where Compare yields 0, i.e. "equal") produces identical outcomes.
template <typename Body>
void WithComparator(sql::CompareOp op, Body body) {
  switch (op) {
    case sql::CompareOp::kEq:
      body([](const auto& a, const auto& b) { return !(a < b) && !(a > b); });
      return;
    case sql::CompareOp::kLt:
      body([](const auto& a, const auto& b) { return a < b; });
      return;
    case sql::CompareOp::kLe:
      body([](const auto& a, const auto& b) { return !(a > b); });
      return;
    case sql::CompareOp::kGt:
      body([](const auto& a, const auto& b) { return a > b; });
      return;
    case sql::CompareOp::kGe:
      body([](const auto& a, const auto& b) { return !(a < b); });
      return;
  }
  DSSP_UNREACHABLE("bad CompareOp");
}

}  // namespace

void SelectLiveSlots(const Table& table, SelectionVector* sel) {
  sel->clear();
  sel->reserve(table.num_rows());
  const char* live = table.live();
  const size_t n = table.slot_count();
  for (size_t s = 0; s < n; ++s) {
    if (live[s]) sel->push_back(static_cast<uint32_t>(s));
  }
}

namespace {

// Typed dispatch for `table.col <op> rhs`: resolves (declared layout,
// rhs type, op) to one tight predicate and hands it to `apply`, which
// either compacts an existing selection or fills one from the live slots.
// The caller has already handled a NULL rhs (false for every row).
template <typename Apply>
void DispatchColumnVsValue(const Table& table, size_t col, sql::CompareOp op,
                           const sql::Value& rhs, Apply apply) {
  const catalog::ColumnType declared = table.schema().columns()[col].type;
  const uint8_t* tag = table.tags(col);
  switch (declared) {
    case catalog::ColumnType::kInt64: {
      const int64_t* vals = table.ints(col);
      if (rhs.type() == sql::ValueType::kInt64) {
        const int64_t r = rhs.AsInt64();
        WithComparator(op, [&](auto cmp) {
          apply([&](uint32_t s) {
            return tag[s] == Table::kTagInt64 && cmp(vals[s], r);
          });
        });
      } else {
        DSSP_CHECK(rhs.type() == sql::ValueType::kDouble);
        const double r = rhs.AsDouble();
        WithComparator(op, [&](auto cmp) {
          apply([&](uint32_t s) {
            return tag[s] == Table::kTagInt64 &&
                   cmp(static_cast<double>(vals[s]), r);
          });
        });
      }
      return;
    }
    case catalog::ColumnType::kDouble: {
      // A double-declared column may hold exact int64 values
      // (catalog::ValueFitsColumn widening); int-vs-int must compare
      // exactly, everything else through the double image — the same rules
      // as sql::Value::Compare.
      const int64_t* iv = table.ints(col);
      const double* dv = table.doubles(col);
      if (rhs.type() == sql::ValueType::kInt64) {
        const int64_t ri = rhs.AsInt64();
        const double rd = rhs.AsDouble();
        WithComparator(op, [&](auto cmp) {
          apply([&](uint32_t s) {
            if (tag[s] == Table::kTagInt64) return cmp(iv[s], ri);
            if (tag[s] == Table::kTagDouble) return cmp(dv[s], rd);
            return false;
          });
        });
      } else {
        DSSP_CHECK(rhs.type() == sql::ValueType::kDouble);
        const double r = rhs.AsDouble();
        WithComparator(op, [&](auto cmp) {
          apply([&](uint32_t s) {
            return tag[s] != Table::kTagNull && cmp(dv[s], r);
          });
        });
      }
      return;
    }
    case catalog::ColumnType::kString: {
      DSSP_CHECK(rhs.type() == sql::ValueType::kString);
      const std::string& r = rhs.AsString();
      const std::string* const* sv = table.strings(col);
      WithComparator(op, [&](auto cmp) {
        apply([&](uint32_t s) { return sv[s] != nullptr && cmp(*sv[s], r); });
      });
      return;
    }
  }
  DSSP_UNREACHABLE("bad ColumnType");
}

// Same dispatch for `table.lhs_col <op> table.rhs_col`.
template <typename Apply>
void DispatchColumnVsColumn(const Table& table, size_t lhs_col,
                            sql::CompareOp op, size_t rhs_col, Apply apply) {
  const catalog::ColumnType ldecl = table.schema().columns()[lhs_col].type;
  const catalog::ColumnType rdecl = table.schema().columns()[rhs_col].type;
  const bool lhs_string = ldecl == catalog::ColumnType::kString;
  const bool rhs_string = rdecl == catalog::ColumnType::kString;
  DSSP_CHECK(lhs_string == rhs_string);
  if (lhs_string) {
    const std::string* const* ls = table.strings(lhs_col);
    const std::string* const* rs = table.strings(rhs_col);
    WithComparator(op, [&](auto cmp) {
      apply([&](uint32_t s) {
        return ls[s] != nullptr && rs[s] != nullptr && cmp(*ls[s], *rs[s]);
      });
    });
    return;
  }
  const uint8_t* lt = table.tags(lhs_col);
  const uint8_t* rt = table.tags(rhs_col);
  const int64_t* li = table.ints(lhs_col);
  const int64_t* ri = table.ints(rhs_col);
  // doubles() of an int64-declared column is empty/nullptr; it is only read
  // when the tag says kTagDouble, which only double-declared columns emit.
  const double* lf = table.doubles(lhs_col);
  const double* rf = table.doubles(rhs_col);
  WithComparator(op, [&](auto cmp) {
    apply([&](uint32_t s) {
      if (lt[s] == Table::kTagNull || rt[s] == Table::kTagNull) return false;
      if (lt[s] == Table::kTagInt64 && rt[s] == Table::kTagInt64) {
        return cmp(li[s], ri[s]);
      }
      const double a =
          lt[s] == Table::kTagInt64 ? static_cast<double>(li[s]) : lf[s];
      const double b =
          rt[s] == Table::kTagInt64 ? static_cast<double>(ri[s]) : rf[s];
      return cmp(a, b);
    });
  });
}

}  // namespace

void FilterColumnVsValue(const Table& table, size_t col, sql::CompareOp op,
                         const sql::Value& rhs, SelectionVector* sel) {
  if (rhs.is_null()) {
    // NULL on either side of a comparison is false for every row.
    sel->clear();
    return;
  }
  DispatchColumnVsValue(table, col, op, rhs,
                        [&](auto pred) { Compact(sel, pred); });
}

void FilterColumnVsColumn(const Table& table, size_t lhs_col,
                          sql::CompareOp op, size_t rhs_col,
                          SelectionVector* sel) {
  DispatchColumnVsColumn(table, lhs_col, op, rhs_col,
                         [&](auto pred) { Compact(sel, pred); });
}

void SelectLiveWhereColumnVsValue(const Table& table, size_t col,
                                  sql::CompareOp op, const sql::Value& rhs,
                                  SelectionVector* sel) {
  sel->clear();
  if (rhs.is_null()) return;
  DispatchColumnVsValue(table, col, op, rhs,
                        [&](auto pred) { FillLive(table, sel, pred); });
}

void SelectLiveWhereColumnVsColumn(const Table& table, size_t lhs_col,
                                   sql::CompareOp op, size_t rhs_col,
                                   SelectionVector* sel) {
  sel->clear();
  DispatchColumnVsColumn(table, lhs_col, op, rhs_col,
                         [&](auto pred) { FillLive(table, sel, pred); });
}

}  // namespace dssp::engine
