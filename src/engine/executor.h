#ifndef DSSP_ENGINE_EXECUTOR_H_
#define DSSP_ENGINE_EXECUTOR_H_

#include "common/status.h"
#include "engine/query_result.h"
#include "sql/ast.h"

namespace dssp::engine {

class Database;

// Executes a fully-bound (parameter-free) SELECT statement against `db`.
//
// Supported: select-project-join with conjunctive comparison predicates
// (equality joins use hash indexes; inequality joins fall back to nested
// loops), ORDER BY, LIMIT (top-k), aggregates MIN/MAX/COUNT/SUM/AVG and
// GROUP BY. Multiset semantics: projection does not eliminate duplicates.
//
// Comparison semantics: a comparison involving a NULL evaluates to false.
StatusOr<QueryResult> ExecuteSelect(const Database& db,
                                    const sql::SelectStatement& stmt);

}  // namespace dssp::engine

#endif  // DSSP_ENGINE_EXECUTOR_H_
