#ifndef DSSP_ENGINE_EVAL_H_
#define DSSP_ENGINE_EVAL_H_

#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "engine/query_result.h"
#include "sql/ast.h"

namespace dssp::engine {

// Evaluates `lhs op rhs`. Any comparison involving NULL is false. Numeric
// types compare numerically; strings lexicographically. DSSP_CHECKs on
// incomparable types (the binder rejects those before execution).
bool CompareValues(const sql::Value& lhs, sql::CompareOp op,
                   const sql::Value& rhs);

// Evaluates a conjunctive predicate against one row of a single table.
// Column references must resolve to columns of `schema` (qualification, if
// present, must match the table name or `alias`); operands must be columns
// or literals (no parameters). Used by DELETE/UPDATE execution and by the
// view-inspection invalidation strategy.
StatusOr<bool> EvalPredicateOnRow(const catalog::TableSchema& schema,
                                  const std::vector<sql::Comparison>& where,
                                  const Row& row,
                                  std::string_view alias = "");

}  // namespace dssp::engine

#endif  // DSSP_ENGINE_EVAL_H_
