#ifndef DSSP_ENGINE_EVAL_H_
#define DSSP_ENGINE_EVAL_H_

#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "engine/query_result.h"
#include "sql/ast.h"

namespace dssp::engine {

// Evaluates `lhs op rhs`. Any comparison involving NULL is false. Numeric
// types compare numerically; strings lexicographically. DSSP_CHECKs on
// incomparable types (the binder rejects those before execution).
bool CompareValues(const sql::Value& lhs, sql::CompareOp op,
                   const sql::Value& rhs);

// Evaluates a conjunctive predicate against one row of a single table.
// Column references must resolve to columns of `schema` (qualification, if
// present, must match the table name or `alias`); operands must be columns
// or literals (no parameters). Used by DELETE/UPDATE execution and by the
// view-inspection invalidation strategy.
StatusOr<bool> EvalPredicateOnRow(const catalog::TableSchema& schema,
                                  const std::vector<sql::Comparison>& where,
                                  const Row& row,
                                  std::string_view alias = "");

// A single-table conjunctive predicate bound once and evaluated many times:
// column names resolve to indices and comparability is pre-classified at
// Bind, so Matches() does no name lookups and constructs no sql::Value —
// the row×conjunct work EvalPredicateOnRow redoes per call.
//
// Bind never fails. Errors (unresolvable columns, unbound parameters,
// statically incomparable operand types) are deferred and surface from
// Matches() at exactly the point the per-row evaluator would raise them:
// a conjunct that fails before the broken one hides the error (the row
// simply doesn't match), and an incomparable conjunct whose operands are
// NULL at runtime is false, not an error — bit-identical to
// EvalPredicateOnRow on every (predicate, row) input.
class BoundPredicate {
 public:
  static BoundPredicate Bind(const catalog::TableSchema& schema,
                             const std::vector<sql::Comparison>& where,
                             std::string_view alias = "");

  // Evaluates the conjunction against `row` (which must conform to the
  // schema passed to Bind).
  StatusOr<bool> Matches(const Row& row) const;

 private:
  struct Conjunct {
    // Deferred resolution error: raised when evaluation reaches this
    // conjunct (all earlier conjuncts matched).
    bool error = false;
    Status status = Status::Ok();
    // Statically incomparable operand classes: an error only when both
    // runtime values are non-null (NULL comparisons are simply false).
    bool incomparable = false;
    bool lhs_is_col = false;
    bool rhs_is_col = false;
    size_t lhs_col = 0;
    size_t rhs_col = 0;
    sql::Value lhs_lit;
    sql::Value rhs_lit;
    sql::CompareOp op = sql::CompareOp::kEq;
  };

  std::vector<Conjunct> conjuncts_;
};

}  // namespace dssp::engine

#endif  // DSSP_ENGINE_EVAL_H_
