#ifndef DSSP_ENGINE_PROGRAM_H_
#define DSSP_ENGINE_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "engine/query_result.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace dssp::engine {

class Database;

// A SELECT template compiled once — at RegisterApp / AddQueryTemplate time —
// into a direct-coordinate op sequence: the index-probe vs full-scan choice,
// pre-resolved (slot, column) coordinates, typed filter kernels over the
// Table's columnar sidecar (engine/batch.h), hash-join build/probe plans,
// the projection map, and the aggregate / ORDER BY / LIMIT tail. Execution
// binds parameters into value slots and runs the ops with zero name
// resolution, zero AST walking, and no per-row sql::Value materialization on
// the filter path.
//
// Contract: for every parameter binding, Execute() is bit-identical to
// ExecuteSelect(db, BindParameters(stmt, params)) — same rows in the same
// order (including hash-join and aggregate iteration order and ORDER BY tie
// order), same column names, same ordered flag, and the same error text for
// the runtime failures that survive compilation (parameter type mismatches,
// invalid LIMIT bindings). The row-at-a-time interpreter stays authoritative:
// anything Compile() rejects falls back to it, and tests/engine_program_test
// holds the two in randomized differential lockstep.
class QueryProgram {
 public:
  // Compiles `stmt` (which may contain `?` parameters) against `catalog`.
  // Needs no populated database, so static analysis (tools/dssp_audit) can
  // verify a template compiles without instantiating the application.
  // Returns the same error ExecuteSelect would for statements the engine
  // cannot execute (unknown tables/columns, incomparable literal types,
  // aggregate-shape violations, ...).
  static StatusOr<QueryProgram> Compile(const catalog::Catalog& catalog,
                                        const sql::SelectStatement& stmt);

  // Executes against `db` (built from the catalog the program was compiled
  // with) binding `params` positionally. `params.size()` must equal
  // num_params().
  StatusOr<QueryResult> Execute(const Database& db,
                                const std::vector<sql::Value>& params) const;

  int num_params() const { return num_params_; }

  // True if any FROM slot is accessed by full scan (no equality index
  // probe) — the "scan-heavy" class the vectorized kernels accelerate most.
  bool uses_full_scan() const;

  // Number of FROM slots (tables joined).
  size_t num_slots() const { return slots_.size(); }

 private:
  // (FROM slot, column index) — a name resolved at compile time.
  struct Coord {
    uint32_t slot = 0;
    uint32_t col = 0;
  };

  // A runtime value: a literal baked into the program or a parameter bound
  // per execution.
  struct ValueRef {
    bool is_param = false;
    int param_index = 0;
    sql::Value literal;

    const sql::Value& Get(const std::vector<sql::Value>& params) const {
      return is_param ? params[static_cast<size_t>(param_index)] : literal;
    }
  };

  // An operand of a residual (join) comparison.
  struct OperandCode {
    bool is_column = false;
    Coord coord;
    ValueRef value;
  };

  // A comparison evaluated per joined tuple (in WHERE conjunct order).
  struct Residual {
    OperandCode lhs;
    sql::CompareOp op;
    OperandCode rhs;
  };

  // A single-table filter, pre-normalized so the column is on the left
  // (op reversed when the source conjunct had it on the right); executed as
  // a typed kernel over the selection vector.
  struct Filter {
    bool col_vs_col = false;
    uint32_t col = 0;
    sql::CompareOp op = sql::CompareOp::kEq;
    ValueRef value;     // !col_vs_col
    uint32_t rhs_col = 0;  // col_vs_col
  };

  // Access + join plan for one FROM slot.
  struct SlotPlan {
    std::string table_name;
    bool probe = false;  // Equality index probe vs full scan.
    uint32_t probe_col = 0;
    ValueRef probe_value;
    std::vector<Filter> filters;  // Remaining single-table conjuncts.
    // Join with the already-built tuple set (slots >= 1 only).
    bool hash_join = false;
    uint32_t build_col = 0;  // Join column in this slot.
    Coord probe_coord;       // Join column in an earlier slot.
    // Conjuncts that become evaluable at this stage, original order
    // (includes the hash-join equi conjunct: re-checked per match, exactly
    // like the interpreter does on hash collisions).
    std::vector<Residual> residuals;
  };

  // A conjunct with no column operands: evaluated once per execution.
  struct ConstantConjunct {
    ValueRef lhs;
    sql::CompareOp op;
    ValueRef rhs;
  };

  // Comparability check deferred to Execute because at least one side is a
  // parameter (type class unknown at compile time). Checked in original
  // conjunct order, mirroring the interpreter's BindWhere pass.
  struct DeferredTypeCheck {
    // Type class: 0 numeric, 1 string, -1 NULL; kFromParam means "class of
    // the bound parameter".
    static constexpr int kFromParam = -2;
    int lhs_class = 0;
    int lhs_param = 0;
    int rhs_class = 0;
    int rhs_param = 0;
  };

  // One output column of the aggregate tail.
  struct AggItem {
    sql::AggregateFunc func = sql::AggregateFunc::kNone;
    bool star = false;
    bool has_col = false;
    Coord coord;          // Aggregate argument (when has_col).
    int group_index = -1;  // For non-aggregate (group key) items.
  };

  class Compiler;  // Implements Compile(); mirrors the interpreter's binder.

  StatusOr<QueryResult> ExecuteImpl(
      const Database& db, const std::vector<sql::Value>& params) const;

  // --- Program (immutable after Compile). ---
  int num_params_ = 0;
  std::vector<SlotPlan> slots_;
  std::vector<ConstantConjunct> constants_;
  std::vector<DeferredTypeCheck> deferred_checks_;
  // LIMIT: resolved at compile for literals; params re-validated per run.
  bool has_limit_ = false;
  ValueRef limit_;
  // Non-aggregate tail.
  std::vector<Coord> out_cols_;
  std::vector<std::string> out_names_;
  // Aggregate tail (aggregate_ selects which tail runs).
  bool aggregate_ = false;
  std::vector<Coord> group_cols_;
  std::vector<AggItem> agg_items_;
  // ORDER BY: coordinates for the non-aggregate path, output-column indices
  // for the aggregate path.
  std::vector<std::pair<Coord, bool>> order_coords_;
  std::vector<std::pair<size_t, bool>> order_keys_;
  bool ordered_ = false;
};

}  // namespace dssp::engine

#endif  // DSSP_ENGINE_PROGRAM_H_
