#include "engine/program.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>
#include <utility>

#include "engine/batch.h"
#include "engine/database.h"
#include "engine/eval.h"

namespace dssp::engine {

namespace {

// Type class for comparability checking, as the interpreter's binder uses
// it: 0 = numeric, 1 = string, -1 = NULL literal (comparisons with NULL are
// simply false, so NULL is compatible with everything).
int ValueTypeClass(const sql::Value& v) {
  if (v.is_null()) return -1;
  return v.is_numeric() ? 0 : 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// Compilation. The Compiler mirrors SelectExecution's binder pass for pass —
// same checks in the same order with the same error text — but resolves every
// name against the catalog alone and emits direct-coordinate ops instead of
// interpreting. Anything it rejects would be rejected (or cannot be planned)
// identically by the interpreter, which remains the fallback.
// ---------------------------------------------------------------------------

class QueryProgram::Compiler {
 public:
  Compiler(const catalog::Catalog& catalog, const sql::SelectStatement& stmt)
      : catalog_(catalog), stmt_(stmt) {}

  StatusOr<QueryProgram> Run() {
    DSSP_RETURN_IF_ERROR(BindFrom());
    DSSP_RETURN_IF_ERROR(BindWhere());
    DSSP_RETURN_IF_ERROR(ResolveLimit());
    PlanAccess();
    if (stmt_.has_aggregate() || !stmt_.group_by.empty()) {
      prog_.aggregate_ = true;
      DSSP_RETURN_IF_ERROR(CompileAggregateTail());
    } else {
      DSSP_RETURN_IF_ERROR(CompileProjectTail());
    }
    prog_.ordered_ = !stmt_.order_by.empty();
    prog_.num_params_ = max_param_ + 1;
    return std::move(prog_);
  }

 private:
  // A compile-time operand: resolved column coordinate, or literal/param.
  struct BoundOp {
    bool is_column = false;
    Coord coord;
    ValueRef value;
  };

  struct BoundConj {
    BoundOp lhs;
    sql::CompareOp op = sql::CompareOp::kEq;
    BoundOp rhs;
    std::vector<size_t> slots;  // Sorted unique FROM slots referenced.
    bool applied = false;
  };

  StatusOr<Coord> BindColumn(const sql::ColumnRef& ref) const {
    if (!ref.table.empty()) {
      for (size_t s = 0; s < schemas_.size(); ++s) {
        if (stmt_.from[s].effective_name() == ref.table) {
          const std::optional<size_t> col = schemas_[s]->ColumnIndex(ref.column);
          if (!col.has_value()) {
            return NotFoundError("column " + ref.ToString());
          }
          return Coord{static_cast<uint32_t>(s), static_cast<uint32_t>(*col)};
        }
      }
      return NotFoundError("table " + ref.table + " in FROM clause");
    }
    std::optional<Coord> found;
    for (size_t s = 0; s < schemas_.size(); ++s) {
      const std::optional<size_t> col = schemas_[s]->ColumnIndex(ref.column);
      if (col.has_value()) {
        if (found.has_value()) {
          return InvalidArgumentError("ambiguous column " + ref.column);
        }
        found = Coord{static_cast<uint32_t>(s), static_cast<uint32_t>(*col)};
      }
    }
    if (!found.has_value()) return NotFoundError("column " + ref.column);
    return *found;
  }

  Status BindFrom() {
    if (stmt_.from.empty()) {
      return InvalidArgumentError("empty FROM clause");
    }
    std::set<std::string> names;
    for (const sql::TableRef& ref : stmt_.from) {
      const catalog::TableSchema* schema = catalog_.FindTable(ref.table);
      if (schema == nullptr) return NotFoundError("table " + ref.table);
      if (!names.insert(ref.effective_name()).second) {
        return InvalidArgumentError("duplicate FROM name " +
                                    ref.effective_name());
      }
      schemas_.push_back(schema);
      SlotPlan plan;
      plan.table_name = ref.table;
      prog_.slots_.push_back(std::move(plan));
    }
    return Status::Ok();
  }

  StatusOr<BoundOp> BindOperand(const sql::Operand& op) {
    BoundOp bound;
    if (sql::IsLiteral(op)) {
      bound.value.literal = std::get<sql::Value>(op);
      return bound;
    }
    if (sql::IsParameter(op)) {
      bound.value.is_param = true;
      bound.value.param_index = std::get<sql::Parameter>(op).index;
      max_param_ = std::max(max_param_, bound.value.param_index);
      return bound;
    }
    bound.is_column = true;
    DSSP_ASSIGN_OR_RETURN(bound.coord,
                          BindColumn(std::get<sql::ColumnRef>(op)));
    return bound;
  }

  // Compile-time type class; DeferredTypeCheck::kFromParam for parameters.
  int OperandTypeClass(const BoundOp& op) const {
    if (op.is_column) {
      const catalog::ColumnType type =
          schemas_[op.coord.slot]->columns()[op.coord.col].type;
      return type == catalog::ColumnType::kString ? 1 : 0;
    }
    if (op.value.is_param) return DeferredTypeCheck::kFromParam;
    return ValueTypeClass(op.value.literal);
  }

  Status BindWhere() {
    for (const sql::Comparison& cmp : stmt_.where) {
      BoundConj bound;
      DSSP_ASSIGN_OR_RETURN(bound.lhs, BindOperand(cmp.lhs));
      DSSP_ASSIGN_OR_RETURN(bound.rhs, BindOperand(cmp.rhs));
      bound.op = cmp.op;
      const int lhs_type = OperandTypeClass(bound.lhs);
      const int rhs_type = OperandTypeClass(bound.rhs);
      if (lhs_type == DeferredTypeCheck::kFromParam ||
          rhs_type == DeferredTypeCheck::kFromParam) {
        // At least one side's class is known only once parameters are
        // bound; re-check per execution, in conjunct order, exactly where
        // the interpreter's BindWhere would.
        DeferredTypeCheck check;
        check.lhs_class = lhs_type;
        check.lhs_param = bound.lhs.value.param_index;
        check.rhs_class = rhs_type;
        check.rhs_param = bound.rhs.value.param_index;
        prog_.deferred_checks_.push_back(check);
      } else if (lhs_type >= 0 && rhs_type >= 0 && lhs_type != rhs_type) {
        return InvalidArgumentError("incomparable types in predicate");
      }
      if (bound.lhs.is_column) bound.slots.push_back(bound.lhs.coord.slot);
      if (bound.rhs.is_column) bound.slots.push_back(bound.rhs.coord.slot);
      std::sort(bound.slots.begin(), bound.slots.end());
      bound.slots.erase(std::unique(bound.slots.begin(), bound.slots.end()),
                        bound.slots.end());
      where_.push_back(std::move(bound));
    }
    return Status::Ok();
  }

  Status ResolveLimit() {
    if (!stmt_.limit.has_value()) return Status::Ok();
    prog_.has_limit_ = true;
    if (sql::IsParameter(*stmt_.limit)) {
      prog_.limit_.is_param = true;
      prog_.limit_.param_index = std::get<sql::Parameter>(*stmt_.limit).index;
      max_param_ = std::max(max_param_, prog_.limit_.param_index);
      return Status::Ok();  // Value validated per execution.
    }
    if (!sql::IsLiteral(*stmt_.limit)) {
      return InvalidArgumentError("unbound LIMIT parameter");
    }
    const sql::Value& v = std::get<sql::Value>(*stmt_.limit);
    if (v.type() != sql::ValueType::kInt64 || v.AsInt64() < 0) {
      return InvalidArgumentError("LIMIT must be a non-negative integer");
    }
    prog_.limit_.literal = v;
    return Status::Ok();
  }

  OperandCode MakeOperandCode(const BoundOp& op) const {
    OperandCode code;
    code.is_column = op.is_column;
    code.coord = op.coord;
    code.value = op.value;
    return code;
  }

  // The compile-time twin of SelectExecution::SingleTableCandidates: picks
  // the index probe (first unapplied `col = value` equality on slot `s`, in
  // conjunct order) and turns the remaining single-table conjuncts into
  // typed filter kernels, consuming them in the same order.
  void PlanSlotAccess(size_t s) {
    SlotPlan& plan = prog_.slots_[s];
    const std::vector<size_t> only_s{s};
    const BoundConj* probe = nullptr;
    for (const BoundConj& c : where_) {
      if (c.applied || c.slots != only_s) continue;
      if (c.op != sql::CompareOp::kEq) continue;
      if (c.lhs.is_column != c.rhs.is_column) {
        probe = &c;
        break;
      }
    }
    if (probe != nullptr) {
      const BoundOp& col = probe->lhs.is_column ? probe->lhs : probe->rhs;
      const BoundOp& val = probe->lhs.is_column ? probe->rhs : probe->lhs;
      plan.probe = true;
      plan.probe_col = col.coord.col;
      plan.probe_value = val.value;
    }
    for (BoundConj& c : where_) {
      if (c.applied || c.slots != only_s) continue;
      c.applied = true;
      if (&c == probe) continue;
      Filter f;
      if (c.lhs.is_column && c.rhs.is_column) {
        f.col_vs_col = true;
        f.col = c.lhs.coord.col;
        f.op = c.op;
        f.rhs_col = c.rhs.coord.col;
      } else if (c.lhs.is_column) {
        f.col = c.lhs.coord.col;
        f.op = c.op;
        f.value = c.rhs.value;
      } else {
        // value <op> column: normalize to column-on-the-left by flipping
        // the operator (semantics identical, incl. NULL-is-false).
        f.col = c.rhs.coord.col;
        f.op = sql::ReverseCompareOp(c.op);
        f.value = c.lhs.value;
      }
      plan.filters.push_back(std::move(f));
    }
  }

  // Mirrors SelectExecution::Join's planning decisions: constant conjuncts
  // first, then per-stage access + the applicable/equi-join selection.
  void PlanAccess() {
    for (BoundConj& c : where_) {
      if (c.slots.empty()) {
        c.applied = true;
        prog_.constants_.push_back(
            ConstantConjunct{c.lhs.value, c.op, c.rhs.value});
      }
    }
    PlanSlotAccess(0);
    for (size_t s = 1; s < prog_.slots_.size(); ++s) {
      PlanSlotAccess(s);
      SlotPlan& plan = prog_.slots_[s];
      bool have_equi = false;
      for (BoundConj& c : where_) {
        if (c.applied) continue;
        bool ready = true;
        bool uses_s = false;
        for (size_t slot : c.slots) {
          if (slot > s) ready = false;
          if (slot == s) uses_s = true;
        }
        if (!ready || !uses_s) continue;
        plan.residuals.push_back(
            Residual{MakeOperandCode(c.lhs), c.op, MakeOperandCode(c.rhs)});
        c.applied = true;
        if (!have_equi && c.op == sql::CompareOp::kEq && c.lhs.is_column &&
            c.rhs.is_column &&
            (c.lhs.coord.slot == s) != (c.rhs.coord.slot == s)) {
          have_equi = true;
          const BoundOp& s_col = c.lhs.coord.slot == s ? c.lhs : c.rhs;
          const BoundOp& other = c.lhs.coord.slot == s ? c.rhs : c.lhs;
          plan.hash_join = true;
          plan.build_col = s_col.coord.col;
          plan.probe_coord = other.coord;
        }
      }
    }
  }

  std::string OutputName(const sql::SelectItem& item) const {
    if (item.func != sql::AggregateFunc::kNone) {
      std::string name = sql::AggregateFuncName(item.func);
      name += "(";
      name += item.star ? "*" : item.column.ToString();
      name += ")";
      return name;
    }
    return item.column.ToString();
  }

  Status CompileProjectTail() {
    for (const sql::SelectItem& item : stmt_.items) {
      if (item.star) {
        for (size_t s = 0; s < schemas_.size(); ++s) {
          for (size_t c = 0; c < schemas_[s]->num_columns(); ++c) {
            prog_.out_cols_.push_back(
                Coord{static_cast<uint32_t>(s), static_cast<uint32_t>(c)});
            prog_.out_names_.push_back(stmt_.from[s].effective_name() + "." +
                                       schemas_[s]->columns()[c].name);
          }
        }
      } else {
        DSSP_ASSIGN_OR_RETURN(Coord col, BindColumn(item.column));
        prog_.out_cols_.push_back(col);
        prog_.out_names_.push_back(OutputName(item));
      }
    }
    for (const sql::OrderByItem& item : stmt_.order_by) {
      DSSP_ASSIGN_OR_RETURN(Coord col, BindColumn(item.column));
      prog_.order_coords_.emplace_back(col, item.descending);
    }
    return Status::Ok();
  }

  Status CompileAggregateTail() {
    for (const sql::ColumnRef& ref : stmt_.group_by) {
      DSSP_ASSIGN_OR_RETURN(Coord col, BindColumn(ref));
      prog_.group_cols_.push_back(col);
    }
    for (const sql::SelectItem& item : stmt_.items) {
      AggItem out;
      out.func = item.func;
      out.star = item.star;
      if (item.func == sql::AggregateFunc::kNone) {
        if (item.star) {
          return InvalidArgumentError("SELECT * cannot mix with aggregates");
        }
        DSSP_ASSIGN_OR_RETURN(Coord col, BindColumn(item.column));
        bool found = false;
        for (size_t g = 0; g < prog_.group_cols_.size(); ++g) {
          if (prog_.group_cols_[g].slot == col.slot &&
              prog_.group_cols_[g].col == col.col) {
            out.group_index = static_cast<int>(g);
            found = true;
            break;
          }
        }
        if (!found) {
          return InvalidArgumentError("non-aggregated column " +
                                      item.column.ToString() +
                                      " not in GROUP BY");
        }
      } else if (!item.star) {
        DSSP_ASSIGN_OR_RETURN(Coord col, BindColumn(item.column));
        out.has_col = true;
        out.coord = col;
      }
      prog_.agg_items_.push_back(out);
      prog_.out_names_.push_back(OutputName(item));
    }
    for (const sql::OrderByItem& item : stmt_.order_by) {
      DSSP_ASSIGN_OR_RETURN(Coord col, BindColumn(item.column));
      bool found = false;
      for (size_t g = 0; g < prog_.group_cols_.size(); ++g) {
        if (prog_.group_cols_[g].slot == col.slot &&
            prog_.group_cols_[g].col == col.col) {
          for (size_t o = 0; o < prog_.agg_items_.size(); ++o) {
            if (prog_.agg_items_[o].group_index == static_cast<int>(g)) {
              prog_.order_keys_.emplace_back(o, item.descending);
              found = true;
              break;
            }
          }
          break;
        }
      }
      if (!found) {
        return InvalidArgumentError(
            "ORDER BY on aggregate query must use projected GROUP BY "
            "columns");
      }
    }
    return Status::Ok();
  }

  const catalog::Catalog& catalog_;
  const sql::SelectStatement& stmt_;
  std::vector<const catalog::TableSchema*> schemas_;
  std::vector<BoundConj> where_;
  QueryProgram prog_;
  int max_param_ = -1;
};

StatusOr<QueryProgram> QueryProgram::Compile(const catalog::Catalog& catalog,
                                             const sql::SelectStatement& stmt) {
  Compiler compiler(catalog, stmt);
  return compiler.Run();
}

bool QueryProgram::uses_full_scan() const {
  for (const SlotPlan& plan : slots_) {
    if (!plan.probe) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

StatusOr<QueryResult> QueryProgram::Execute(
    const Database& db, const std::vector<sql::Value>& params) const {
  DSSP_CHECK(params.size() == static_cast<size_t>(num_params_));
  return ExecuteImpl(db, params);
}

StatusOr<QueryResult> QueryProgram::ExecuteImpl(
    const Database& db, const std::vector<sql::Value>& params) const {
  // Resolve the (stable) Table objects for this database.
  std::vector<const Table*> tables;
  tables.reserve(slots_.size());
  for (const SlotPlan& plan : slots_) {
    const Table* table = db.FindTable(plan.table_name);
    if (table == nullptr) return NotFoundError("table " + plan.table_name);
    tables.push_back(table);
  }

  // Parameter type-class checks the compiler had to defer, in original
  // conjunct order (the interpreter's BindWhere order).
  for (const DeferredTypeCheck& check : deferred_checks_) {
    const int lhs = check.lhs_class == DeferredTypeCheck::kFromParam
                        ? ValueTypeClass(params[static_cast<size_t>(
                              check.lhs_param)])
                        : check.lhs_class;
    const int rhs = check.rhs_class == DeferredTypeCheck::kFromParam
                        ? ValueTypeClass(params[static_cast<size_t>(
                              check.rhs_param)])
                        : check.rhs_class;
    if (lhs >= 0 && rhs >= 0 && lhs != rhs) {
      return InvalidArgumentError("incomparable types in predicate");
    }
  }

  // LIMIT (parameter-bound limits re-validated per run, like ResolveLimit).
  std::optional<size_t> limit;
  if (has_limit_) {
    const sql::Value& v = limit_.Get(params);
    if (v.type() != sql::ValueType::kInt64 || v.AsInt64() < 0) {
      return InvalidArgumentError("LIMIT must be a non-negative integer");
    }
    limit = static_cast<size_t>(v.AsInt64());
  }

  // Constant conjuncts: any false one empties the tuple set (but the
  // projection/aggregate tail still runs — a global aggregate over empty
  // input yields one row).
  bool constants_pass = true;
  for (const ConstantConjunct& c : constants_) {
    if (!CompareValues(c.lhs.Get(params), c.op, c.rhs.Get(params))) {
      constants_pass = false;
      break;
    }
  }

  const size_t width = slots_.size();
  // Joined tuples, row-major (width entries per tuple). Unjoined slots hold
  // 0, exactly like the interpreter's prefix tuples.
  std::vector<uint32_t> tuples;

  const auto slot_candidates = [&](size_t s, SelectionVector* sel) {
    const SlotPlan& plan = slots_[s];
    const Table& table = *tables[s];
    sel->clear();
    if (plan.probe) {
      table.ForEachSlotWithValue(
          plan.probe_col, plan.probe_value.Get(params),
          [&](size_t slot) { sel->push_back(static_cast<uint32_t>(slot)); });
    } else if (!plan.filters.empty()) {
      // Full scan with at least one filter: fuse the liveness test into the
      // first filter kernel so the live list is never materialized.
      const Filter& f = plan.filters[0];
      if (f.col_vs_col) {
        SelectLiveWhereColumnVsColumn(table, f.col, f.op, f.rhs_col, sel);
      } else {
        SelectLiveWhereColumnVsValue(table, f.col, f.op, f.value.Get(params),
                                     sel);
      }
    } else {
      SelectLiveSlots(table, sel);
    }
    const size_t first_filter = !plan.probe && !plan.filters.empty() ? 1 : 0;
    for (size_t i = first_filter; i < plan.filters.size(); ++i) {
      const Filter& f = plan.filters[i];
      if (f.col_vs_col) {
        FilterColumnVsColumn(table, f.col, f.op, f.rhs_col, sel);
      } else {
        FilterColumnVsValue(table, f.col, f.op, f.value.Get(params), sel);
      }
    }
  };

  const auto operand_value =
      [&](const OperandCode& op, const uint32_t* tuple) -> const sql::Value& {
    if (!op.is_column) return op.value.Get(params);
    return tables[op.coord.slot]->RowAt(tuple[op.coord.slot])[op.coord.col];
  };

  const auto residuals_pass = [&](const SlotPlan& plan,
                                  const uint32_t* tuple) {
    for (const Residual& r : plan.residuals) {
      if (!CompareValues(operand_value(r.lhs, tuple), r.op,
                         operand_value(r.rhs, tuple))) {
        return false;
      }
    }
    return true;
  };

  if (constants_pass) {
    SelectionVector sel;
    slot_candidates(0, &sel);
    if (width == 1) {
      tuples = std::move(sel);
    } else {
      tuples.reserve(sel.size() * width);
      for (const uint32_t slot : sel) {
        tuples.push_back(slot);
        tuples.resize(tuples.size() + (width - 1), 0);
      }
      for (size_t s = 1; s < width; ++s) {
        const SlotPlan& plan = slots_[s];
        slot_candidates(s, &sel);
        std::vector<uint32_t> next;
        std::vector<uint32_t> ext(width, 0);
        const size_t num_tuples = tuples.size() / width;
        if (plan.hash_join) {
          // Identical container, reserve, insertion and probe sequence as
          // the interpreter — bucket iteration order is part of the
          // bit-identical contract for multi-match joins.
          std::unordered_multimap<uint64_t, size_t> build;
          build.reserve(sel.size());
          for (const uint32_t row_slot : sel) {
            const sql::Value& v = tables[s]->RowAt(row_slot)[plan.build_col];
            if (v.is_null()) continue;
            build.emplace(v.Hash(), row_slot);
          }
          for (size_t t = 0; t < num_tuples; ++t) {
            const uint32_t* tuple = &tuples[t * width];
            const sql::Value& probe =
                tables[plan.probe_coord.slot]->RowAt(
                    tuple[plan.probe_coord.slot])[plan.probe_coord.col];
            if (probe.is_null()) continue;
            auto [begin, end] = build.equal_range(probe.Hash());
            for (auto it = begin; it != end; ++it) {
              std::copy(tuple, tuple + width, ext.begin());
              ext[s] = static_cast<uint32_t>(it->second);
              if (residuals_pass(plan, ext.data())) {
                next.insert(next.end(), ext.begin(), ext.end());
              }
            }
          }
        } else {
          for (size_t t = 0; t < num_tuples; ++t) {
            const uint32_t* tuple = &tuples[t * width];
            for (const uint32_t row_slot : sel) {
              std::copy(tuple, tuple + width, ext.begin());
              ext[s] = row_slot;
              if (residuals_pass(plan, ext.data())) {
                next.insert(next.end(), ext.begin(), ext.end());
              }
            }
          }
        }
        tuples = std::move(next);
      }
    }
  }

  const size_t num_tuples = tuples.size() / width;

  if (!aggregate_) {
    // ----- Projection tail. -----
    std::vector<Row> rows;
    const size_t n =
        limit.has_value() ? std::min(*limit, num_tuples) : num_tuples;
    rows.reserve(n);
    const auto emit = [&](size_t t) {
      const uint32_t* tuple = &tuples[t * width];
      Row row;
      row.reserve(out_cols_.size());
      for (const Coord& col : out_cols_) {
        row.push_back(tables[col.slot]->RowAt(tuple[col.slot])[col.col]);
      }
      rows.push_back(std::move(row));
    };
    if (!order_coords_.empty()) {
      std::vector<size_t> order(num_tuples);
      std::iota(order.begin(), order.end(), size_t{0});
      StableTopK(order, n, [&](size_t a, size_t b) {
        const uint32_t* ta = &tuples[a * width];
        const uint32_t* tb = &tuples[b * width];
        for (const auto& [col, desc] : order_coords_) {
          const sql::Value& va =
              tables[col.slot]->RowAt(ta[col.slot])[col.col];
          const sql::Value& vb =
              tables[col.slot]->RowAt(tb[col.slot])[col.col];
          const int c = va.Compare(vb);
          if (c != 0) return desc ? -c : c;
        }
        return 0;
      });
      for (size_t i = 0; i < n; ++i) emit(order[i]);
    } else {
      for (size_t i = 0; i < n; ++i) emit(i);
    }
    return QueryResult(out_names_, std::move(rows), ordered_);
  }

  // ----- Aggregation tail (same grouping container, key encoding, and
  // iteration order as the interpreter). -----
  struct Group {
    Row key;
    std::vector<const uint32_t*> tuples;
  };
  std::map<std::string, Group> groups;
  for (size_t t = 0; t < num_tuples; ++t) {
    const uint32_t* tuple = &tuples[t * width];
    Row key;
    std::string encoded;
    for (const Coord& col : group_cols_) {
      const sql::Value& v =
          tables[col.slot]->RowAt(tuple[col.slot])[col.col];
      key.push_back(v);
      encoded += v.EncodeForKey();
    }
    Group& group = groups[encoded];
    if (group.tuples.empty()) group.key = std::move(key);
    group.tuples.push_back(tuple);
  }
  const bool global = group_cols_.empty();
  if (global && groups.empty()) {
    groups.emplace("", Group{});
  }

  const auto compute_aggregate = [&](const AggItem& item,
                                     const std::vector<const uint32_t*>&
                                         group_tuples) -> sql::Value {
    if (item.func == sql::AggregateFunc::kCount && item.star) {
      return sql::Value(static_cast<int64_t>(group_tuples.size()));
    }
    DSSP_CHECK(item.has_col);
    int64_t count = 0;
    double dsum = 0;
    int64_t isum = 0;
    bool saw_double = false;
    std::optional<sql::Value> min_v;
    std::optional<sql::Value> max_v;
    for (const uint32_t* tuple : group_tuples) {
      const sql::Value& v =
          tables[item.coord.slot]->RowAt(
              tuple[item.coord.slot])[item.coord.col];
      if (v.is_null()) continue;
      ++count;
      switch (item.func) {
        case sql::AggregateFunc::kSum:
        case sql::AggregateFunc::kAvg:
          if (v.type() == sql::ValueType::kDouble) {
            saw_double = true;
            dsum += v.AsDouble();
          } else {
            isum += v.AsInt64();
            dsum += v.AsDouble();
          }
          break;
        case sql::AggregateFunc::kMin:
          if (!min_v.has_value() || v.Compare(*min_v) < 0) min_v = v;
          break;
        case sql::AggregateFunc::kMax:
          if (!max_v.has_value() || v.Compare(*max_v) > 0) max_v = v;
          break;
        case sql::AggregateFunc::kCount:
          break;
        case sql::AggregateFunc::kNone:
          DSSP_UNREACHABLE("aggregate dispatch");
      }
    }
    switch (item.func) {
      case sql::AggregateFunc::kCount:
        return sql::Value(count);
      case sql::AggregateFunc::kSum:
        if (count == 0) return sql::Value::Null();
        return saw_double ? sql::Value(dsum) : sql::Value(isum);
      case sql::AggregateFunc::kAvg:
        if (count == 0) return sql::Value::Null();
        return sql::Value(dsum / static_cast<double>(count));
      case sql::AggregateFunc::kMin:
        return min_v.value_or(sql::Value::Null());
      case sql::AggregateFunc::kMax:
        return max_v.value_or(sql::Value::Null());
      case sql::AggregateFunc::kNone:
        break;
    }
    DSSP_UNREACHABLE("aggregate dispatch");
  };

  std::vector<Row> rows;
  for (auto& [encoded, group] : groups) {
    Row row;
    for (const AggItem& item : agg_items_) {
      if (item.func == sql::AggregateFunc::kNone) {
        row.push_back(group.key[static_cast<size_t>(item.group_index)]);
        continue;
      }
      row.push_back(compute_aggregate(item, group.tuples));
    }
    rows.push_back(std::move(row));
  }

  if (!order_keys_.empty()) {
    // Bounded top-k over group rows: first min(limit, n) entries of the
    // stable sort, via the index tie-break (see StableTopK).
    const size_t k =
        limit.has_value() ? std::min(*limit, rows.size()) : rows.size();
    std::vector<size_t> order(rows.size());
    std::iota(order.begin(), order.end(), size_t{0});
    StableTopK(order, k, [&](size_t a, size_t b) {
      for (const auto& [idx, desc] : order_keys_) {
        const int c = rows[a][idx].Compare(rows[b][idx]);
        if (c != 0) return desc ? -c : c;
      }
      return 0;
    });
    std::vector<Row> sorted;
    sorted.reserve(k);
    for (size_t i = 0; i < k; ++i) sorted.push_back(std::move(rows[order[i]]));
    rows = std::move(sorted);
  } else if (limit.has_value() && rows.size() > *limit) {
    rows.resize(*limit);
  }
  return QueryResult(out_names_, std::move(rows), ordered_);
}

}  // namespace dssp::engine
