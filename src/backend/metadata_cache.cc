#include "backend/metadata_cache.h"

#include <utility>

namespace dssp::backend {

std::optional<TableMetadata> MetadataCache::Lookup(const std::string& table,
                                                   double now_s) {
  MutexLock lock(mu_);
  const auto it = entries_.find(table);
  if (it == entries_.end()) return std::nullopt;
  if (ttl_s_ > 0 && now_s - it->second.computed_at_s > ttl_s_) {
    entries_.erase(it);
    ++expirations_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void MetadataCache::Store(TableMetadata metadata) {
  MutexLock lock(mu_);
  ++loads_;
  entries_[metadata.table] = std::move(metadata);
}

void MetadataCache::Invalidate(const std::string& table) {
  MutexLock lock(mu_);
  if (entries_.erase(table) > 0) ++invalidations_;
}

void MetadataCache::InvalidateAll() {
  MutexLock lock(mu_);
  invalidations_ += entries_.size();
  entries_.clear();
}

MetadataCacheStats MetadataCache::Stats() const {
  MutexLock lock(mu_);
  MetadataCacheStats out;
  out.loads = loads_;
  out.hits = hits_;
  out.expirations = expirations_;
  out.invalidations = invalidations_;
  out.entries = entries_.size();
  return out;
}

}  // namespace dssp::backend
