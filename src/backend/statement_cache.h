#ifndef DSSP_BACKEND_STATEMENT_CACHE_H_
#define DSSP_BACKEND_STATEMENT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <utility>

#include "common/mutex.h"
#include "engine/program.h"

namespace dssp::backend {

// Prepared statements of ONE pooled connection, keyed by (tenant, template).
//
// Modeled on a real DBMS connection: PREPARE compiles the template's plan
// server-side and the handle is connection-scoped — a new or recycled
// connection starts empty and must re-prepare. Here "prepare" is the PR-8
// QueryProgram compilation, so a hit executes a direct-coordinate program
// with zero name resolution and a miss pays the full compile.
//
// The tenant half of the key is the owning backend's identity, because a
// shared BackendHost pool serves several tenants over the same connections
// and template indexes are per-tenant. LRU-capped per connection; explicit
// invalidation (DDL / template registration) drops one tenant's statements
// everywhere.
//
// Thread safety: a connection is leased exclusively, but Stats() snapshots
// race leases, so the cache carries its own mutex.
class StatementCache {
 public:
  // Per-connection counters (aggregated into StatementCacheStats by the
  // pool). Plain fields: read/written under the cache's mutex.
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };

  // `capacity` caps live prepared statements on this connection
  // (0 = unlimited). Eviction is least-recently-executed.
  explicit StatementCache(size_t capacity) : capacity_(capacity) {}

  // The prepared program for (`tenant`, `template_index`), or nullptr on a
  // miss. A hit refreshes LRU order. The returned pointer stays valid until
  // the entry is evicted or invalidated — callers finish executing before
  // releasing the lease, and eviction/invalidation only happen from the
  // lease holder itself, so the lifetime is the lease.
  const engine::QueryProgram* Lookup(const void* tenant,
                                     size_t template_index);

  // Records a just-prepared program (counts the miss) and returns it.
  const engine::QueryProgram* Prepare(const void* tenant,
                                      size_t template_index,
                                      engine::QueryProgram program);

  // Drops one tenant's statements (template registration / DDL re-plans).
  void Invalidate(const void* tenant);

  // Drops everything: the connection was recycled (counts nothing — the
  // statements died with the connection, they were not invalidated).
  void Clear();

  size_t size() const;
  Counters counters() const;

 private:
  using Key = std::pair<const void*, size_t>;
  struct Entry {
    engine::QueryProgram program;
    std::list<Key>::iterator lru_it;
    Entry(engine::QueryProgram p, std::list<Key>::iterator it)
        : program(std::move(p)), lru_it(it) {}
  };

  size_t capacity_;
  mutable Mutex mu_;
  // std::map: node-stable, so Entry addresses survive inserts/erases of
  // other keys (Lookup hands out pointers into it).
  std::map<Key, Entry> entries_ DSSP_GUARDED_BY(mu_);
  std::list<Key> lru_ DSSP_GUARDED_BY(mu_);  // Front = most recent.
  Counters counters_ DSSP_GUARDED_BY(mu_);
};

}  // namespace dssp::backend

#endif  // DSSP_BACKEND_STATEMENT_CACHE_H_
