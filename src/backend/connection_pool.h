#ifndef DSSP_BACKEND_CONNECTION_POOL_H_
#define DSSP_BACKEND_CONNECTION_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "backend/home_backend.h"
#include "backend/statement_cache.h"
#include "common/mutex.h"
#include "common/status.h"

namespace dssp::backend {

// Pluggable health probe: one round trip over whatever wire the deployment
// uses. The Channel-based implementation (service::ChannelHealthProber)
// seals a probe frame and sends it through the PR-2 fault machinery, so a
// seeded FaultProfile produces reproducible probe losses.
class HealthProber {
 public:
  virtual ~HealthProber() = default;
  virtual bool Probe() = 0;  // true = the probe round trip came back intact.
};

struct PoolOptions {
  int size = 8;  // Bounded number of connections.

  // Per-connection prepared-statement cap (0 = unlimited).
  size_t statement_cache_capacity = 256;

  // Virtual-time admission (Admit): a queued wait longer than this counts a
  // lease timeout — the overload signal — while the request still drains
  // FIFO (backpressure, never a drop). 0 = no deadline.
  double lease_deadline_s = 0;

  // Simulated per-lease overhead charged on every admission (the cost of
  // checking out a connection from a real pool).
  double lease_latency_s = 0;

  // Health probing: probe a connection every `probe_every` leases (0 = off).
  // `suspect_after` consecutive failures mark the pool suspect; any success
  // resets the count. A failed probe recycles the connection (its prepared
  // statements are lost, as on a real reconnect).
  uint64_t probe_every = 0;
  int suspect_after = 3;

  // Rejects non-positive size / suspect_after and negative times.
  Status Validate() const;
};

// One pooled home-database connection. Leased exclusively; carries its own
// prepared-statement cache (statements are connection-scoped, like a real
// DBMS) and a virtual-time busy horizon (the simulator's capacity image).
class PooledConnection {
 public:
  PooledConnection(int id, size_t statement_capacity)
      : id_(id), statements_(statement_capacity) {}

  int id() const { return id_; }
  StatementCache& statements() { return statements_; }
  const StatementCache& statements() const { return statements_; }

 private:
  friend class ConnectionPool;
  int id_;
  StatementCache statements_;
  // Owned by the pool's mutex (busy horizon, lease cadence, health).
  double busy_until_s_ = 0;
  uint64_t leases_ = 0;
  uint64_t generation_ = 0;  // Bumped on recycle.
};

// A bounded, health-checked pool of home-database connections with two
// admission paths over one shared state:
//
//  - Acquire(): the synchronous path HandleQuery/HandleUpdate take. FIFO
//    ticketed blocking — pool exhaustion queues the caller (backpressure)
//    and never fails the operation.
//  - Admit(arrival, service): the virtual-time path the simulator charges
//    home work through. Jobs go to the earliest-free connection; with
//    lease_latency_s == 0 the arithmetic is exactly
//    sim::QueueingResource::Schedule, so the single-backend timing model is
//    bit-identical.
//
// Health: every probe_every leases a connection's wire is probed through
// the configured HealthProber; a failure recycles the connection (dropping
// its prepared statements) and suspect_after consecutive failures mark the
// pool suspect. Suspicion is advisory — the pool keeps serving (the home
// database is the sole source of truth; refusing work would lose updates).
class ConnectionPool {
 public:
  explicit ConnectionPool(PoolOptions options);

  // RAII lease over one connection. Move-only; releasing returns the
  // connection to the free stack (LIFO, to maximize statement-cache reuse).
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), conn_(other.conn_) {
      other.pool_ = nullptr;
      other.conn_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    PooledConnection* operator->() { return conn_; }
    PooledConnection& operator*() { return *conn_; }
    PooledConnection* get() { return conn_; }

   private:
    friend class ConnectionPool;
    Lease(ConnectionPool* pool, PooledConnection* conn)
        : pool_(pool), conn_(conn) {}
    ConnectionPool* pool_;
    PooledConnection* conn_;
  };

  // Blocks (FIFO) until a connection is free. Never fails: exhaustion is
  // backpressure, not an error.
  Lease Acquire();

  // Virtual-time admission of a job arriving at `arrival` needing
  // `service_s` seconds of connection time.
  struct Admission {
    double done = 0;        // Completion instant.
    double wait_s = 0;      // Time spent queued for a free connection.
    bool queued = false;    // wait_s > 0.
    bool timed_out = false; // wait_s exceeded options.lease_deadline_s.
    int connection = 0;     // Which connection served it.
  };
  Admission Admit(double arrival, double service_s);

  // Probes ride this; nullptr (default) = probes always succeed in-process.
  void SetProber(HealthProber* prober);

  // Health verdict from the probe machinery.
  bool suspect() const;

  // Sum of every connection's statement-cache counters plus live entries.
  StatementCacheStats statement_stats() const;

  PoolStats Stats() const;

  const PoolOptions& options() const { return options_; }
  int size() const { return static_cast<int>(connections_.size()); }

  // Test/bench hook: the connection by index (no lease; do not execute on
  // it concurrently with pool traffic).
  PooledConnection& connection(int i) { return *connections_[static_cast<size_t>(i)]; }

 private:
  // Runs a health probe for `conn` if its lease cadence says so. Called
  // with `mu_` held; the probe round trip itself happens under the lock —
  // probes are rare (every probe_every leases) and the in-process wire is
  // synchronous, so holding the lock keeps the recycle atomic with the
  // verdict.
  void MaybeProbe(PooledConnection& conn) DSSP_REQUIRES(mu_);

  PoolOptions options_;
  std::vector<std::unique_ptr<PooledConnection>> connections_;

  mutable Mutex mu_;
  CondVar cv_;
  std::vector<PooledConnection*> free_ DSSP_GUARDED_BY(mu_);  // LIFO stack.
  uint64_t next_ticket_ DSSP_GUARDED_BY(mu_) = 0;
  uint64_t serving_ticket_ DSSP_GUARDED_BY(mu_) = 0;
  HealthProber* prober_ DSSP_GUARDED_BY(mu_) = nullptr;
  int consecutive_probe_failures_ DSSP_GUARDED_BY(mu_) = 0;
  bool suspect_ DSSP_GUARDED_BY(mu_) = false;

  // Counters (PoolStats sources), guarded by mu_.
  uint64_t leases_granted_ DSSP_GUARDED_BY(mu_) = 0;
  uint64_t leases_queued_ DSSP_GUARDED_BY(mu_) = 0;
  uint64_t lease_timeouts_ DSSP_GUARDED_BY(mu_) = 0;
  uint64_t probes_sent_ DSSP_GUARDED_BY(mu_) = 0;
  uint64_t probe_failures_ DSSP_GUARDED_BY(mu_) = 0;
  uint64_t connections_recycled_ DSSP_GUARDED_BY(mu_) = 0;
  double total_wait_s_ DSSP_GUARDED_BY(mu_) = 0;
  double max_wait_s_ DSSP_GUARDED_BY(mu_) = 0;
};

}  // namespace dssp::backend

#endif  // DSSP_BACKEND_CONNECTION_POOL_H_
