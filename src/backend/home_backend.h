#ifndef DSSP_BACKEND_HOME_BACKEND_H_
#define DSSP_BACKEND_HOME_BACKEND_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace dssp::backend {

// ---------------------------------------------------------------------------
// The home-database seam of the DSSP architecture.
//
// The paper's DSSP fronts the home organization's database over a narrow
// wire protocol (Figure 2): encrypted statements go in, (possibly encrypted)
// result blobs come out. Everything the provider side knows about the home
// tier goes through this interface — connection leasing, the prepared-
// statement lifecycle, update application, and catalog/statistics queries —
// so a real DBMS, a remote replica, or the in-process reference engine
// (InMemoryBackend) are interchangeable behind it.
//
// The interface is deliberately narrow: it is the set of operations the
// DSSP<->home protocol can express, not the engine's full surface. Anything
// engine-specific (direct Database access, template registration, key
// material) lives on the concrete backend.
// ---------------------------------------------------------------------------

// Prepared-statement cache counters. Statements are prepared once per
// (connection, template) and reused; a recycled connection loses its
// prepared statements, exactly as a real DBMS connection would.
struct StatementCacheStats {
  uint64_t hits = 0;         // Executions served by a cached prepared program.
  uint64_t misses = 0;       // Executions that had to prepare first.
  uint64_t evictions = 0;    // Prepared statements dropped by the LRU cap.
  uint64_t invalidations = 0;  // Dropped by DDL/registration invalidation.
  uint64_t unprepared_executions = 0;  // Kill switch off: prepare-per-call.
  size_t entries = 0;        // Live prepared statements, all connections.

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// Connection-pool counters. The pool is bounded; exhaustion queues callers
// FIFO (backpressure) instead of failing them, so `lease_timeouts` counts
// deadline overruns observed while queued — an overload health signal — not
// dropped requests.
struct PoolStats {
  uint64_t leases_granted = 0;
  uint64_t leases_queued = 0;    // Granted only after waiting for a free conn.
  uint64_t lease_timeouts = 0;   // Waits that overran the lease deadline.
  uint64_t probes_sent = 0;      // Health probes put on the probe channel.
  uint64_t probe_failures = 0;   // Probes lost/damaged by the wire.
  uint64_t connections_recycled = 0;  // Closed+reopened after a failed probe.
  double total_wait_s = 0;       // Simulated seconds spent queued (Admit).
  double max_wait_s = 0;         // Worst single queued wait.
  size_t size = 0;               // Bounded pool size.
  bool suspect = false;          // Health-probe verdict (see PoolOptions).
};

// Metadata/statistics cache counters.
struct MetadataCacheStats {
  uint64_t loads = 0;          // Statistics passes actually run.
  uint64_t hits = 0;           // Served from the cache within TTL.
  uint64_t expirations = 0;    // Entries refused because their TTL lapsed.
  uint64_t invalidations = 0;  // Entries dropped by explicit invalidation.
  size_t entries = 0;
};

// One table's cached metadata/statistics snapshot (what a real DSSP would
// fetch from information_schema + ANALYZE output).
struct TableMetadata {
  std::string table;
  std::vector<std::string> columns;
  std::string primary_key;   // Comma-joined; empty when the table has none.
  size_t row_count = 0;
  double computed_at_s = 0;  // Backend clock when the statistics pass ran.
};

// Point-in-time snapshot of every backend counter. Relaxed-atomic sources:
// each counter is individually monotone but the snapshot is not one global
// instant (quiesce writers for exact cross-counter arithmetic).
struct HomeBackendStats {
  // Engine-level traffic.
  uint64_t queries_executed = 0;
  uint64_t updates_applied = 0;
  uint64_t duplicates_suppressed = 0;

  // Compiled-program execution split: queries served by a QueryProgram vs.
  // by the reference interpreter (template unmatched, template uncompilable,
  // or program execution disabled).
  uint64_t program_queries = 0;
  uint64_t interpreter_fallback_queries = 0;

  // Lazy per-tenant catalog: of `tables_total` registered tables, only the
  // ones a registered template actually touches are materialized.
  size_t tables_touched = 0;
  size_t tables_total = 0;
  uint64_t catalog_loads = 0;  // Times the touched-table set was materialized.

  StatementCacheStats statements;
  PoolStats pool;
  MetadataCacheStats metadata;
};

class HomeBackend {
 public:
  virtual ~HomeBackend() = default;

  virtual const std::string& app_id() const = 0;

  // Wire entry points (what service::DispatchFrame calls). `ciphertext` is a
  // statement encrypted under the application's statement cipher; the
  // backend decrypts, leases a connection, executes via the prepared-
  // statement cache, and (for queries) returns the serialized result,
  // encrypted under the result cipher unless `plaintext_result`.
  //
  // A nonzero update `nonce` enables at-most-once semantics: a retried or
  // transport-duplicated update frame returns the stored effect instead of
  // applying twice.
  virtual StatusOr<std::string> HandleQuery(std::string_view ciphertext,
                                            bool plaintext_result) = 0;
  virtual StatusOr<engine::UpdateEffect> HandleUpdate(
      std::string_view ciphertext, uint64_t nonce = 0) = 0;

  // Health-probe target: Ok when the backend can serve. The pool's probe
  // machinery calls this through the (fault-injectable) probe channel.
  virtual Status Ping() = 0;

  // --- Catalog / statistics queries -------------------------------------
  // Served from the TTL'd metadata cache; a statistics pass runs at most
  // once per table per TTL window unless DDL or template registration
  // explicitly invalidates. Only tables a registered template touches are
  // ever materialized (lazy per-tenant catalog loading).
  virtual std::vector<std::string> TableNames() const = 0;
  virtual StatusOr<TableMetadata> DescribeTable(std::string_view table) = 0;

  // Advances the backend's virtual clock (TTL reference). Monotone: moving
  // backwards is ignored.
  virtual void Tick(double now_s) = 0;

  virtual HomeBackendStats Stats() const = 0;
};

}  // namespace dssp::backend

#endif  // DSSP_BACKEND_HOME_BACKEND_H_
