#include "backend/in_memory_backend.h"

#include <utility>

#include "backend/host.h"
#include "engine/program.h"
#include "engine/table.h"
#include "sql/parser.h"
#include "templates/template.h"

namespace dssp::backend {
namespace {

// Tables a statement reads or writes (lazy-catalog scope).
void CollectTables(const sql::Statement& stmt, std::set<std::string>* out) {
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      for (const sql::TableRef& ref : stmt.select().from) {
        out->insert(ref.table);
      }
      break;
    case sql::StatementKind::kInsert:
      out->insert(stmt.insert().table);
      break;
    case sql::StatementKind::kUpdate:
      out->insert(stmt.update().table);
      break;
    case sql::StatementKind::kDelete:
      out->insert(stmt.del().table);
      break;
  }
}

}  // namespace

InMemoryBackend::InMemoryBackend(std::string app_id, crypto::KeyRing keyring,
                                 BackendOptions options)
    : app_id_(std::move(app_id)),
      keyring_(std::move(keyring)),
      options_(options),
      private_pool_(options.pool),
      metadata_(options.metadata_ttl_s) {}

ConnectionPool& InMemoryBackend::pool() {
  return host_ != nullptr ? host_->pool() : private_pool_;
}

const ConnectionPool& InMemoryBackend::pool() const {
  return host_ != nullptr ? host_->pool() : private_pool_;
}

void InMemoryBackend::AttachHost(BackendHost* host) {
  // Re-attach is allowed (a tenant re-run under a new topology moves hosts);
  // the last host wins and the old pool simply stops being consulted.
  host_ = host;
}

Status InMemoryBackend::AddQueryTemplate(std::string_view sql) {
  DSSP_RETURN_IF_ERROR(templates_.AddQuerySql(sql, database_.catalog()));
  // Decide compilability once at registration; a failure is not an error
  // (the interpreter serves that template) but is what the dssp_audit
  // PERF-UNPLANNED-QUERY / PERF-UNPREPARED-TEMPLATE findings report. The
  // compiled program itself lives in the per-connection statement caches,
  // prepared on first execution.
  const size_t index = templates_.queries().size() - 1;
  const templates::QueryTemplate& tmpl = templates_.queries()[index];
  StatusOr<engine::QueryProgram> program = engine::QueryProgram::Compile(
      database_.catalog(), tmpl.statement().select());
  compilable_.push_back(program.ok());
  shape_to_queries_[templates::SelectShapeKey(tmpl.statement().select())]
      .push_back(index);
  // Registration re-scopes the touched-table set and may change every plan:
  // explicitly invalidate metadata and this tenant's prepared statements.
  metadata_.InvalidateAll();
  ConnectionPool& p = pool();
  for (int i = 0; i < p.size(); ++i) {
    p.connection(i).statements().Invalidate(this);
  }
  catalog_loaded_.store(false, std::memory_order_release);
  return Status::Ok();
}

Status InMemoryBackend::AddUpdateTemplate(std::string_view sql) {
  DSSP_RETURN_IF_ERROR(templates_.AddUpdateSql(sql, database_.catalog()));
  metadata_.InvalidateAll();
  catalog_loaded_.store(false, std::memory_order_release);
  return Status::Ok();
}

void InMemoryBackend::EnsureCatalogLoaded() {
  if (catalog_loaded_.load(std::memory_order_acquire) &&
      database_.catalog().num_tables() ==
          [this] {
            MutexLock lock(catalog_mu_);
            return observed_num_tables_;
          }()) {
    return;
  }
  MutexLock lock(catalog_mu_);
  if (catalog_loaded_.load(std::memory_order_relaxed) &&
      observed_num_tables_ == database_.catalog().num_tables()) {
    return;  // Raced with another loader.
  }
  if (observed_num_tables_ != 0 &&
      observed_num_tables_ != database_.catalog().num_tables()) {
    // DDL happened since the last load: statistics may be stale for any
    // table, so invalidate explicitly rather than waiting out the TTL.
    metadata_.InvalidateAll();
  }
  touched_tables_.clear();
  for (const templates::QueryTemplate& q : templates_.queries()) {
    CollectTables(q.statement(), &touched_tables_);
  }
  for (const templates::UpdateTemplate& u : templates_.updates()) {
    CollectTables(u.statement(), &touched_tables_);
  }
  // Materialize (warm) metadata for exactly the touched tables; the rest of
  // the catalog stays unloaded until DescribeTable asks for it.
  for (const std::string& table : touched_tables_) {
    const catalog::TableSchema* schema = database_.catalog().FindTable(table);
    if (schema != nullptr) metadata_.Store(ComputeMetadata(*schema));
  }
  observed_num_tables_ = database_.catalog().num_tables();
  catalog_loads_.fetch_add(1, std::memory_order_relaxed);
  if (host_ != nullptr) host_->NoteCatalogLoad();
  catalog_loaded_.store(true, std::memory_order_release);
}

TableMetadata InMemoryBackend::ComputeMetadata(
    const catalog::TableSchema& schema) const {
  TableMetadata meta;
  meta.table = schema.name();
  meta.columns.reserve(schema.columns().size());
  for (const catalog::Column& column : schema.columns()) {
    meta.columns.push_back(column.name);
  }
  for (size_t i = 0; i < schema.primary_key().size(); ++i) {
    if (i > 0) meta.primary_key += ",";
    meta.primary_key += schema.primary_key()[i];
  }
  const engine::Table* table = database_.FindTable(schema.name());
  meta.row_count = table == nullptr ? 0 : table->num_rows();
  meta.computed_at_s = now_s();
  return meta;
}

std::vector<std::string> InMemoryBackend::TableNames() const {
  return database_.catalog().TableNames();
}

StatusOr<TableMetadata> InMemoryBackend::DescribeTable(std::string_view table) {
  EnsureCatalogLoaded();
  const std::string key(table);
  if (std::optional<TableMetadata> cached = metadata_.Lookup(key, now_s())) {
    return *std::move(cached);
  }
  const catalog::TableSchema* schema = database_.catalog().FindTable(table);
  if (schema == nullptr) {
    return NotFoundError("no such table: " + key);
  }
  TableMetadata meta = ComputeMetadata(*schema);
  metadata_.Store(meta);
  return meta;
}

void InMemoryBackend::Tick(double now_s) {
  // Monotone max without CAS precision games: concurrent Ticks from the
  // simulator are already ordered.
  if (now_s > now_s_.load(std::memory_order_relaxed)) {
    now_s_.store(now_s, std::memory_order_relaxed);
  }
}

std::set<std::string> InMemoryBackend::TouchedTables() const {
  MutexLock lock(catalog_mu_);
  return touched_tables_;
}

StatusOr<std::string> InMemoryBackend::HandleQuery(std::string_view ciphertext,
                                                   bool plaintext_result) {
  EnsureCatalogLoaded();
  const std::string sql = statement_cipher().Decrypt(ciphertext);
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  ConnectionPool::Lease lease = pool().Acquire();
  DSSP_ASSIGN_OR_RETURN(engine::QueryResult result,
                        ExecuteParsedQuery(stmt, *lease));
  queries_executed_.fetch_add(1, std::memory_order_relaxed);
  std::string serialized = result.Serialize();
  if (plaintext_result) return serialized;
  return result_cipher().Encrypt(serialized);
}

StatusOr<engine::QueryResult> InMemoryBackend::ExecuteParsedQuery(
    const sql::Statement& stmt, PooledConnection& conn) {
  if (program_execution_enabled_.load(std::memory_order_relaxed) &&
      stmt.kind() == sql::StatementKind::kSelect && stmt.num_params == 0) {
    const auto it =
        shape_to_queries_.find(templates::SelectShapeKey(stmt.select()));
    if (it != shape_to_queries_.end()) {
      std::vector<sql::Value> params;
      for (const size_t index : it->second) {
        if (!compilable_[index]) continue;
        const templates::QueryTemplate& tmpl = templates_.queries()[index];
        if (!tmpl.MatchInstance(stmt.select(), &params)) continue;
        if (!statement_cache_enabled_.load(std::memory_order_relaxed)) {
          // Kill switch: prepare-per-call. Every execution pays the full
          // compile, the cost the statement cache exists to amortize.
          StatusOr<engine::QueryProgram> fresh = engine::QueryProgram::Compile(
              database_.catalog(), tmpl.statement().select());
          if (!fresh.ok()) continue;  // Defensive; compilable_ said ok.
          program_queries_.fetch_add(1, std::memory_order_relaxed);
          unprepared_executions_.fetch_add(1, std::memory_order_relaxed);
          return fresh->Execute(database_, params);
        }
        const engine::QueryProgram* program =
            conn.statements().Lookup(this, index);
        if (program == nullptr) {
          StatusOr<engine::QueryProgram> prepared =
              engine::QueryProgram::Compile(database_.catalog(),
                                            tmpl.statement().select());
          if (!prepared.ok()) continue;  // Defensive; compilable_ said ok.
          program = conn.statements().Prepare(this, index,
                                              std::move(prepared).value());
        }
        program_queries_.fetch_add(1, std::memory_order_relaxed);
        return program->Execute(database_, params);
      }
    }
  }
  interpreter_fallback_queries_.fetch_add(1, std::memory_order_relaxed);
  return database_.ExecuteQuery(stmt);
}

StatusOr<engine::UpdateEffect> InMemoryBackend::HandleUpdate(
    std::string_view ciphertext, uint64_t nonce) {
  EnsureCatalogLoaded();
  const std::string sql = statement_cipher().Decrypt(ciphertext);
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  ConnectionPool::Lease lease = pool().Acquire();
  if (nonce == 0) {
    DSSP_ASSIGN_OR_RETURN(engine::UpdateEffect effect,
                          database_.ExecuteUpdate(stmt));
    updates_applied_.fetch_add(1, std::memory_order_relaxed);
    return effect;
  }
  // Nonce-carrying update: the dedup check and the apply form one critical
  // section, so a retry racing the original cannot apply twice.
  MutexLock lock(dedup_mu_);
  const auto it = applied_nonces_.find(nonce);
  if (it != applied_nonces_.end()) {
    duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  DSSP_ASSIGN_OR_RETURN(engine::UpdateEffect effect,
                        database_.ExecuteUpdate(stmt));
  updates_applied_.fetch_add(1, std::memory_order_relaxed);
  applied_nonces_.emplace(nonce, effect);
  dedup_fifo_.push_back(nonce);
  if (dedup_fifo_.size() > kDedupWindow) {
    applied_nonces_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
  return effect;
}

HomeBackendStats InMemoryBackend::Stats() const {
  HomeBackendStats out;
  out.queries_executed = queries_executed();
  out.updates_applied = updates_applied();
  out.duplicates_suppressed = duplicates_suppressed();
  out.program_queries = program_queries();
  out.interpreter_fallback_queries = interpreter_fallback_queries();
  {
    MutexLock lock(catalog_mu_);
    out.tables_touched = touched_tables_.size();
  }
  out.tables_total = database_.catalog().num_tables();
  out.catalog_loads = catalog_loads_.load(std::memory_order_relaxed);
  out.statements = pool().statement_stats();
  out.statements.unprepared_executions =
      unprepared_executions_.load(std::memory_order_relaxed);
  out.pool = pool().Stats();
  out.metadata = metadata_.Stats();
  return out;
}

}  // namespace dssp::backend
