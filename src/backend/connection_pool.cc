#include "backend/connection_pool.h"

#include <algorithm>

namespace dssp::backend {

Status PoolOptions::Validate() const {
  if (size <= 0) return InvalidArgumentError("pool size must be positive");
  if (suspect_after <= 0) {
    return InvalidArgumentError("suspect_after must be positive");
  }
  // Negated comparisons also reject NaN.
  if (!(lease_deadline_s >= 0)) {
    return InvalidArgumentError("lease_deadline_s must be >= 0");
  }
  if (!(lease_latency_s >= 0)) {
    return InvalidArgumentError("lease_latency_s must be >= 0");
  }
  return Status::Ok();
}

ConnectionPool::ConnectionPool(PoolOptions options)
    : options_(options) {
  DSSP_CHECK_OK(options_.Validate());
  connections_.reserve(static_cast<size_t>(options_.size));
  for (int i = 0; i < options_.size; ++i) {
    connections_.push_back(std::make_unique<PooledConnection>(
        i, options_.statement_cache_capacity));
  }
  // LIFO stack with connection 0 on top: the uncontended synchronous path
  // always reuses the warmest statement cache.
  MutexLock lock(mu_);
  for (int i = options_.size - 1; i >= 0; --i) {
    free_.push_back(connections_[static_cast<size_t>(i)].get());
  }
}

ConnectionPool::Lease::~Lease() {
  if (pool_ == nullptr) return;
  MutexLock lock(pool_->mu_);
  pool_->free_.push_back(conn_);
  pool_->cv_.NotifyAll();
}

void ConnectionPool::MaybeProbe(PooledConnection& conn) {
  ++conn.leases_;
  if (options_.probe_every == 0 || conn.leases_ % options_.probe_every != 0) {
    return;
  }
  ++probes_sent_;
  const bool healthy = prober_ == nullptr || prober_->Probe();
  if (healthy) {
    consecutive_probe_failures_ = 0;
    return;
  }
  ++probe_failures_;
  // Reconnect: the new connection has no prepared statements.
  conn.statements_.Clear();
  ++conn.generation_;
  ++connections_recycled_;
  if (++consecutive_probe_failures_ >= options_.suspect_after) {
    suspect_ = true;
  }
}

ConnectionPool::Lease ConnectionPool::Acquire() {
  MutexLock lock(mu_);
  const uint64_t ticket = next_ticket_++;
  bool waited = false;
  while (ticket != serving_ticket_ || free_.empty()) {
    waited = true;
    cv_.Wait(lock);
  }
  ++serving_ticket_;
  PooledConnection* conn = free_.back();
  free_.pop_back();
  ++leases_granted_;
  if (waited) ++leases_queued_;
  MaybeProbe(*conn);
  // Wake the next ticket holder (it may already have a free connection).
  cv_.NotifyAll();
  return Lease(this, conn);
}

ConnectionPool::Admission ConnectionPool::Admit(double arrival,
                                                double service_s) {
  MutexLock lock(mu_);
  // Earliest-free connection — with lease_latency_s == 0 this is exactly
  // sim::QueueingResource::Schedule, which the single-backend timing model
  // is bit-compared against.
  size_t best = 0;
  for (size_t i = 1; i < connections_.size(); ++i) {
    if (connections_[i]->busy_until_s_ < connections_[best]->busy_until_s_) {
      best = i;
    }
  }
  PooledConnection& conn = *connections_[best];
  const double start = std::max(arrival, conn.busy_until_s_);
  Admission admission;
  admission.connection = static_cast<int>(best);
  admission.wait_s = start - arrival;
  admission.queued = admission.wait_s > 0;
  conn.busy_until_s_ = start + options_.lease_latency_s + service_s;
  admission.done = conn.busy_until_s_;

  ++leases_granted_;
  if (admission.queued) {
    ++leases_queued_;
    total_wait_s_ += admission.wait_s;
    max_wait_s_ = std::max(max_wait_s_, admission.wait_s);
    if (options_.lease_deadline_s > 0 &&
        admission.wait_s > options_.lease_deadline_s) {
      admission.timed_out = true;
      ++lease_timeouts_;
    }
  }
  MaybeProbe(conn);
  return admission;
}

void ConnectionPool::SetProber(HealthProber* prober) {
  MutexLock lock(mu_);
  prober_ = prober;
}

bool ConnectionPool::suspect() const {
  MutexLock lock(mu_);
  return suspect_;
}

StatementCacheStats ConnectionPool::statement_stats() const {
  StatementCacheStats out;
  for (const auto& conn : connections_) {
    const StatementCache::Counters c = conn->statements().counters();
    out.hits += c.hits;
    out.misses += c.misses;
    out.evictions += c.evictions;
    out.invalidations += c.invalidations;
    out.entries += conn->statements().size();
  }
  return out;
}

PoolStats ConnectionPool::Stats() const {
  MutexLock lock(mu_);
  PoolStats out;
  out.leases_granted = leases_granted_;
  out.leases_queued = leases_queued_;
  out.lease_timeouts = lease_timeouts_;
  out.probes_sent = probes_sent_;
  out.probe_failures = probe_failures_;
  out.connections_recycled = connections_recycled_;
  out.total_wait_s = total_wait_s_;
  out.max_wait_s = max_wait_s_;
  out.size = connections_.size();
  out.suspect = suspect_;
  return out;
}

}  // namespace dssp::backend
