#include "backend/host.h"

#include "backend/in_memory_backend.h"

namespace dssp::backend {

void BackendHost::AttachTenant(InMemoryBackend* tenant) {
  DSSP_CHECK(tenant != nullptr);
  {
    MutexLock lock(mu_);
    tenants_.push_back(tenant);
  }
  tenant->AttachHost(this);
}

}  // namespace dssp::backend
