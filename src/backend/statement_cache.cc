#include "backend/statement_cache.h"

namespace dssp::backend {

const engine::QueryProgram* StatementCache::Lookup(const void* tenant,
                                                   size_t template_index) {
  MutexLock lock(mu_);
  const auto it = entries_.find(Key{tenant, template_index});
  if (it == entries_.end()) return nullptr;
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second.program;
}

const engine::QueryProgram* StatementCache::Prepare(
    const void* tenant, size_t template_index, engine::QueryProgram program) {
  MutexLock lock(mu_);
  ++counters_.misses;
  const Key key{tenant, template_index};
  // A re-prepare of a live key (possible after a racing invalidation window)
  // replaces the entry in place.
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.program = std::move(program);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return &it->second.program;
  }
  lru_.push_front(key);
  it = entries_.emplace(key, Entry(std::move(program), lru_.begin())).first;
  if (capacity_ > 0 && entries_.size() > capacity_) {
    const Key victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++counters_.evictions;
  }
  return &it->second.program;
}

void StatementCache::Invalidate(const void* tenant) {
  MutexLock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.first == tenant) {
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++counters_.invalidations;
    } else {
      ++it;
    }
  }
}

void StatementCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t StatementCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

StatementCache::Counters StatementCache::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

}  // namespace dssp::backend
