#ifndef DSSP_BACKEND_HOST_H_
#define DSSP_BACKEND_HOST_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "backend/connection_pool.h"
#include "common/mutex.h"

namespace dssp::backend {

class InMemoryBackend;

// One physical home-server host: a bounded connection pool shared by every
// tenant backend attached to it. This is how "N tenants x M home backends"
// becomes a runnable topology — tenants on the same host contend for the
// same connections, so home-server capacity (pool size, lease latency) is a
// first-class resource rather than a per-tenant constant.
class BackendHost {
 public:
  explicit BackendHost(PoolOptions options) : pool_(options) {}

  BackendHost(const BackendHost&) = delete;
  BackendHost& operator=(const BackendHost&) = delete;

  ConnectionPool& pool() { return pool_; }
  const ConnectionPool& pool() const { return pool_; }

  // Registers `tenant` and points it at this host's shared pool. Setup-time
  // only (before traffic). A tenant already attached elsewhere moves here.
  void AttachTenant(InMemoryBackend* tenant);

  size_t num_tenants() const {
    MutexLock lock(mu_);
    return tenants_.size();
  }
  const std::vector<InMemoryBackend*> tenants() const {
    MutexLock lock(mu_);
    return tenants_;
  }

  // Lazy-catalog accounting across attached tenants: each tenant reports
  // when it first materializes its touched-table set.
  void NoteCatalogLoad() {
    catalogs_loaded_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t catalogs_loaded() const {
    return catalogs_loaded_.load(std::memory_order_relaxed);
  }

 private:
  ConnectionPool pool_;
  mutable Mutex mu_;
  std::vector<InMemoryBackend*> tenants_ DSSP_GUARDED_BY(mu_);
  std::atomic<uint64_t> catalogs_loaded_{0};
};

}  // namespace dssp::backend

#endif  // DSSP_BACKEND_HOST_H_
