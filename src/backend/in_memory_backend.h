#ifndef DSSP_BACKEND_IN_MEMORY_BACKEND_H_
#define DSSP_BACKEND_IN_MEMORY_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "backend/connection_pool.h"
#include "backend/home_backend.h"
#include "backend/metadata_cache.h"
#include "common/mutex.h"
#include "common/status.h"
#include "crypto/keyring.h"
#include "engine/database.h"
#include "templates/template_set.h"

namespace dssp::backend {

class BackendHost;

struct BackendOptions {
  PoolOptions pool;
  // TTL of metadata/statistics snapshots, simulated seconds (0 = explicit
  // invalidation only).
  double metadata_ttl_s = 60.0;
};

// An application's home server — the reference HomeBackend: the master
// database (in-memory engine), the template sets, and the application's
// keys. All statements arrive encrypted (Figure 2: the DSSP forwards opaque
// blobs); the backend decrypts, leases a pooled connection, executes through
// that connection's prepared-statement cache, and encrypts results when the
// caller asks for an opaque reply.
//
// Production scaffolding over the bare engine:
//  - a bounded, health-checked connection pool (private by default; shared
//    with co-hosted tenants when attached to a BackendHost);
//  - a prepared-statement cache per connection: a template is compiled to
//    its PR-8 QueryProgram once per (connection, template) and reused, with
//    a kill switch degrading to prepare-per-call;
//  - a TTL'd metadata/statistics cache, explicitly invalidated on DDL and
//    template registration;
//  - lazy catalog loading: only tables a registered template touches are
//    materialized into the metadata layer.
class InMemoryBackend : public HomeBackend {
 public:
  InMemoryBackend(std::string app_id, crypto::KeyRing keyring,
                  BackendOptions options = {});

  const std::string& app_id() const override { return app_id_; }
  const crypto::KeyRing& keyring() const { return keyring_; }

  // Master database; populate it and register tables through this.
  engine::Database& database() { return database_; }
  const engine::Database& database() const { return database_; }

  // Registers templates (ids auto-assigned "Q<k>" / "U<k>"). Registration
  // explicitly invalidates the metadata cache and this tenant's prepared
  // statements on every pooled connection: the set of tables that matter —
  // and every server-side plan — may have changed.
  Status AddQueryTemplate(std::string_view sql);
  Status AddUpdateTemplate(std::string_view sql);
  const templates::TemplateSet& templates() const { return templates_; }

  // ----- HomeBackend -----
  StatusOr<std::string> HandleQuery(std::string_view ciphertext,
                                    bool plaintext_result) override;
  StatusOr<engine::UpdateEffect> HandleUpdate(std::string_view ciphertext,
                                              uint64_t nonce = 0) override;
  Status Ping() override { return Status::Ok(); }
  std::vector<std::string> TableNames() const override;
  StatusOr<TableMetadata> DescribeTable(std::string_view table) override;
  void Tick(double now_s) override;
  HomeBackendStats Stats() const override;

  // Ciphers (deterministic; shared conceptually with the application's
  // client-side code, never with the DSSP).
  crypto::DeterministicCipher statement_cipher() const {
    return keyring_.CipherFor("statement");
  }
  crypto::DeterministicCipher parameter_cipher() const {
    return keyring_.CipherFor("params");
  }
  crypto::DeterministicCipher result_cipher() const {
    return keyring_.CipherFor("result");
  }

  // Count of updates applied (the paper reports per-run update volumes).
  // Atomics: a multi-threaded tenant may drive HandleQuery/HandleUpdate from
  // several workers; the accessors are lock-free snapshots.
  uint64_t updates_applied() const {
    return updates_applied_.load(std::memory_order_relaxed);
  }
  uint64_t queries_executed() const {
    return queries_executed_.load(std::memory_order_relaxed);
  }
  // Updates whose nonce was already applied and were suppressed.
  uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_.load(std::memory_order_relaxed);
  }

  // Queries served by a compiled QueryProgram vs. by the reference
  // interpreter (template not matched, template not compilable, or program
  // execution disabled). An application whose templates all compile sees
  // interpreter_fallback_queries() == 0.
  uint64_t program_queries() const {
    return program_queries_.load(std::memory_order_relaxed);
  }
  uint64_t interpreter_fallback_queries() const {
    return interpreter_fallback_queries_.load(std::memory_order_relaxed);
  }

  // Disables the compiled-program path (every query runs the interpreter).
  // For benchmarks and differential tests; call before serving traffic.
  void SetProgramExecutionEnabled(bool enabled) {
    program_execution_enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Kill switch for the prepared-statement cache: when disabled, every
  // program-path execution re-compiles its template (prepare-per-call) —
  // the baseline bench/ablation_home_backend compares against.
  void SetStatementCacheEnabled(bool enabled) {
    statement_cache_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool statement_cache_enabled() const {
    return statement_cache_enabled_.load(std::memory_order_relaxed);
  }

  // The pool serving this backend: the host's shared pool when attached
  // (co-hosted tenants contend for the same connections), else the private
  // pool sized by BackendOptions.
  ConnectionPool& pool();
  const ConnectionPool& pool() const;
  MetadataCache& metadata() { return metadata_; }

  // Joins a host (shared pool + per-host accounting). Call during setup,
  // before traffic; a backend belongs to at most one host.
  void AttachHost(BackendHost* host);
  BackendHost* host() const { return host_; }

  // Lazy catalog state (introspection for tests and the ablation).
  bool catalog_loaded() const {
    return catalog_loaded_.load(std::memory_order_acquire);
  }
  // Tables any registered template touches; loaded on first use.
  std::set<std::string> TouchedTables() const;

  static constexpr size_t kDedupWindow = 65536;

 private:
  // Executes a parsed, fully-bound query on a leased connection: via the
  // connection's prepared statement for the matching template when one
  // exists, else the reference interpreter.
  StatusOr<engine::QueryResult> ExecuteParsedQuery(const sql::Statement& stmt,
                                                   PooledConnection& conn);

  // First-use catalog materialization: computes the touched-table set from
  // the registered templates and warms the metadata cache for exactly those
  // tables. Re-runs after template registration or observed DDL.
  void EnsureCatalogLoaded();

  // Builds a fresh statistics snapshot for `table` (assumed to exist).
  TableMetadata ComputeMetadata(const catalog::TableSchema& schema) const;

  double now_s() const { return now_s_.load(std::memory_order_relaxed); }

  std::string app_id_;
  crypto::KeyRing keyring_;
  engine::Database database_;
  templates::TemplateSet templates_;
  BackendOptions options_;

  ConnectionPool private_pool_;
  BackendHost* host_ = nullptr;
  MetadataCache metadata_;

  // Whether each registered query template compiles to a QueryProgram
  // (decided once at registration; prepare-time compiles of a compilable
  // template cannot fail). Shape key -> candidate template indexes.
  // Setup-phase state like templates_: mutated only by AddQueryTemplate,
  // read without locks by HandleQuery.
  std::vector<bool> compilable_;
  std::unordered_map<std::string, std::vector<size_t>> shape_to_queries_;

  std::atomic<bool> program_execution_enabled_{true};
  std::atomic<bool> statement_cache_enabled_{true};

  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> queries_executed_{0};
  std::atomic<uint64_t> duplicates_suppressed_{0};
  std::atomic<uint64_t> program_queries_{0};
  std::atomic<uint64_t> interpreter_fallback_queries_{0};
  std::atomic<uint64_t> unprepared_executions_{0};
  std::atomic<uint64_t> catalog_loads_{0};
  std::atomic<double> now_s_{0};

  // Lazy-catalog state. catalog_loaded_ is the fast-path gate (acquire /
  // release pairs with catalog_mu_); touched_tables_ and the table count the
  // last load observed are guarded by catalog_mu_.
  std::atomic<bool> catalog_loaded_{false};
  mutable Mutex catalog_mu_;
  std::set<std::string> touched_tables_ DSSP_GUARDED_BY(catalog_mu_);
  size_t observed_num_tables_ DSSP_GUARDED_BY(catalog_mu_) = 0;

  // Nonce -> applied effect, bounded FIFO. The mutex also serializes the
  // apply of nonce-carrying updates so a concurrent retry of the same nonce
  // cannot double-apply.
  Mutex dedup_mu_;
  std::unordered_map<uint64_t, engine::UpdateEffect> applied_nonces_
      DSSP_GUARDED_BY(dedup_mu_);
  std::deque<uint64_t> dedup_fifo_ DSSP_GUARDED_BY(dedup_mu_);
};

}  // namespace dssp::backend

#endif  // DSSP_BACKEND_IN_MEMORY_BACKEND_H_
