#ifndef DSSP_BACKEND_METADATA_CACHE_H_
#define DSSP_BACKEND_METADATA_CACHE_H_

#include <map>
#include <optional>
#include <string>

#include "backend/home_backend.h"
#include "common/mutex.h"

namespace dssp::backend {

// TTL'd cache of per-table metadata/statistics snapshots.
//
// A statistics pass (row counts, key shape — what a real DSSP pulls from
// information_schema + ANALYZE) is expensive relative to a point query, so
// its results are cached and served until either the TTL lapses against the
// backend's virtual clock or an explicit invalidation drops them. The
// explicit paths are the ones the paper's consistency argument needs:
// metadata must never be ambient state that silently survives DDL or
// template registration, so CreateTable-equivalent events and AddXTemplate
// both call Invalidate()/InvalidateAll() rather than waiting out the TTL.
//
// Thread-safe; the TTL clock is supplied by the caller (simulated seconds).
class MetadataCache {
 public:
  // ttl_s == 0: entries never expire (explicit invalidation only).
  explicit MetadataCache(double ttl_s) : ttl_s_(ttl_s) {}

  // The cached snapshot for `table` that is still valid at `now_s`, if any.
  // An expired entry is dropped (counted) and reported as a miss.
  std::optional<TableMetadata> Lookup(const std::string& table, double now_s);

  // Stores a fresh snapshot (counts the load that produced it).
  void Store(TableMetadata metadata);

  // Explicit invalidation: one table (DDL touching it) or everything
  // (template registration re-scopes which tables matter).
  void Invalidate(const std::string& table);
  void InvalidateAll();

  MetadataCacheStats Stats() const;
  double ttl_s() const { return ttl_s_; }

 private:
  double ttl_s_;
  mutable Mutex mu_;
  std::map<std::string, TableMetadata> entries_ DSSP_GUARDED_BY(mu_);
  uint64_t loads_ DSSP_GUARDED_BY(mu_) = 0;
  uint64_t hits_ DSSP_GUARDED_BY(mu_) = 0;
  uint64_t expirations_ DSSP_GUARDED_BY(mu_) = 0;
  uint64_t invalidations_ DSSP_GUARDED_BY(mu_) = 0;
};

}  // namespace dssp::backend

#endif  // DSSP_BACKEND_METADATA_CACHE_H_
