#ifndef DSSP_WORKLOADS_BOOKSTORE_H_
#define DSSP_WORKLOADS_BOOKSTORE_H_

#include <memory>

#include "common/random.h"
#include "workloads/application.h"

namespace dssp::workloads {

// TPC-W-like transactional online bookstore (the paper's "bookstore"
// benchmark): 28 query templates, 12 update templates over ten relations
// including credit-card transaction data. Book popularity follows a Zipf
// distribution per Brynjolfsson et al. (paper Section 5.1, footnote 5).
class BookstoreApplication : public Application {
 public:
  std::string_view name() const override { return "bookstore"; }

  // Overrides the Zipf exponent of the book-popularity distribution (call
  // before Setup). The default 0.87 matches the Brynjolfsson log-linear
  // fit the paper substitutes for TPC-W's uniform popularity; 0 restores
  // TPC-W's original uniform distribution.
  void set_item_popularity_theta(double theta) { popularity_theta_ = theta; }

  Status Setup(service::ScalableApp& app, double scale,
               uint64_t seed) override;
  std::unique_ptr<sim::SessionGenerator> NewSession(uint64_t seed) override;
  analysis::CompulsoryPolicy CompulsoryEncryption(
      const catalog::Catalog& catalog) const override;

 private:
  friend class BookstoreSession;

  // Population cardinalities (set by Setup).
  int64_t num_items_ = 0;
  int64_t num_authors_ = 0;
  int64_t num_customers_ = 0;
  int64_t num_orders_ = 0;
  int64_t num_carts_ = 0;
  int64_t num_countries_ = 0;

  // Monotonic id allocators shared by all sessions (fresh primary keys
  // never collide with base rows or with each other, which also upholds the
  // paper's non-empty-result execution assumption).
  struct Counters {
    int64_t next_order_id = 1'000'000;
    int64_t next_order_line_id = 1'000'000;
    int64_t next_cart_id = 1'000'000;
    int64_t next_cart_line_id = 1'000'000;
    int64_t next_customer_id = 1'000'000;
    int64_t next_address_id = 1'000'000;
  };
  std::shared_ptr<Counters> counters_ = std::make_shared<Counters>();
  std::shared_ptr<ZipfDistribution> item_popularity_;
  double popularity_theta_ = 0.87;
};

// The 24 book subject strings used by population and workload.
inline constexpr int kBookstoreSubjects = 24;
std::string BookstoreSubject(int64_t index);

}  // namespace dssp::workloads

#endif  // DSSP_WORKLOADS_BOOKSTORE_H_
