#include "workloads/bboard.h"

#include "common/random.h"

namespace dssp::workloads {

namespace {

using catalog::ColumnType;
using catalog::ForeignKey;
using catalog::TableSchema;
using sql::Value;

Status DefineSchema(engine::Database& db) {
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "users",
      {{"u_id", ColumnType::kInt64},
       {"u_nickname", ColumnType::kString},
       {"u_password", ColumnType::kString},
       {"u_email", ColumnType::kString},
       {"u_rating", ColumnType::kInt64},
       {"u_access", ColumnType::kInt64}},
      {"u_id"}, /*foreign_keys=*/{}, /*unique_columns=*/{"u_nickname"})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "stories",
      {{"st_id", ColumnType::kInt64},
       {"st_title", ColumnType::kString},
       {"st_body", ColumnType::kString},
       {"st_date", ColumnType::kInt64},
       {"st_author", ColumnType::kInt64},
       {"st_category", ColumnType::kInt64}},
      {"st_id"}, {ForeignKey{"st_author", "users", "u_id"}})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "comments",
      {{"c_id", ColumnType::kInt64},
       {"c_story_id", ColumnType::kInt64},
       {"c_parent", ColumnType::kInt64},
       {"c_author", ColumnType::kInt64},
       {"c_subject", ColumnType::kString},
       {"c_body", ColumnType::kString},
       {"c_date", ColumnType::kInt64},
       {"c_rating", ColumnType::kInt64}},
      {"c_id"},
      {ForeignKey{"c_story_id", "stories", "st_id"},
       ForeignKey{"c_author", "users", "u_id"}})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "moderator_log",
      {{"m_id", ColumnType::kInt64},
       {"m_user", ColumnType::kInt64},
       {"m_comment_id", ColumnType::kInt64},
       {"m_rating", ColumnType::kInt64},
       {"m_date", ColumnType::kInt64}},
      {"m_id"}, {ForeignKey{"m_user", "users", "u_id"}})));
  return Status::Ok();
}

constexpr const char* kQueries[] = {
    // Q1 storiesOfTheDay
    "SELECT st_id, st_title, st_date, u_nickname FROM stories, users "
    "WHERE stories.st_author = users.u_id AND st_date = ? "
    "ORDER BY st_date DESC LIMIT 10",
    // Q2 getStory
    "SELECT * FROM stories WHERE st_id = ?",
    // Q3 getCommentsForStory
    "SELECT c_id, c_subject, c_rating, u_nickname, c_date "
    "FROM comments, users "
    "WHERE comments.c_author = users.u_id AND c_story_id = ? "
    "ORDER BY c_date LIMIT 50",
    // Q4 getComment
    "SELECT * FROM comments WHERE c_id = ?",
    // Q5 getSubComments
    "SELECT c_id, c_subject, c_rating FROM comments WHERE c_parent = ? "
    "ORDER BY c_date",
    // Q6 getUser
    "SELECT u_nickname, u_rating, u_access FROM users WHERE u_id = ?",
    // Q7 getUserByNickname (includes password)
    "SELECT * FROM users WHERE u_nickname = ?",
    // Q8 storiesByCategory
    "SELECT st_id, st_title, st_date FROM stories WHERE st_category = ? "
    "ORDER BY st_date DESC LIMIT 25",
    // Q9 storiesByAuthor
    "SELECT st_id, st_title, st_date FROM stories WHERE st_author = ? "
    "ORDER BY st_date DESC LIMIT 25",
    // Q10 countCommentsForStory (aggregate)
    "SELECT COUNT(c_id) FROM comments WHERE c_story_id = ?",
    // Q11 avgCommentRating (aggregate)
    "SELECT AVG(c_rating) FROM comments WHERE c_author = ?",
    // Q12 recentStories
    "SELECT st_id, st_title FROM stories WHERE st_date >= ? "
    "ORDER BY st_date DESC LIMIT 10",
    // Q13 getModeratorLog
    "SELECT m_comment_id, m_rating, m_date FROM moderator_log "
    "WHERE m_user = ?",
    // Q14 userComments
    "SELECT c_id, c_subject, c_date FROM comments WHERE c_author = ? "
    "ORDER BY c_date DESC LIMIT 20",
    // Q15 getAuthorRating
    "SELECT u_rating FROM users WHERE u_id = ?",
    // Q16 searchStoriesByTitle
    "SELECT st_id, st_title FROM stories WHERE st_title = ? LIMIT 25",
    // Q17 topRatedUsers
    "SELECT u_id, u_nickname, u_rating FROM users WHERE u_rating >= ? "
    "ORDER BY u_rating DESC LIMIT 10",
    // Q18 storyAndAuthor
    "SELECT st_title, st_body, u_nickname FROM stories, users "
    "WHERE stories.st_author = users.u_id AND st_id = ?",
};

constexpr const char* kUpdates[] = {
    // U1 addComment
    "INSERT INTO comments (c_id, c_story_id, c_parent, c_author, c_subject, "
    "c_body, c_date, c_rating) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
    // U2 addStory
    "INSERT INTO stories (st_id, st_title, st_body, st_date, st_author, "
    "st_category) VALUES (?, ?, ?, ?, ?, ?)",
    // U3 rateComment
    "UPDATE comments SET c_rating = ? WHERE c_id = ?",
    // U4 updateUserRating
    "UPDATE users SET u_rating = ? WHERE u_id = ?",
    // U5 logModeration
    "INSERT INTO moderator_log (m_id, m_user, m_comment_id, m_rating, "
    "m_date) VALUES (?, ?, ?, ?, ?)",
    // U6 registerUser
    "INSERT INTO users (u_id, u_nickname, u_password, u_email, u_rating, "
    "u_access) VALUES (?, ?, ?, ?, ?, ?)",
    // U7 deleteComment
    "DELETE FROM comments WHERE c_id = ?",
    // U8 updateUserAccess
    "UPDATE users SET u_access = ? WHERE u_id = ?",
};

}  // namespace

Status BboardApplication::Setup(service::ScalableApp& app, double scale,
                                uint64_t seed) {
  engine::Database& db = app.home().database();
  DSSP_RETURN_IF_ERROR(DefineSchema(db));
  for (const char* sql : kQueries) {
    DSSP_RETURN_IF_ERROR(app.home().AddQueryTemplate(sql));
  }
  for (const char* sql : kUpdates) {
    DSSP_RETURN_IF_ERROR(app.home().AddUpdateTemplate(sql));
  }

  num_users_ = static_cast<int64_t>(1000 * scale);
  num_stories_ = static_cast<int64_t>(800 * scale);
  num_comments_ = static_cast<int64_t>(6000 * scale);
  num_categories_ = 12;
  num_days_ = 60;
  story_popularity_ = std::make_shared<ZipfDistribution>(
      static_cast<uint64_t>(num_stories_), 1.0);
  comment_popularity_ = std::make_shared<ZipfDistribution>(
      static_cast<uint64_t>(num_comments_), 0.8);

  Rng rng(seed);
  for (int64_t i = 1; i <= num_users_; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "users", {Value(i), Value("nick" + std::to_string(i)),
                  Value("pw" + std::to_string(i)),
                  Value("nick" + std::to_string(i) + "@example.com"),
                  Value(static_cast<int64_t>(rng.NextBelow(100))),
                  Value(static_cast<int64_t>(rng.NextBelow(3)))}));
  }
  for (int64_t i = 1; i <= num_stories_; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "stories",
        {Value(i), Value("story title " + std::to_string(i)),
         Value("story body " + std::to_string(i)),
         Value(static_cast<int64_t>(
             rng.NextBelow(static_cast<uint64_t>(num_days_)))),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_users_)))),
         Value(1 + static_cast<int64_t>(rng.NextBelow(
                       static_cast<uint64_t>(num_categories_))))}));
  }
  for (int64_t i = 1; i <= num_comments_; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "comments",
        {Value(i),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_stories_)))),
         Value(static_cast<int64_t>(0)),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_users_)))),
         Value("re: story"), Value("comment body " + std::to_string(i)),
         Value(static_cast<int64_t>(
             rng.NextBelow(static_cast<uint64_t>(num_days_)))),
         Value(static_cast<int64_t>(rng.NextBelow(6)))}));
  }
  const int64_t logs = num_comments_ / 10;
  for (int64_t i = 1; i <= logs; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "moderator_log",
        {Value(i),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_users_)))),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_comments_)))),
         Value(static_cast<int64_t>(rng.NextBelow(6))),
         Value(static_cast<int64_t>(
             rng.NextBelow(static_cast<uint64_t>(num_days_))))}));
  }
  return Status::Ok();
}

class BboardSession : public sim::SessionGenerator {
 public:
  explicit BboardSession(const BboardApplication* app) : app_(app) {}

  std::vector<sim::DbOp> NextPage(Rng& rng) override {
    std::vector<sim::DbOp> ops;
    auto& counters = *app_->counters_;
    const auto user = [&] {
      return Value(1 + static_cast<int64_t>(rng.NextBelow(
                           static_cast<uint64_t>(app_->num_users_))));
    };
    const auto story = [&] {
      return Value(
          static_cast<int64_t>(app_->story_popularity_->Sample(rng)));
    };
    const auto comment = [&] {
      return Value(
          static_cast<int64_t>(app_->comment_popularity_->Sample(rng)));
    };
    const auto day = [&] {
      return Value(static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(app_->num_days_))));
    };

    const double roll = rng.NextDouble();
    if (roll < 0.30) {
      // Front page: stories of the day, then a comment count per story
      // (this is the ~10-requests-per-page pattern the paper describes).
      ops.push_back({false, "Q1", {day()}});
      for (int i = 0; i < 8; ++i) {
        ops.push_back({false, "Q10", {story()}});
      }
      ops.push_back({false, "Q12", {day()}});
    } else if (roll < 0.55) {
      // Read a story with its comments and author details.
      const Value st = story();
      ops.push_back({false, "Q2", {st}});
      ops.push_back({false, "Q18", {st}});
      ops.push_back({false, "Q3", {st}});
      ops.push_back({false, "Q10", {st}});
      for (int i = 0; i < 4; ++i) {
        ops.push_back({false, "Q4", {comment()}});
        ops.push_back({false, "Q15", {user()}});
      }
    } else if (roll < 0.68) {
      // Browse by category / author.
      ops.push_back(
          {false, "Q8",
           {Value(1 + static_cast<int64_t>(rng.NextBelow(
                          static_cast<uint64_t>(app_->num_categories_))))}});
      ops.push_back({false, "Q9", {user()}});
      ops.push_back({false, "Q17", {Value(static_cast<int64_t>(80))}});
    } else if (roll < 0.82) {
      // Post a comment.
      const Value st = story();
      ops.push_back({false, "Q2", {st}});
      ops.push_back({true,
                     "U1",
                     {Value(counters.next_comment_id++), st,
                      Value(static_cast<int64_t>(0)), user(),
                      Value("re: story"), Value("fresh comment body"),
                      day(), Value(static_cast<int64_t>(0))}});
      ops.push_back({false, "Q3", {st}});
      ops.push_back({false, "Q10", {st}});
    } else if (roll < 0.88) {
      // Moderate: rate a base comment, log it, adjust author rating.
      const Value cm = comment();
      const Value rating = Value(static_cast<int64_t>(rng.NextBelow(6)));
      ops.push_back({false, "Q4", {cm}});
      ops.push_back({true, "U3", {rating, cm}});
      ops.push_back({true,
                     "U5",
                     {Value(counters.next_log_id++), user(), cm, rating,
                      day()}});
      ops.push_back({true,
                     "U4",
                     {Value(static_cast<int64_t>(rng.NextBelow(100))),
                      user()}});
      ops.push_back({false, "Q13", {user()}});
    } else if (roll < 0.94) {
      // Submit a story.
      const int64_t st_id = counters.next_story_id++;
      ops.push_back({true,
                     "U2",
                     {Value(st_id), Value("new story " +
                                          std::to_string(st_id)),
                      Value("new story body"), day(), user(),
                      Value(1 + static_cast<int64_t>(rng.NextBelow(
                                    static_cast<uint64_t>(
                                        app_->num_categories_))))}});
      ops.push_back({false, "Q1", {day()}});
    } else if (roll < 0.97) {
      if (rng.NextBool(0.3)) {
        // A newcomer registers first.
        const int64_t uid = counters.next_user_id++;
        ops.push_back({true,
                       "U6",
                       {Value(uid),
                        Value("newnick" + std::to_string(uid)), Value("pw"),
                        Value("new@example.com"),
                        Value(static_cast<int64_t>(0)),
                        Value(static_cast<int64_t>(0))}});
      }
      // User pages.
      ops.push_back({false, "Q6", {user()}});
      ops.push_back({false, "Q14", {user()}});
      ops.push_back({false, "Q11", {user()}});
      ops.push_back(
          {false, "Q7",
           {Value("nick" +
                  std::to_string(1 + rng.NextBelow(static_cast<uint64_t>(
                                         app_->num_users_))))}});
    } else {
      // Admin: delete a base comment, tweak a user's access level.
      ops.push_back({true, "U7", {comment()}});
      ops.push_back({true,
                     "U8",
                     {Value(static_cast<int64_t>(rng.NextBelow(3))),
                      user()}});
      ops.push_back({false, "Q5", {comment()}});
    }
    return ops;
  }

 private:
  const BboardApplication* app_;
};

std::unique_ptr<sim::SessionGenerator> BboardApplication::NewSession(
    uint64_t seed) {
  (void)seed;
  return std::make_unique<BboardSession>(this);
}

analysis::CompulsoryPolicy BboardApplication::CompulsoryEncryption(
    const catalog::Catalog& catalog) const {
  (void)catalog;
  analysis::CompulsoryPolicy policy;
  policy.sensitive_attributes.insert(
      templates::AttributeId{"users", "u_password"});
  return policy;
}

}  // namespace dssp::workloads
