#ifndef DSSP_WORKLOADS_AUCTION_H_
#define DSSP_WORKLOADS_AUCTION_H_

#include <memory>

#include "common/random.h"
#include "workloads/application.h"

namespace dssp::workloads {

// RUBiS-like eBay-style auction site (the paper's "auction" benchmark):
// 22 query templates, 10 update templates over seven relations. Two
// templates (category and region listings) have empty selection predicates,
// realistically violating the Section 2.1.1 assumptions for a small
// fraction of pairs, as the paper reports for one of its benchmarks.
class AuctionApplication : public Application {
 public:
  std::string_view name() const override { return "auction"; }
  Status Setup(service::ScalableApp& app, double scale,
               uint64_t seed) override;
  std::unique_ptr<sim::SessionGenerator> NewSession(uint64_t seed) override;
  analysis::CompulsoryPolicy CompulsoryEncryption(
      const catalog::Catalog& catalog) const override;

 private:
  friend class AuctionSession;

  int64_t num_regions_ = 0;
  int64_t num_categories_ = 0;
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  int64_t num_bids_ = 0;
  int64_t num_comments_ = 0;

  struct Counters {
    int64_t next_bid_id = 1'000'000;
    int64_t next_comment_id = 1'000'000;
    int64_t next_item_id = 1'000'000;
    int64_t next_user_id = 1'000'000;
    int64_t next_buy_now_id = 1'000'000;
  };
  std::shared_ptr<Counters> counters_ = std::make_shared<Counters>();
  // Item popularity is skewed: a few hot auctions draw most traffic.
  std::shared_ptr<ZipfDistribution> item_popularity_;
};

}  // namespace dssp::workloads

#endif  // DSSP_WORKLOADS_AUCTION_H_
