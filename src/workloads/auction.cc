#include "workloads/auction.h"

#include "common/random.h"

namespace dssp::workloads {

namespace {

using catalog::ColumnType;
using catalog::ForeignKey;
using catalog::TableSchema;
using sql::Value;

Status DefineSchema(engine::Database& db) {
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "regions",
      {{"r_id", ColumnType::kInt64}, {"r_name", ColumnType::kString}},
      {"r_id"})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "categories",
      {{"cat_id", ColumnType::kInt64}, {"cat_name", ColumnType::kString}},
      {"cat_id"})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "users",
      {{"u_id", ColumnType::kInt64},
       {"u_nickname", ColumnType::kString},
       {"u_password", ColumnType::kString},
       {"u_email", ColumnType::kString},
       {"u_rating", ColumnType::kInt64},
       {"u_balance", ColumnType::kDouble},
       {"u_region", ColumnType::kInt64}},
      {"u_id"}, {ForeignKey{"u_region", "regions", "r_id"}},
      /*unique_columns=*/{"u_nickname"})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "items",
      {{"it_id", ColumnType::kInt64},
       {"it_name", ColumnType::kString},
       {"it_description", ColumnType::kString},
       {"it_initial_price", ColumnType::kDouble},
       {"it_max_bid", ColumnType::kDouble},
       {"it_nb_bids", ColumnType::kInt64},
       {"it_start_date", ColumnType::kInt64},
       {"it_end_date", ColumnType::kInt64},
       {"it_seller", ColumnType::kInt64},
       {"it_category", ColumnType::kInt64}},
      {"it_id"},
      {ForeignKey{"it_seller", "users", "u_id"},
       ForeignKey{"it_category", "categories", "cat_id"}})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "bids",
      {{"b_id", ColumnType::kInt64},
       {"b_user_id", ColumnType::kInt64},
       {"b_item_id", ColumnType::kInt64},
       {"b_qty", ColumnType::kInt64},
       {"b_bid", ColumnType::kDouble},
       {"b_date", ColumnType::kInt64}},
      {"b_id"},
      {ForeignKey{"b_user_id", "users", "u_id"},
       ForeignKey{"b_item_id", "items", "it_id"}})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "comments",
      {{"cm_id", ColumnType::kInt64},
       {"cm_from_user", ColumnType::kInt64},
       {"cm_to_user", ColumnType::kInt64},
       {"cm_item_id", ColumnType::kInt64},
       {"cm_rating", ColumnType::kInt64},
       {"cm_date", ColumnType::kInt64},
       {"cm_comment", ColumnType::kString}},
      {"cm_id"},
      {ForeignKey{"cm_from_user", "users", "u_id"},
       ForeignKey{"cm_to_user", "users", "u_id"},
       ForeignKey{"cm_item_id", "items", "it_id"}})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "buy_now",
      {{"bn_id", ColumnType::kInt64},
       {"bn_buyer", ColumnType::kInt64},
       {"bn_item", ColumnType::kInt64},
       {"bn_qty", ColumnType::kInt64},
       {"bn_date", ColumnType::kInt64}},
      {"bn_id"},
      {ForeignKey{"bn_buyer", "users", "u_id"},
       ForeignKey{"bn_item", "items", "it_id"}})));
  return Status::Ok();
}

constexpr const char* kQueries[] = {
    // Q1 listCategories (empty predicate: realistic assumption violation)
    "SELECT cat_id, cat_name FROM categories",
    // Q2 listRegions
    "SELECT r_id, r_name FROM regions WHERE r_id >= ?",
    // Q3 getUser
    "SELECT u_nickname, u_rating FROM users WHERE u_id = ?",
    // Q4 getUserByNickname (full record; includes password)
    "SELECT * FROM users WHERE u_nickname = ?",
    // Q5 getItem
    "SELECT * FROM items WHERE it_id = ?",
    // Q6 searchItemsByCategory
    "SELECT it_id, it_name, it_initial_price, it_max_bid, it_end_date "
    "FROM items WHERE it_category = ? ORDER BY it_end_date LIMIT 25",
    // Q7 searchItemsByRegion
    "SELECT it_id, it_name, u_nickname FROM items, users "
    "WHERE items.it_seller = users.u_id AND u_region = ? LIMIT 25",
    // Q8 viewBidHistory
    "SELECT b_id, u_nickname, b_bid, b_date FROM bids, users "
    "WHERE bids.b_user_id = users.u_id AND b_item_id = ? "
    "ORDER BY b_date DESC",
    // Q9 getMaxBid (aggregate)
    "SELECT MAX(b_bid) FROM bids WHERE b_item_id = ?",
    // Q10 countBids (aggregate)
    "SELECT COUNT(b_id) FROM bids WHERE b_item_id = ?",
    // Q11 viewUserComments
    "SELECT cm_rating, cm_date, cm_comment, u_nickname "
    "FROM comments, users "
    "WHERE comments.cm_from_user = users.u_id AND cm_to_user = ?",
    // Q12 getItemComments
    "SELECT cm_rating, cm_comment FROM comments WHERE cm_item_id = ?",
    // Q13 aboutMeBids
    "SELECT b_item_id, b_bid, b_date FROM bids WHERE b_user_id = ? "
    "ORDER BY b_date DESC LIMIT 20",
    // Q14 aboutMeItems
    "SELECT it_id, it_name, it_max_bid FROM items WHERE it_seller = ? "
    "ORDER BY it_end_date DESC LIMIT 20",
    // Q15 aboutMeBuyNow
    "SELECT bn_item, bn_qty, bn_date, it_name FROM buy_now, items "
    "WHERE buy_now.bn_item = items.it_id AND bn_buyer = ?",
    // Q16 getItemBids
    "SELECT b_bid, b_qty FROM bids WHERE b_item_id = ? "
    "ORDER BY b_bid DESC LIMIT 10",
    // Q17 getUserBalance
    "SELECT u_balance FROM users WHERE u_id = ?",
    // Q18 getCategoryName
    "SELECT cat_name FROM categories WHERE cat_id = ?",
    // Q19 getRegionUsers
    "SELECT u_id, u_nickname FROM users WHERE u_region = ? LIMIT 50",
    // Q20 getItemSellerInfo
    "SELECT it_name, u_nickname, u_rating FROM items, users "
    "WHERE items.it_seller = users.u_id AND it_id = ?",
    // Q21 topRatedUsers
    "SELECT u_id, u_nickname, u_rating FROM users WHERE u_rating >= ? "
    "ORDER BY u_rating DESC LIMIT 10",
    // Q22 hotItems
    "SELECT it_id, it_name, it_nb_bids FROM items WHERE it_category = ? "
    "ORDER BY it_nb_bids DESC LIMIT 10",
};

constexpr const char* kUpdates[] = {
    // U1 storeBid
    "INSERT INTO bids (b_id, b_user_id, b_item_id, b_qty, b_bid, b_date) "
    "VALUES (?, ?, ?, ?, ?, ?)",
    // U2 updateItemMaxBid
    "UPDATE items SET it_max_bid = ?, it_nb_bids = ? WHERE it_id = ?",
    // U3 storeComment
    "INSERT INTO comments (cm_id, cm_from_user, cm_to_user, cm_item_id, "
    "cm_rating, cm_date, cm_comment) VALUES (?, ?, ?, ?, ?, ?, ?)",
    // U4 updateUserRating
    "UPDATE users SET u_rating = ? WHERE u_id = ?",
    // U5 registerItem
    "INSERT INTO items (it_id, it_name, it_description, it_initial_price, "
    "it_max_bid, it_nb_bids, it_start_date, it_end_date, it_seller, "
    "it_category) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
    // U6 registerUser
    "INSERT INTO users (u_id, u_nickname, u_password, u_email, u_rating, "
    "u_balance, u_region) VALUES (?, ?, ?, ?, ?, ?, ?)",
    // U7 storeBuyNow
    "INSERT INTO buy_now (bn_id, bn_buyer, bn_item, bn_qty, bn_date) "
    "VALUES (?, ?, ?, ?, ?)",
    // U8 updateItemDescription
    "UPDATE items SET it_description = ? WHERE it_id = ?",
    // U9 adminRemoveBid
    "DELETE FROM bids WHERE b_id = ?",
    // U10 adminRemoveComment
    "DELETE FROM comments WHERE cm_id = ?",
};

}  // namespace

Status AuctionApplication::Setup(service::ScalableApp& app, double scale,
                                 uint64_t seed) {
  engine::Database& db = app.home().database();
  DSSP_RETURN_IF_ERROR(DefineSchema(db));
  for (const char* sql : kQueries) {
    DSSP_RETURN_IF_ERROR(app.home().AddQueryTemplate(sql));
  }
  for (const char* sql : kUpdates) {
    DSSP_RETURN_IF_ERROR(app.home().AddUpdateTemplate(sql));
  }

  num_regions_ = 10;
  num_categories_ = 20;
  num_users_ = static_cast<int64_t>(1000 * scale);
  num_items_ = static_cast<int64_t>(1500 * scale);
  num_bids_ = static_cast<int64_t>(5000 * scale);
  num_comments_ = static_cast<int64_t>(1000 * scale);
  item_popularity_ = std::make_shared<ZipfDistribution>(
      static_cast<uint64_t>(num_items_), 0.95);

  Rng rng(seed);
  for (int64_t i = 1; i <= num_regions_; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "regions", {Value(i), Value("region" + std::to_string(i))}));
  }
  for (int64_t i = 1; i <= num_categories_; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "categories", {Value(i), Value("category" + std::to_string(i))}));
  }
  for (int64_t i = 1; i <= num_users_; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "users",
        {Value(i), Value("nick" + std::to_string(i)),
         Value("pw" + std::to_string(i)),
         Value("nick" + std::to_string(i) + "@example.com"),
         Value(static_cast<int64_t>(rng.NextBelow(50))),
         Value(static_cast<double>(rng.NextBelow(100000)) / 100.0),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_regions_))))}));
  }
  for (int64_t i = 1; i <= num_items_; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "items",
        {Value(i), Value("item" + std::to_string(i)),
         Value("description of item " + std::to_string(i)),
         Value(1.0 + static_cast<double>(rng.NextBelow(5000)) / 100.0),
         Value(0.0), Value(static_cast<int64_t>(0)),
         Value(static_cast<int64_t>(rng.NextBelow(100))),
         Value(100 + static_cast<int64_t>(rng.NextBelow(100))),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_users_)))),
         Value(1 + static_cast<int64_t>(rng.NextBelow(
                       static_cast<uint64_t>(num_categories_))))}));
  }
  for (int64_t i = 1; i <= num_bids_; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "bids",
        {Value(i),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_users_)))),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_items_)))),
         Value(static_cast<int64_t>(1)),
         Value(1.0 + static_cast<double>(rng.NextBelow(10000)) / 100.0),
         Value(static_cast<int64_t>(rng.NextBelow(100)))}));
  }
  for (int64_t i = 1; i <= num_comments_; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "comments",
        {Value(i),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_users_)))),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_users_)))),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_items_)))),
         Value(static_cast<int64_t>(rng.NextBelow(6))),
         Value(static_cast<int64_t>(rng.NextBelow(100))),
         Value("comment " + std::to_string(i))}));
  }
  const int64_t buy_nows = num_items_ / 5;
  for (int64_t i = 1; i <= buy_nows; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "buy_now",
        {Value(i),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_users_)))),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(num_items_)))),
         Value(static_cast<int64_t>(1)),
         Value(static_cast<int64_t>(rng.NextBelow(100)))}));
  }
  return Status::Ok();
}

class AuctionSession : public sim::SessionGenerator {
 public:
  explicit AuctionSession(const AuctionApplication* app) : app_(app) {}

  std::vector<sim::DbOp> NextPage(Rng& rng) override {
    std::vector<sim::DbOp> ops;
    auto& counters = *app_->counters_;
    const auto user = [&] {
      return Value(1 + static_cast<int64_t>(rng.NextBelow(
                           static_cast<uint64_t>(app_->num_users_))));
    };
    const auto item = [&] {
      return Value(
          static_cast<int64_t>(app_->item_popularity_->Sample(rng)));
    };
    const auto category = [&] {
      return Value(1 + static_cast<int64_t>(rng.NextBelow(
                           static_cast<uint64_t>(app_->num_categories_))));
    };

    const double roll = rng.NextDouble();
    if (roll < 0.18) {
      // Browse categories -> category listing.
      ops.push_back({false, "Q1", {}});
      ops.push_back({false, "Q6", {category()}});
    } else if (roll < 0.30) {
      // Browse regions -> region items.
      ops.push_back({false, "Q2", {Value(1)}});
      ops.push_back(
          {false, "Q7",
           {Value(1 + static_cast<int64_t>(rng.NextBelow(
                          static_cast<uint64_t>(app_->num_regions_))))}});
    } else if (roll < 0.54) {
      // View item + bid info.
      const Value it = item();
      ops.push_back({false, "Q5", {it}});
      ops.push_back({false, "Q9", {it}});
      ops.push_back({false, "Q10", {it}});
      ops.push_back({false, "Q20", {it}});
    } else if (roll < 0.66) {
      // Bid history / top bids.
      const Value it = item();
      ops.push_back({false, "Q8", {it}});
      ops.push_back({false, "Q16", {it}});
    } else if (roll < 0.74) {
      // Place a bid: store bid and refresh the item's max-bid columns.
      const Value it = item();
      const double amount =
          1.0 + static_cast<double>(rng.NextBelow(20000)) / 100.0;
      ops.push_back({true,
                     "U1",
                     {Value(counters.next_bid_id++), user(), it,
                      Value(static_cast<int64_t>(1)), Value(amount),
                      Value(static_cast<int64_t>(rng.NextBelow(100)))}});
      ops.push_back({true,
                     "U2",
                     {Value(amount),
                      Value(static_cast<int64_t>(rng.NextBelow(50)) + 1),
                      it}});
      ops.push_back({false, "Q9", {it}});
    } else if (roll < 0.82) {
      // User pages.
      ops.push_back({false, "Q3", {user()}});
      ops.push_back({false, "Q11", {user()}});
      ops.push_back({false, "Q13", {user()}});
      ops.push_back({false, "Q14", {user()}});
    } else if (roll < 0.87) {
      // Leave a comment and adjust the target's rating.
      const Value target = user();
      ops.push_back(
          {true,
           "U3",
           {Value(counters.next_comment_id++), user(), target, item(),
            Value(static_cast<int64_t>(rng.NextBelow(6))),
            Value(static_cast<int64_t>(rng.NextBelow(100))),
            Value("new comment")}});
      ops.push_back({true,
                     "U4",
                     {Value(static_cast<int64_t>(rng.NextBelow(50))),
                      target}});
    } else if (roll < 0.92) {
      // Sell an item.
      const int64_t listed = counters.next_item_id++;
      ops.push_back(
          {true,
           "U5",
           {Value(listed), Value("new item"),
            Value("freshly listed"), Value(9.99), Value(0.0),
            Value(static_cast<int64_t>(0)),
            Value(static_cast<int64_t>(rng.NextBelow(100))),
            Value(200 + static_cast<int64_t>(rng.NextBelow(100))), user(),
            category()}});
      if (rng.NextBool(0.4)) {
        // The seller immediately polishes the listing text.
        ops.push_back({true, "U8", {Value("improved description"),
                                    Value(listed)}});
      }
      ops.push_back({false, "Q22", {category()}});
    } else if (roll < 0.96) {
      // Buy-now flow.
      ops.push_back({true,
                     "U7",
                     {Value(counters.next_buy_now_id++), user(), item(),
                      Value(static_cast<int64_t>(1)),
                      Value(static_cast<int64_t>(rng.NextBelow(100)))}});
      ops.push_back({false, "Q15", {user()}});
    } else if (roll < 0.98) {
      // Register a user.
      const int64_t uid = counters.next_user_id++;
      ops.push_back(
          {true,
           "U6",
           {Value(uid), Value("newnick" + std::to_string(uid)), Value("pw"),
            Value("n@example.com"), Value(static_cast<int64_t>(0)),
            Value(0.0),
            Value(1 + static_cast<int64_t>(rng.NextBelow(
                          static_cast<uint64_t>(app_->num_regions_))))}});
      ops.push_back({false, "Q21", {Value(static_cast<int64_t>(40))}});
    } else {
      // Admin cleanup: remove a base bid/comment (fresh ids are never
      // re-queried by primary key, so the execution assumptions hold).
      if (rng.NextBool(0.5)) {
        ops.push_back(
            {true, "U9",
             {Value(1 + static_cast<int64_t>(rng.NextBelow(
                            static_cast<uint64_t>(app_->num_bids_))))}});
      } else {
        ops.push_back(
            {true, "U10",
             {Value(1 + static_cast<int64_t>(rng.NextBelow(
                            static_cast<uint64_t>(app_->num_comments_))))}});
      }
      ops.push_back({false, "Q12", {item()}});
    }
    return ops;
  }

 private:
  const AuctionApplication* app_;
};

std::unique_ptr<sim::SessionGenerator> AuctionApplication::NewSession(
    uint64_t seed) {
  (void)seed;
  return std::make_unique<AuctionSession>(this);
}

analysis::CompulsoryPolicy AuctionApplication::CompulsoryEncryption(
    const catalog::Catalog& catalog) const {
  (void)catalog;
  analysis::CompulsoryPolicy policy;
  // Stored passwords are the auction site's legally sensitive data.
  policy.sensitive_attributes.insert(
      templates::AttributeId{"users", "u_password"});
  return policy;
}

}  // namespace dssp::workloads
