#include "workloads/bookstore.h"

namespace dssp::workloads {

namespace {

using catalog::Column;
using catalog::ColumnType;
using catalog::ForeignKey;
using catalog::TableSchema;
using sql::Value;

Status DefineSchema(engine::Database& db) {
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "country",
      {{"co_id", ColumnType::kInt64}, {"co_name", ColumnType::kString}},
      {"co_id"})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "address",
      {{"addr_id", ColumnType::kInt64},
       {"addr_street", ColumnType::kString},
       {"addr_city", ColumnType::kString},
       {"addr_zip", ColumnType::kInt64},
       {"addr_co_id", ColumnType::kInt64}},
      {"addr_id"}, {ForeignKey{"addr_co_id", "country", "co_id"}})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "customer",
      {{"c_id", ColumnType::kInt64},
       {"c_uname", ColumnType::kString},
       {"c_passwd", ColumnType::kString},
       {"c_fname", ColumnType::kString},
       {"c_lname", ColumnType::kString},
       {"c_addr_id", ColumnType::kInt64},
       {"c_email", ColumnType::kString},
       {"c_discount", ColumnType::kDouble}},
      {"c_id"}, {ForeignKey{"c_addr_id", "address", "addr_id"}},
      /*unique_columns=*/{"c_uname"})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "author",
      {{"a_id", ColumnType::kInt64},
       {"a_fname", ColumnType::kString},
       {"a_lname", ColumnType::kString}},
      {"a_id"})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "item",
      {{"i_id", ColumnType::kInt64},
       {"i_title", ColumnType::kString},
       {"i_a_id", ColumnType::kInt64},
       {"i_subject", ColumnType::kString},
       {"i_cost", ColumnType::kDouble},
       {"i_stock", ColumnType::kInt64},
       {"i_pub_date", ColumnType::kInt64},
       {"i_srp", ColumnType::kDouble}},
      {"i_id"}, {ForeignKey{"i_a_id", "author", "a_id"}})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "orders",
      {{"o_id", ColumnType::kInt64},
       {"o_c_id", ColumnType::kInt64},
       {"o_date", ColumnType::kInt64},
       {"o_total", ColumnType::kDouble},
       {"o_status", ColumnType::kString}},
      {"o_id"}, {ForeignKey{"o_c_id", "customer", "c_id"}})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "order_line",
      {{"ol_id", ColumnType::kInt64},
       {"ol_o_id", ColumnType::kInt64},
       {"ol_i_id", ColumnType::kInt64},
       {"ol_qty", ColumnType::kInt64},
       {"ol_discount", ColumnType::kDouble}},
      {"ol_id"},
      {ForeignKey{"ol_o_id", "orders", "o_id"},
       ForeignKey{"ol_i_id", "item", "i_id"}})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "cc_xacts",
      {{"cx_o_id", ColumnType::kInt64},
       {"cx_type", ColumnType::kString},
       {"cx_num", ColumnType::kString},
       {"cx_name", ColumnType::kString},
       {"cx_expiry", ColumnType::kInt64},
       {"cx_amount", ColumnType::kDouble}},
      {"cx_o_id"}, {ForeignKey{"cx_o_id", "orders", "o_id"}})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "shopping_cart",
      {{"sc_id", ColumnType::kInt64}, {"sc_date", ColumnType::kInt64}},
      {"sc_id"})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "shopping_cart_line",
      {{"scl_id", ColumnType::kInt64},
       {"scl_sc_id", ColumnType::kInt64},
       {"scl_i_id", ColumnType::kInt64},
       {"scl_qty", ColumnType::kInt64}},
      {"scl_id"},
      {ForeignKey{"scl_sc_id", "shopping_cart", "sc_id"},
       ForeignKey{"scl_i_id", "item", "i_id"}})));
  return Status::Ok();
}

// The 28 query templates (TPC-W interaction queries, LIKE-free forms).
constexpr const char* kQueries[] = {
    // Q1 getName
    "SELECT c_fname, c_lname FROM customer WHERE c_id = ?",
    // Q2 getBook
    "SELECT i_id, i_title, i_cost, i_stock, i_subject, a_fname, a_lname "
    "FROM item, author WHERE item.i_a_id = author.a_id AND i_id = ?",
    // Q3 getCustomer (full record, includes password + discount)
    "SELECT * FROM customer WHERE c_uname = ?",
    // Q4 doSubjectSearch
    "SELECT i_id, i_title, a_fname, a_lname FROM item, author "
    "WHERE item.i_a_id = author.a_id AND i_subject = ? "
    "ORDER BY i_title LIMIT 50",
    // Q5 doTitleSearch
    "SELECT i_id, i_title, a_fname, a_lname FROM item, author "
    "WHERE item.i_a_id = author.a_id AND i_title = ? "
    "ORDER BY i_title LIMIT 50",
    // Q6 doAuthorSearch
    "SELECT i_id, i_title, a_fname, a_lname FROM item, author "
    "WHERE item.i_a_id = author.a_id AND a_lname = ? "
    "ORDER BY i_title LIMIT 50",
    // Q7 getNewProducts
    "SELECT i_id, i_title, a_fname, a_lname FROM item, author "
    "WHERE item.i_a_id = author.a_id AND i_subject = ? "
    "ORDER BY i_pub_date DESC, i_title LIMIT 50",
    // Q8 getBestSellers (aggregate)
    "SELECT ol_i_id, SUM(ol_qty) FROM order_line, item "
    "WHERE order_line.ol_i_id = item.i_id AND i_subject = ? "
    "GROUP BY ol_i_id ORDER BY ol_i_id LIMIT 50",
    // Q9 getRelated
    "SELECT i_id, i_title, i_cost FROM item WHERE i_subject = ? LIMIT 5",
    // Q10 getUserName
    "SELECT c_uname FROM customer WHERE c_id = ?",
    // Q11 getPassword
    "SELECT c_passwd FROM customer WHERE c_uname = ?",
    // Q12 getItemLite
    "SELECT i_id, i_title, i_cost FROM item WHERE i_id = ?",
    // Q13 getMostRecentOrderId
    "SELECT o_id FROM orders WHERE o_c_id = ? ORDER BY o_date DESC LIMIT 1",
    // Q14 getMostRecentOrderOrder
    "SELECT * FROM orders WHERE o_id = ?",
    // Q15 getMostRecentOrderLines
    "SELECT ol_i_id, ol_qty, ol_discount, i_title, i_cost "
    "FROM order_line, item "
    "WHERE order_line.ol_i_id = item.i_id AND ol_o_id = ?",
    // Q16 getCart
    "SELECT scl_i_id, scl_qty, i_title, i_cost "
    "FROM shopping_cart_line, item "
    "WHERE shopping_cart_line.scl_i_id = item.i_id AND scl_sc_id = ?",
    // Q17 getCartLine
    "SELECT scl_id, scl_qty FROM shopping_cart_line "
    "WHERE scl_sc_id = ? AND scl_i_id = ?",
    // Q18 getStock
    "SELECT i_stock FROM item WHERE i_id = ?",
    // Q19 getCDiscount
    "SELECT c_discount FROM customer WHERE c_id = ?",
    // Q20 getCAddr
    "SELECT c_addr_id FROM customer WHERE c_id = ?",
    // Q21 getAddress
    "SELECT addr_street, addr_city, addr_zip, co_name "
    "FROM address, country "
    "WHERE address.addr_co_id = country.co_id AND addr_id = ?",
    // Q22 getCountryId
    "SELECT co_id FROM country WHERE co_name = ?",
    // Q23 getOrderStatus
    "SELECT o_status, o_total FROM orders WHERE o_id = ?",
    // Q24 getCCXact (credit-card data!)
    "SELECT cx_type, cx_num, cx_name, cx_expiry, cx_amount "
    "FROM cc_xacts WHERE cx_o_id = ?",
    // Q25 countOrders (aggregate)
    "SELECT COUNT(o_id) FROM orders WHERE o_c_id = ?",
    // Q26 getSubjectList (aggregate)
    "SELECT i_subject, COUNT(i_id) FROM item WHERE i_cost >= ? "
    "GROUP BY i_subject ORDER BY i_subject",
    // Q27 getAvgItemCost (aggregate)
    "SELECT AVG(i_cost) FROM item WHERE i_subject = ?",
    // Q28 getCheapestBySubject
    "SELECT i_id, i_title, i_cost FROM item WHERE i_subject = ? "
    "ORDER BY i_cost LIMIT 10",
};

// The 12 update templates.
constexpr const char* kUpdates[] = {
    // U1 enterAddress
    "INSERT INTO address (addr_id, addr_street, addr_city, addr_zip, "
    "addr_co_id) VALUES (?, ?, ?, ?, ?)",
    // U2 createNewCustomer
    "INSERT INTO customer (c_id, c_uname, c_passwd, c_fname, c_lname, "
    "c_addr_id, c_email, c_discount) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
    // U3 createOrder
    "INSERT INTO orders (o_id, o_c_id, o_date, o_total, o_status) "
    "VALUES (?, ?, ?, ?, ?)",
    // U4 addOrderLine
    "INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount) "
    "VALUES (?, ?, ?, ?, ?)",
    // U5 enterCCXact (credit-card data!)
    "INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name, cx_expiry, "
    "cx_amount) VALUES (?, ?, ?, ?, ?, ?)",
    // U6 setStock
    "UPDATE item SET i_stock = ? WHERE i_id = ?",
    // U7 createCart
    "INSERT INTO shopping_cart (sc_id, sc_date) VALUES (?, ?)",
    // U8 addCartLine
    "INSERT INTO shopping_cart_line (scl_id, scl_sc_id, scl_i_id, scl_qty) "
    "VALUES (?, ?, ?, ?)",
    // U9 updateCartLine
    "UPDATE shopping_cart_line SET scl_qty = ? WHERE scl_id = ?",
    // U10 clearCart
    "DELETE FROM shopping_cart_line WHERE scl_sc_id = ?",
    // U11 adminUpdateItem
    "UPDATE item SET i_cost = ?, i_pub_date = ? WHERE i_id = ?",
    // U12 updateOrderStatus
    "UPDATE orders SET o_status = ? WHERE o_id = ?",
};

Status Populate(engine::Database& db, const BookstoreApplication& app,
                int64_t items, int64_t authors, int64_t customers,
                int64_t orders, int64_t carts, int64_t countries,
                uint64_t seed) {
  (void)app;
  Rng rng(seed);
  for (int64_t i = 1; i <= countries; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "country", {Value(i), Value("country" + std::to_string(i))}));
  }
  for (int64_t i = 1; i <= customers; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "address", {Value(i), Value("street" + std::to_string(i)),
                    Value("city" + std::to_string(i % 200)),
                    Value(10000 + i % 1000),
                    Value(1 + static_cast<int64_t>(rng.NextBelow(
                                  static_cast<uint64_t>(countries))))}));
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "customer",
        {Value(i), Value("user" + std::to_string(i)),
         Value("pw" + std::to_string(i)), Value("First" + std::to_string(i)),
         Value("Last" + std::to_string(i % 500)), Value(i),
         Value("user" + std::to_string(i) + "@example.com"),
         Value(static_cast<double>(rng.NextBelow(10)) / 100.0)}));
  }
  for (int64_t i = 1; i <= authors; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "author", {Value(i), Value("AFirst" + std::to_string(i)),
                   Value("ALast" + std::to_string(i))}));
  }
  for (int64_t i = 1; i <= items; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "item",
        {Value(i), Value("Book Title " + std::to_string(i)),
         Value(1 + static_cast<int64_t>(
                       rng.NextBelow(static_cast<uint64_t>(authors)))),
         Value(BookstoreSubject(i % kBookstoreSubjects)),
         Value(5.0 + static_cast<double>(rng.NextBelow(9500)) / 100.0),
         Value(static_cast<int64_t>(rng.NextBelow(300)) + 10),
         Value(static_cast<int64_t>(rng.NextBelow(3650))),
         Value(10.0 + static_cast<double>(rng.NextBelow(9000)) / 100.0)}));
  }
  int64_t order_line_id = 1;
  for (int64_t i = 1; i <= orders; ++i) {
    const int64_t customer = 1 + static_cast<int64_t>(rng.NextBelow(
                                     static_cast<uint64_t>(customers)));
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "orders", {Value(i), Value(customer),
                   Value(static_cast<int64_t>(rng.NextBelow(365))),
                   Value(20.0 + static_cast<double>(rng.NextBelow(20000)) /
                                    100.0),
                   Value("shipped")}));
    const int64_t lines = 1 + static_cast<int64_t>(rng.NextBelow(3));
    for (int64_t l = 0; l < lines; ++l) {
      DSSP_RETURN_IF_ERROR(db.InsertRow(
          "order_line",
          {Value(order_line_id++), Value(i),
           Value(1 + static_cast<int64_t>(
                         rng.NextBelow(static_cast<uint64_t>(items)))),
           Value(1 + static_cast<int64_t>(rng.NextBelow(4))),
           Value(0.0)}));
    }
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "cc_xacts",
        {Value(i), Value("VISA"),
         Value("4000-" + std::to_string(100000 + i)),
         Value("CARDHOLDER " + std::to_string(customer)),
         Value(static_cast<int64_t>(rng.NextBelow(48)) + 1),
         Value(20.0 + static_cast<double>(rng.NextBelow(20000)) / 100.0)}));
  }
  int64_t cart_line_id = 1;
  for (int64_t i = 1; i <= carts; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "shopping_cart",
        {Value(i), Value(static_cast<int64_t>(rng.NextBelow(365)))}));
    const int64_t lines = static_cast<int64_t>(rng.NextBelow(3));
    for (int64_t l = 0; l < lines; ++l) {
      DSSP_RETURN_IF_ERROR(db.InsertRow(
          "shopping_cart_line",
          {Value(cart_line_id++), Value(i),
           Value(1 + static_cast<int64_t>(
                         rng.NextBelow(static_cast<uint64_t>(items)))),
           Value(1 + static_cast<int64_t>(rng.NextBelow(3)))}));
    }
  }
  return Status::Ok();
}

}  // namespace

std::string BookstoreSubject(int64_t index) {
  static constexpr const char* kSubjects[kBookstoreSubjects] = {
      "ARTS",     "BIOGRAPHIES", "BUSINESS", "CHILDREN",  "COMPUTERS",
      "COOKING",  "HEALTH",      "HISTORY",  "HOME",      "HUMOR",
      "LITERATURE", "MYSTERY",   "NONFICTION", "PARENTING", "POLITICS",
      "REFERENCE", "RELIGION",   "ROMANCE",  "SELFHELP",  "SCIENCE",
      "SCIFI",    "SPORTS",      "TRAVEL",   "YOUTH",
  };
  return kSubjects[index % kBookstoreSubjects];
}

Status BookstoreApplication::Setup(service::ScalableApp& app, double scale,
                                   uint64_t seed) {
  engine::Database& db = app.home().database();
  DSSP_RETURN_IF_ERROR(DefineSchema(db));
  for (const char* sql : kQueries) {
    DSSP_RETURN_IF_ERROR(app.home().AddQueryTemplate(sql));
  }
  for (const char* sql : kUpdates) {
    DSSP_RETURN_IF_ERROR(app.home().AddUpdateTemplate(sql));
  }
  num_items_ = static_cast<int64_t>(1000 * scale);
  num_authors_ = static_cast<int64_t>(250 * scale);
  num_customers_ = static_cast<int64_t>(1440 * scale);
  num_orders_ = static_cast<int64_t>(900 * scale);
  num_carts_ = static_cast<int64_t>(120 * scale);
  num_countries_ = 92;
  // The default Zipf exponent 0.87 matches the log-linear Amazon
  // sales-rank fit of Brynjolfsson et al. that the paper substitutes for
  // TPC-W's uniform item popularity.
  item_popularity_ = std::make_shared<ZipfDistribution>(
      static_cast<uint64_t>(num_items_), popularity_theta_);
  return Populate(db, *this, num_items_, num_authors_, num_customers_,
                  num_orders_, num_carts_, num_countries_, seed);
}

// Defined at namespace scope to match the friend declaration in the header.
class BookstoreSession : public sim::SessionGenerator {
 public:
  explicit BookstoreSession(const BookstoreApplication* app) : app_(app) {}

  std::vector<sim::DbOp> NextPage(Rng& rng) override {
    std::vector<sim::DbOp> ops;
    const double roll = rng.NextDouble();
    auto& counters = *app_->counters_;

    const auto item = [&] {
      return Value(static_cast<int64_t>(app_->item_popularity_->Sample(rng)));
    };
    const auto customer = [&] {
      return Value(1 + static_cast<int64_t>(rng.NextBelow(
                           static_cast<uint64_t>(app_->num_customers_))));
    };
    const auto subject = [&] {
      return Value(
          BookstoreSubject(static_cast<int64_t>(rng.NextBelow(24))));
    };

    if (roll < 0.18) {
      // Home page: customer name + promotional related items.
      ops.push_back({false, "Q1", {customer()}});
      ops.push_back({false, "Q9", {subject()}});
    } else if (roll < 0.44) {
      // Product detail.
      ops.push_back({false, "Q2", {item()}});
      ops.push_back({false, "Q18", {item()}});
    } else if (roll < 0.64) {
      // Search.
      const double kind = rng.NextDouble();
      if (kind < 0.4) {
        ops.push_back({false, "Q4", {subject()}});
      } else if (kind < 0.7) {
        ops.push_back(
            {false, "Q5",
             {Value("Book Title " +
                    std::to_string(1 + rng.NextBelow(static_cast<uint64_t>(
                                           app_->num_items_))))}});
      } else {
        ops.push_back(
            {false, "Q6",
             {Value("ALast" +
                    std::to_string(1 + rng.NextBelow(static_cast<uint64_t>(
                                           app_->num_authors_))))}});
      }
    } else if (roll < 0.76) {
      // New products.
      ops.push_back({false, "Q7", {subject()}});
    } else if (roll < 0.87) {
      // Best sellers + subject stats.
      ops.push_back({false, "Q8", {subject()}});
      if (rng.NextBool(0.3)) {
        ops.push_back({false, "Q26", {Value(5.0)}});
        ops.push_back({false, "Q27", {subject()}});
      }
    } else if (roll < 0.89) {
      // Shopping cart interaction.
      const int64_t cart = counters.next_cart_id++;
      ops.push_back({true, "U7", {Value(cart), Value(100)}});
      const int64_t lines = 1 + static_cast<int64_t>(rng.NextBelow(3));
      int64_t last_line = 0;
      for (int64_t l = 0; l < lines; ++l) {
        last_line = counters.next_cart_line_id++;
        ops.push_back({true,
                       "U8",
                       {Value(last_line), Value(cart), item(),
                        Value(1 + static_cast<int64_t>(rng.NextBelow(3)))}});
      }
      if (rng.NextBool(0.4)) {
        // Change a quantity in the cart.
        ops.push_back({true,
                       "U9",
                       {Value(1 + static_cast<int64_t>(rng.NextBelow(5))),
                        Value(last_line)}});
      }
      ops.push_back({false, "Q16", {Value(cart)}});
      if (rng.NextBool(0.2)) {
        // Abandon the cart.
        ops.push_back({true, "U10", {Value(cart)}});
      }
    } else if (roll < 0.92) {
      // Buy request: identify customer, discount, address.
      ops.push_back(
          {false, "Q3",
           {Value("user" +
                  std::to_string(1 + rng.NextBelow(static_cast<uint64_t>(
                                         app_->num_customers_))))}});
      ops.push_back({false, "Q19", {customer()}});
      ops.push_back({false, "Q20", {customer()}});
      ops.push_back({false, "Q21",
                     {Value(1 + static_cast<int64_t>(rng.NextBelow(
                                    static_cast<uint64_t>(
                                        app_->num_customers_))))}});
    } else if (roll < 0.93) {
      // Buy confirm: create order (+lines), charge card, decrement stock.
      const int64_t order = counters.next_order_id++;
      ops.push_back({true,
                     "U3",
                     {Value(order), customer(), Value(200),
                      Value(57.30), Value("pending")}});
      const int64_t lines = 1 + static_cast<int64_t>(rng.NextBelow(3));
      for (int64_t l = 0; l < lines; ++l) {
        const Value book = item();
        ops.push_back({true,
                       "U4",
                       {Value(counters.next_order_line_id++), Value(order),
                        book, Value(1 + static_cast<int64_t>(
                                        rng.NextBelow(3))),
                        Value(0.0)}});
        ops.push_back({true,
                       "U6",
                       {Value(static_cast<int64_t>(rng.NextBelow(200)) + 10),
                        book}});
      }
      ops.push_back({true,
                     "U5",
                     {Value(order), Value("VISA"),
                      Value("4000-" + std::to_string(900000 + order)),
                      Value("CARDHOLDER X"),
                      Value(static_cast<int64_t>(rng.NextBelow(48)) + 1),
                      Value(57.30)}});
      // The payment processor confirms asynchronously; mark the order.
      ops.push_back({true, "U12", {Value("confirmed"), Value(order)}});
    } else if (roll < 0.96) {
      // Order inquiry on an existing (base) order.
      const Value order = Value(1 + static_cast<int64_t>(rng.NextBelow(
                                        static_cast<uint64_t>(
                                            app_->num_orders_))));
      ops.push_back(
          {false, "Q11",
           {Value("user" +
                  std::to_string(1 + rng.NextBelow(static_cast<uint64_t>(
                                         app_->num_customers_))))}});
      ops.push_back({false, "Q13", {customer()}});
      ops.push_back({false, "Q14", {order}});
      ops.push_back({false, "Q15", {order}});
      ops.push_back({false, "Q23", {order}});
      ops.push_back({false, "Q24", {order}});
      ops.push_back({false, "Q25", {customer()}});
    } else if (roll < 0.965) {
      // Admin updates an item; verify.
      const Value book = item();
      ops.push_back({true,
                     "U11",
                     {Value(12.99),
                      Value(static_cast<int64_t>(rng.NextBelow(3650))),
                      book}});
      ops.push_back({false, "Q12", {book}});
      ops.push_back({false, "Q28", {subject()}});
    } else {
      // Customer registration.
      const int64_t addr = counters.next_address_id++;
      const int64_t cust = counters.next_customer_id++;
      ops.push_back({true,
                     "U1",
                     {Value(addr), Value("street x"), Value("city x"),
                      Value(10001),
                      Value(1 + static_cast<int64_t>(rng.NextBelow(
                                    static_cast<uint64_t>(
                                        app_->num_countries_))))}});
      ops.push_back({true,
                     "U2",
                     {Value(cust), Value("newuser" + std::to_string(cust)),
                      Value("pw"), Value("New"), Value("User"), Value(addr),
                      Value("new@example.com"), Value(0.05)}});
      ops.push_back({false, "Q10", {customer()}});
    }
    return ops;
  }

 private:
  const BookstoreApplication* app_;
};

std::unique_ptr<sim::SessionGenerator> BookstoreApplication::NewSession(
    uint64_t seed) {
  (void)seed;
  DSSP_CHECK(item_popularity_ != nullptr);  // Setup must run first.
  return std::make_unique<BookstoreSession>(this);
}

analysis::CompulsoryPolicy BookstoreApplication::CompulsoryEncryption(
    const catalog::Catalog& catalog) const {
  analysis::CompulsoryPolicy policy;
  // California SB 1386 (paper Section 5.4): credit-card data must be
  // secured; we also treat stored passwords as compulsory.
  policy.MarkTableSensitive(catalog, "cc_xacts");
  policy.sensitive_attributes.insert(
      templates::AttributeId{"customer", "c_passwd"});
  return policy;
}

}  // namespace dssp::workloads
