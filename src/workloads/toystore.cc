#include "workloads/toystore.h"

namespace dssp::workloads {

namespace {

using catalog::Column;
using catalog::ColumnType;
using catalog::ForeignKey;
using catalog::TableSchema;
using sql::Value;

Status AddToysAndCustomers(engine::Database& db) {
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "toys",
      {{"toy_id", ColumnType::kInt64},
       {"toy_name", ColumnType::kString},
       {"qty", ColumnType::kInt64}},
      {"toy_id"})));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "customers",
      {{"cust_id", ColumnType::kInt64}, {"cust_name", ColumnType::kString}},
      {"cust_id"})));
  return Status::Ok();
}

Status PopulateToystore(engine::Database& db, int64_t toys,
                        int64_t customers, bool with_cards) {
  for (int64_t i = 1; i <= toys; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "toys", {Value(i), Value("toy" + std::to_string(i)),
                 Value((i * 7) % 100 + 1)}));
  }
  for (int64_t i = 1; i <= customers; ++i) {
    DSSP_RETURN_IF_ERROR(db.InsertRow(
        "customers", {Value(i), Value("customer" + std::to_string(i))}));
  }
  if (with_cards) {
    // Only the first half of the customers have cards on file; sessions add
    // cards for the rest over time (fresh primary keys, so the paper's
    // non-empty-result execution assumption is never violated).
    for (int64_t i = 1; i <= customers / 2; ++i) {
      DSSP_RETURN_IF_ERROR(db.InsertRow(
          "credit_card",
          {Value(i), Value("4000-0000-" + std::to_string(100000 + i)),
           Value(10000 + i % 100)}));
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<ToystoreBundle> MakeSimpleToystore() {
  ToystoreBundle bundle;
  bundle.db = std::make_unique<engine::Database>();
  DSSP_RETURN_IF_ERROR(AddToysAndCustomers(*bundle.db));
  const catalog::Catalog& cat = bundle.db->catalog();
  DSSP_RETURN_IF_ERROR(bundle.templates.AddQuerySql(
      "SELECT toy_id FROM toys WHERE toy_name = ?", cat));
  DSSP_RETURN_IF_ERROR(bundle.templates.AddQuerySql(
      "SELECT qty FROM toys WHERE toy_id = ?", cat));
  DSSP_RETURN_IF_ERROR(bundle.templates.AddQuerySql(
      "SELECT cust_name FROM customers WHERE cust_id = ?", cat));
  DSSP_RETURN_IF_ERROR(bundle.templates.AddUpdateSql(
      "DELETE FROM toys WHERE toy_id = ?", cat));
  DSSP_RETURN_IF_ERROR(PopulateToystore(*bundle.db, 50, 20, false));
  return bundle;
}

StatusOr<ToystoreBundle> MakeToystore() {
  ToystoreBundle bundle;
  bundle.db = std::make_unique<engine::Database>();
  DSSP_RETURN_IF_ERROR(AddToysAndCustomers(*bundle.db));
  DSSP_RETURN_IF_ERROR(bundle.db->CreateTable(TableSchema(
      "credit_card",
      {{"cid", ColumnType::kInt64},
       {"number", ColumnType::kString},
       {"zip_code", ColumnType::kInt64}},
      {"cid"}, {ForeignKey{"cid", "customers", "cust_id"}})));
  const catalog::Catalog& cat = bundle.db->catalog();
  DSSP_RETURN_IF_ERROR(bundle.templates.AddQuerySql(
      "SELECT toy_id FROM toys WHERE toy_name = ?", cat));
  DSSP_RETURN_IF_ERROR(bundle.templates.AddQuerySql(
      "SELECT qty FROM toys WHERE toy_id = ?", cat));
  DSSP_RETURN_IF_ERROR(bundle.templates.AddQuerySql(
      "SELECT cust_name FROM customers, credit_card "
      "WHERE cust_id = cid AND zip_code = ?",
      cat));
  DSSP_RETURN_IF_ERROR(bundle.templates.AddUpdateSql(
      "DELETE FROM toys WHERE toy_id = ?", cat));
  DSSP_RETURN_IF_ERROR(bundle.templates.AddUpdateSql(
      "INSERT INTO credit_card (cid, number, zip_code) VALUES (?, ?, ?)",
      cat));
  DSSP_RETURN_IF_ERROR(PopulateToystore(*bundle.db, 50, 20, true));
  return bundle;
}

Status ToystoreApplication::Setup(service::ScalableApp& app, double scale,
                                  uint64_t seed) {
  (void)seed;
  engine::Database& db = app.home().database();
  DSSP_RETURN_IF_ERROR(AddToysAndCustomers(db));
  DSSP_RETURN_IF_ERROR(db.CreateTable(TableSchema(
      "credit_card",
      {{"cid", ColumnType::kInt64},
       {"number", ColumnType::kString},
       {"zip_code", ColumnType::kInt64}},
      {"cid"}, {ForeignKey{"cid", "customers", "cust_id"}})));
  const catalog::Catalog& cat = db.catalog();
  DSSP_RETURN_IF_ERROR(app.home().AddQueryTemplate(
      "SELECT toy_id FROM toys WHERE toy_name = ?"));
  DSSP_RETURN_IF_ERROR(app.home().AddQueryTemplate(
      "SELECT qty FROM toys WHERE toy_id = ?"));
  DSSP_RETURN_IF_ERROR(app.home().AddQueryTemplate(
      "SELECT cust_name FROM customers, credit_card "
      "WHERE cust_id = cid AND zip_code = ?"));
  DSSP_RETURN_IF_ERROR(
      app.home().AddUpdateTemplate("DELETE FROM toys WHERE toy_id = ?"));
  DSSP_RETURN_IF_ERROR(app.home().AddUpdateTemplate(
      "INSERT INTO credit_card (cid, number, zip_code) VALUES (?, ?, ?)"));
  (void)cat;
  num_toys_ = static_cast<int64_t>(200 * scale);
  num_customers_ = static_cast<int64_t>(100 * scale);
  *next_card_id_ = num_customers_ / 2 + 1;
  return PopulateToystore(db, num_toys_, num_customers_, true);
}

namespace {

class ToystoreSession : public sim::SessionGenerator {
 public:
  ToystoreSession(int64_t toys, int64_t customers,
                  std::shared_ptr<int64_t> next_card_id)
      : toys_(toys),
        customers_(customers),
        next_card_id_(std::move(next_card_id)) {}

  std::vector<sim::DbOp> NextPage(Rng& rng) override {
    std::vector<sim::DbOp> ops;
    const double roll = rng.NextDouble();
    if (roll < 0.5) {
      // Browse a toy: look it up by name, then check stock.
      const int64_t toy = rng.NextInt(1, toys_);
      ops.push_back(
          {false, "Q1", {Value("toy" + std::to_string(toy))}});
      ops.push_back({false, "Q2", {Value(toy)}});
    } else if (roll < 0.8) {
      // Customer lookup by zip code.
      ops.push_back({false, "Q3", {Value(10000 + rng.NextInt(0, 99))}});
    } else if (roll < 0.95) {
      // Admin removes a discontinued toy.
      ops.push_back({true, "U1", {Value(rng.NextInt(1, toys_))}});
    } else {
      // A not-yet-carded customer puts a card on file (fresh cid).
      const int64_t cid = (*next_card_id_)++;
      if (cid <= customers_) {
        ops.push_back({true,
                       "U2",
                       {Value(cid),
                        Value("4000-1111-" + std::to_string(100000 + cid)),
                        Value(10000 + cid % 100)}});
      } else {
        ops.push_back({false, "Q2", {Value(rng.NextInt(1, toys_))}});
      }
    }
    return ops;
  }

 private:
  int64_t toys_;
  int64_t customers_;
  std::shared_ptr<int64_t> next_card_id_;
};

}  // namespace

std::unique_ptr<sim::SessionGenerator> ToystoreApplication::NewSession(
    uint64_t seed) {
  (void)seed;
  return std::make_unique<ToystoreSession>(num_toys_, num_customers_,
                                           next_card_id_);
}

analysis::CompulsoryPolicy ToystoreApplication::CompulsoryEncryption(
    const catalog::Catalog& catalog) const {
  (void)catalog;
  // Section 3.2: "the administrator may well decide that credit card
  // numbers are not to be exposed" — Step 1 reduces E(U2) to template.
  analysis::CompulsoryPolicy policy;
  policy.sensitive_attributes.insert(
      templates::AttributeId{"credit_card", "number"});
  return policy;
}

}  // namespace dssp::workloads
