#ifndef DSSP_WORKLOADS_BBOARD_H_
#define DSSP_WORKLOADS_BBOARD_H_

#include <memory>

#include "common/random.h"
#include "workloads/application.h"

namespace dssp::workloads {

// RUBBoS-like Slashdot-style bulletin board (the paper's "bboard"
// benchmark): 18 query templates, 8 update templates over four relations.
// Pages issue ~10 database requests each (the paper highlights this as the
// reason bboard collapses first under coarse invalidation).
class BboardApplication : public Application {
 public:
  std::string_view name() const override { return "bboard"; }
  Status Setup(service::ScalableApp& app, double scale,
               uint64_t seed) override;
  std::unique_ptr<sim::SessionGenerator> NewSession(uint64_t seed) override;
  analysis::CompulsoryPolicy CompulsoryEncryption(
      const catalog::Catalog& catalog) const override;

 private:
  friend class BboardSession;

  int64_t num_users_ = 0;
  int64_t num_stories_ = 0;
  int64_t num_comments_ = 0;
  int64_t num_categories_ = 0;
  int64_t num_days_ = 0;

  struct Counters {
    int64_t next_story_id = 1'000'000;
    int64_t next_comment_id = 1'000'000;
    int64_t next_user_id = 1'000'000;
    int64_t next_log_id = 1'000'000;
  };
  std::shared_ptr<Counters> counters_ = std::make_shared<Counters>();
  // Story and comment popularity are skewed (front-page effect).
  std::shared_ptr<ZipfDistribution> story_popularity_;
  std::shared_ptr<ZipfDistribution> comment_popularity_;
};

}  // namespace dssp::workloads

#endif  // DSSP_WORKLOADS_BBOARD_H_
