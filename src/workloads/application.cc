#include "workloads/application.h"

#include "workloads/auction.h"
#include "workloads/bboard.h"
#include "workloads/bookstore.h"
#include "workloads/toystore.h"

namespace dssp::workloads {

std::unique_ptr<Application> MakeApplication(std::string_view name) {
  if (name == "toystore") return std::make_unique<ToystoreApplication>();
  if (name == "auction") return std::make_unique<AuctionApplication>();
  if (name == "bboard") return std::make_unique<BboardApplication>();
  if (name == "bookstore") return std::make_unique<BookstoreApplication>();
  DSSP_UNREACHABLE("unknown application name");
}

}  // namespace dssp::workloads
