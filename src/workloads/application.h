#ifndef DSSP_WORKLOADS_APPLICATION_H_
#define DSSP_WORKLOADS_APPLICATION_H_

#include <memory>
#include <string_view>

#include "analysis/methodology.h"
#include "common/status.h"
#include "dssp/app.h"
#include "sim/workload.h"

namespace dssp::workloads {

// One of the paper's benchmark Web applications: schema, query/update
// templates, database population, interaction mix, and the data its
// administrator must encrypt (Step 1 of the methodology).
//
// The three evaluation applications (Section 5.1):
//   "auction"   - RUBiS-like eBay-style auction site;
//   "bboard"    - RUBBoS-like Slashdot-style bulletin board;
//   "bookstore" - TPC-W-like online bookstore with Zipf-skewed book
//                 popularity (Brynjolfsson et al.);
// plus "toystore", the paper's running example (Tables 1 and 3).
class Application {
 public:
  virtual ~Application() = default;

  virtual std::string_view name() const = 0;

  // Creates schema and templates in `app`'s home server and populates the
  // master database. `scale` multiplies base table cardinalities. Must be
  // called exactly once, before app.Finalize().
  virtual Status Setup(service::ScalableApp& app, double scale,
                       uint64_t seed) = 0;

  // A session generator producing this application's page mix. Valid only
  // after Setup (it needs the populated id ranges). Generators share the
  // application's id counters so concurrent sessions never collide on
  // inserted primary keys.
  virtual std::unique_ptr<sim::SessionGenerator> NewSession(
      uint64_t seed) = 0;

  // Step 1 policy: the attributes a data-privacy law (e.g., California SB
  // 1386) forces the administrator to encrypt.
  virtual analysis::CompulsoryPolicy CompulsoryEncryption(
      const catalog::Catalog& catalog) const = 0;
};

// Factory for "toystore", "auction", "bboard", "bookstore"; CHECK-fails on
// unknown names.
std::unique_ptr<Application> MakeApplication(std::string_view name);

// Names of the three paper-evaluation applications, in Table 7 order.
inline constexpr std::string_view kEvaluationApps[] = {"auction", "bboard",
                                                       "bookstore"};

}  // namespace dssp::workloads

#endif  // DSSP_WORKLOADS_APPLICATION_H_
