#ifndef DSSP_WORKLOADS_TOYSTORE_H_
#define DSSP_WORKLOADS_TOYSTORE_H_

#include <memory>

#include "engine/database.h"
#include "templates/template_set.h"
#include "workloads/application.h"

namespace dssp::workloads {

// The paper's running example. Two variants:
//  - simple-toystore (Table 1): toys + customers; Q1..Q3, U1;
//  - toystore (Table 3): adds credit_card (cid FK -> customers.cust_id);
//    Q3 becomes the customers x credit_card join; U2 inserts card data.

// Schema + templates (and a small population for the full variant), for
// analysis-only consumers (Table 2 / Table 4 benches, tests).
struct ToystoreBundle {
  std::unique_ptr<engine::Database> db;
  templates::TemplateSet templates;
};

StatusOr<ToystoreBundle> MakeSimpleToystore();
StatusOr<ToystoreBundle> MakeToystore();

// Full Application (service-path) wrapper around the Table 3 variant.
class ToystoreApplication : public Application {
 public:
  std::string_view name() const override { return "toystore"; }
  Status Setup(service::ScalableApp& app, double scale,
               uint64_t seed) override;
  std::unique_ptr<sim::SessionGenerator> NewSession(uint64_t seed) override;
  analysis::CompulsoryPolicy CompulsoryEncryption(
      const catalog::Catalog& catalog) const override;

 private:
  int64_t num_toys_ = 0;
  int64_t num_customers_ = 0;
  // Shared by all sessions so inserted primary keys never collide.
  std::shared_ptr<int64_t> next_card_id_ =
      std::make_shared<int64_t>(1'000'000);
};

}  // namespace dssp::workloads

#endif  // DSSP_WORKLOADS_TOYSTORE_H_
