#include "dssp/protocol.h"

#include <cstring>

#include "analysis/exposure.h"
#include "backend/home_backend.h"
#include "common/hash.h"

namespace dssp::service {

namespace {

void AppendU64(std::string* out, uint64_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void AppendString(std::string* out, std::string_view value) {
  AppendU64(out, value.size());
  out->append(value);
}

// Bounds checks are phrased as `need > remaining` (never `pos + need >
// size`): with attacker-controlled 64-bit lengths the addition can wrap and
// silently bypass the check.
bool ReadU64(std::string_view frame, size_t* pos, uint64_t* out) {
  if (*pos > frame.size() || sizeof(uint64_t) > frame.size() - *pos) {
    return false;
  }
  std::memcpy(out, frame.data() + *pos, sizeof(uint64_t));
  *pos += sizeof(uint64_t);
  return true;
}

bool ReadString(std::string_view frame, size_t* pos, std::string* out) {
  uint64_t length = 0;
  if (!ReadU64(frame, pos, &length)) return false;
  if (length > frame.size() - *pos) return false;
  out->assign(frame.substr(*pos, length));
  *pos += length;
  return true;
}

Status CheckType(std::string_view frame, MessageType expected, size_t* pos) {
  if (frame.empty()) return ParseError("empty frame");
  if (static_cast<MessageType>(frame[0]) != expected) {
    return ParseError("unexpected frame type");
  }
  *pos = 1;
  return Status::Ok();
}

Status CheckConsumed(std::string_view frame, size_t pos) {
  if (pos != frame.size()) return ParseError("trailing bytes in frame");
  return Status::Ok();
}

}  // namespace

std::string Encode(const QueryRequest& message) {
  std::string out(1, static_cast<char>(MessageType::kQueryRequest));
  out.push_back(message.plaintext_result ? 1 : 0);
  AppendString(&out, message.encrypted_statement);
  return out;
}

std::string Encode(const QueryResponse& message) {
  std::string out(1, static_cast<char>(MessageType::kQueryResponse));
  AppendString(&out, message.result_blob);
  return out;
}

std::string Encode(const UpdateRequest& message) {
  std::string out(1, static_cast<char>(MessageType::kUpdateRequest));
  AppendString(&out, message.encrypted_statement);
  // Optional trailing dedup nonce; omitted when 0 so legacy frames (and
  // their byte counts) are unchanged.
  if (message.nonce != 0) AppendU64(&out, message.nonce);
  return out;
}

std::string Encode(const UpdateResponse& message) {
  std::string out(1, static_cast<char>(MessageType::kUpdateResponse));
  AppendU64(&out, message.rows_affected);
  return out;
}

std::string Encode(const ErrorResponse& message) {
  std::string out(1, static_cast<char>(MessageType::kError));
  AppendU64(&out, static_cast<uint64_t>(message.code));
  AppendString(&out, message.message);
  return out;
}

std::string Encode(const InvalidateRequest& message) {
  std::string out(1, static_cast<char>(MessageType::kInvalidateRequest));
  out.push_back(static_cast<char>(message.level));
  AppendU64(&out, message.template_index);
  AppendString(&out, message.app_id);
  AppendString(&out, message.statement_sql);
  AppendU64(&out, message.nonce);
  return out;
}

std::string Encode(const InvalidateResponse& message) {
  std::string out(1, static_cast<char>(MessageType::kInvalidateResponse));
  AppendU64(&out, message.entries_invalidated);
  return out;
}

std::string Encode(const InvalidateBatchRequest& message) {
  std::string out(1, static_cast<char>(MessageType::kInvalidateBatchRequest));
  AppendU64(&out, message.nonce);
  AppendU64(&out, message.notices.size());
  for (const std::string& notice : message.notices) {
    AppendString(&out, notice);
  }
  return out;
}

std::string Encode(const InvalidateBatchResponse& message) {
  std::string out(1,
                  static_cast<char>(MessageType::kInvalidateBatchResponse));
  AppendU64(&out, message.acks.size());
  for (const InvalidateBatchResponse::Ack& ack : message.acks) {
    out.push_back(ack.accepted ? 1 : 0);
    AppendU64(&out, ack.accepted ? ack.entries_invalidated
                                 : static_cast<uint64_t>(ack.code));
  }
  return out;
}

std::string Encode(const ProbeRequest& message) {
  std::string out(1, static_cast<char>(MessageType::kProbeRequest));
  AppendU64(&out, message.token);
  return out;
}

std::string Encode(const ProbeResponse& message) {
  std::string out(1, static_cast<char>(MessageType::kProbeResponse));
  AppendU64(&out, message.token);
  return out;
}

std::optional<MessageType> PeekType(std::string_view frame) {
  if (frame.empty()) return std::nullopt;
  const uint8_t type = static_cast<uint8_t>(frame[0]);
  // Range derived from the enum itself (kQueryRequest is the first real
  // type, kMessageTypeEnd the sentinel past the last one).
  if (type < static_cast<uint8_t>(MessageType::kQueryRequest) ||
      type >= static_cast<uint8_t>(MessageType::kMessageTypeEnd)) {
    return std::nullopt;
  }
  return static_cast<MessageType>(type);
}

std::string Seal(std::string_view frame) {
  std::string out(1, static_cast<char>(MessageType::kSealed));
  AppendU64(&out, Hash64(frame));
  out.append(frame);
  return out;
}

StatusOr<std::string> Unseal(std::string_view envelope) {
  size_t pos = 0;
  if (envelope.empty() ||
      static_cast<MessageType>(envelope[0]) != MessageType::kSealed) {
    return CorruptFrameError("not a sealed frame");
  }
  pos = 1;
  uint64_t checksum = 0;
  if (!ReadU64(envelope, &pos, &checksum)) {
    return CorruptFrameError("truncated sealed frame");
  }
  const std::string_view inner = envelope.substr(pos);
  if (Hash64(inner) != checksum) {
    return CorruptFrameError("frame checksum mismatch");
  }
  if (!inner.empty() &&
      static_cast<MessageType>(inner[0]) == MessageType::kSealed) {
    return CorruptFrameError("nested sealed frame");
  }
  return std::string(inner);
}

StatusOr<QueryRequest> DecodeQueryRequest(std::string_view frame) {
  size_t pos = 0;
  DSSP_RETURN_IF_ERROR(CheckType(frame, MessageType::kQueryRequest, &pos));
  if (pos >= frame.size()) return ParseError("truncated query request");
  QueryRequest message;
  message.plaintext_result = frame[pos++] != 0;
  if (!ReadString(frame, &pos, &message.encrypted_statement)) {
    return ParseError("malformed query request");
  }
  DSSP_RETURN_IF_ERROR(CheckConsumed(frame, pos));
  return message;
}

StatusOr<QueryResponse> DecodeQueryResponse(std::string_view frame) {
  size_t pos = 0;
  DSSP_RETURN_IF_ERROR(CheckType(frame, MessageType::kQueryResponse, &pos));
  QueryResponse message;
  if (!ReadString(frame, &pos, &message.result_blob)) {
    return ParseError("malformed query response");
  }
  DSSP_RETURN_IF_ERROR(CheckConsumed(frame, pos));
  return message;
}

StatusOr<UpdateRequest> DecodeUpdateRequest(std::string_view frame) {
  size_t pos = 0;
  DSSP_RETURN_IF_ERROR(CheckType(frame, MessageType::kUpdateRequest, &pos));
  UpdateRequest message;
  if (!ReadString(frame, &pos, &message.encrypted_statement)) {
    return ParseError("malformed update request");
  }
  // Optional trailing dedup nonce (absent on legacy frames).
  if (pos != frame.size()) {
    if (!ReadU64(frame, &pos, &message.nonce) || message.nonce == 0) {
      return ParseError("malformed update request nonce");
    }
  }
  DSSP_RETURN_IF_ERROR(CheckConsumed(frame, pos));
  return message;
}

StatusOr<UpdateResponse> DecodeUpdateResponse(std::string_view frame) {
  size_t pos = 0;
  DSSP_RETURN_IF_ERROR(CheckType(frame, MessageType::kUpdateResponse, &pos));
  UpdateResponse message;
  if (!ReadU64(frame, &pos, &message.rows_affected)) {
    return ParseError("malformed update response");
  }
  DSSP_RETURN_IF_ERROR(CheckConsumed(frame, pos));
  return message;
}

StatusOr<ErrorResponse> DecodeErrorResponse(std::string_view frame) {
  size_t pos = 0;
  DSSP_RETURN_IF_ERROR(CheckType(frame, MessageType::kError, &pos));
  ErrorResponse message;
  uint64_t code = 0;
  // Code 0 (kOk) is not a legal error; reject it with the other garbage.
  // The upper bound comes from the StatusCode sentinel, not a literal.
  if (!ReadU64(frame, &pos, &code) || code == 0 ||
      code >= static_cast<uint64_t>(StatusCode::kStatusCodeEnd)) {
    return ParseError("malformed error response");
  }
  message.code = static_cast<StatusCode>(code);
  if (!ReadString(frame, &pos, &message.message)) {
    return ParseError("malformed error response");
  }
  DSSP_RETURN_IF_ERROR(CheckConsumed(frame, pos));
  return message;
}

StatusOr<InvalidateRequest> DecodeInvalidateRequest(std::string_view frame) {
  size_t pos = 0;
  DSSP_RETURN_IF_ERROR(
      CheckType(frame, MessageType::kInvalidateRequest, &pos));
  if (pos >= frame.size()) return ParseError("truncated invalidate request");
  InvalidateRequest message;
  message.level = static_cast<uint8_t>(frame[pos++]);
  // The level byte must name a real exposure level; the range comes from
  // the enum, not a literal.
  if (message.level > static_cast<uint8_t>(analysis::ExposureLevel::kView)) {
    return ParseError("bad exposure level in invalidate request");
  }
  if (!ReadU64(frame, &pos, &message.template_index) ||
      !ReadString(frame, &pos, &message.app_id) ||
      !ReadString(frame, &pos, &message.statement_sql) ||
      !ReadU64(frame, &pos, &message.nonce) || message.nonce == 0) {
    return ParseError("malformed invalidate request");
  }
  DSSP_RETURN_IF_ERROR(CheckConsumed(frame, pos));
  return message;
}

StatusOr<InvalidateResponse> DecodeInvalidateResponse(
    std::string_view frame) {
  size_t pos = 0;
  DSSP_RETURN_IF_ERROR(
      CheckType(frame, MessageType::kInvalidateResponse, &pos));
  InvalidateResponse message;
  if (!ReadU64(frame, &pos, &message.entries_invalidated)) {
    return ParseError("malformed invalidate response");
  }
  DSSP_RETURN_IF_ERROR(CheckConsumed(frame, pos));
  return message;
}

StatusOr<InvalidateBatchRequest> DecodeInvalidateBatchRequest(
    std::string_view frame) {
  size_t pos = 0;
  DSSP_RETURN_IF_ERROR(
      CheckType(frame, MessageType::kInvalidateBatchRequest, &pos));
  InvalidateBatchRequest message;
  uint64_t count = 0;
  if (!ReadU64(frame, &pos, &message.nonce) || message.nonce == 0 ||
      !ReadU64(frame, &pos, &count)) {
    return ParseError("malformed invalidate batch request");
  }
  // Every entry needs at least its 8-byte length prefix, so an honest count
  // is bounded by the remaining bytes — reject allocation bombs before
  // reserving anything.
  if (count == 0 || count > (frame.size() - pos) / sizeof(uint64_t)) {
    return ParseError("bad notice count in invalidate batch request");
  }
  message.notices.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string notice;
    if (!ReadString(frame, &pos, &notice)) {
      return ParseError("truncated notice in invalidate batch request");
    }
    message.notices.push_back(std::move(notice));
  }
  DSSP_RETURN_IF_ERROR(CheckConsumed(frame, pos));
  return message;
}

StatusOr<InvalidateBatchResponse> DecodeInvalidateBatchResponse(
    std::string_view frame) {
  size_t pos = 0;
  DSSP_RETURN_IF_ERROR(
      CheckType(frame, MessageType::kInvalidateBatchResponse, &pos));
  InvalidateBatchResponse message;
  uint64_t count = 0;
  if (!ReadU64(frame, &pos, &count)) {
    return ParseError("malformed invalidate batch response");
  }
  constexpr size_t kAckBytes = 1 + sizeof(uint64_t);
  if (count > (frame.size() - pos) / kAckBytes) {
    return ParseError("bad ack count in invalidate batch response");
  }
  message.acks.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (pos >= frame.size()) {
      return ParseError("truncated invalidate batch response");
    }
    InvalidateBatchResponse::Ack ack;
    ack.accepted = frame[pos++] != 0;
    uint64_t value = 0;
    if (!ReadU64(frame, &pos, &value)) {
      return ParseError("truncated invalidate batch response");
    }
    if (ack.accepted) {
      ack.entries_invalidated = value;
    } else {
      // A refusal must carry a real error code (kOk refusals are garbage).
      if (value == 0 ||
          value >= static_cast<uint64_t>(StatusCode::kStatusCodeEnd)) {
        return ParseError("bad status code in invalidate batch response");
      }
      ack.code = static_cast<StatusCode>(value);
    }
    message.acks.push_back(ack);
  }
  DSSP_RETURN_IF_ERROR(CheckConsumed(frame, pos));
  return message;
}

StatusOr<ProbeRequest> DecodeProbeRequest(std::string_view frame) {
  size_t pos = 0;
  DSSP_RETURN_IF_ERROR(CheckType(frame, MessageType::kProbeRequest, &pos));
  ProbeRequest message;
  if (!ReadU64(frame, &pos, &message.token)) {
    return ParseError("malformed probe request");
  }
  DSSP_RETURN_IF_ERROR(CheckConsumed(frame, pos));
  return message;
}

StatusOr<ProbeResponse> DecodeProbeResponse(std::string_view frame) {
  size_t pos = 0;
  DSSP_RETURN_IF_ERROR(CheckType(frame, MessageType::kProbeResponse, &pos));
  ProbeResponse message;
  if (!ReadU64(frame, &pos, &message.token)) {
    return ParseError("malformed probe response");
  }
  DSSP_RETURN_IF_ERROR(CheckConsumed(frame, pos));
  return message;
}

std::string DispatchFrame(backend::HomeBackend& home, std::string_view frame) {
  const std::optional<MessageType> type = PeekType(frame);
  if (!type.has_value()) {
    return Encode(ErrorResponse{StatusCode::kParseError, "bad frame"});
  }
  if (*type == MessageType::kSealed) {
    // Integrity envelope: verify, dispatch the inner frame, seal the reply.
    // A checksum mismatch gets a distinguishable kCorruptFrame error so the
    // client retries instead of surfacing a bogus application error.
    auto inner = Unseal(frame);
    if (!inner.ok()) {
      return Seal(Encode(
          ErrorResponse{inner.status().code(), inner.status().message()}));
    }
    return Seal(DispatchFrame(home, *inner));
  }
  switch (*type) {
    case MessageType::kQueryRequest: {
      auto request = DecodeQueryRequest(frame);
      if (!request.ok()) {
        return Encode(ErrorResponse{request.status().code(),
                                    request.status().message()});
      }
      auto blob = home.HandleQuery(request->encrypted_statement,
                                   request->plaintext_result);
      if (!blob.ok()) {
        return Encode(
            ErrorResponse{blob.status().code(), blob.status().message()});
      }
      return Encode(QueryResponse{std::move(*blob)});
    }
    case MessageType::kUpdateRequest: {
      auto request = DecodeUpdateRequest(frame);
      if (!request.ok()) {
        return Encode(ErrorResponse{request.status().code(),
                                    request.status().message()});
      }
      auto effect =
          home.HandleUpdate(request->encrypted_statement, request->nonce);
      if (!effect.ok()) {
        return Encode(
            ErrorResponse{effect.status().code(), effect.status().message()});
      }
      return Encode(UpdateResponse{effect->rows_affected});
    }
    case MessageType::kProbeRequest: {
      auto request = DecodeProbeRequest(frame);
      if (!request.ok()) {
        return Encode(ErrorResponse{request.status().code(),
                                    request.status().message()});
      }
      const Status alive = home.Ping();
      if (!alive.ok()) {
        return Encode(ErrorResponse{alive.code(), alive.message()});
      }
      return Encode(ProbeResponse{request->token});
    }
    default:
      return Encode(
          ErrorResponse{StatusCode::kInvalidArgument,
                        "home server only accepts request frames"});
  }
}

namespace {

Status ErrorFrameToStatus(std::string_view frame) {
  auto error = DecodeErrorResponse(frame);
  if (!error.ok()) return ParseError("undecodable error frame");
  return Status(error->code, error->message);
}

}  // namespace

StatusOr<std::string> UnwrapQueryResponse(std::string_view frame) {
  const std::optional<MessageType> type = PeekType(frame);
  if (type == MessageType::kError) return ErrorFrameToStatus(frame);
  DSSP_ASSIGN_OR_RETURN(QueryResponse response, DecodeQueryResponse(frame));
  return std::move(response.result_blob);
}

StatusOr<engine::UpdateEffect> UnwrapUpdateResponse(std::string_view frame) {
  const std::optional<MessageType> type = PeekType(frame);
  if (type == MessageType::kError) return ErrorFrameToStatus(frame);
  DSSP_ASSIGN_OR_RETURN(UpdateResponse response,
                        DecodeUpdateResponse(frame));
  return engine::UpdateEffect{response.rows_affected};
}

}  // namespace dssp::service
