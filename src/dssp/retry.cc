#include "dssp/retry.h"

#include <algorithm>

#include "dssp/protocol.h"

namespace dssp::service {

double RetryingClient::NextBackoff(int retry_index) {
  double backoff = policy_.initial_backoff_s;
  for (int i = 0; i < retry_index; ++i) {
    backoff *= policy_.backoff_multiplier;
  }
  backoff = std::min(backoff, policy_.max_backoff_s);
  const double jitter = std::clamp(policy_.jitter_fraction, 0.0, 1.0);
  if (jitter > 0) {
    MutexLock lock(mu_);
    backoff *= 1.0 + jitter * (2.0 * rng_.NextDouble() - 1.0);
  }
  return backoff;
}

StatusOr<std::string> RetryingClient::Call(std::string_view request_frame,
                                           WireStats* stats) {
  WireStats local;
  WireStats& ws = stats != nullptr ? *stats : local;
  ws = WireStats{};

  const std::string sealed = Seal(request_frame);
  const int max_attempts = std::max(1, policy_.max_attempts);
  Status last_error = UnavailableError("no attempt made");

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Backoff before each retry; abandon the retry if the remaining
      // deadline budget cannot cover it.
      const double backoff = NextBackoff(attempt - 1);
      if (policy_.deadline_s > 0 &&
          ws.delay_s + backoff >= policy_.deadline_s) {
        return DeadlineExceededError("wire deadline exhausted after " +
                                     std::to_string(ws.attempts) +
                                     " attempts");
      }
      ws.delay_s += backoff;
      ++ws.retries;
    }
    ++ws.attempts;
    ws.request_bytes += sealed.size();

    ChannelOutcome outcome = channel_->RoundTrip(sealed);
    ws.delay_s += outcome.delay_s;
    if (!outcome.delivered) {
      // Lost request or lost response: indistinguishable to the client;
      // both cost one attempt timeout.
      ++ws.timeouts;
      ws.delay_s += policy_.attempt_timeout_s;
      last_error = UnavailableError("home server unreachable");
      continue;
    }
    ws.response_bytes += outcome.response.size();

    auto inner = Unseal(outcome.response);
    if (!inner.ok()) {
      // Damage on the wire (either direction mangles the envelope).
      ++ws.corrupt_frames_dropped;
      last_error = inner.status();
      continue;
    }
    if (PeekType(*inner) == MessageType::kError) {
      // The home server answered. A kCorruptFrame error means our request
      // arrived damaged — retry. Anything else is a genuine, deterministic
      // application error the caller must see.
      auto error = DecodeErrorResponse(*inner);
      if (error.ok() && error->code == StatusCode::kCorruptFrame) {
        ++ws.corrupt_frames_dropped;
        last_error = CorruptFrameError(error->message);
        continue;
      }
    }
    return inner;
  }
  if (last_error.code() == StatusCode::kCorruptFrame) {
    return UnavailableError("giving up after repeated frame corruption: " +
                            last_error.message());
  }
  return last_error;
}

}  // namespace dssp::service
