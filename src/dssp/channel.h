#ifndef DSSP_DSSP_CHANNEL_H_
#define DSSP_DSSP_CHANNEL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "backend/connection_pool.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"

namespace dssp::backend {
class HomeBackend;
}  // namespace dssp::backend

namespace dssp::service {

// Result of putting one request frame on the DSSP<->home wire (the WAN of
// the paper's Figure 2) and waiting for the reply.
struct ChannelOutcome {
  bool delivered = false;  // A response frame reached the client.
  std::string response;    // Valid only when `delivered`.

  // Observability for tests and accounting (a real client cannot act on
  // these: a lost response is indistinguishable from a lost request).
  int home_deliveries = 0;  // Times the request reached the home server.
  double delay_s = 0;       // Injected wire delay, in simulated seconds.
  bool request_corrupted = false;
  bool response_corrupted = false;
};

// Transport between ScalableApp / DsspNode and a home backend.
// Implementations must be safe for concurrent RoundTrip calls (a
// multi-threaded tenant shares one channel).
class Channel {
 public:
  virtual ~Channel() = default;
  virtual ChannelOutcome RoundTrip(std::string_view request_frame) = 0;
};

// The in-process perfect wire: every frame is delivered intact, exactly
// once, with zero delay. Preserves the pre-channel behavior bit for bit.
class DirectChannel : public Channel {
 public:
  explicit DirectChannel(backend::HomeBackend& home) : home_(home) {}
  ChannelOutcome RoundTrip(std::string_view request_frame) override;

 private:
  backend::HomeBackend& home_;
};

// Fault model for a lossy WAN. Probabilities are independent per frame and
// per direction; all randomness comes from one seeded RNG, so a run is
// reproducible from (profile, seed, traffic).
struct FaultProfile {
  double drop_request = 0;       // Request lost before the home server.
  double drop_response = 0;      // Response lost after the home processed.
  double corrupt_request = 0;    // Random byte damage on the request.
  double corrupt_response = 0;   // Random byte damage on the response.
  double duplicate_request = 0;  // Home server sees the frame twice.
  double delay_probability = 0;  // Chance of an extra latency spike.
  double delay_mean_s = 0.040;   // Mean of the exponential spike.
  int max_corrupt_bytes = 4;     // Damage size per corruption event.

  // Rejects probabilities outside [0, 1] and negative delay_mean_s /
  // max_corrupt_bytes. Checked at channel construction: an out-of-range
  // probability would silently clamp inside the RNG and a negative delay
  // mean would emit NaNs into the timing model mid-run.
  Status Validate() const;
};

// Decorator injecting drops, corruption, duplication, and delay spikes into
// an inner channel. Corruption flips random bytes or truncates/extends the
// frame — exactly the damage the sealed-frame checksum must catch.
class FaultInjectingChannel : public Channel {
 public:
  // DSSP_CHECKs profile.Validate() — a malformed fault model is a harness
  // bug, caught at construction rather than as corrupted statistics later.
  FaultInjectingChannel(Channel& inner, FaultProfile profile, uint64_t seed);

  ChannelOutcome RoundTrip(std::string_view request_frame) override;

  const FaultProfile& profile() const { return profile_; }

 private:
  std::string Corrupt(std::string_view frame) DSSP_REQUIRES(mu_);

  Channel& inner_;
  FaultProfile profile_;
  Mutex mu_;  // RoundTrip may be called concurrently.
  Rng rng_ DSSP_GUARDED_BY(mu_);
};

// Connection-pool health prober that rides the real wire: each Probe() seals
// a kProbeRequest, sends it through `channel` (typically a
// FaultInjectingChannel, so a seeded FaultProfile produces reproducible
// probe losses), and succeeds only if an intact, token-matching
// kProbeResponse comes back. Tokens are drawn from a seeded RNG.
class ChannelHealthProber : public backend::HealthProber {
 public:
  ChannelHealthProber(Channel& channel, uint64_t seed);
  bool Probe() override;

 private:
  Channel& channel_;
  Mutex mu_;
  Rng rng_ DSSP_GUARDED_BY(mu_);
};

}  // namespace dssp::service

#endif  // DSSP_DSSP_CHANNEL_H_
