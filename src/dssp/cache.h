#ifndef DSSP_DSSP_CACHE_H_
#define DSSP_DSSP_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "analysis/exposure.h"
#include "engine/query_result.h"
#include "sql/ast.h"

namespace dssp::service {

// One cached (possibly encrypted) query result held by the DSSP. The fields
// below `blob` mirror exactly what the entry's exposure level reveals; a
// hidden field is absent, so invalidation code physically cannot consult it.
struct CacheEntry {
  static constexpr size_t kNoTemplate = static_cast<size_t>(-1);

  std::string key;  // Exposure-dependent lookup key (Section 2.2, fn. 3).
  analysis::ExposureLevel level = analysis::ExposureLevel::kBlind;

  // Index of the query template in the app's TemplateSet, if exposed
  // (level >= template); kNoTemplate otherwise.
  size_t template_index = kNoTemplate;

  // The bound query statement, if exposed (level >= stmt).
  std::optional<sql::Statement> statement;

  // The plaintext result, if exposed (level == view).
  std::optional<engine::QueryResult> result;

  // What a cache hit returns to the client: the serialized result,
  // encrypted unless level == view.
  std::string blob;
};

// The DSSP's store of cached query results for one application, with a
// per-exposed-template secondary index so invalidation can prune whole
// template groups using template-level analysis before doing per-entry
// work, and optional LRU capacity management (a shared provider bounds each
// tenant's memory).
class QueryCache {
 public:
  QueryCache() = default;

  // Not copyable (entries are large); movable.
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;
  QueryCache(QueryCache&&) = default;
  QueryCache& operator=(QueryCache&&) = default;

  // Caps the entry count; 0 (default) means unlimited. Shrinking below the
  // current size evicts least-recently-used entries immediately.
  void SetCapacity(size_t max_entries);
  size_t capacity() const { return max_entries_; }
  uint64_t evictions() const { return evictions_; }

  // Returns the entry with `key`, or nullptr. A hit refreshes the entry's
  // LRU position.
  const CacheEntry* Lookup(const std::string& key);

  // Like Lookup but without the LRU side effect; for invalidation scans and
  // introspection.
  const CacheEntry* Peek(const std::string& key) const;

  // Inserts or overwrites, evicting the least-recently-used entries if the
  // cache is at capacity.
  void Insert(CacheEntry entry);

  void Erase(const std::string& key);

  // Group keys: template_index for exposed templates, CacheEntry::kNoTemplate
  // for blind-level entries.
  std::vector<size_t> GroupKeys() const;

  // Keys of all entries in a group (copy: callers erase while iterating).
  std::vector<std::string> GroupEntryKeys(size_t group) const;

  // Erases every entry in `group`; returns how many.
  size_t EraseGroup(size_t group);

  // Erases everything; returns how many.
  size_t Clear();

  size_t size() const { return entries_.size(); }

 private:
  struct Stored {
    CacheEntry entry;
    std::list<std::string>::iterator lru_position;
  };

  void Touch(Stored& stored);
  void EvictToCapacity();

  std::unordered_map<std::string, Stored> entries_;
  std::map<size_t, std::set<std::string>> groups_;
  // Most-recently-used at the front.
  std::list<std::string> lru_;
  size_t max_entries_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace dssp::service

#endif  // DSSP_DSSP_CACHE_H_
