#ifndef DSSP_DSSP_CACHE_H_
#define DSSP_DSSP_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/exposure.h"
#include "common/mutex.h"
#include "dssp/view_index.h"
#include "engine/query_result.h"
#include "sql/ast.h"

namespace dssp::service {

// One cached (possibly encrypted) query result held by the DSSP. The fields
// below `blob` mirror exactly what the entry's exposure level reveals; a
// hidden field is absent, so invalidation code physically cannot consult it.
struct CacheEntry {
  static constexpr size_t kNoTemplate = static_cast<size_t>(-1);

  std::string key;  // Exposure-dependent lookup key (Section 2.2, fn. 3).
  analysis::ExposureLevel level = analysis::ExposureLevel::kBlind;

  // Index of the query template in the app's TemplateSet, if exposed
  // (level >= template); kNoTemplate otherwise.
  size_t template_index = kNoTemplate;

  // The bound query statement, if exposed (level >= stmt).
  std::optional<sql::Statement> statement;

  // The plaintext result, if exposed (level == view).
  std::optional<engine::QueryResult> result;

  // What a cache hit returns to the client: the serialized result,
  // encrypted unless level == view.
  std::string blob;
};

// The DSSP's store of cached query results for one application, with a
// per-exposed-template secondary index so invalidation can prune whole
// template groups using template-level analysis before doing per-entry
// work, and optional LRU capacity management (a shared provider bounds each
// tenant's memory).
//
// Thread safety: safe for concurrent use. Entries are hashed across
// kNumShards lock-striped shards, each with its own hash map, per-template
// group index, and LRU list; a lookup or store only contends with
// operations on the same shard. Exact global LRU order is preserved via a
// monotonic access tick per entry: eviction (the only cross-shard
// operation) takes all shard locks in index order and removes the entry
// with the globally smallest tick, so single-threaded eviction behavior is
// identical to an unsharded cache.
class QueryCache {
 public:
  static constexpr size_t kNumShards = 8;

  QueryCache() = default;

  // Neither copyable nor movable (shards contain mutexes); construct in
  // place.
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // Caps the entry count; 0 (default) means unlimited. Shrinking below the
  // current size evicts least-recently-used entries immediately (counted
  // separately from insert-overflow evictions).
  void SetCapacity(size_t max_entries);
  size_t capacity() const {
    return max_entries_.load(std::memory_order_relaxed);
  }

  // Capacity evictions, split by cause. evictions() is their sum.
  uint64_t insert_evictions() const {
    return insert_evictions_.load(std::memory_order_relaxed);
  }
  uint64_t shrink_evictions() const {
    return shrink_evictions_.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const {
    return insert_evictions() + shrink_evictions();
  }

  // Entries removed explicitly (Erase, EraseGroup, InvalidateEntries) —
  // consistency-driven removals, as opposed to capacity evictions. Clear()
  // is counted by neither (it is an administrative reset, not invalidation).
  uint64_t invalidation_removals() const {
    return invalidation_removals_.load(std::memory_order_relaxed);
  }

  // Returns a copy of the entry with `key`, or nullopt. A hit refreshes the
  // entry's LRU position.
  std::optional<CacheEntry> Lookup(const std::string& key);

  // Like Lookup but without the LRU side effect; for introspection.
  std::optional<CacheEntry> Peek(const std::string& key) const;

  // Inserts or overwrites, evicting the least-recently-used entries if the
  // cache is at capacity.
  void Insert(CacheEntry entry);

  void Erase(const std::string& key);

  // Group keys: template_index for exposed templates, CacheEntry::kNoTemplate
  // for blind-level entries. Sorted; merged across shards.
  std::vector<size_t> GroupKeys() const;

  // Keys of all entries in a group, sorted (copy: callers erase while
  // iterating).
  std::vector<std::string> GroupEntryKeys(size_t group) const;

  // Erases every entry in `group`; returns how many.
  size_t EraseGroup(size_t group);

  // Invalidation driver: visits shards one at a time (so invalidating one
  // group never blocks lookups in other shards), skipping whole groups when
  // `group_may_invalidate` returns false and erasing each remaining entry
  // for which `should_invalidate` returns true. Returns entries erased.
  //
  // All callbacks run under a shard lock and must not call back into this
  // cache. `group_may_invalidate` (and `group_probe`) may be called once
  // per (shard, group); memoize in the caller if the decision is expensive.
  size_t InvalidateEntries(
      const std::function<bool(size_t group)>& group_may_invalidate,
      const std::function<bool(const CacheEntry&)>& should_invalidate);

  // Predicate-indexed variant: `group_probe` narrows which entries of a
  // surviving group are visited (GroupProbe::kScanAll reproduces the plain
  // scan; kScanRest / kProbe skip indexed entries the ViewIndexPlan proved
  // `should_invalidate` would decline). Unindexed entries are always
  // visited. Entry visit order within a group is the same sorted key order
  // as the plain scan, so stale-retention FIFO order is identical whenever
  // the erased sets are.
  size_t InvalidateEntries(
      const std::function<bool(size_t group)>& group_may_invalidate,
      const std::function<bool(const CacheEntry&)>& should_invalidate,
      const std::function<GroupProbe(size_t group)>& group_probe);

  // Installs the compiled predicate index used to key entries at Insert
  // (`plan` must outlive the cache or be reset to nullptr first). Entries
  // inserted before the plan is installed stay in their group's unindexed
  // rest set, which every probe visits — sound, just unpruned.
  void SetViewIndex(const ViewIndexPlan* plan) {
    view_index_.store(plan, std::memory_order_release);
  }
  const ViewIndexPlan* view_index() const {
    return view_index_.load(std::memory_order_acquire);
  }

  // Erases everything; returns how many. Also drops the stale side store.
  size_t Clear();

  size_t size() const { return size_.load(std::memory_order_relaxed); }

  // ----- Degraded-mode stale retention (bounded-staleness serving). -----
  //
  // When enabled (capacity > 0), entries removed by *consistency*
  // invalidation (Erase / EraseGroup / InvalidateEntries — not capacity
  // eviction, not Clear) are kept in a bounded FIFO side store, stamped
  // with the current update epoch. While the home server is unreachable, a
  // client may serve such an entry if it is at most `max_updates_behind`
  // observed updates old (k-staleness: the served value predates at most k
  // updates). Inserting a fresh entry for a key supersedes its stale copy.

  // Caps the side store's entry count; 0 (default) disables retention and
  // drops anything currently retained.
  void SetStaleRetention(size_t max_entries);
  size_t stale_retention() const {
    return stale_capacity_.load(std::memory_order_relaxed);
  }
  size_t StaleSize() const;

  // Advances the update epoch; call once per observed update, after its
  // invalidation pass (so an entry killed by update N is 1 epoch behind
  // immediately afterwards).
  void BumpUpdateEpoch() {
    update_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t update_epoch() const {
    return update_epoch_.load(std::memory_order_relaxed);
  }

  // Returns the retained entry for `key` if it is at most
  // `max_updates_behind` epochs old (which is >= 1 for anything retained).
  std::optional<CacheEntry> LookupStale(const std::string& key,
                                        uint64_t max_updates_behind) const;

 private:
  struct Stored {
    CacheEntry entry;
    std::list<std::string>::iterator lru_position;
    // Global last-access time; strictly increasing across the whole cache,
    // so each shard's LRU list is sorted by tick (front = newest) and the
    // global LRU victim is the smallest tail tick over all shards.
    uint64_t tick = 0;
    // Discriminator bound this entry is indexed under in its group's
    // by_value map; nullopt = the entry lives in the group's rest set.
    std::optional<sql::Value> index_key;
  };

  // One template group's membership, split by indexability: entries whose
  // exposed statement yields a discriminator bound live in the ordered
  // by_value index (probed sublinearly at invalidation time); everything
  // else — blind/template-level entries, missing literals, NULL bounds —
  // lives in `rest`, which every probe mode visits.
  struct Group {
    ValueKeyMap by_value;
    std::set<std::string> rest;

    bool empty() const { return by_value.empty() && rest.empty(); }
  };

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, Stored> entries DSSP_GUARDED_BY(mu);
    std::map<size_t, Group> groups DSSP_GUARDED_BY(mu);
    // Most-recently-used at the front.
    std::list<std::string> lru DSSP_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % kNumShards];
  }
  const Shard& ShardFor(const std::string& key) const {
    return shards_[std::hash<std::string>{}(key) % kNumShards];
  }
  uint64_t NextTick() { return tick_.fetch_add(1, std::memory_order_relaxed); }

  // Removes one entry from its shard's map, group index, and LRU list.
  // Caller holds shard.mu. `retain_stale` moves the entry into the stale
  // side store (invalidation paths) instead of discarding it outright
  // (capacity evictions). Lock order is always shard.mu -> stale_mu_.
  void RemoveLocked(Shard& shard,
                    std::unordered_map<std::string, Stored>::iterator it,
                    bool retain_stale = false) DSSP_REQUIRES(shard.mu);

  // Stashes an invalidated entry into the bounded stale store (no-op when
  // retention is off).
  void RetainStale(CacheEntry entry);

  // Evicts globally least-recently-used entries until size() <= capacity,
  // charging them to `counter`. Takes all shard locks (in index order) via a
  // dynamic lock array — a pattern thread-safety analysis cannot express, so
  // the function opts out; it is the single multi-shard-lock path.
  void EvictToCapacity(std::atomic<uint64_t>& counter)
      DSSP_NO_THREAD_SAFETY_ANALYSIS;

  struct StaleStored {
    CacheEntry entry;
    uint64_t epoch = 0;  // update_epoch_ when the entry was invalidated.
    std::list<std::string>::iterator fifo_position;
  };

  std::array<Shard, kNumShards> shards_;
  std::atomic<const ViewIndexPlan*> view_index_{nullptr};
  mutable Mutex stale_mu_;
  std::unordered_map<std::string, StaleStored> stale_
      DSSP_GUARDED_BY(stale_mu_);
  // Oldest at the front.
  std::list<std::string> stale_fifo_ DSSP_GUARDED_BY(stale_mu_);
  std::atomic<size_t> stale_capacity_{0};
  std::atomic<uint64_t> update_epoch_{0};
  std::atomic<uint64_t> tick_{0};
  std::atomic<size_t> size_{0};
  std::atomic<size_t> max_entries_{0};
  std::atomic<uint64_t> insert_evictions_{0};
  std::atomic<uint64_t> shrink_evictions_{0};
  std::atomic<uint64_t> invalidation_removals_{0};
};

}  // namespace dssp::service

#endif  // DSSP_DSSP_CACHE_H_
