#ifndef DSSP_DSSP_PROTOCOL_H_
#define DSSP_DSSP_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace dssp::backend {
class HomeBackend;
}  // namespace dssp::backend

namespace dssp::service {

// The DSSP <-> home-server wire protocol (the arrows of the paper's
// Figure 2). Every message is a length-delimited binary frame:
//
//   [1 byte type][payload...]
//
// Statement payloads are ciphertext under the application's statement
// cipher; the DSSP forwards them opaquely. Result payloads are ciphertext
// under the result cipher unless the query template's exposure level is
// `view`. The framing itself carries no plaintext application data.

enum class MessageType : uint8_t {
  kQueryRequest = 1,    // DSSP -> home: encrypted statement.
  kQueryResponse = 2,   // home -> DSSP: (possibly encrypted) result blob.
  kUpdateRequest = 3,   // DSSP -> home: encrypted statement.
  kUpdateResponse = 4,  // home -> DSSP: rows affected.
  kError = 5,           // home -> DSSP: status code + message.
  kSealed = 6,          // Integrity envelope: checksum + inner frame.

  // Cluster invalidation bus (DSSP node <-> DSSP node, src/cluster): an
  // exposure-gated update notice fanned out to every member node, and its
  // acknowledgement. The notice carries exactly what the update's exposure
  // level already revealed to the publishing node — nothing extra crosses
  // the inter-node wire.
  kInvalidateRequest = 7,
  kInvalidateResponse = 8,

  // Batched invalidation fan-out (DSSP node <-> DSSP node): a member's
  // pending FIFO coalesced into one sealed frame carrying N notices under a
  // single batch nonce, amortizing the per-frame seal/retry overhead of
  // update storms. The response acks each notice individually, so one
  // refused notice does not poison the batch.
  kInvalidateBatchRequest = 9,
  kInvalidateBatchResponse = 10,

  // Home-backend health probe (DSSP -> home): one round trip over the same
  // (fault-injectable) wire as real traffic, so a wire that damages requests
  // also damages probes. The echoed token ties a response to its probe.
  kProbeRequest = 11,
  kProbeResponse = 12,

  // Sentinel: one past the last frame type. Keep last; PeekType derives the
  // valid range from it so adding a type cannot desynchronize dispatch.
  kMessageTypeEnd,
};

struct QueryRequest {
  std::string encrypted_statement;
  bool plaintext_result = false;  // Exposure level `view`.
};

struct QueryResponse {
  std::string result_blob;
};

struct UpdateRequest {
  std::string encrypted_statement;
  // Retry-idempotency nonce; 0 means "no deduplication". A nonzero nonce is
  // encoded as an optional trailing field (absent on legacy frames) and lets
  // the home server suppress re-application when a retried or duplicated
  // frame arrives after the update was already applied.
  uint64_t nonce = 0;
};

struct UpdateResponse {
  uint64_t rows_affected = 0;
};

struct ErrorResponse {
  StatusCode code = StatusCode::kInvalidArgument;
  std::string message;
};

// One exposure-gated update notice on the cluster invalidation bus. The
// statement (when the update's level exposes one) travels as SQL text and is
// re-parsed by the receiving node; `level` is the analysis::ExposureLevel as
// a byte; `template_index` uses ~0 for "not exposed".
struct InvalidateRequest {
  std::string app_id;
  uint8_t level = 0;
  uint64_t template_index = static_cast<uint64_t>(-1);
  std::string statement_sql;  // Empty when the notice carries no statement.
  // At-most-once dedup nonce (never 0): a retried or duplicated bus frame
  // must not re-run invalidation (and must not advance the staleness epoch
  // twice).
  uint64_t nonce = 0;
};

struct InvalidateResponse {
  uint64_t entries_invalidated = 0;
};

// N update notices coalesced into one wire frame, FIFO order preserved. Each
// entry is a complete encoded kInvalidateRequest frame (with its own
// per-notice dedup nonce), so batching changes only the envelope: the notice
// payloads are byte-identical to the unbatched wire. The batch nonce (never
// 0) deduplicates the whole frame at-most-once — a retried batch whose
// response was lost returns the stored acks instead of re-running anything.
struct InvalidateBatchRequest {
  uint64_t nonce = 0;
  std::vector<std::string> notices;  // Encoded kInvalidateRequest frames.
};

// Per-notice acknowledgement, batch order. A refused notice (malformed or
// misrouted — deterministic, so retrying is pointless) reports its status
// code without blocking the notices around it.
struct InvalidateBatchResponse {
  struct Ack {
    bool accepted = false;
    uint64_t entries_invalidated = 0;            // Valid when accepted.
    StatusCode code = StatusCode::kOk;           // Valid when refused.
  };
  std::vector<Ack> acks;
};

// Health probe: the connection pool sends these through the probe channel;
// the home side answers kProbeResponse (echoing the token) iff its backend's
// Ping() is Ok. Any loss, corruption, or error frame counts as a failed
// probe at the pool.
struct ProbeRequest {
  uint64_t token = 0;
};

struct ProbeResponse {
  uint64_t token = 0;
};

// Frame encoding/decoding. Decoders validate the type byte and payload
// structure and fail (never crash) on malformed frames.
std::string Encode(const QueryRequest& message);
std::string Encode(const QueryResponse& message);
std::string Encode(const UpdateRequest& message);
std::string Encode(const UpdateResponse& message);
std::string Encode(const ErrorResponse& message);
std::string Encode(const InvalidateRequest& message);
std::string Encode(const InvalidateResponse& message);
std::string Encode(const InvalidateBatchRequest& message);
std::string Encode(const InvalidateBatchResponse& message);
std::string Encode(const ProbeRequest& message);
std::string Encode(const ProbeResponse& message);

// Peeks the frame type; nullopt if the frame is empty or the type unknown.
std::optional<MessageType> PeekType(std::string_view frame);

// Integrity envelope for lossy/corrupting transports:
//
//   [1 byte kSealed][8-byte checksum of inner][inner frame...]
//
// Seal wraps any request/response frame; Unseal verifies the checksum and
// returns the inner frame, failing with kCorruptFrame on any mismatch (this
// is how the retry layer tells wire corruption apart from genuine
// application errors). Sealing a sealed frame is rejected by Unseal.
std::string Seal(std::string_view frame);
StatusOr<std::string> Unseal(std::string_view envelope);

StatusOr<QueryRequest> DecodeQueryRequest(std::string_view frame);
StatusOr<QueryResponse> DecodeQueryResponse(std::string_view frame);
StatusOr<UpdateRequest> DecodeUpdateRequest(std::string_view frame);
StatusOr<UpdateResponse> DecodeUpdateResponse(std::string_view frame);
StatusOr<ErrorResponse> DecodeErrorResponse(std::string_view frame);
StatusOr<InvalidateRequest> DecodeInvalidateRequest(std::string_view frame);
StatusOr<InvalidateResponse> DecodeInvalidateResponse(std::string_view frame);
StatusOr<InvalidateBatchRequest> DecodeInvalidateBatchRequest(
    std::string_view frame);
StatusOr<InvalidateBatchResponse> DecodeInvalidateBatchResponse(
    std::string_view frame);
StatusOr<ProbeRequest> DecodeProbeRequest(std::string_view frame);
StatusOr<ProbeResponse> DecodeProbeResponse(std::string_view frame);

// Byte-level request dispatcher for a home backend: takes one request frame,
// returns one response frame (kQueryResponse / kUpdateResponse /
// kProbeResponse / kError). This is the single entry point a transport (TCP,
// in-process channel) would call; ScalableApp drives it for full wire
// fidelity. Dispatch goes through the backend::HomeBackend interface, so any
// backend implementation sits behind the same wire.
std::string DispatchFrame(backend::HomeBackend& home, std::string_view frame);

// Client-side helpers: unwrap a response frame into the expected type,
// converting kError frames back into Status.
StatusOr<std::string> UnwrapQueryResponse(std::string_view frame);
StatusOr<engine::UpdateEffect> UnwrapUpdateResponse(std::string_view frame);

}  // namespace dssp::service

#endif  // DSSP_DSSP_PROTOCOL_H_
