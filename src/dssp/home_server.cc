#include "dssp/home_server.h"

#include "sql/parser.h"

namespace dssp::service {

HomeServer::HomeServer(std::string app_id, crypto::KeyRing keyring)
    : app_id_(std::move(app_id)), keyring_(std::move(keyring)) {}

Status HomeServer::AddQueryTemplate(std::string_view sql) {
  return templates_.AddQuerySql(sql, database_.catalog());
}

Status HomeServer::AddUpdateTemplate(std::string_view sql) {
  return templates_.AddUpdateSql(sql, database_.catalog());
}

StatusOr<std::string> HomeServer::HandleQuery(std::string_view ciphertext,
                                              bool plaintext_result) {
  const std::string sql = statement_cipher().Decrypt(ciphertext);
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  DSSP_ASSIGN_OR_RETURN(engine::QueryResult result,
                        database_.ExecuteQuery(stmt));
  ++queries_executed_;
  std::string serialized = result.Serialize();
  if (plaintext_result) return serialized;
  return result_cipher().Encrypt(serialized);
}

StatusOr<engine::UpdateEffect> HomeServer::HandleUpdate(
    std::string_view ciphertext) {
  const std::string sql = statement_cipher().Decrypt(ciphertext);
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  DSSP_ASSIGN_OR_RETURN(engine::UpdateEffect effect,
                        database_.ExecuteUpdate(stmt));
  ++updates_applied_;
  return effect;
}

}  // namespace dssp::service
