#include "dssp/home_server.h"

#include "sql/parser.h"

namespace dssp::service {

HomeServer::HomeServer(std::string app_id, crypto::KeyRing keyring)
    : app_id_(std::move(app_id)), keyring_(std::move(keyring)) {}

Status HomeServer::AddQueryTemplate(std::string_view sql) {
  DSSP_RETURN_IF_ERROR(templates_.AddQuerySql(sql, database_.catalog()));
  // Compile the template once at registration; a failure is not an error
  // (the interpreter serves that template) but is what the dssp_audit
  // PERF-UNPLANNED-QUERY finding reports.
  const size_t index = templates_.queries().size() - 1;
  const templates::QueryTemplate& tmpl = templates_.queries()[index];
  StatusOr<engine::QueryProgram> program = engine::QueryProgram::Compile(
      database_.catalog(), tmpl.statement().select());
  if (program.ok()) {
    programs_.push_back(std::move(program).value());
  } else {
    programs_.push_back(std::nullopt);
  }
  shape_to_queries_[templates::SelectShapeKey(tmpl.statement().select())]
      .push_back(index);
  return Status::Ok();
}

Status HomeServer::AddUpdateTemplate(std::string_view sql) {
  return templates_.AddUpdateSql(sql, database_.catalog());
}

StatusOr<std::string> HomeServer::HandleQuery(std::string_view ciphertext,
                                              bool plaintext_result) {
  const std::string sql = statement_cipher().Decrypt(ciphertext);
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  DSSP_ASSIGN_OR_RETURN(engine::QueryResult result, ExecuteParsedQuery(stmt));
  queries_executed_.fetch_add(1, std::memory_order_relaxed);
  std::string serialized = result.Serialize();
  if (plaintext_result) return serialized;
  return result_cipher().Encrypt(serialized);
}

StatusOr<engine::QueryResult> HomeServer::ExecuteParsedQuery(
    const sql::Statement& stmt) {
  if (program_execution_enabled_ && stmt.kind() == sql::StatementKind::kSelect &&
      stmt.num_params == 0) {
    const auto it =
        shape_to_queries_.find(templates::SelectShapeKey(stmt.select()));
    if (it != shape_to_queries_.end()) {
      std::vector<sql::Value> params;
      for (const size_t index : it->second) {
        const std::optional<engine::QueryProgram>& program = programs_[index];
        if (!program.has_value()) continue;
        if (!templates_.queries()[index].MatchInstance(stmt.select(),
                                                       &params)) {
          continue;
        }
        program_queries_.fetch_add(1, std::memory_order_relaxed);
        return program->Execute(database_, params);
      }
    }
  }
  interpreter_fallback_queries_.fetch_add(1, std::memory_order_relaxed);
  return database_.ExecuteQuery(stmt);
}

StatusOr<engine::UpdateEffect> HomeServer::HandleUpdate(
    std::string_view ciphertext, uint64_t nonce) {
  const std::string sql = statement_cipher().Decrypt(ciphertext);
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (nonce == 0) {
    DSSP_ASSIGN_OR_RETURN(engine::UpdateEffect effect,
                          database_.ExecuteUpdate(stmt));
    updates_applied_.fetch_add(1, std::memory_order_relaxed);
    return effect;
  }
  // Nonce-carrying update: the dedup check and the apply form one critical
  // section, so a retry racing the original cannot apply twice.
  MutexLock lock(dedup_mu_);
  const auto it = applied_nonces_.find(nonce);
  if (it != applied_nonces_.end()) {
    duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  DSSP_ASSIGN_OR_RETURN(engine::UpdateEffect effect,
                        database_.ExecuteUpdate(stmt));
  updates_applied_.fetch_add(1, std::memory_order_relaxed);
  applied_nonces_.emplace(nonce, effect);
  dedup_fifo_.push_back(nonce);
  if (dedup_fifo_.size() > kDedupWindow) {
    applied_nonces_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
  return effect;
}

}  // namespace dssp::service
