#include "dssp/home_server.h"

#include "sql/parser.h"

namespace dssp::service {

HomeServer::HomeServer(std::string app_id, crypto::KeyRing keyring)
    : app_id_(std::move(app_id)), keyring_(std::move(keyring)) {}

Status HomeServer::AddQueryTemplate(std::string_view sql) {
  return templates_.AddQuerySql(sql, database_.catalog());
}

Status HomeServer::AddUpdateTemplate(std::string_view sql) {
  return templates_.AddUpdateSql(sql, database_.catalog());
}

StatusOr<std::string> HomeServer::HandleQuery(std::string_view ciphertext,
                                              bool plaintext_result) {
  const std::string sql = statement_cipher().Decrypt(ciphertext);
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  DSSP_ASSIGN_OR_RETURN(engine::QueryResult result,
                        database_.ExecuteQuery(stmt));
  queries_executed_.fetch_add(1, std::memory_order_relaxed);
  std::string serialized = result.Serialize();
  if (plaintext_result) return serialized;
  return result_cipher().Encrypt(serialized);
}

StatusOr<engine::UpdateEffect> HomeServer::HandleUpdate(
    std::string_view ciphertext, uint64_t nonce) {
  const std::string sql = statement_cipher().Decrypt(ciphertext);
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (nonce == 0) {
    DSSP_ASSIGN_OR_RETURN(engine::UpdateEffect effect,
                          database_.ExecuteUpdate(stmt));
    updates_applied_.fetch_add(1, std::memory_order_relaxed);
    return effect;
  }
  // Nonce-carrying update: the dedup check and the apply form one critical
  // section, so a retry racing the original cannot apply twice.
  MutexLock lock(dedup_mu_);
  const auto it = applied_nonces_.find(nonce);
  if (it != applied_nonces_.end()) {
    duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  DSSP_ASSIGN_OR_RETURN(engine::UpdateEffect effect,
                        database_.ExecuteUpdate(stmt));
  updates_applied_.fetch_add(1, std::memory_order_relaxed);
  applied_nonces_.emplace(nonce, effect);
  dedup_fifo_.push_back(nonce);
  if (dedup_fifo_.size() > kDedupWindow) {
    applied_nonces_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
  return effect;
}

}  // namespace dssp::service
