#include "dssp/node.h"

namespace dssp::service {

Status DsspNode::RegisterApp(std::string app_id,
                             const catalog::Catalog* catalog,
                             const templates::TemplateSet* templates) {
  DSSP_CHECK(catalog != nullptr && templates != nullptr);
  if (apps_.count(app_id) != 0) {
    return AlreadyExistsError("application " + app_id);
  }
  AppState state;
  state.catalog = catalog;
  state.templates = templates;
  state.strategy = std::make_unique<invalidation::MixedStrategy>(*catalog);
  apps_.emplace(std::move(app_id), std::move(state));
  return Status::Ok();
}

bool DsspNode::HasApp(std::string_view app_id) const {
  return apps_.find(app_id) != apps_.end();
}

DsspNode::AppState& DsspNode::GetApp(std::string_view app_id) {
  const auto it = apps_.find(app_id);
  DSSP_CHECK(it != apps_.end());
  return it->second;
}

const DsspNode::AppState& DsspNode::GetApp(std::string_view app_id) const {
  const auto it = apps_.find(app_id);
  DSSP_CHECK(it != apps_.end());
  return it->second;
}

const CacheEntry* DsspNode::Lookup(const std::string& app_id,
                                   const std::string& key) {
  AppState& app = GetApp(app_id);
  ++app.stats.lookups;
  const CacheEntry* entry = app.cache.Lookup(key);
  if (entry != nullptr) {
    ++app.stats.hits;
  } else {
    ++app.stats.misses;
  }
  return entry;
}

void DsspNode::Store(const std::string& app_id, CacheEntry entry) {
  AppState& app = GetApp(app_id);
  ++app.stats.stores;
  app.cache.Insert(std::move(entry));
}

size_t DsspNode::OnUpdate(const std::string& app_id,
                          const UpdateNotice& notice) {
  AppState& app = GetApp(app_id);
  ++app.stats.updates_observed;

  invalidation::UpdateView update_view;
  update_view.level = notice.level;
  if (notice.level != analysis::ExposureLevel::kBlind &&
      notice.template_index != CacheEntry::kNoTemplate) {
    DSSP_CHECK(notice.template_index < app.templates->num_updates());
    update_view.tmpl = &app.templates->updates()[notice.template_index];
  }
  if (notice.level == analysis::ExposureLevel::kStmt &&
      notice.statement.has_value()) {
    update_view.statement = &*notice.statement;
  }

  size_t invalidated = 0;
  for (size_t group : app.cache.GroupKeys()) {
    // Group-level prefilter: decide with only the query template exposed
    // (the IPM's A cell). Our statement- and view-inspection strategies
    // refine the template-level decision monotonically, so a template-level
    // DNI is final for the whole group.
    invalidation::CachedQueryView group_view;
    if (group == CacheEntry::kNoTemplate) {
      group_view.level = analysis::ExposureLevel::kBlind;
    } else {
      group_view.level = analysis::ExposureLevel::kTemplate;
      group_view.tmpl = &app.templates->queries()[group];
    }
    if (app.strategy->Decide(update_view, group_view) ==
        invalidation::Decision::kDoNotInvalidate) {
      continue;
    }

    for (const std::string& key : app.cache.GroupEntryKeys(group)) {
      // Peek: inspecting entries for invalidation must not refresh their
      // LRU recency.
      const CacheEntry* entry = app.cache.Peek(key);
      DSSP_CHECK(entry != nullptr);
      invalidation::CachedQueryView view;
      view.level = entry->level;
      if (entry->template_index != CacheEntry::kNoTemplate) {
        view.tmpl = &app.templates->queries()[entry->template_index];
      }
      if (entry->statement.has_value()) view.statement = &*entry->statement;
      if (entry->result.has_value()) view.result = &*entry->result;
      if (app.strategy->Decide(update_view, view) ==
          invalidation::Decision::kInvalidate) {
        app.cache.Erase(key);
        ++invalidated;
      }
    }
  }
  app.stats.entries_invalidated += invalidated;
  return invalidated;
}

void DsspNode::SetCacheCapacity(const std::string& app_id,
                                size_t max_entries) {
  GetApp(app_id).cache.SetCapacity(max_entries);
}

uint64_t DsspNode::CacheEvictions(const std::string& app_id) const {
  return GetApp(app_id).cache.evictions();
}

size_t DsspNode::ClearCache(const std::string& app_id) {
  return GetApp(app_id).cache.Clear();
}

size_t DsspNode::CacheSize(const std::string& app_id) const {
  return GetApp(app_id).cache.size();
}

const DsspStats& DsspNode::stats(const std::string& app_id) const {
  return GetApp(app_id).stats;
}

size_t DsspNode::TotalCacheSize() const {
  size_t total = 0;
  for (const auto& [id, app] : apps_) total += app.cache.size();
  return total;
}

}  // namespace dssp::service
