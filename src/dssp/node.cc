#include "dssp/node.h"

#include <mutex>

namespace dssp::service {

DsspStats DsspNode::AtomicStats::Snapshot() const {
  DsspStats out;
  out.lookups = lookups.load(std::memory_order_relaxed);
  out.hits = hits.load(std::memory_order_relaxed);
  out.misses = misses.load(std::memory_order_relaxed);
  out.stores = stores.load(std::memory_order_relaxed);
  out.updates_observed = updates_observed.load(std::memory_order_relaxed);
  out.entries_invalidated =
      entries_invalidated.load(std::memory_order_relaxed);
  out.stale_hits = stale_hits.load(std::memory_order_relaxed);
  return out;
}

Status DsspNode::RegisterApp(std::string app_id,
                             const catalog::Catalog* catalog,
                             const templates::TemplateSet* templates) {
  DSSP_CHECK(catalog != nullptr && templates != nullptr);
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto [it, inserted] = apps_.try_emplace(std::move(app_id));
  if (!inserted) {
    return AlreadyExistsError("application " + it->first);
  }
  AppState& state = it->second;
  state.catalog = catalog;
  state.templates = templates;
  state.strategy = std::make_unique<invalidation::MixedStrategy>(*catalog);
  return Status::Ok();
}

bool DsspNode::HasApp(std::string_view app_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return apps_.find(app_id) != apps_.end();
}

DsspNode::AppState* DsspNode::FindApp(std::string_view app_id) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = apps_.find(app_id);
  return it == apps_.end() ? nullptr : &it->second;
}

const DsspNode::AppState* DsspNode::FindApp(std::string_view app_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = apps_.find(app_id);
  return it == apps_.end() ? nullptr : &it->second;
}

std::optional<CacheEntry> DsspNode::Lookup(const std::string& app_id,
                                           const std::string& key) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return std::nullopt;
  app->stats.lookups.fetch_add(1, std::memory_order_relaxed);
  std::optional<CacheEntry> entry = app->cache.Lookup(key);
  if (entry.has_value()) {
    app->stats.hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    app->stats.misses.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

std::optional<CacheEntry> DsspNode::LookupStale(const std::string& app_id,
                                                const std::string& key,
                                                uint64_t max_updates_behind) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return std::nullopt;
  std::optional<CacheEntry> entry =
      app->cache.LookupStale(key, max_updates_behind);
  if (entry.has_value()) {
    app->stats.stale_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

void DsspNode::SetStaleRetention(const std::string& app_id,
                                 size_t max_entries) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return;
  app->cache.SetStaleRetention(max_entries);
}

void DsspNode::Store(const std::string& app_id, CacheEntry entry) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return;
  app->stats.stores.fetch_add(1, std::memory_order_relaxed);
  app->cache.Insert(std::move(entry));
}

size_t DsspNode::OnUpdate(const std::string& app_id,
                          const UpdateNotice& notice) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return 0;
  app->stats.updates_observed.fetch_add(1, std::memory_order_relaxed);

  invalidation::UpdateView update_view;
  update_view.level = notice.level;
  if (notice.level != analysis::ExposureLevel::kBlind &&
      notice.template_index != CacheEntry::kNoTemplate) {
    DSSP_CHECK(notice.template_index < app->templates->num_updates());
    update_view.tmpl = &app->templates->updates()[notice.template_index];
  }
  if (notice.level == analysis::ExposureLevel::kStmt &&
      notice.statement.has_value()) {
    update_view.statement = &*notice.statement;
  }

  // Group-level prefilter, decided once per group across all shards: with
  // only the query template exposed (the IPM's A cell). Our statement- and
  // view-inspection strategies refine the template-level decision
  // monotonically, so a template-level DNI is final for the whole group.
  std::map<size_t, bool> group_decisions;
  const auto group_may_invalidate = [&](size_t group) {
    const auto [it, inserted] = group_decisions.try_emplace(group, false);
    if (inserted) {
      invalidation::CachedQueryView group_view;
      if (group == CacheEntry::kNoTemplate) {
        group_view.level = analysis::ExposureLevel::kBlind;
      } else {
        group_view.level = analysis::ExposureLevel::kTemplate;
        group_view.tmpl = &app->templates->queries()[group];
      }
      it->second = app->strategy->Decide(update_view, group_view) !=
                   invalidation::Decision::kDoNotInvalidate;
    }
    return it->second;
  };
  const auto should_invalidate = [&](const CacheEntry& entry) {
    invalidation::CachedQueryView view;
    view.level = entry.level;
    if (entry.template_index != CacheEntry::kNoTemplate) {
      view.tmpl = &app->templates->queries()[entry.template_index];
    }
    if (entry.statement.has_value()) view.statement = &*entry.statement;
    if (entry.result.has_value()) view.result = &*entry.result;
    return app->strategy->Decide(update_view, view) ==
           invalidation::Decision::kInvalidate;
  };

  const size_t invalidated =
      app->cache.InvalidateEntries(group_may_invalidate, should_invalidate);
  app->stats.entries_invalidated.fetch_add(invalidated,
                                           std::memory_order_relaxed);
  // Entries this update just killed are now exactly 1 update stale.
  app->cache.BumpUpdateEpoch();
  return invalidated;
}

void DsspNode::SetCacheCapacity(const std::string& app_id,
                                size_t max_entries) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return;
  app->cache.SetCapacity(max_entries);
}

uint64_t DsspNode::CacheEvictions(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  return app == nullptr ? 0 : app->cache.evictions();
}

CacheCounters DsspNode::GetCacheCounters(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  CacheCounters counters;
  if (app == nullptr) return counters;
  counters.insert_evictions = app->cache.insert_evictions();
  counters.shrink_evictions = app->cache.shrink_evictions();
  counters.invalidation_removals = app->cache.invalidation_removals();
  return counters;
}

size_t DsspNode::ClearCache(const std::string& app_id) {
  AppState* app = FindApp(app_id);
  return app == nullptr ? 0 : app->cache.Clear();
}

size_t DsspNode::CacheSize(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  return app == nullptr ? 0 : app->cache.size();
}

DsspStats DsspNode::stats(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  return app == nullptr ? DsspStats{} : app->stats.Snapshot();
}

size_t DsspNode::TotalCacheSize() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [id, app] : apps_) total += app.cache.size();
  return total;
}

}  // namespace dssp::service
