#include "dssp/node.h"

#include <cstdint>
#include <vector>

#include "analysis/audit.h"

namespace dssp::service {

DsspStats DsspNode::AtomicStats::Snapshot() const {
  DsspStats out;
  out.lookups = lookups.load(std::memory_order_relaxed);
  out.hits = hits.load(std::memory_order_relaxed);
  out.misses = misses.load(std::memory_order_relaxed);
  out.stores = stores.load(std::memory_order_relaxed);
  out.updates_observed = updates_observed.load(std::memory_order_relaxed);
  out.entries_invalidated =
      entries_invalidated.load(std::memory_order_relaxed);
  out.stale_hits = stale_hits.load(std::memory_order_relaxed);
  out.rejected_notices = rejected_notices.load(std::memory_order_relaxed);
  return out;
}

Status DsspNode::RegisterApp(std::string app_id,
                             const catalog::Catalog* catalog,
                             const templates::TemplateSet* templates) {
  DSSP_CHECK(catalog != nullptr && templates != nullptr);
  if (strict_registration()) {
    // Audit before touching the registry: a rejected app must leave no
    // half-registered state behind. Only error-severity findings reject;
    // warnings are the operator's call (run tools/dssp_audit to see them).
    const analysis::AuditReport report =
        analysis::AuditApplication(*templates, *catalog);
    if (report.num_errors > 0) {
      std::string message = "strict registration refused application: ";
      bool first = true;
      for (const analysis::AuditFinding& finding : report.findings) {
        if (finding.severity != analysis::AuditSeverity::kError) continue;
        if (!first) message += "; ";
        first = false;
        message += finding.code + " " + finding.subject + ": " +
                   finding.message;
      }
      return InvalidArgumentError(std::move(message));
    }
  }
  WriterMutexLock lock(mu_);
  const auto [it, inserted] = apps_.try_emplace(std::move(app_id));
  if (!inserted) {
    return AlreadyExistsError("application " + it->first);
  }
  AppState& state = it->second;
  state.catalog = catalog;
  state.templates = templates;
  // Compile the invalidation plan ahead of time: one PairPlan per
  // (update template, query template) pair, so the serving hot path does an
  // O(1) lookup + compiled-program eval instead of re-running the Section 4
  // analysis per cached entry.
  state.plan = std::make_unique<const analysis::InvalidationPlan>(
      analysis::InvalidationPlan::Compile(*templates, *catalog));
  // Derive the predicate index from the compiled plan and install it before
  // any entry is stored, so every statement-exposed entry gets keyed under
  // its discriminator bound.
  state.view_index = std::make_unique<const ViewIndexPlan>(
      ViewIndexPlan::Compile(*templates, *catalog, *state.plan));
  state.cache.SetViewIndex(state.view_index.get());
  state.strategy = std::make_unique<invalidation::MixedStrategy>(
      *catalog, state.plan.get());
  return Status::Ok();
}

bool DsspNode::HasApp(std::string_view app_id) const {
  ReaderMutexLock lock(mu_);
  return apps_.contains(app_id);
}

DsspNode::AppState* DsspNode::FindApp(std::string_view app_id) {
  ReaderMutexLock lock(mu_);
  const auto it = apps_.find(app_id);
  return it == apps_.end() ? nullptr : &it->second;
}

const DsspNode::AppState* DsspNode::FindApp(std::string_view app_id) const {
  ReaderMutexLock lock(mu_);
  const auto it = apps_.find(app_id);
  return it == apps_.end() ? nullptr : &it->second;
}

std::optional<CacheEntry> DsspNode::Lookup(const std::string& app_id,
                                           const std::string& key) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return std::nullopt;
  app->stats.lookups.fetch_add(1, std::memory_order_relaxed);
  std::optional<CacheEntry> entry = app->cache.Lookup(key);
  if (entry.has_value()) {
    app->stats.hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    app->stats.misses.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

std::optional<CacheEntry> DsspNode::LookupStale(const std::string& app_id,
                                                const std::string& key,
                                                uint64_t max_updates_behind) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return std::nullopt;
  // Degraded-mode requests are still lookups: counting the hit without the
  // lookup (or dropping the miss) would inflate the reported hit rate.
  app->stats.lookups.fetch_add(1, std::memory_order_relaxed);
  std::optional<CacheEntry> entry =
      app->cache.LookupStale(key, max_updates_behind);
  if (entry.has_value()) {
    app->stats.stale_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    app->stats.misses.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

void DsspNode::SetStaleRetention(const std::string& app_id,
                                 size_t max_entries) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return;
  app->cache.SetStaleRetention(max_entries);
}

void DsspNode::Store(const std::string& app_id, CacheEntry entry) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return;
  app->stats.stores.fetch_add(1, std::memory_order_relaxed);
  app->cache.Insert(std::move(entry));
}

Status DsspNode::ValidateNoticeFor(const AppState& app,
                                   const UpdateNotice& notice) {
  // Updates never expose views; a wire frame can also carry an arbitrary
  // level byte, which arrives here force-cast into the enum.
  const int level = static_cast<int>(notice.level);
  if (level < static_cast<int>(analysis::ExposureLevel::kBlind) ||
      level > static_cast<int>(analysis::ExposureLevel::kStmt)) {
    return InvalidArgumentError("update notice exposure level out of range");
  }
  // A blind notice reveals no template, so a junk index is ignored rather
  // than rejected (matching the pre-validation behavior).
  if (notice.level != analysis::ExposureLevel::kBlind &&
      notice.template_index != CacheEntry::kNoTemplate &&
      notice.template_index >= app.templates->num_updates()) {
    return InvalidArgumentError("update notice template index out of range");
  }
  return Status::Ok();
}

Status DsspNode::ValidateNotice(const std::string& app_id,
                                const UpdateNotice& notice) const {
  const AppState* app = FindApp(app_id);
  // Unknown tenants no-op in OnUpdate; there is nothing to validate against.
  if (app == nullptr) return Status::Ok();
  return ValidateNoticeFor(*app, notice);
}

const ViewIndexPlan* DsspNode::GetViewIndex(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  return app == nullptr ? nullptr : app->view_index.get();
}

size_t DsspNode::OnUpdate(const std::string& app_id,
                          const UpdateNotice& notice) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return 0;
  // A malformed or misrouted notice (e.g. a cluster frame for a different
  // membership epoch) must not kill a shared node: refuse it, count it, and
  // leave the update epoch alone — nothing was observed.
  if (!ValidateNoticeFor(*app, notice).ok()) {
    app->stats.rejected_notices.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  app->stats.updates_observed.fetch_add(1, std::memory_order_relaxed);

  invalidation::UpdateView update_view;
  update_view.level = notice.level;
  if (notice.level != analysis::ExposureLevel::kBlind &&
      notice.template_index != CacheEntry::kNoTemplate) {
    update_view.tmpl = &app->templates->updates()[notice.template_index];
    update_view.template_index = notice.template_index;
  }
  if (notice.level == analysis::ExposureLevel::kStmt &&
      notice.statement.has_value()) {
    update_view.statement = &*notice.statement;
  }

  // Group-level prefilter, decided once per group across all shards: with
  // only the query template exposed (the IPM's A cell). Our statement- and
  // view-inspection strategies refine the template-level decision
  // monotonically, so a template-level DNI is final for the whole group.
  //
  // The memo is a flat vector indexed by query template (last slot =
  // kNoTemplate group), reused across updates to avoid per-update map
  // allocations. thread_local rather than per-app: OnUpdate runs
  // concurrently on the same app, and the memo is per-update scratch.
  static thread_local std::vector<int8_t> group_decisions;
  const size_t num_groups = app->templates->num_queries() + 1;
  group_decisions.assign(num_groups, -1);  // -1 undecided, 0 DNI, 1 maybe.
  const auto group_may_invalidate = [&](size_t group) {
    const size_t slot =
        group == CacheEntry::kNoTemplate ? num_groups - 1 : group;
    DSSP_CHECK(slot < num_groups);
    if (group_decisions[slot] < 0) {
      invalidation::CachedQueryView group_view;
      if (group == CacheEntry::kNoTemplate) {
        group_view.level = analysis::ExposureLevel::kBlind;
      } else {
        group_view.level = analysis::ExposureLevel::kTemplate;
        group_view.tmpl = &app->templates->queries()[group];
        group_view.template_index = group;
      }
      group_decisions[slot] =
          app->strategy->Decide(update_view, group_view) !=
                  invalidation::Decision::kDoNotInvalidate
              ? 1
              : 0;
    }
    return group_decisions[slot] != 0;
  };
  const auto should_invalidate = [&](const CacheEntry& entry) {
    invalidation::CachedQueryView view;
    view.level = entry.level;
    if (entry.template_index != CacheEntry::kNoTemplate) {
      view.tmpl = &app->templates->queries()[entry.template_index];
      view.template_index = entry.template_index;
    }
    if (entry.statement.has_value()) view.statement = &*entry.statement;
    if (entry.result.has_value()) view.result = &*entry.result;
    return app->strategy->Decide(update_view, view) ==
           invalidation::Decision::kInvalidate;
  };

  // Predicate-index probe, one per surviving group (memoized like the group
  // decisions above). Only a statement-exposed update can be probed: the
  // index's skip proofs are derived against the compiled statement programs,
  // which need the update's bound literals. The probe only prunes which
  // entries are *visited*; every visited entry still goes through
  // should_invalidate, so a probed pass can never invalidate an entry the
  // plain scan would keep.
  const ViewIndexPlan* view_index = app->view_index.get();
  const bool can_probe =
      predicate_index_enabled_.load(std::memory_order_relaxed) &&
      view_index != nullptr &&
      notice.level == analysis::ExposureLevel::kStmt &&
      update_view.tmpl != nullptr && update_view.statement != nullptr;
  static thread_local std::vector<GroupProbe> group_probes;
  static thread_local std::vector<int8_t> probe_ready;
  if (can_probe) {
    group_probes.resize(num_groups);
    probe_ready.assign(num_groups, 0);
  }
  const auto group_probe = [&](size_t group) -> GroupProbe {
    if (group >= app->templates->num_queries()) {
      return GroupProbe{};  // Blind group (kNoTemplate): always scan all.
    }
    if (!probe_ready[group]) {
      group_probes[group] = view_index->BuildGroupProbe(
          update_view.template_index, group, *update_view.statement);
      probe_ready[group] = 1;
    }
    return group_probes[group];
  };

  const size_t invalidated =
      can_probe ? app->cache.InvalidateEntries(group_may_invalidate,
                                               should_invalidate, group_probe)
                : app->cache.InvalidateEntries(group_may_invalidate,
                                               should_invalidate);
  app->stats.entries_invalidated.fetch_add(invalidated,
                                           std::memory_order_relaxed);
  // Entries this update just killed are now exactly 1 update stale.
  app->cache.BumpUpdateEpoch();
  return invalidated;
}

void DsspNode::SetCacheCapacity(const std::string& app_id,
                                size_t max_entries) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return;
  app->cache.SetCapacity(max_entries);
}

uint64_t DsspNode::CacheEvictions(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  return app == nullptr ? 0 : app->cache.evictions();
}

CacheCounters DsspNode::GetCacheCounters(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  CacheCounters counters;
  if (app == nullptr) return counters;
  counters.insert_evictions = app->cache.insert_evictions();
  counters.shrink_evictions = app->cache.shrink_evictions();
  counters.invalidation_removals = app->cache.invalidation_removals();
  return counters;
}

size_t DsspNode::ClearCache(const std::string& app_id) {
  AppState* app = FindApp(app_id);
  return app == nullptr ? 0 : app->cache.Clear();
}

std::vector<std::string> DsspNode::AppIds() const {
  ReaderMutexLock lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(apps_.size());
  for (const auto& [id, app] : apps_) ids.push_back(id);
  return ids;
}

size_t DsspNode::CacheSize(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  return app == nullptr ? 0 : app->cache.size();
}

DsspStats DsspNode::stats(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  return app == nullptr ? DsspStats{} : app->stats.Snapshot();
}

size_t DsspNode::TotalCacheSize() const {
  ReaderMutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [id, app] : apps_) total += app.cache.size();
  return total;
}

}  // namespace dssp::service
