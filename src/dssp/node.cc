#include "dssp/node.h"

#include <cstdint>
#include <mutex>
#include <vector>

namespace dssp::service {

DsspStats DsspNode::AtomicStats::Snapshot() const {
  DsspStats out;
  out.lookups = lookups.load(std::memory_order_relaxed);
  out.hits = hits.load(std::memory_order_relaxed);
  out.misses = misses.load(std::memory_order_relaxed);
  out.stores = stores.load(std::memory_order_relaxed);
  out.updates_observed = updates_observed.load(std::memory_order_relaxed);
  out.entries_invalidated =
      entries_invalidated.load(std::memory_order_relaxed);
  out.stale_hits = stale_hits.load(std::memory_order_relaxed);
  return out;
}

Status DsspNode::RegisterApp(std::string app_id,
                             const catalog::Catalog* catalog,
                             const templates::TemplateSet* templates) {
  DSSP_CHECK(catalog != nullptr && templates != nullptr);
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto [it, inserted] = apps_.try_emplace(std::move(app_id));
  if (!inserted) {
    return AlreadyExistsError("application " + it->first);
  }
  AppState& state = it->second;
  state.catalog = catalog;
  state.templates = templates;
  // Compile the invalidation plan ahead of time: one PairPlan per
  // (update template, query template) pair, so the serving hot path does an
  // O(1) lookup + compiled-program eval instead of re-running the Section 4
  // analysis per cached entry.
  state.plan = std::make_unique<const analysis::InvalidationPlan>(
      analysis::InvalidationPlan::Compile(*templates, *catalog));
  state.strategy = std::make_unique<invalidation::MixedStrategy>(
      *catalog, state.plan.get());
  return Status::Ok();
}

bool DsspNode::HasApp(std::string_view app_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return apps_.find(app_id) != apps_.end();
}

DsspNode::AppState* DsspNode::FindApp(std::string_view app_id) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = apps_.find(app_id);
  return it == apps_.end() ? nullptr : &it->second;
}

const DsspNode::AppState* DsspNode::FindApp(std::string_view app_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = apps_.find(app_id);
  return it == apps_.end() ? nullptr : &it->second;
}

std::optional<CacheEntry> DsspNode::Lookup(const std::string& app_id,
                                           const std::string& key) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return std::nullopt;
  app->stats.lookups.fetch_add(1, std::memory_order_relaxed);
  std::optional<CacheEntry> entry = app->cache.Lookup(key);
  if (entry.has_value()) {
    app->stats.hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    app->stats.misses.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

std::optional<CacheEntry> DsspNode::LookupStale(const std::string& app_id,
                                                const std::string& key,
                                                uint64_t max_updates_behind) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return std::nullopt;
  std::optional<CacheEntry> entry =
      app->cache.LookupStale(key, max_updates_behind);
  if (entry.has_value()) {
    app->stats.stale_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

void DsspNode::SetStaleRetention(const std::string& app_id,
                                 size_t max_entries) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return;
  app->cache.SetStaleRetention(max_entries);
}

void DsspNode::Store(const std::string& app_id, CacheEntry entry) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return;
  app->stats.stores.fetch_add(1, std::memory_order_relaxed);
  app->cache.Insert(std::move(entry));
}

size_t DsspNode::OnUpdate(const std::string& app_id,
                          const UpdateNotice& notice) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return 0;
  app->stats.updates_observed.fetch_add(1, std::memory_order_relaxed);

  invalidation::UpdateView update_view;
  update_view.level = notice.level;
  if (notice.level != analysis::ExposureLevel::kBlind &&
      notice.template_index != CacheEntry::kNoTemplate) {
    DSSP_CHECK(notice.template_index < app->templates->num_updates());
    update_view.tmpl = &app->templates->updates()[notice.template_index];
    update_view.template_index = notice.template_index;
  }
  if (notice.level == analysis::ExposureLevel::kStmt &&
      notice.statement.has_value()) {
    update_view.statement = &*notice.statement;
  }

  // Group-level prefilter, decided once per group across all shards: with
  // only the query template exposed (the IPM's A cell). Our statement- and
  // view-inspection strategies refine the template-level decision
  // monotonically, so a template-level DNI is final for the whole group.
  //
  // The memo is a flat vector indexed by query template (last slot =
  // kNoTemplate group), reused across updates to avoid per-update map
  // allocations. thread_local rather than per-app: OnUpdate runs
  // concurrently on the same app, and the memo is per-update scratch.
  static thread_local std::vector<int8_t> group_decisions;
  const size_t num_groups = app->templates->num_queries() + 1;
  group_decisions.assign(num_groups, -1);  // -1 undecided, 0 DNI, 1 maybe.
  const auto group_may_invalidate = [&](size_t group) {
    const size_t slot =
        group == CacheEntry::kNoTemplate ? num_groups - 1 : group;
    DSSP_CHECK(slot < num_groups);
    if (group_decisions[slot] < 0) {
      invalidation::CachedQueryView group_view;
      if (group == CacheEntry::kNoTemplate) {
        group_view.level = analysis::ExposureLevel::kBlind;
      } else {
        group_view.level = analysis::ExposureLevel::kTemplate;
        group_view.tmpl = &app->templates->queries()[group];
        group_view.template_index = group;
      }
      group_decisions[slot] =
          app->strategy->Decide(update_view, group_view) !=
                  invalidation::Decision::kDoNotInvalidate
              ? 1
              : 0;
    }
    return group_decisions[slot] != 0;
  };
  const auto should_invalidate = [&](const CacheEntry& entry) {
    invalidation::CachedQueryView view;
    view.level = entry.level;
    if (entry.template_index != CacheEntry::kNoTemplate) {
      view.tmpl = &app->templates->queries()[entry.template_index];
      view.template_index = entry.template_index;
    }
    if (entry.statement.has_value()) view.statement = &*entry.statement;
    if (entry.result.has_value()) view.result = &*entry.result;
    return app->strategy->Decide(update_view, view) ==
           invalidation::Decision::kInvalidate;
  };

  const size_t invalidated =
      app->cache.InvalidateEntries(group_may_invalidate, should_invalidate);
  app->stats.entries_invalidated.fetch_add(invalidated,
                                           std::memory_order_relaxed);
  // Entries this update just killed are now exactly 1 update stale.
  app->cache.BumpUpdateEpoch();
  return invalidated;
}

void DsspNode::SetCacheCapacity(const std::string& app_id,
                                size_t max_entries) {
  AppState* app = FindApp(app_id);
  if (app == nullptr) return;
  app->cache.SetCapacity(max_entries);
}

uint64_t DsspNode::CacheEvictions(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  return app == nullptr ? 0 : app->cache.evictions();
}

CacheCounters DsspNode::GetCacheCounters(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  CacheCounters counters;
  if (app == nullptr) return counters;
  counters.insert_evictions = app->cache.insert_evictions();
  counters.shrink_evictions = app->cache.shrink_evictions();
  counters.invalidation_removals = app->cache.invalidation_removals();
  return counters;
}

size_t DsspNode::ClearCache(const std::string& app_id) {
  AppState* app = FindApp(app_id);
  return app == nullptr ? 0 : app->cache.Clear();
}

std::vector<std::string> DsspNode::AppIds() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(apps_.size());
  for (const auto& [id, app] : apps_) ids.push_back(id);
  return ids;
}

size_t DsspNode::CacheSize(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  return app == nullptr ? 0 : app->cache.size();
}

DsspStats DsspNode::stats(const std::string& app_id) const {
  const AppState* app = FindApp(app_id);
  return app == nullptr ? DsspStats{} : app->stats.Snapshot();
}

size_t DsspNode::TotalCacheSize() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [id, app] : apps_) total += app.cache.size();
  return total;
}

}  // namespace dssp::service
