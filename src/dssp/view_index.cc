#include "dssp/view_index.h"

#include <algorithm>

#include "analysis/query_slots.h"
#include "common/macros.h"

namespace dssp::service {

namespace {

using analysis::CompiledConstraint;
using analysis::CompiledEntryCheck;
using analysis::CompiledInsertCheck;
using analysis::CompiledSatCheck;
using analysis::CompiledValueTest;
using analysis::PairPlan;
using analysis::ParamProgram;
using analysis::PlanKind;
using analysis::ValueRef;
using Source = analysis::ValueRef::Source;

bool IsUpdateSide(const ValueRef& ref) {
  return ref.source == Source::kUpdateWhere ||
         ref.source == Source::kInsertValue ||
         ref.source == Source::kSetValue;
}

bool IsDiscriminator(const ValueRef& ref, const TemplateIndexSpec& spec) {
  return ref.source == Source::kQueryWhere &&
         ref.index == spec.where_index && ref.rhs == spec.rhs;
}

// Chooses the discriminator conjunct of one query template: the first
// `column op ?` WHERE conjunct whose column resolves, preferring equality
// over range operators (a point index prunes harder than an interval one).
TemplateIndexSpec PickSpec(const templates::QueryTemplate& q,
                           const catalog::Catalog& catalog) {
  TemplateIndexSpec spec;
  const sql::SelectStatement& stmt = q.statement().select();
  const analysis::QuerySlots slots(stmt);
  for (size_t i = 0; i < stmt.where.size(); ++i) {
    const sql::Comparison& cmp = stmt.where[i];
    for (int side = 0; side < 2; ++side) {
      const sql::Operand& a = side == 0 ? cmp.lhs : cmp.rhs;
      const sql::Operand& b = side == 0 ? cmp.rhs : cmp.lhs;
      if (!sql::IsColumn(a) || !sql::IsParameter(b)) continue;
      const auto resolved =
          slots.Resolve(std::get<sql::ColumnRef>(a), catalog);
      if (!resolved.has_value()) continue;
      const sql::CompareOp op =
          side == 0 ? cmp.op : sql::ReverseCompareOp(cmp.op);
      if (spec.indexable &&
          (spec.op == sql::CompareOp::kEq || op != sql::CompareOp::kEq)) {
        break;  // Keep the earlier candidate.
      }
      spec.indexable = true;
      spec.where_index = i;
      spec.rhs = side == 0;
      spec.op = op;
      spec.table = slots.physical[resolved->first];
      spec.column = resolved->second;
      if (op == sql::CompareOp::kEq) return spec;  // Best possible.
      break;
    }
  }
  return spec;
}

// Probe from a value-test list (insert checks and entry-check SET tests):
// the check fires only if every test passes, in particular the test against
// the discriminator constraint — i.e. the inserted/assigned point satisfies
// `column spec.op b`. An equality probe at that point selects exactly the
// bounds whose interval contains it.
std::optional<ProbeRef> ProbeFromValueTests(
    const std::vector<CompiledValueTest>& tests,
    const TemplateIndexSpec& spec) {
  for (const CompiledValueTest& test : tests) {
    if (!IsDiscriminator(test.rhs, spec)) continue;
    if (test.op != spec.op) continue;  // Defensive; identical by derivation.
    if (test.lhs.is_const() || IsUpdateSide(test.lhs)) {
      return ProbeRef{sql::CompareOp::kEq, test.lhs};
    }
  }
  return std::nullopt;
}

// Probe from a constraint conjunction (sat checks and entry-check
// residuals): the check fires only if the conjunction is satisfiable, which
// requires the discriminator's interval to intersect every other interval
// on the same column. An update-side (preferred) or constant constraint on
// that column gives the probe.
std::optional<ProbeRef> ProbeFromConstraints(
    const std::vector<CompiledConstraint>& constraints,
    const TemplateIndexSpec& spec) {
  const CompiledConstraint* disc = nullptr;
  for (const CompiledConstraint& c : constraints) {
    if (IsDiscriminator(c.value, spec)) {
      disc = &c;
      break;
    }
  }
  if (disc == nullptr || disc->op != spec.op) return std::nullopt;
  const CompiledConstraint* fallback = nullptr;
  for (const CompiledConstraint& c : constraints) {
    if (&c == disc || c.column != disc->column) continue;
    if (IsUpdateSide(c.value)) return ProbeRef{c.op, c.value};
    if (c.value.is_const() && fallback == nullptr) fallback = &c;
  }
  if (fallback != nullptr) {
    return ProbeRef{fallback->op, fallback->value};
  }
  return std::nullopt;
}

void CollectUpdateRefs(const ParamProgram& program,
                       std::vector<ValueRef>* out) {
  const auto add = [out](const ValueRef& ref) {
    if (!IsUpdateSide(ref)) return;
    for (const ValueRef& have : *out) {
      if (have.source == ref.source && have.index == ref.index &&
          have.rhs == ref.rhs) {
        return;
      }
    }
    out->push_back(ref);
  };
  for (const CompiledInsertCheck& check : program.insert_checks) {
    for (const CompiledValueTest& test : check.tests) {
      add(test.lhs);
      add(test.rhs);
    }
  }
  for (const CompiledSatCheck& check : program.sat_checks) {
    for (const CompiledConstraint& c : check.constraints) add(c.value);
  }
  for (const CompiledEntryCheck& check : program.entry_checks) {
    for (const CompiledValueTest& test : check.set_tests) {
      add(test.lhs);
      add(test.rhs);
    }
    for (const CompiledConstraint& c : check.residual) add(c.value);
  }
}

void CollectQueryCoords(const ParamProgram& program,
                        std::vector<std::pair<size_t, bool>>* out) {
  const auto add = [out](const ValueRef& ref) {
    if (ref.source != Source::kQueryWhere) return;
    out->emplace_back(ref.index, ref.rhs);
  };
  for (const CompiledInsertCheck& check : program.insert_checks) {
    for (const CompiledValueTest& test : check.tests) {
      add(test.lhs);
      add(test.rhs);
    }
  }
  for (const CompiledSatCheck& check : program.sat_checks) {
    for (const CompiledConstraint& c : check.constraints) add(c.value);
  }
  for (const CompiledEntryCheck& check : program.entry_checks) {
    for (const CompiledValueTest& test : check.set_tests) {
      add(test.lhs);
      add(test.rhs);
    }
    for (const CompiledConstraint& c : check.residual) add(c.value);
  }
}

PairProbe CompilePairProbe(const PairPlan& plan,
                           const TemplateIndexSpec& spec) {
  PairProbe out;
  switch (plan.kind) {
    case PlanKind::kNeverInvalidate:
      // The group prefilter skips the whole group; if consulted anyway,
      // indexed entries are DNI by the same plan.
      out.kind = PairProbe::Kind::kSkipIndexed;
      return out;
    case PlanKind::kAlwaysInvalidate:
    case PlanKind::kViewTest:
    case PlanKind::kSolverFallback:
      out.kind = PairProbe::Kind::kScan;
      return out;
    case PlanKind::kParamProgram:
      break;
  }
  if (plan.program.num_checks() == 0) {
    // Independent for every binding: indexed entries are provably DNI.
    out.kind = PairProbe::Kind::kSkipIndexed;
    return out;
  }
  if (!spec.indexable) {
    out.kind = PairProbe::Kind::kScan;
    return out;
  }
  // Every check must constrain the discriminator, otherwise some check
  // could fire for an entry no probe selects.
  for (const CompiledInsertCheck& check : plan.program.insert_checks) {
    const auto probe = ProbeFromValueTests(check.tests, spec);
    if (!probe.has_value()) {
      out.kind = PairProbe::Kind::kScan;
      return out;
    }
    out.probes.push_back(*probe);
  }
  for (const CompiledSatCheck& check : plan.program.sat_checks) {
    const auto probe = ProbeFromConstraints(check.constraints, spec);
    if (!probe.has_value()) {
      out.kind = PairProbe::Kind::kScan;
      return out;
    }
    out.probes.push_back(*probe);
  }
  for (const CompiledEntryCheck& check : plan.program.entry_checks) {
    auto probe = ProbeFromValueTests(check.set_tests, spec);
    if (!probe.has_value()) {
      probe = ProbeFromConstraints(check.residual, spec);
    }
    if (!probe.has_value()) {
      out.kind = PairProbe::Kind::kScan;
      return out;
    }
    out.probes.push_back(*probe);
  }
  out.kind = PairProbe::Kind::kProbe;
  CollectUpdateRefs(plan.program, &out.update_refs);
  return out;
}

}  // namespace

ViewIndexPlan ViewIndexPlan::Compile(const templates::TemplateSet& templates,
                                     const catalog::Catalog& catalog,
                                     const analysis::InvalidationPlan& plan) {
  ViewIndexPlan out;
  out.num_updates_ = templates.num_updates();
  out.num_queries_ = templates.num_queries();
  DSSP_CHECK(plan.num_updates() == out.num_updates_ &&
             plan.num_queries() == out.num_queries_);

  out.specs_.reserve(out.num_queries_);
  for (const templates::QueryTemplate& q : templates.queries()) {
    out.specs_.push_back(PickSpec(q, catalog));
  }

  out.pairs_.reserve(out.num_updates_ * out.num_queries_);
  for (size_t ui = 0; ui < out.num_updates_; ++ui) {
    for (size_t qi = 0; qi < out.num_queries_; ++qi) {
      const PairPlan& pair = plan.pair(ui, qi);
      PairProbe probe = CompilePairProbe(pair, out.specs_[qi]);
      if (probe.kind == PairProbe::Kind::kProbe) {
        CollectQueryCoords(pair.program, &out.specs_[qi].required_literals);
      }
      out.pairs_.push_back(std::move(probe));
    }
  }

  for (TemplateIndexSpec& spec : out.specs_) {
    if (!spec.indexable) continue;
    spec.required_literals.emplace_back(spec.where_index, spec.rhs);
    std::sort(spec.required_literals.begin(), spec.required_literals.end());
    spec.required_literals.erase(
        std::unique(spec.required_literals.begin(),
                    spec.required_literals.end()),
        spec.required_literals.end());
  }
  return out;
}

std::optional<sql::Value> ViewIndexPlan::IndexKeyFor(
    size_t query_index, const sql::Statement& statement) const {
  const TemplateIndexSpec* spec = query_spec(query_index);
  if (spec == nullptr || !spec->indexable) return std::nullopt;
  // Every coordinate some probe-compiled program fetches must be a literal
  // in this entry; a missing one would make EvaluatePairPlan invalidate,
  // and the probe must then visit the entry.
  for (const auto& [index, rhs] : spec->required_literals) {
    const ValueRef ref = ValueRef::At(Source::kQueryWhere, index, rhs);
    if (analysis::FetchFromQuery(ref, statement) == nullptr) {
      return std::nullopt;
    }
  }
  const ValueRef disc =
      ValueRef::At(Source::kQueryWhere, spec->where_index, spec->rhs);
  const sql::Value* bound = analysis::FetchFromQuery(disc, statement);
  if (bound == nullptr || bound->is_null()) return std::nullopt;
  return *bound;
}

GroupProbe ViewIndexPlan::BuildGroupProbe(size_t update_index,
                                          size_t query_index,
                                          const sql::Statement& update) const {
  const PairProbe& pair = pair_probe(update_index, query_index);
  GroupProbe out;
  switch (pair.kind) {
    case PairProbe::Kind::kScan:
      return out;  // kScanAll.
    case PairProbe::Kind::kSkipIndexed:
      out.mode = GroupProbe::Mode::kScanRest;
      return out;
    case PairProbe::Kind::kProbe:
      break;
  }
  // If any update-side coordinate fails to fetch (the bound statement is
  // not a binding of the compiled template), EvaluatePairPlan invalidates
  // every entry — visit them all.
  for (const ValueRef& ref : pair.update_refs) {
    if (analysis::FetchFromUpdate(ref, update) == nullptr) {
      return GroupProbe{};
    }
  }
  out.mode = GroupProbe::Mode::kProbe;
  out.spec_op = specs_[query_index].op;
  for (const ProbeRef& probe : pair.probes) {
    const sql::Value* v = analysis::FetchFromUpdate(probe.value, update);
    if (v == nullptr) return GroupProbe{};
    // A NULL operand satisfies no comparison: this check can never fire,
    // so it contributes no candidates.
    if (v->is_null()) continue;
    out.probes.emplace_back(probe.op, *v);
  }
  return out;
}

void GroupProbe::CollectCandidates(const ValueKeyMap& by_value,
                                   std::set<std::string>* out) const {
  for (const auto& [pop, pv] : probes) {
    if (pv.is_null()) continue;
    // Candidates can only lie in pv's type class: a cross-class constraint
    // conjunction is unsatisfiable and a cross-class value test excludes
    // the row. (The map holds no NULL keys; IndexKeyFor filters them.)
    const sql::Value first_string{std::string()};
    ValueKeyMap::const_iterator lo =
        pv.is_numeric() ? by_value.begin() : by_value.lower_bound(first_string);
    ValueKeyMap::const_iterator hi =
        pv.is_numeric() ? by_value.lower_bound(first_string) : by_value.end();
    // Narrow by the (spec_op, pop) pair. Bounds are inclusive on ties where
    // the exact condition is strict — extra candidates are sound, skipped
    // ones would not be.
    switch (spec_op) {
      case sql::CompareOp::kEq:
        // Entry interval is the point b; pop constrains b directly.
        switch (pop) {
          case sql::CompareOp::kEq:
            lo = by_value.lower_bound(pv);
            hi = by_value.upper_bound(pv);
            break;
          case sql::CompareOp::kLt:
            hi = by_value.lower_bound(pv);
            break;
          case sql::CompareOp::kLe:
            hi = by_value.upper_bound(pv);
            break;
          case sql::CompareOp::kGt:
            lo = by_value.upper_bound(pv);
            break;
          case sql::CompareOp::kGe:
            lo = by_value.lower_bound(pv);
            break;
        }
        break;
      case sql::CompareOp::kLt:
      case sql::CompareOp::kLe:
        // Entry interval is (-inf, b): only an operand below b matters.
        switch (pop) {
          case sql::CompareOp::kEq:
          case sql::CompareOp::kGt:
          case sql::CompareOp::kGe:
            lo = by_value.lower_bound(pv);
            break;
          case sql::CompareOp::kLt:
          case sql::CompareOp::kLe:
            break;  // Two lower-unbounded intervals always intersect.
        }
        break;
      case sql::CompareOp::kGt:
      case sql::CompareOp::kGe:
        // Entry interval is (b, +inf).
        switch (pop) {
          case sql::CompareOp::kEq:
          case sql::CompareOp::kLt:
          case sql::CompareOp::kLe:
            hi = by_value.upper_bound(pv);
            break;
          case sql::CompareOp::kGt:
          case sql::CompareOp::kGe:
            break;  // Two upper-unbounded intervals always intersect.
        }
        break;
    }
    for (ValueKeyMap::const_iterator it = lo; it != hi; ++it) {
      out->insert(it->second.begin(), it->second.end());
    }
  }
}

ViewIndexPlan::Summary ViewIndexPlan::Summarize() const {
  Summary summary;
  for (const TemplateIndexSpec& spec : specs_) {
    if (spec.indexable) ++summary.indexable_queries;
  }
  for (const PairProbe& pair : pairs_) {
    switch (pair.kind) {
      case PairProbe::Kind::kProbe:
        ++summary.probe_pairs;
        break;
      case PairProbe::Kind::kSkipIndexed:
        ++summary.skip_pairs;
        break;
      case PairProbe::Kind::kScan:
        ++summary.scan_pairs;
        break;
    }
  }
  return summary;
}

}  // namespace dssp::service
