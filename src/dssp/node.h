#ifndef DSSP_DSSP_NODE_H_
#define DSSP_DSSP_NODE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "analysis/exposure.h"
#include "catalog/schema.h"
#include "dssp/cache.h"
#include "invalidation/strategies.h"
#include "templates/template_set.h"

namespace dssp::service {

// What the DSSP learns about a completed update, limited by the update
// template's exposure level. A blind update carries nothing at all.
struct UpdateNotice {
  analysis::ExposureLevel level = analysis::ExposureLevel::kBlind;
  size_t template_index = CacheEntry::kNoTemplate;  // If level >= template.
  std::optional<sql::Statement> statement;          // If level >= stmt.
};

// Per-application DSSP counters.
struct DsspStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stores = 0;
  uint64_t updates_observed = 0;
  uint64_t entries_invalidated = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

// The shared Database Scalability Service Provider node: caches (possibly
// encrypted) query results for many applications and keeps them consistent
// by invalidating on updates, using only each entry's exposed information.
//
// The DSSP holds no application keys. Applications are isolated: lookups and
// invalidations are scoped to one application's cache.
class DsspNode {
 public:
  DsspNode() = default;

  // Registers an application. `catalog` and `templates` are the statically
  // published metadata (schemas and template texts) the DSSP may consult
  // when an entry's or update's exposure level permits; both must outlive
  // the node. Fails on duplicate id.
  Status RegisterApp(std::string app_id, const catalog::Catalog* catalog,
                     const templates::TemplateSet* templates);

  bool HasApp(std::string_view app_id) const;

  // Cache operations for one application.
  const CacheEntry* Lookup(const std::string& app_id, const std::string& key);
  void Store(const std::string& app_id, CacheEntry entry);

  // Invalidation on a completed update; returns entries invalidated.
  size_t OnUpdate(const std::string& app_id, const UpdateNotice& notice);

  // Caps one application's cache entry count (0 = unlimited). A shared
  // provider uses this to bound each tenant's memory; overflow evicts the
  // least recently used entries.
  void SetCacheCapacity(const std::string& app_id, size_t max_entries);
  uint64_t CacheEvictions(const std::string& app_id) const;

  // Drops an application's whole cache (e.g., to start an experiment cold).
  size_t ClearCache(const std::string& app_id);

  size_t CacheSize(const std::string& app_id) const;
  const DsspStats& stats(const std::string& app_id) const;

  // Aggregate size across applications.
  size_t TotalCacheSize() const;

 private:
  struct AppState {
    const catalog::Catalog* catalog = nullptr;
    const templates::TemplateSet* templates = nullptr;
    QueryCache cache;
    std::unique_ptr<invalidation::MixedStrategy> strategy;
    DsspStats stats;
  };

  AppState& GetApp(std::string_view app_id);
  const AppState& GetApp(std::string_view app_id) const;

  std::map<std::string, AppState, std::less<>> apps_;
};

}  // namespace dssp::service

#endif  // DSSP_DSSP_NODE_H_
