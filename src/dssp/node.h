#ifndef DSSP_DSSP_NODE_H_
#define DSSP_DSSP_NODE_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/exposure.h"
#include "analysis/plan.h"
#include "catalog/schema.h"
#include "common/mutex.h"
#include "dssp/cache.h"
#include "dssp/view_index.h"
#include "invalidation/strategies.h"
#include "templates/template_set.h"

namespace dssp::service {

// What the DSSP learns about a completed update, limited by the update
// template's exposure level. A blind update carries nothing at all.
struct UpdateNotice {
  analysis::ExposureLevel level = analysis::ExposureLevel::kBlind;
  size_t template_index = CacheEntry::kNoTemplate;  // If level >= template.
  std::optional<sql::Statement> statement;          // If level >= stmt.
};

// Per-application DSSP counters, as a point-in-time snapshot. The node
// accumulates these with relaxed atomics; a snapshot taken while worker
// threads are active reflects each counter individually (monotone, never
// torn) but not necessarily one global instant — e.g. `hits + misses` can
// momentarily trail `lookups`. Quiesce writers for exact cross-counter
// arithmetic.
struct DsspStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stores = 0;
  uint64_t updates_observed = 0;
  uint64_t entries_invalidated = 0;
  // Degraded-mode serves from the stale side store (home unreachable);
  // counted separately from `hits` — they are not consistency hits. Stale
  // lookups do count toward `lookups` (and `misses` when they find
  // nothing), so hit_rate() reflects degraded-mode traffic.
  uint64_t stale_hits = 0;
  // Malformed or misrouted update notices refused by OnUpdate (bad exposure
  // level, out-of-range template index). Not counted as updates_observed.
  uint64_t rejected_notices = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

// Per-application cache removal accounting, split by cause: capacity
// evictions (by whether insert overflow or a capacity shrink triggered
// them) versus consistency-driven invalidation removals.
struct CacheCounters {
  uint64_t insert_evictions = 0;
  uint64_t shrink_evictions = 0;
  uint64_t invalidation_removals = 0;

  uint64_t total_evictions() const {
    return insert_evictions + shrink_evictions;
  }
};

// The cache-service surface a ScalableApp talks to. One DsspNode implements
// it directly (the paper's single-proxy deployment); a cluster::ClusterRouter
// implements it by composing many nodes behind a consistent-hash ring. The
// backend is chosen at construction and never changes, so the single-node
// hot path stays what it always was.
class CacheBackend {
 public:
  virtual ~CacheBackend() = default;

  virtual Status RegisterApp(std::string app_id,
                             const catalog::Catalog* catalog,
                             const templates::TemplateSet* templates) = 0;
  virtual std::optional<CacheEntry> Lookup(const std::string& app_id,
                                           const std::string& key) = 0;
  virtual std::optional<CacheEntry> LookupStale(
      const std::string& app_id, const std::string& key,
      uint64_t max_updates_behind) = 0;
  virtual void Store(const std::string& app_id, CacheEntry entry) = 0;
  virtual size_t OnUpdate(const std::string& app_id,
                          const UpdateNotice& notice) = 0;
  virtual size_t ClearCache(const std::string& app_id) = 0;
  virtual void SetStaleRetention(const std::string& app_id,
                                 size_t max_entries) = 0;
};

// The shared Database Scalability Service Provider node: caches (possibly
// encrypted) query results for many applications and keeps them consistent
// by invalidating on updates, using only each entry's exposed information.
//
// The DSSP holds no application keys. Applications are isolated: lookups and
// invalidations are scoped to one application's cache.
//
// Thread safety: safe for concurrent use by multiple worker threads. The
// registry is guarded by a shared mutex (registration writes, everything
// else reads), each application's cache is internally lock-striped (see
// QueryCache), and stats are relaxed atomics. Operations on an app_id that
// was never registered degrade gracefully (miss / no-op / zero) rather than
// aborting: a shared provider must tolerate traffic for unknown tenants.
class DsspNode : public CacheBackend {
 public:
  DsspNode() = default;

  // Registers an application. `catalog` and `templates` are the statically
  // published metadata (schemas and template texts) the DSSP may consult
  // when an entry's or update's exposure level permits; both must outlive
  // the node. Fails on duplicate id.
  Status RegisterApp(std::string app_id, const catalog::Catalog* catalog,
                     const templates::TemplateSet* templates) override;

  // Strict registration (default off): when enabled, RegisterApp runs the
  // static auditor (analysis/audit.h) over the app's templates and schema
  // first and refuses — with the findings in the error message — any app
  // carrying error-severity findings (type mismatches, dead templates, ...).
  // The audit is purely static, so a rejected app leaves no trace.
  void SetStrictRegistration(bool enabled) {
    strict_registration_.store(enabled, std::memory_order_relaxed);
  }
  bool strict_registration() const {
    return strict_registration_.load(std::memory_order_relaxed);
  }

  bool HasApp(std::string_view app_id) const;

  // Cache operations for one application. Lookup returns a copy of the
  // entry (a pointer into the cache would dangle under concurrent
  // invalidation); unknown app ids miss.
  std::optional<CacheEntry> Lookup(const std::string& app_id,
                                   const std::string& key) override;
  void Store(const std::string& app_id, CacheEntry entry) override;

  // Degraded-mode lookup: a recently invalidated entry for `key`, if it is
  // at most `max_updates_behind` observed updates stale (see
  // QueryCache::LookupStale). Requires SetStaleRetention > 0 to ever hit.
  // Counted as a stale hit, never as a regular hit.
  std::optional<CacheEntry> LookupStale(const std::string& app_id,
                                        const std::string& key,
                                        uint64_t max_updates_behind) override;

  // Caps the app's stale side store (0 = retention off, the default).
  void SetStaleRetention(const std::string& app_id,
                         size_t max_entries) override;

  // Invalidation on a completed update; returns entries invalidated.
  // Drains the app's cache shard by shard, so concurrent lookups in other
  // shards proceed while one shard is being pruned. A notice that fails
  // ValidateNotice is rejected (counted in rejected_notices, no epoch
  // advance) instead of aborting the node.
  size_t OnUpdate(const std::string& app_id,
                  const UpdateNotice& notice) override;

  // Structural validation of an update notice against the app's published
  // templates: the exposure level must be a valid *update* level (blind /
  // template / stmt — updates never expose views) and an exposed template
  // index must be in range. Unknown apps validate trivially (OnUpdate
  // no-ops for them). Used by OnUpdate and by the cluster bus endpoint to
  // refuse malformed frames before acknowledging them.
  Status ValidateNotice(const std::string& app_id,
                        const UpdateNotice& notice) const;

  // Toggles the predicate-indexed invalidation path (default on). When off,
  // OnUpdate scans every entry of every surviving group — the pre-index
  // behavior — which the differential test and the ablation use as the
  // reference. Safe to flip at any time.
  void SetPredicateIndexEnabled(bool enabled) {
    predicate_index_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool predicate_index_enabled() const {
    return predicate_index_enabled_.load(std::memory_order_relaxed);
  }

  // The compiled predicate-index plan of an app (nullptr when unknown);
  // introspection for tests and the ablation harness.
  const ViewIndexPlan* GetViewIndex(const std::string& app_id) const;

  // Caps one application's cache entry count (0 = unlimited). A shared
  // provider uses this to bound each tenant's memory; overflow evicts the
  // least recently used entries.
  void SetCacheCapacity(const std::string& app_id, size_t max_entries);

  // Total capacity evictions (insert-overflow + capacity-shrink).
  uint64_t CacheEvictions(const std::string& app_id) const;

  // Removal accounting split by cause (zeroes for unknown apps).
  CacheCounters GetCacheCounters(const std::string& app_id) const;

  // Drops an application's whole cache (e.g., to start an experiment cold).
  size_t ClearCache(const std::string& app_id) override;

  // Ids of all registered applications, sorted. A cluster fan-out layer
  // uses this to audit that every member carries the same tenant set.
  std::vector<std::string> AppIds() const;

  size_t CacheSize(const std::string& app_id) const;

  // Snapshot of the app's counters (zeroes for unknown apps).
  DsspStats stats(const std::string& app_id) const;

  // Aggregate size across applications.
  size_t TotalCacheSize() const;

 private:
  struct AtomicStats {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> stores{0};
    std::atomic<uint64_t> updates_observed{0};
    std::atomic<uint64_t> entries_invalidated{0};
    std::atomic<uint64_t> stale_hits{0};
    std::atomic<uint64_t> rejected_notices{0};

    DsspStats Snapshot() const;
  };

  struct AppState {
    const catalog::Catalog* catalog = nullptr;
    const templates::TemplateSet* templates = nullptr;
    QueryCache cache;
    // Compiled once at registration; the strategy answers invalidation
    // decisions from it instead of re-deriving the template analysis per
    // cached entry. Owned here so the strategy's pointer stays valid.
    std::unique_ptr<const analysis::InvalidationPlan> plan;
    // Predicate index derived from `plan`; the cache keys entries under it
    // at Insert and OnUpdate probes it to visit only candidate entries.
    std::unique_ptr<const ViewIndexPlan> view_index;
    std::unique_ptr<invalidation::MixedStrategy> strategy;
    AtomicStats stats;
  };

  static Status ValidateNoticeFor(const AppState& app,
                                  const UpdateNotice& notice);

  // nullptr when the app was never registered. The returned state is
  // stable: apps are never unregistered and map nodes do not move.
  AppState* FindApp(std::string_view app_id);
  const AppState* FindApp(std::string_view app_id) const;

  // Guards the apps_ map *structure* only. AppState values are stable once
  // inserted (apps are never unregistered, map nodes do not move), and each
  // one is internally synchronized (lock-striped cache, atomic stats), so
  // FindApp may hand out AppState pointers past the registry lock.
  mutable SharedMutex mu_;
  std::map<std::string, AppState, std::less<>> apps_ DSSP_GUARDED_BY(mu_);
  std::atomic<bool> predicate_index_enabled_{true};
  std::atomic<bool> strict_registration_{false};
};

}  // namespace dssp::service

#endif  // DSSP_DSSP_NODE_H_
