#ifndef DSSP_DSSP_HOME_SERVER_H_
#define DSSP_DSSP_HOME_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "crypto/keyring.h"
#include "engine/database.h"
#include "engine/program.h"
#include "templates/template_set.h"

namespace dssp::service {

// An application's home server: the master database, the template sets, and
// the application's keys. All statements arrive encrypted (Figure 2: the
// DSSP forwards opaque blobs); the home server decrypts, parses, executes,
// and encrypts results when the caller asks for an opaque reply.
class HomeServer {
 public:
  HomeServer(std::string app_id, crypto::KeyRing keyring);

  const std::string& app_id() const { return app_id_; }
  const crypto::KeyRing& keyring() const { return keyring_; }

  // Master database; populate it and register tables through this.
  engine::Database& database() { return database_; }
  const engine::Database& database() const { return database_; }

  // Registers templates (ids auto-assigned "Q<k>" / "U<k>").
  Status AddQueryTemplate(std::string_view sql);
  Status AddUpdateTemplate(std::string_view sql);
  const templates::TemplateSet& templates() const { return templates_; }

  // Wire entry points. `ciphertext` is a statement encrypted under the
  // app's statement cipher. For queries: executes and returns the serialized
  // result, encrypted under the result cipher unless `plaintext_result`.
  //
  // A nonzero `nonce` enables at-most-once semantics: if an update with the
  // same nonce was already applied (a client retry after a lost response, or
  // a transport-duplicated frame), the stored effect is returned without
  // touching the database. The dedup window is bounded FIFO
  // (`kDedupWindow` nonces); retries are near-immediate, so a window this
  // deep never forgets a nonce that can still be retried.
  StatusOr<std::string> HandleQuery(std::string_view ciphertext,
                                    bool plaintext_result);
  StatusOr<engine::UpdateEffect> HandleUpdate(std::string_view ciphertext,
                                              uint64_t nonce = 0);

  // Ciphers (deterministic; shared conceptually with the application's
  // client-side code, never with the DSSP).
  crypto::DeterministicCipher statement_cipher() const {
    return keyring_.CipherFor("statement");
  }
  crypto::DeterministicCipher parameter_cipher() const {
    return keyring_.CipherFor("params");
  }
  crypto::DeterministicCipher result_cipher() const {
    return keyring_.CipherFor("result");
  }

  // Count of updates applied (the paper reports per-run update volumes).
  // Atomics: a multi-threaded tenant may drive HandleQuery/HandleUpdate from
  // several workers; the accessors are lock-free snapshots.
  uint64_t updates_applied() const {
    return updates_applied_.load(std::memory_order_relaxed);
  }
  uint64_t queries_executed() const {
    return queries_executed_.load(std::memory_order_relaxed);
  }
  // Updates whose nonce was already applied and were suppressed.
  uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_.load(std::memory_order_relaxed);
  }

  // Queries served by a compiled QueryProgram vs. by the reference
  // interpreter (template not matched, template not compilable, or program
  // execution disabled). An application whose templates all compile sees
  // interpreter_fallback_queries() == 0.
  uint64_t program_queries() const {
    return program_queries_.load(std::memory_order_relaxed);
  }
  uint64_t interpreter_fallback_queries() const {
    return interpreter_fallback_queries_.load(std::memory_order_relaxed);
  }

  // Disables the compiled-program path (every query runs the interpreter).
  // For benchmarks and differential tests; call before serving traffic.
  void SetProgramExecutionEnabled(bool enabled) {
    program_execution_enabled_ = enabled;
  }

  static constexpr size_t kDedupWindow = 65536;

 private:
  // Executes a parsed, fully-bound query: via the compiled program of the
  // matching template when one exists, else the reference interpreter.
  StatusOr<engine::QueryResult> ExecuteParsedQuery(const sql::Statement& stmt);

  std::string app_id_;
  crypto::KeyRing keyring_;
  engine::Database database_;
  templates::TemplateSet templates_;

  // Compiled once per registered query template (nullopt when compilation
  // falls back to the interpreter), parallel to templates_.queries().
  // Shape key (templates::SelectShapeKey) -> candidate template indexes.
  // Both are setup-phase state like templates_: mutated only by
  // AddQueryTemplate, read without locks by HandleQuery.
  std::vector<std::optional<engine::QueryProgram>> programs_;
  std::unordered_map<std::string, std::vector<size_t>> shape_to_queries_;
  bool program_execution_enabled_ = true;

  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> queries_executed_{0};
  std::atomic<uint64_t> duplicates_suppressed_{0};
  std::atomic<uint64_t> program_queries_{0};
  std::atomic<uint64_t> interpreter_fallback_queries_{0};

  // Nonce -> applied effect, bounded FIFO. The mutex also serializes the
  // apply of nonce-carrying updates so a concurrent retry of the same nonce
  // cannot double-apply.
  Mutex dedup_mu_;
  std::unordered_map<uint64_t, engine::UpdateEffect> applied_nonces_
      DSSP_GUARDED_BY(dedup_mu_);
  std::deque<uint64_t> dedup_fifo_ DSSP_GUARDED_BY(dedup_mu_);
};

}  // namespace dssp::service

#endif  // DSSP_DSSP_HOME_SERVER_H_
