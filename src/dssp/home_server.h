#ifndef DSSP_DSSP_HOME_SERVER_H_
#define DSSP_DSSP_HOME_SERVER_H_

#include "backend/in_memory_backend.h"

namespace dssp::service {

// The home server moved behind the backend::HomeBackend seam: the engine-
// backed implementation is backend::InMemoryBackend (master database,
// template sets, keys, connection pool, prepared-statement and metadata
// caches). This alias keeps the service-layer name every existing call site
// uses; new code should say backend::InMemoryBackend (or program against
// backend::HomeBackend where only the wire surface matters).
using HomeServer = backend::InMemoryBackend;

}  // namespace dssp::service

#endif  // DSSP_DSSP_HOME_SERVER_H_
