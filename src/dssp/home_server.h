#ifndef DSSP_DSSP_HOME_SERVER_H_
#define DSSP_DSSP_HOME_SERVER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "crypto/keyring.h"
#include "engine/database.h"
#include "templates/template_set.h"

namespace dssp::service {

// An application's home server: the master database, the template sets, and
// the application's keys. All statements arrive encrypted (Figure 2: the
// DSSP forwards opaque blobs); the home server decrypts, parses, executes,
// and encrypts results when the caller asks for an opaque reply.
class HomeServer {
 public:
  HomeServer(std::string app_id, crypto::KeyRing keyring);

  const std::string& app_id() const { return app_id_; }
  const crypto::KeyRing& keyring() const { return keyring_; }

  // Master database; populate it and register tables through this.
  engine::Database& database() { return database_; }
  const engine::Database& database() const { return database_; }

  // Registers templates (ids auto-assigned "Q<k>" / "U<k>").
  Status AddQueryTemplate(std::string_view sql);
  Status AddUpdateTemplate(std::string_view sql);
  const templates::TemplateSet& templates() const { return templates_; }

  // Wire entry points. `ciphertext` is a statement encrypted under the
  // app's statement cipher. For queries: executes and returns the serialized
  // result, encrypted under the result cipher unless `plaintext_result`.
  StatusOr<std::string> HandleQuery(std::string_view ciphertext,
                                    bool plaintext_result);
  StatusOr<engine::UpdateEffect> HandleUpdate(std::string_view ciphertext);

  // Ciphers (deterministic; shared conceptually with the application's
  // client-side code, never with the DSSP).
  crypto::DeterministicCipher statement_cipher() const {
    return keyring_.CipherFor("statement");
  }
  crypto::DeterministicCipher parameter_cipher() const {
    return keyring_.CipherFor("params");
  }
  crypto::DeterministicCipher result_cipher() const {
    return keyring_.CipherFor("result");
  }

  // Count of updates applied (the paper reports per-run update volumes).
  uint64_t updates_applied() const { return updates_applied_; }
  uint64_t queries_executed() const { return queries_executed_; }

 private:
  std::string app_id_;
  crypto::KeyRing keyring_;
  engine::Database database_;
  templates::TemplateSet templates_;
  uint64_t updates_applied_ = 0;
  uint64_t queries_executed_ = 0;
};

}  // namespace dssp::service

#endif  // DSSP_DSSP_HOME_SERVER_H_
