#ifndef DSSP_DSSP_RETRY_H_
#define DSSP_DSSP_RETRY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "dssp/channel.h"

namespace dssp::service {

// Retry/timeout/backoff policy for one hop across the DSSP<->home wire.
// All times are simulated seconds: nothing sleeps; elapsed time is
// accumulated into WireStats so the simulator can charge it.
struct RetryPolicy {
  int max_attempts = 5;
  double attempt_timeout_s = 0.5;    // Charged when a frame is lost.
  double initial_backoff_s = 0.05;   // Before the first retry.
  double backoff_multiplier = 2.0;   // Bounded exponential.
  double max_backoff_s = 1.0;
  double jitter_fraction = 0.2;      // Backoff scaled by 1 +/- jitter.
  double deadline_s = 10.0;          // Per-request budget; 0 = unlimited.
};

// Wire-path accounting for one request, merged into AccessStats.
struct WireStats {
  uint32_t attempts = 0;   // Request frames put on the wire.
  uint32_t retries = 0;    // attempts - 1, unless the first try succeeded.
  uint32_t timeouts = 0;   // Attempts that ended with a lost frame.
  uint32_t corrupt_frames_dropped = 0;  // Damaged frames detected+discarded.
  size_t request_bytes = 0;   // Sealed bytes sent, summed over attempts.
  size_t response_bytes = 0;  // Sealed bytes received, summed over attempts.
  double delay_s = 0;  // Simulated wire delay: injected + timeouts + backoff.
};

// Client half of the fault-tolerant wire path: seals request frames with an
// integrity checksum, sends them through a Channel, and retries on loss or
// corruption with bounded exponential backoff and a per-request deadline.
//
// Idempotency: queries are read-only and retry freely. Updates are retried
// too, but only because every hardened update frame carries a nonce the
// home server deduplicates — a retry of an already-applied update returns
// the stored effect instead of applying twice. (Send-side losses need no
// nonce at all; the nonce covers the ambiguous lost-response case.)
// Genuine application errors (parse, constraint, not-found...) are not
// retried: they are deterministic and travel as kError frames, which pass
// the integrity check.
//
// Thread-safe; the jitter RNG is seeded, so a single-threaded run is
// reproducible.
class RetryingClient {
 public:
  RetryingClient(Channel* channel, RetryPolicy policy, uint64_t seed)
      : channel_(channel), policy_(policy), rng_(seed) {}

  // Sends `request_frame` (sealing it first) until a structurally valid
  // response frame arrives, and returns that frame unsealed. Fails with
  // kUnavailable (attempts exhausted) or kDeadlineExceeded. `stats` may be
  // null; on failure it still reflects the attempts made.
  StatusOr<std::string> Call(std::string_view request_frame,
                             WireStats* stats);

  const RetryPolicy& policy() const { return policy_; }

 private:
  double NextBackoff(int retry_index);

  Channel* channel_;
  RetryPolicy policy_;
  Mutex mu_;
  Rng rng_ DSSP_GUARDED_BY(mu_);
};

}  // namespace dssp::service

#endif  // DSSP_DSSP_RETRY_H_
