#ifndef DSSP_DSSP_VIEW_INDEX_H_
#define DSSP_DSSP_VIEW_INDEX_H_

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/plan.h"
#include "catalog/schema.h"
#include "sql/ast.h"
#include "templates/template_set.h"

namespace dssp::service {

// ---------------------------------------------------------------------------
// Predicate-indexed view registry (compiled side).
//
// PR 3 made each (update, query) pair decision O(1), but OnUpdate still
// visits every cached entry of every non-DNI template group, so the
// per-update invalidation cost is linear in the number of cached views.
// This plan makes it sublinear: for each query template it picks one WHERE
// conjunct `column op ?` — the *discriminator* — and QueryCache keys every
// statement-exposed entry of that template under the literal bound at that
// conjunct, in an ordered per-group map (one structure serves both equality
// point probes and range probes). At update time, BuildGroupProbe turns the
// pair's compiled ParamProgram into a constraint on the discriminator bound;
// the cache then visits only entries whose bound can satisfy it, plus the
// group's unindexed rest.
//
// Soundness contract: an indexed entry may be skipped ONLY when
// EvaluatePairPlan would return kIndependent for it. The derivation below
// guarantees this:
//  - a kProbe pair's program mentions the discriminator coordinate in every
//    check, alongside an update-side operand on the same column;
//  - a check can fire (contribute kInvalidate) only if the discriminator's
//    interval intersects the update operand's interval (sat checks), or the
//    inserted/assigned point lies inside the discriminator's interval
//    (insert / entry set tests);
//  - probe ranges are conservative (inclusive on ties, whole type class
//    where the pair of ops cannot constrain the bound), so every entry a
//    check could fire for is visited and re-decided by the ordinary
//    strategy — the index prunes candidates, it never decides.
// Any shape this derivation cannot cover degrades to scanning the whole
// group (kScanAll), and entries whose statements do not expose the needed
// literals land in the group's rest set, which every probe visits. The
// fallback ladder therefore is: blind/template entry -> rest set; template
// without a `column op ?` conjunct -> rest set; pair whose program is not
// probeable -> group scan; malformed bound update -> group scan.
//
// Exposure: the index stores only what the entry's exposure level already
// reveals (the bound literal of a statement-exposed entry); blind and
// template-level entries contribute nothing to it.
// ---------------------------------------------------------------------------

// Orders sql::Values for index keys: total order by type class
// (null < numeric < string), Value::Compare within a class. Within the
// numeric and string classes this coincides exactly with the comparisons
// the satisfiability interval solver performs.
struct ValueLess {
  static int ClassOf(const sql::Value& v) {
    if (v.is_null()) return 0;
    return v.is_numeric() ? 1 : 2;
  }
  bool operator()(const sql::Value& a, const sql::Value& b) const {
    const int ca = ClassOf(a);
    const int cb = ClassOf(b);
    if (ca != cb) return ca < cb;
    if (ca == 0) return false;  // Nulls compare equal.
    return a.Compare(b) < 0;
  }
};

// The per-group ordered index: discriminator bound -> entry keys.
using ValueKeyMap = std::map<sql::Value, std::set<std::string>, ValueLess>;

// The discriminator chosen for one query template (Section "bucket/interval
// layout" in DESIGN.md): the first WHERE conjunct of the form `column op ?`
// (equality preferred over range ops) whose column resolves unambiguously.
struct TemplateIndexSpec {
  bool indexable = false;
  size_t where_index = 0;  // Conjunct position in the SELECT's WHERE.
  bool rhs = true;         // Side of the conjunct holding the parameter.
  sql::CompareOp op = sql::CompareOp::kEq;  // Column on the left.
  std::string table;   // Physical table of the discriminator column.
  std::string column;  // Resolved column name.
  // Every query-side WHERE coordinate (index, rhs) some kProbe pair's
  // program fetches. An entry is indexable only if all of them hold
  // literals: EvaluatePairPlan invalidates on any failed query-side fetch,
  // and such an entry must never be skipped.
  std::vector<std::pair<size_t, bool>> required_literals;
};

// One probe constraint on the discriminator bound `b` of candidate entries:
// visit the entry iff interval(spec.op, b) can intersect interval(op, value
// fetched from the bound update).
struct ProbeRef {
  sql::CompareOp op = sql::CompareOp::kEq;
  analysis::ValueRef value;  // Const or update-side coordinate.
};

// How OnUpdate may visit one (update template, query template) group.
struct PairProbe {
  enum class Kind {
    // The program has no checks (independent for every binding): indexed
    // entries are provably DNI; only the rest set needs visiting.
    kSkipIndexed,
    // Every check constrains the discriminator: probe the value index.
    kProbe,
    // Not probeable (kAlwaysInvalidate / kViewTest / kSolverFallback, or a
    // program with a non-discriminating check): scan the whole group.
    kScan,
  };

  Kind kind = Kind::kScan;
  std::vector<ProbeRef> probes;  // One per check; kProbe only.
  // Every update-side coordinate the pair's program fetches. If any fails
  // to fetch from the bound update, EvaluatePairPlan invalidates every
  // entry, so the probe must degrade to a scan.
  std::vector<analysis::ValueRef> update_refs;
};

// A fully resolved probe for one group, built once per (update, group).
struct GroupProbe {
  enum class Mode {
    kScanAll,      // Visit every entry (legacy behavior).
    kScanRest,     // Visit only unindexed entries; indexed are provably DNI.
    kProbe,        // Visit rest + candidates selected by `probes`.
  };

  Mode mode = Mode::kScanAll;
  sql::CompareOp spec_op = sql::CompareOp::kEq;  // Discriminator operator.
  std::vector<std::pair<sql::CompareOp, sql::Value>> probes;

  // Collects the candidate entry keys the probes select from a group's
  // value index into `out`. Only meaningful for kProbe.
  void CollectCandidates(const ValueKeyMap& by_value,
                         std::set<std::string>* out) const;
};

// The compiled predicate-index plan of one application: one
// TemplateIndexSpec per query template plus one PairProbe per
// (update, query) pair, derived from (and soundly subordinate to) the
// compiled InvalidationPlan. Compiled once at app registration; immutable
// afterwards, so concurrent readers need no locking.
class ViewIndexPlan {
 public:
  static ViewIndexPlan Compile(const templates::TemplateSet& templates,
                               const catalog::Catalog& catalog,
                               const analysis::InvalidationPlan& plan);

  // The spec for a query template; nullptr for out-of-range group ids
  // (including CacheEntry::kNoTemplate).
  const TemplateIndexSpec* query_spec(size_t query_index) const {
    return query_index < specs_.size() ? &specs_[query_index] : nullptr;
  }

  const PairProbe& pair_probe(size_t update_index, size_t query_index) const {
    DSSP_CHECK(update_index < num_updates_ && query_index < num_queries_);
    return pairs_[update_index * num_queries_ + query_index];
  }

  // The discriminator bound under which an entry of `query_index` caching
  // `statement` should be indexed, or nullopt when the entry must go to the
  // group's rest set (template not indexable, required literal missing, or
  // a NULL discriminator — NULL satisfies no constraint, so probes would
  // never select it).
  std::optional<sql::Value> IndexKeyFor(size_t query_index,
                                        const sql::Statement& statement) const;

  // Resolves the pair's probe against a bound update statement. Degrades to
  // kScanAll when any update-side coordinate fails to fetch.
  GroupProbe BuildGroupProbe(size_t update_index, size_t query_index,
                             const sql::Statement& update) const;

  size_t num_updates() const { return num_updates_; }
  size_t num_queries() const { return num_queries_; }

  struct Summary {
    size_t indexable_queries = 0;
    size_t probe_pairs = 0;
    size_t skip_pairs = 0;
    size_t scan_pairs = 0;
  };
  Summary Summarize() const;

 private:
  size_t num_updates_ = 0;
  size_t num_queries_ = 0;
  std::vector<TemplateIndexSpec> specs_;   // One per query template.
  std::vector<PairProbe> pairs_;           // Row-major like InvalidationPlan.
};

}  // namespace dssp::service

#endif  // DSSP_DSSP_VIEW_INDEX_H_
