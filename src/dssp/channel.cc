#include "dssp/channel.h"

#include <algorithm>

#include "dssp/protocol.h"

namespace dssp::service {

Status FaultProfile::Validate() const {
  const struct {
    const char* name;
    double value;
  } probabilities[] = {
      {"drop_request", drop_request},
      {"drop_response", drop_response},
      {"corrupt_request", corrupt_request},
      {"corrupt_response", corrupt_response},
      {"duplicate_request", duplicate_request},
      {"delay_probability", delay_probability},
  };
  for (const auto& p : probabilities) {
    // The negated comparison also rejects NaN.
    if (!(p.value >= 0.0 && p.value <= 1.0)) {
      return InvalidArgumentError(std::string(p.name) +
                                  " must be a probability in [0, 1]");
    }
  }
  if (!(delay_mean_s >= 0.0)) {
    return InvalidArgumentError("delay_mean_s must be >= 0");
  }
  if (max_corrupt_bytes < 0) {
    return InvalidArgumentError("max_corrupt_bytes must be >= 0");
  }
  return Status::Ok();
}

FaultInjectingChannel::FaultInjectingChannel(Channel& inner,
                                             FaultProfile profile,
                                             uint64_t seed)
    : inner_(inner), profile_(profile), rng_(seed) {
  DSSP_CHECK_OK(profile_.Validate());
}

ChannelOutcome DirectChannel::RoundTrip(std::string_view request_frame) {
  ChannelOutcome outcome;
  outcome.delivered = true;
  outcome.home_deliveries = 1;
  outcome.response = DispatchFrame(home_, request_frame);
  return outcome;
}

std::string FaultInjectingChannel::Corrupt(std::string_view frame) {
  std::string damaged(frame);
  const int max_bytes = std::max(1, profile_.max_corrupt_bytes);
  const int bytes =
      1 + static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(max_bytes)));
  switch (rng_.NextBelow(4)) {
    case 0:  // Truncate.
      damaged.resize(damaged.size() - std::min<size_t>(
                         damaged.size(), static_cast<size_t>(bytes)));
      break;
    case 1:  // Extend with garbage.
      for (int i = 0; i < bytes; ++i) {
        damaged.push_back(static_cast<char>(rng_.NextBelow(256)));
      }
      break;
    default:  // Flip random bytes in place.
      for (int i = 0; i < bytes && !damaged.empty(); ++i) {
        damaged[rng_.NextBelow(damaged.size())] =
            static_cast<char>(rng_.NextBelow(256));
      }
      break;
  }
  return damaged;
}

ChannelOutcome FaultInjectingChannel::RoundTrip(
    std::string_view request_frame) {
  ChannelOutcome outcome;
  std::string request(request_frame);
  bool drop_request, drop_response, corrupt_response, duplicate;
  {
    // Draw every random decision in one critical section so concurrent
    // round trips each see an internally consistent fault pattern.
    MutexLock lock(mu_);
    if (rng_.NextBool(profile_.delay_probability)) {
      outcome.delay_s += rng_.NextExponential(profile_.delay_mean_s);
    }
    drop_request = rng_.NextBool(profile_.drop_request);
    drop_response = rng_.NextBool(profile_.drop_response);
    duplicate = rng_.NextBool(profile_.duplicate_request);
    corrupt_response = rng_.NextBool(profile_.corrupt_response);
    if (rng_.NextBool(profile_.corrupt_request)) {
      outcome.request_corrupted = true;
      request = Corrupt(request);
    }
  }

  if (drop_request) return outcome;  // Never reached the home server.

  // Deliver (twice on duplication; the first response wins, mirroring a
  // client that ignores late duplicates).
  ChannelOutcome first = inner_.RoundTrip(request);
  outcome.home_deliveries = first.home_deliveries;
  if (duplicate) {
    outcome.home_deliveries += inner_.RoundTrip(request).home_deliveries;
  }
  if (!first.delivered || drop_response) return outcome;

  outcome.delivered = true;
  outcome.response = std::move(first.response);
  if (corrupt_response) {
    outcome.response_corrupted = true;
    MutexLock lock(mu_);
    outcome.response = Corrupt(outcome.response);
  }
  return outcome;
}

ChannelHealthProber::ChannelHealthProber(Channel& channel, uint64_t seed)
    : channel_(channel), rng_(seed) {}

bool ChannelHealthProber::Probe() {
  uint64_t token;
  {
    MutexLock lock(mu_);
    token = rng_.Next();
    if (token == 0) token = 1;
  }
  const ChannelOutcome outcome =
      channel_.RoundTrip(Seal(Encode(ProbeRequest{token})));
  if (!outcome.delivered) return false;
  StatusOr<std::string> inner = Unseal(outcome.response);
  if (!inner.ok()) return false;
  StatusOr<ProbeResponse> response = DecodeProbeResponse(*inner);
  return response.ok() && response->token == token;
}

}  // namespace dssp::service
