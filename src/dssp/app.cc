#include "dssp/app.h"

#include "dssp/protocol.h"

namespace dssp::service {

namespace {

// Small fixed overhead modeling request framing on the wire.
constexpr size_t kRequestOverheadBytes = 64;

}  // namespace

ScalableApp::ScalableApp(std::string app_id, DsspNode* dssp,
                         crypto::KeyRing keyring)
    : home_(std::move(app_id), std::move(keyring)), dssp_(dssp) {
  DSSP_CHECK(dssp_ != nullptr);
}

Status ScalableApp::Finalize() {
  if (finalized_) return FailedPreconditionError("already finalized");
  DSSP_RETURN_IF_ERROR(dssp_->RegisterApp(
      app_id(), &home_.database().catalog(), &home_.templates()));
  exposure_ = analysis::ExposureAssignment::FullExposure(
      templates().num_queries(), templates().num_updates());
  finalized_ = true;
  return Status::Ok();
}

Status ScalableApp::SetExposure(analysis::ExposureAssignment exposure) {
  if (!finalized_) return FailedPreconditionError("call Finalize() first");
  if (exposure.query_levels.size() != templates().num_queries() ||
      exposure.update_levels.size() != templates().num_updates()) {
    return InvalidArgumentError("exposure assignment size mismatch");
  }
  DSSP_RETURN_IF_ERROR(exposure.Validate());
  exposure_ = std::move(exposure);
  dssp_->ClearCache(app_id());
  return Status::Ok();
}

std::string ScalableApp::LookupKey(const templates::QueryTemplate& tmpl,
                                   analysis::ExposureLevel level,
                                   const sql::Statement& bound,
                                   const std::vector<sql::Value>& params) const {
  switch (level) {
    case analysis::ExposureLevel::kView:
    case analysis::ExposureLevel::kStmt:
      // Plaintext statement as key.
      return "s:" + sql::ToSql(bound);
    case analysis::ExposureLevel::kTemplate: {
      // Template id + deterministically encrypted parameters.
      std::string key = "t:" + tmpl.id();
      const crypto::DeterministicCipher cipher = home_.parameter_cipher();
      for (const sql::Value& param : params) {
        key += "|";
        key += cipher.Encrypt(param.EncodeForKey());
      }
      return key;
    }
    case analysis::ExposureLevel::kBlind:
      // Encrypted full statement.
      return "b:" + home_.statement_cipher().Encrypt(sql::ToSql(bound));
  }
  DSSP_UNREACHABLE("bad ExposureLevel");
}

StatusOr<engine::QueryResult> ScalableApp::Query(
    std::string_view template_id, std::vector<sql::Value> params,
    AccessStats* stats) {
  if (!finalized_) return FailedPreconditionError("call Finalize() first");
  const size_t index = templates().QueryIndex(template_id);
  if (index == templates::TemplateSet::kNpos) {
    return NotFoundError("query template " + std::string(template_id));
  }
  const templates::QueryTemplate& tmpl = templates().queries()[index];
  if (static_cast<int>(params.size()) != tmpl.num_params()) {
    return InvalidArgumentError("parameter count mismatch for " + tmpl.id());
  }
  const analysis::ExposureLevel level = exposure_.query_levels[index];
  const sql::Statement bound = tmpl.Bind(params);
  const std::string key = LookupKey(tmpl, level, bound, params);

  AccessStats local;
  AccessStats& s = stats != nullptr ? *stats : local;
  s = AccessStats{};

  std::optional<CacheEntry> entry = dssp_->Lookup(app_id(), key);
  std::string blob;
  s.request_bytes = kRequestOverheadBytes + key.size();
  if (entry.has_value()) {
    s.cache_hit = true;
    blob = std::move(entry->blob);
  } else {
    // Miss: the DSSP forwards the (encrypted) query to the home server as a
    // protocol frame (Figure 2).
    const bool plaintext_result = level == analysis::ExposureLevel::kView;
    const std::string request_frame = Encode(QueryRequest{
        home_.statement_cipher().Encrypt(sql::ToSql(bound)),
        plaintext_result});
    const std::string response_frame = DispatchFrame(home_, request_frame);
    DSSP_ASSIGN_OR_RETURN(blob, UnwrapQueryResponse(response_frame));
    s.wan_request_bytes = kRequestOverheadBytes + request_frame.size();
    s.wan_response_bytes = kRequestOverheadBytes + response_frame.size();

    CacheEntry fresh;
    fresh.key = key;
    fresh.level = level;
    fresh.blob = blob;
    if (level != analysis::ExposureLevel::kBlind) {
      fresh.template_index = index;
    }
    if (level == analysis::ExposureLevel::kStmt ||
        level == analysis::ExposureLevel::kView) {
      fresh.statement = bound;
    }
    if (plaintext_result) {
      DSSP_ASSIGN_OR_RETURN(engine::QueryResult plain,
                            engine::QueryResult::Deserialize(blob));
      fresh.result = std::move(plain);
    }
    dssp_->Store(app_id(), std::move(fresh));
  }

  s.response_bytes = kRequestOverheadBytes + blob.size();

  // Client-side decryption of the blob.
  const std::string serialized =
      level == analysis::ExposureLevel::kView
          ? blob
          : home_.result_cipher().Decrypt(blob);
  DSSP_ASSIGN_OR_RETURN(engine::QueryResult result,
                        engine::QueryResult::Deserialize(serialized));
  s.result_rows = result.num_rows();
  return result;
}

StatusOr<engine::UpdateEffect> ScalableApp::Update(
    std::string_view template_id, std::vector<sql::Value> params,
    AccessStats* stats) {
  if (!finalized_) return FailedPreconditionError("call Finalize() first");
  const size_t index = templates().UpdateIndex(template_id);
  if (index == templates::TemplateSet::kNpos) {
    return NotFoundError("update template " + std::string(template_id));
  }
  const templates::UpdateTemplate& tmpl = templates().updates()[index];
  if (static_cast<int>(params.size()) != tmpl.num_params()) {
    return InvalidArgumentError("parameter count mismatch for " + tmpl.id());
  }
  const analysis::ExposureLevel level = exposure_.update_levels[index];
  const sql::Statement bound = tmpl.Bind(params);

  AccessStats local;
  AccessStats& s = stats != nullptr ? *stats : local;
  s = AccessStats{};
  s.is_update = true;

  // All updates are routed to the home server in encrypted form (Figure 2).
  const std::string request_frame = Encode(
      UpdateRequest{home_.statement_cipher().Encrypt(sql::ToSql(bound))});
  const std::string response_frame = DispatchFrame(home_, request_frame);
  DSSP_ASSIGN_OR_RETURN(engine::UpdateEffect effect,
                        UnwrapUpdateResponse(response_frame));
  s.rows_affected = effect.rows_affected;
  s.request_bytes = kRequestOverheadBytes + request_frame.size();
  s.response_bytes = kRequestOverheadBytes;  // Acknowledgement.
  s.wan_request_bytes = kRequestOverheadBytes + request_frame.size();
  s.wan_response_bytes = kRequestOverheadBytes + response_frame.size();

  // The DSSP monitors the completed update and invalidates, seeing only the
  // exposure-gated notice.
  UpdateNotice notice;
  notice.level = level;
  if (level != analysis::ExposureLevel::kBlind) {
    notice.template_index = index;
  }
  if (level == analysis::ExposureLevel::kStmt) {
    notice.statement = bound;
  }
  s.entries_invalidated = dssp_->OnUpdate(app_id(), notice);
  return effect;
}

}  // namespace dssp::service
