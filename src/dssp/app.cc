#include "dssp/app.h"

#include "dssp/protocol.h"

namespace dssp::service {

namespace {

// Small fixed overhead modeling request framing on the wire.
constexpr size_t kRequestOverheadBytes = 64;

}  // namespace

ScalableApp::ScalableApp(std::string app_id, CacheBackend* dssp,
                         crypto::KeyRing keyring)
    : home_(std::move(app_id), std::move(keyring)),
      dssp_(dssp),
      channel_(std::make_unique<DirectChannel>(home_)) {
  DSSP_CHECK(dssp_ != nullptr);
}

void ScalableApp::SetChannel(std::unique_ptr<Channel> channel) {
  DSSP_CHECK(channel != nullptr);
  channel_ = std::move(channel);
  if (client_ != nullptr) {
    // Rebind the retry client to the new transport.
    client_ = std::make_unique<RetryingClient>(
        channel_.get(), wire_policy_.retry, wire_policy_.seed);
  }
}

void ScalableApp::SetWirePolicy(const WirePolicy& policy) {
  wire_policy_ = policy;
  client_ = std::make_unique<RetryingClient>(channel_.get(), policy.retry,
                                             policy.seed);
}

WireCounters ScalableApp::wire_counters() const {
  WireCounters out;
  out.attempts = wire_counters_.attempts.load(std::memory_order_relaxed);
  out.retries = wire_counters_.retries.load(std::memory_order_relaxed);
  out.timeouts = wire_counters_.timeouts.load(std::memory_order_relaxed);
  out.corrupt_frames_dropped =
      wire_counters_.corrupt_frames_dropped.load(std::memory_order_relaxed);
  out.stale_serves =
      wire_counters_.stale_serves.load(std::memory_order_relaxed);
  out.failures = wire_counters_.failures.load(std::memory_order_relaxed);
  return out;
}

StatusOr<std::string> ScalableApp::WireCall(const std::string& request_frame,
                                            AccessStats& s) {
  if (client_ == nullptr) {
    // Legacy path: one unsealed attempt, byte-for-byte the pre-channel
    // behavior over a DirectChannel.
    ChannelOutcome outcome = channel_->RoundTrip(request_frame);
    s.wire_attempts = 1;
    s.wire_delay_s += outcome.delay_s;
    s.wan_request_bytes = kRequestOverheadBytes + request_frame.size();
    wire_counters_.attempts.fetch_add(1, std::memory_order_relaxed);
    if (!outcome.delivered) {
      s.wire_timeouts = 1;
      wire_counters_.timeouts.fetch_add(1, std::memory_order_relaxed);
      wire_counters_.failures.fetch_add(1, std::memory_order_relaxed);
      return UnavailableError("home server unreachable");
    }
    s.wan_response_bytes = kRequestOverheadBytes + outcome.response.size();
    return std::move(outcome.response);
  }

  WireStats ws;
  StatusOr<std::string> inner = client_->Call(request_frame, &ws);
  s.wire_attempts = ws.attempts;
  s.wire_retries = ws.retries;
  s.wire_timeouts = ws.timeouts;
  s.corrupt_frames_dropped = ws.corrupt_frames_dropped;
  s.wire_delay_s += ws.delay_s;
  s.wan_request_bytes =
      static_cast<size_t>(ws.attempts) * kRequestOverheadBytes +
      ws.request_bytes;
  s.wan_response_bytes =
      static_cast<size_t>(ws.attempts - ws.timeouts) * kRequestOverheadBytes +
      ws.response_bytes;
  wire_counters_.attempts.fetch_add(ws.attempts, std::memory_order_relaxed);
  wire_counters_.retries.fetch_add(ws.retries, std::memory_order_relaxed);
  wire_counters_.timeouts.fetch_add(ws.timeouts, std::memory_order_relaxed);
  wire_counters_.corrupt_frames_dropped.fetch_add(
      ws.corrupt_frames_dropped, std::memory_order_relaxed);
  if (!inner.ok()) {
    wire_counters_.failures.fetch_add(1, std::memory_order_relaxed);
  }
  return inner;
}

Status ScalableApp::Finalize() {
  if (finalized_) return FailedPreconditionError("already finalized");
  DSSP_RETURN_IF_ERROR(dssp_->RegisterApp(
      app_id(), &home_.database().catalog(), &home_.templates()));
  exposure_ = analysis::ExposureAssignment::FullExposure(
      templates().num_queries(), templates().num_updates());
  finalized_ = true;
  return Status::Ok();
}

Status ScalableApp::SetExposure(analysis::ExposureAssignment exposure) {
  if (!finalized_) return FailedPreconditionError("call Finalize() first");
  if (exposure.query_levels.size() != templates().num_queries() ||
      exposure.update_levels.size() != templates().num_updates()) {
    return InvalidArgumentError("exposure assignment size mismatch");
  }
  DSSP_RETURN_IF_ERROR(exposure.Validate());
  exposure_ = std::move(exposure);
  dssp_->ClearCache(app_id());
  return Status::Ok();
}

std::string ScalableApp::LookupKey(const templates::QueryTemplate& tmpl,
                                   analysis::ExposureLevel level,
                                   const sql::Statement& bound,
                                   const std::vector<sql::Value>& params) const {
  switch (level) {
    case analysis::ExposureLevel::kView:
    case analysis::ExposureLevel::kStmt:
      // Plaintext statement as key.
      return "s:" + sql::ToSql(bound);
    case analysis::ExposureLevel::kTemplate: {
      // Template id + deterministically encrypted parameters.
      std::string key = "t:" + tmpl.id();
      const crypto::DeterministicCipher cipher = home_.parameter_cipher();
      for (const sql::Value& param : params) {
        key += "|";
        key += cipher.Encrypt(param.EncodeForKey());
      }
      return key;
    }
    case analysis::ExposureLevel::kBlind:
      // Encrypted full statement.
      return "b:" + home_.statement_cipher().Encrypt(sql::ToSql(bound));
  }
  DSSP_UNREACHABLE("bad ExposureLevel");
}

StatusOr<engine::QueryResult> ScalableApp::Query(
    std::string_view template_id, std::vector<sql::Value> params,
    AccessStats* stats) {
  if (!finalized_) return FailedPreconditionError("call Finalize() first");
  const size_t index = templates().QueryIndex(template_id);
  if (index == templates::TemplateSet::kNpos) {
    return NotFoundError("query template " + std::string(template_id));
  }
  const templates::QueryTemplate& tmpl = templates().queries()[index];
  if (static_cast<int>(params.size()) != tmpl.num_params()) {
    return InvalidArgumentError("parameter count mismatch for " + tmpl.id());
  }
  const analysis::ExposureLevel level = exposure_.query_levels[index];
  const sql::Statement bound = tmpl.Bind(params);
  const std::string key = LookupKey(tmpl, level, bound, params);

  AccessStats local;
  AccessStats& s = stats != nullptr ? *stats : local;
  s = AccessStats{};

  std::optional<CacheEntry> entry = dssp_->Lookup(app_id(), key);
  std::string blob;
  s.request_bytes = kRequestOverheadBytes + key.size();
  if (entry.has_value()) {
    s.cache_hit = true;
    blob = std::move(entry->blob);
  } else {
    // Miss: the DSSP forwards the (encrypted) query to the home server as a
    // protocol frame (Figure 2), over the configured wire path.
    const bool plaintext_result = level == analysis::ExposureLevel::kView;
    const std::string request_frame = Encode(QueryRequest{
        home_.statement_cipher().Encrypt(sql::ToSql(bound)),
        plaintext_result});
    StatusOr<std::string> response_frame = WireCall(request_frame, s);
    if (response_frame.ok()) {
      DSSP_ASSIGN_OR_RETURN(blob, UnwrapQueryResponse(*response_frame));

      CacheEntry fresh;
      fresh.key = key;
      fresh.level = level;
      fresh.blob = blob;
      if (level != analysis::ExposureLevel::kBlind) {
        fresh.template_index = index;
      }
      if (level == analysis::ExposureLevel::kStmt ||
          level == analysis::ExposureLevel::kView) {
        fresh.statement = bound;
      }
      if (plaintext_result) {
        DSSP_ASSIGN_OR_RETURN(engine::QueryResult plain,
                              engine::QueryResult::Deserialize(blob));
        fresh.result = std::move(plain);
      }
      dssp_->Store(app_id(), std::move(fresh));
    } else {
      // Home unreachable. Degraded mode: serve a recently invalidated
      // entry if the policy's staleness bound allows it (not re-cached,
      // counted separately).
      const StatusCode code = response_frame.status().code();
      std::optional<CacheEntry> stale;
      if (client_ != nullptr && wire_policy_.stale_serve_bound > 0 &&
          (code == StatusCode::kUnavailable ||
           code == StatusCode::kDeadlineExceeded)) {
        stale = dssp_->LookupStale(app_id(), key,
                                   wire_policy_.stale_serve_bound);
      }
      if (!stale.has_value()) return response_frame.status();
      s.served_stale = true;
      wire_counters_.stale_serves.fetch_add(1, std::memory_order_relaxed);
      blob = std::move(stale->blob);
    }
  }

  s.response_bytes = kRequestOverheadBytes + blob.size();

  // Client-side decryption of the blob.
  const std::string serialized =
      level == analysis::ExposureLevel::kView
          ? blob
          : home_.result_cipher().Decrypt(blob);
  DSSP_ASSIGN_OR_RETURN(engine::QueryResult result,
                        engine::QueryResult::Deserialize(serialized));
  s.result_rows = result.num_rows();
  return result;
}

StatusOr<engine::UpdateEffect> ScalableApp::Update(
    std::string_view template_id, std::vector<sql::Value> params,
    AccessStats* stats) {
  if (!finalized_) return FailedPreconditionError("call Finalize() first");
  const size_t index = templates().UpdateIndex(template_id);
  if (index == templates::TemplateSet::kNpos) {
    return NotFoundError("update template " + std::string(template_id));
  }
  const templates::UpdateTemplate& tmpl = templates().updates()[index];
  if (static_cast<int>(params.size()) != tmpl.num_params()) {
    return InvalidArgumentError("parameter count mismatch for " + tmpl.id());
  }
  const analysis::ExposureLevel level = exposure_.update_levels[index];
  const sql::Statement bound = tmpl.Bind(params);

  AccessStats local;
  AccessStats& s = stats != nullptr ? *stats : local;
  s = AccessStats{};
  s.is_update = true;

  // All updates are routed to the home server in encrypted form (Figure 2).
  // The hardened path stamps a dedup nonce so retries are at-most-once.
  UpdateRequest request{home_.statement_cipher().Encrypt(sql::ToSql(bound))};
  if (client_ != nullptr) {
    request.nonce = next_nonce_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::string request_frame = Encode(request);
  s.request_bytes = kRequestOverheadBytes + request_frame.size();
  s.response_bytes = kRequestOverheadBytes;  // Acknowledgement.

  // The DSSP monitors the update and invalidates, seeing only the
  // exposure-gated notice.
  UpdateNotice notice;
  notice.level = level;
  if (level != analysis::ExposureLevel::kBlind) {
    notice.template_index = index;
  }
  if (level == analysis::ExposureLevel::kStmt) {
    notice.statement = bound;
  }

  StatusOr<std::string> response_frame = WireCall(request_frame, s);
  if (!response_frame.ok()) {
    // No acknowledgement — but the home server may still have applied the
    // update (e.g. only the response was lost). Invalidate conservatively:
    // cached results must never outlive an update that might have landed.
    s.entries_invalidated = dssp_->OnUpdate(app_id(), notice);
    return response_frame.status();
  }
  DSSP_ASSIGN_OR_RETURN(engine::UpdateEffect effect,
                        UnwrapUpdateResponse(*response_frame));
  s.rows_affected = effect.rows_affected;
  s.entries_invalidated = dssp_->OnUpdate(app_id(), notice);
  return effect;
}

}  // namespace dssp::service
