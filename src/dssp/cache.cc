#include "dssp/cache.h"

#include "common/macros.h"

namespace dssp::service {

void QueryCache::SetCapacity(size_t max_entries) {
  max_entries_ = max_entries;
  EvictToCapacity();
}

void QueryCache::Touch(Stored& stored) {
  lru_.splice(lru_.begin(), lru_, stored.lru_position);
}

void QueryCache::EvictToCapacity() {
  if (max_entries_ == 0) return;
  while (entries_.size() > max_entries_) {
    DSSP_CHECK(!lru_.empty());
    const std::string victim = lru_.back();
    Erase(victim);
    ++evictions_;
  }
}

const CacheEntry* QueryCache::Lookup(const std::string& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  Touch(it->second);
  return &it->second.entry;
}

const CacheEntry* QueryCache::Peek(const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second.entry;
}

void QueryCache::Insert(CacheEntry entry) {
  Erase(entry.key);
  groups_[entry.template_index].insert(entry.key);
  lru_.push_front(entry.key);
  std::string key = entry.key;
  entries_.emplace(std::move(key),
                   Stored{std::move(entry), lru_.begin()});
  EvictToCapacity();
}

void QueryCache::Erase(const std::string& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  const auto group_it = groups_.find(it->second.entry.template_index);
  if (group_it != groups_.end()) {
    group_it->second.erase(key);
    if (group_it->second.empty()) groups_.erase(group_it);
  }
  lru_.erase(it->second.lru_position);
  entries_.erase(it);
}

std::vector<size_t> QueryCache::GroupKeys() const {
  std::vector<size_t> keys;
  keys.reserve(groups_.size());
  for (const auto& [group, entries] : groups_) keys.push_back(group);
  return keys;
}

std::vector<std::string> QueryCache::GroupEntryKeys(size_t group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

size_t QueryCache::EraseGroup(size_t group) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return 0;
  const size_t count = it->second.size();
  for (const std::string& key : it->second) {
    const auto entry_it = entries_.find(key);
    DSSP_CHECK(entry_it != entries_.end());
    lru_.erase(entry_it->second.lru_position);
    entries_.erase(entry_it);
  }
  groups_.erase(it);
  return count;
}

size_t QueryCache::Clear() {
  const size_t count = entries_.size();
  entries_.clear();
  groups_.clear();
  lru_.clear();
  return count;
}

}  // namespace dssp::service
