#include "dssp/cache.h"

#include <algorithm>

#include "common/macros.h"

namespace dssp::service {

namespace {

// All keys of a group, in the same sorted order the pre-index std::set
// iteration produced (determinism: stale-retention FIFO order depends on
// visit order).
std::vector<std::string> AllGroupKeys(const ValueKeyMap& by_value,
                                      const std::set<std::string>& rest) {
  std::vector<std::string> keys(rest.begin(), rest.end());
  for (const auto& [value, members] : by_value) {
    keys.insert(keys.end(), members.begin(), members.end());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void QueryCache::RemoveLocked(
    Shard& shard, std::unordered_map<std::string, Stored>::iterator it,
    bool retain_stale) {
  const auto group_it = shard.groups.find(it->second.entry.template_index);
  if (group_it != shard.groups.end()) {
    Group& group = group_it->second;
    if (it->second.index_key.has_value()) {
      const auto value_it = group.by_value.find(*it->second.index_key);
      if (value_it != group.by_value.end()) {
        value_it->second.erase(it->first);
        if (value_it->second.empty()) group.by_value.erase(value_it);
      }
    } else {
      group.rest.erase(it->first);
    }
    if (group.empty()) shard.groups.erase(group_it);
  }
  shard.lru.erase(it->second.lru_position);
  if (retain_stale) RetainStale(std::move(it->second.entry));
  shard.entries.erase(it);
  size_.fetch_sub(1, std::memory_order_relaxed);
}

void QueryCache::RetainStale(CacheEntry entry) {
  if (stale_capacity_.load(std::memory_order_relaxed) == 0) return;
  MutexLock lock(stale_mu_);
  const size_t cap = stale_capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return;
  const auto it = stale_.find(entry.key);
  if (it != stale_.end()) {
    stale_fifo_.erase(it->second.fifo_position);
    stale_.erase(it);
  }
  stale_fifo_.push_back(entry.key);
  std::string key = entry.key;
  stale_.emplace(std::move(key),
                 StaleStored{std::move(entry),
                             update_epoch_.load(std::memory_order_relaxed),
                             std::prev(stale_fifo_.end())});
  while (stale_.size() > cap) {
    stale_.erase(stale_fifo_.front());
    stale_fifo_.pop_front();
  }
}

void QueryCache::SetStaleRetention(size_t max_entries) {
  stale_capacity_.store(max_entries, std::memory_order_relaxed);
  MutexLock lock(stale_mu_);
  while (stale_.size() > max_entries) {
    stale_.erase(stale_fifo_.front());
    stale_fifo_.pop_front();
  }
}

size_t QueryCache::StaleSize() const {
  MutexLock lock(stale_mu_);
  return stale_.size();
}

std::optional<CacheEntry> QueryCache::LookupStale(
    const std::string& key, uint64_t max_updates_behind) const {
  const uint64_t now = update_epoch_.load(std::memory_order_relaxed);
  MutexLock lock(stale_mu_);
  const auto it = stale_.find(key);
  if (it == stale_.end()) return std::nullopt;
  if (now - it->second.epoch > max_updates_behind) return std::nullopt;
  return it->second.entry;
}

void QueryCache::EvictToCapacity(std::atomic<uint64_t>& counter) {
  const size_t cap = max_entries_.load(std::memory_order_relaxed);
  if (cap == 0) return;
  if (size_.load(std::memory_order_relaxed) <= cap) return;
  // All shard locks, in index order (the only multi-lock path, so any
  // consistent order is deadlock-free). Holding them all keeps the victim
  // choice exact: each shard's LRU tail is its oldest tick, and the global
  // victim is the smallest tail tick over all shards.
  std::array<std::unique_lock<std::mutex>, kNumShards> locks;
  for (size_t i = 0; i < kNumShards; ++i) {
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mu.native());
  }
  while (size_.load(std::memory_order_relaxed) > cap) {
    Shard* victim_shard = nullptr;
    uint64_t oldest = 0;
    for (Shard& shard : shards_) {
      if (shard.lru.empty()) continue;
      const auto it = shard.entries.find(shard.lru.back());
      DSSP_CHECK(it != shard.entries.end());
      if (victim_shard == nullptr || it->second.tick < oldest) {
        victim_shard = &shard;
        oldest = it->second.tick;
      }
    }
    DSSP_CHECK(victim_shard != nullptr);
    RemoveLocked(*victim_shard,
                 victim_shard->entries.find(victim_shard->lru.back()));
    counter.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryCache::SetCapacity(size_t max_entries) {
  max_entries_.store(max_entries, std::memory_order_relaxed);
  EvictToCapacity(shrink_evictions_);
}

std::optional<CacheEntry> QueryCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return std::nullopt;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_position);
  it->second.tick = NextTick();
  return it->second.entry;
}

std::optional<CacheEntry> QueryCache::Peek(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return std::nullopt;
  return it->second.entry;
}

void QueryCache::Insert(CacheEntry entry) {
  Shard& shard = ShardFor(entry.key);
  {
    MutexLock lock(shard.mu);
    const auto it = shard.entries.find(entry.key);
    if (it != shard.entries.end()) RemoveLocked(shard, it);
    // Index statement-exposed entries under their discriminator bound. Only
    // stmt/view levels qualify: their per-entry decision is the compiled
    // statement program the probes were derived against; anything else is
    // decided at template level and must stay in the always-visited rest.
    std::optional<sql::Value> index_key;
    const ViewIndexPlan* index = view_index_.load(std::memory_order_acquire);
    if (index != nullptr && entry.template_index != CacheEntry::kNoTemplate &&
        entry.statement.has_value() &&
        (entry.level == analysis::ExposureLevel::kStmt ||
         entry.level == analysis::ExposureLevel::kView)) {
      index_key = index->IndexKeyFor(entry.template_index, *entry.statement);
    }
    Group& group = shard.groups[entry.template_index];
    if (index_key.has_value()) {
      group.by_value[*index_key].insert(entry.key);
    } else {
      group.rest.insert(entry.key);
    }
    shard.lru.push_front(entry.key);
    std::string key = entry.key;
    shard.entries.emplace(
        std::move(key),
        Stored{std::move(entry), shard.lru.begin(), NextTick(),
               std::move(index_key)});
    size_.fetch_add(1, std::memory_order_relaxed);
    // A fresh entry supersedes any stale copy retained for this key.
    if (stale_capacity_.load(std::memory_order_relaxed) != 0) {
      const std::string& fresh_key = shard.lru.front();
      MutexLock stale_lock(stale_mu_);
      const auto stale_it = stale_.find(fresh_key);
      if (stale_it != stale_.end()) {
        stale_fifo_.erase(stale_it->second.fifo_position);
        stale_.erase(stale_it);
      }
    }
  }
  EvictToCapacity(insert_evictions_);
}

void QueryCache::Erase(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return;
  RemoveLocked(shard, it, /*retain_stale=*/true);
  invalidation_removals_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<size_t> QueryCache::GroupKeys() const {
  std::set<size_t> keys;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [group, entries] : shard.groups) keys.insert(group);
  }
  return std::vector<size_t>(keys.begin(), keys.end());
}

std::vector<std::string> QueryCache::GroupEntryKeys(size_t group) const {
  std::vector<std::string> keys;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    const auto it = shard.groups.find(group);
    if (it == shard.groups.end()) continue;
    keys.insert(keys.end(), it->second.rest.begin(), it->second.rest.end());
    for (const auto& [value, members] : it->second.by_value) {
      keys.insert(keys.end(), members.begin(), members.end());
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t QueryCache::EraseGroup(size_t group) {
  size_t count = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    const auto it = shard.groups.find(group);
    if (it == shard.groups.end()) continue;
    const std::vector<std::string> keys =
        AllGroupKeys(it->second.by_value, it->second.rest);
    count += keys.size();
    for (const std::string& key : keys) {
      const auto entry_it = shard.entries.find(key);
      DSSP_CHECK(entry_it != shard.entries.end());
      shard.lru.erase(entry_it->second.lru_position);
      RetainStale(std::move(entry_it->second.entry));
      shard.entries.erase(entry_it);
      size_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard.groups.erase(it);
  }
  invalidation_removals_.fetch_add(count, std::memory_order_relaxed);
  return count;
}

size_t QueryCache::InvalidateEntries(
    const std::function<bool(size_t group)>& group_may_invalidate,
    const std::function<bool(const CacheEntry&)>& should_invalidate) {
  return InvalidateEntries(group_may_invalidate, should_invalidate, nullptr);
}

size_t QueryCache::InvalidateEntries(
    const std::function<bool(size_t group)>& group_may_invalidate,
    const std::function<bool(const CacheEntry&)>& should_invalidate,
    const std::function<GroupProbe(size_t group)>& group_probe) {
  size_t invalidated = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    // Group ids first: erasing a group's last entry drops it from the index.
    std::vector<size_t> group_ids;
    group_ids.reserve(shard.groups.size());
    for (const auto& [group, entries] : shard.groups) {
      group_ids.push_back(group);
    }
    for (size_t group : group_ids) {
      if (!group_may_invalidate(group)) continue;
      const auto group_it = shard.groups.find(group);
      DSSP_CHECK(group_it != shard.groups.end());
      const Group& members = group_it->second;
      std::vector<std::string> keys;
      GroupProbe::Mode mode = GroupProbe::Mode::kScanAll;
      if (group_probe != nullptr && !members.by_value.empty()) {
        const GroupProbe probe = group_probe(group);
        mode = probe.mode;
        if (mode == GroupProbe::Mode::kProbe) {
          // Rest entries plus the probes' candidates; the set keeps the
          // visit order sorted, like the full scan's.
          std::set<std::string> candidates(members.rest.begin(),
                                           members.rest.end());
          probe.CollectCandidates(members.by_value, &candidates);
          keys.assign(candidates.begin(), candidates.end());
        }
      }
      switch (mode) {
        case GroupProbe::Mode::kScanAll:
          keys = AllGroupKeys(members.by_value, members.rest);
          break;
        case GroupProbe::Mode::kScanRest:
          keys.assign(members.rest.begin(), members.rest.end());
          break;
        case GroupProbe::Mode::kProbe:
          break;  // Collected above.
      }
      for (const std::string& key : keys) {
        const auto it = shard.entries.find(key);
        DSSP_CHECK(it != shard.entries.end());
        if (should_invalidate(it->second.entry)) {
          RemoveLocked(shard, it, /*retain_stale=*/true);
          ++invalidated;
        }
      }
    }
  }
  invalidation_removals_.fetch_add(invalidated, std::memory_order_relaxed);
  return invalidated;
}

size_t QueryCache::Clear() {
  size_t count = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    count += shard.entries.size();
    size_.fetch_sub(shard.entries.size(), std::memory_order_relaxed);
    shard.entries.clear();
    shard.groups.clear();
    shard.lru.clear();
  }
  {
    // An administrative reset must not leave servable stale copies behind.
    MutexLock lock(stale_mu_);
    stale_.clear();
    stale_fifo_.clear();
  }
  return count;
}

}  // namespace dssp::service
