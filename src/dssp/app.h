#ifndef DSSP_DSSP_APP_H_
#define DSSP_DSSP_APP_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/exposure.h"
#include "common/status.h"
#include "dssp/home_server.h"
#include "dssp/node.h"
#include "engine/query_result.h"

namespace dssp::service {

// Wire/access accounting for one query or update, consumed by the
// simulator's timing model.
struct AccessStats {
  bool is_update = false;
  bool cache_hit = false;
  size_t request_bytes = 0;       // Client -> DSSP.
  size_t response_bytes = 0;      // DSSP -> client.
  size_t wan_request_bytes = 0;   // DSSP -> home (0 on cache hits).
  size_t wan_response_bytes = 0;  // Home -> DSSP (0 on cache hits).
  size_t result_rows = 0;
  size_t rows_affected = 0;
  size_t entries_invalidated = 0;
};

// A Web application running against a shared DSSP: owns the home server
// (master database + keys) and the client-side logic that encrypts
// statements, computes exposure-dependent cache keys, and decrypts results.
//
// Usage:
//   ScalableApp app("bookstore", &dssp, crypto::KeyRing::FromPassphrase(...));
//   app.home().database().CreateTable(...);          // schema
//   app.home().AddQueryTemplate("SELECT ...");        // templates
//   app.Finalize();                                   // register with DSSP
//   app.SetExposure(assignment);                      // security config
//   app.Query("Q1", {Value(5)});                      // serve traffic
class ScalableApp {
 public:
  ScalableApp(std::string app_id, DsspNode* dssp, crypto::KeyRing keyring);

  HomeServer& home() { return home_; }
  const HomeServer& home() const { return home_; }
  const std::string& app_id() const { return home_.app_id(); }
  const templates::TemplateSet& templates() const {
    return home_.templates();
  }

  // Registers the application with the DSSP. Call after schema and
  // templates are final. Exposure defaults to full exposure.
  Status Finalize();

  // Sets the per-template exposure levels (sizes must match the template
  // sets). Clears the cache: entries keyed under the old levels would be
  // unreachable and unsound to keep.
  Status SetExposure(analysis::ExposureAssignment exposure);
  const analysis::ExposureAssignment& exposure() const { return exposure_; }

  // Executes a query template instance through the DSSP path.
  StatusOr<engine::QueryResult> Query(std::string_view template_id,
                                      std::vector<sql::Value> params,
                                      AccessStats* stats = nullptr);

  // Executes an update template instance: routed to the home server, then
  // the DSSP invalidates using the exposure-gated update notice.
  StatusOr<engine::UpdateEffect> Update(std::string_view template_id,
                                        std::vector<sql::Value> params,
                                        AccessStats* stats = nullptr);

 private:
  // Exposure-dependent cache key (Section 2.2, footnote 3).
  std::string LookupKey(const templates::QueryTemplate& tmpl,
                        analysis::ExposureLevel level,
                        const sql::Statement& bound,
                        const std::vector<sql::Value>& params) const;

  HomeServer home_;
  DsspNode* dssp_;
  analysis::ExposureAssignment exposure_;
  bool finalized_ = false;
};

}  // namespace dssp::service

#endif  // DSSP_DSSP_APP_H_
