#ifndef DSSP_DSSP_APP_H_
#define DSSP_DSSP_APP_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/exposure.h"
#include "common/status.h"
#include "dssp/channel.h"
#include "dssp/home_server.h"
#include "dssp/node.h"
#include "dssp/retry.h"
#include "engine/query_result.h"

namespace dssp::service {

// Wire/access accounting for one query or update, consumed by the
// simulator's timing model.
struct AccessStats {
  bool is_update = false;
  bool cache_hit = false;
  size_t request_bytes = 0;       // Client -> DSSP.
  size_t response_bytes = 0;      // DSSP -> client.
  size_t wan_request_bytes = 0;   // DSSP -> home (0 on cache hits).
  size_t wan_response_bytes = 0;  // Home -> DSSP (0 on cache hits).
  size_t result_rows = 0;
  size_t rows_affected = 0;
  size_t entries_invalidated = 0;

  // Wire-path accounting (all zero/false on cache hits and on the perfect
  // direct path with no retries).
  uint32_t wire_attempts = 0;  // Request frames put on the WAN.
  uint32_t wire_retries = 0;
  uint32_t wire_timeouts = 0;  // Attempts lost to drops.
  uint32_t corrupt_frames_dropped = 0;
  bool served_stale = false;   // Degraded-mode serve from the stale store.
  double wire_delay_s = 0;     // Simulated injected delay+timeouts+backoff.
};

// Cumulative per-application wire counters (sums of the AccessStats wire
// fields over all calls), snapshot from relaxed atomics.
struct WireCounters {
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t timeouts = 0;
  uint64_t corrupt_frames_dropped = 0;
  uint64_t stale_serves = 0;
  uint64_t failures = 0;  // Ops that exhausted the retry budget.
};

// Configuration of the hardened wire path (see SetWirePolicy).
struct WirePolicy {
  RetryPolicy retry;
  // Degraded mode: when the home server is unreachable, a query may serve a
  // recently invalidated cache entry at most this many observed updates
  // stale (k-staleness); 0 disables stale serving. Requires
  // DsspNode::SetStaleRetention > 0 for the entries to be retained at all.
  uint64_t stale_serve_bound = 0;
  uint64_t seed = 0xD55C11E7;  // Backoff jitter + update nonces.
};

// A Web application running against a shared DSSP: owns the home server
// (master database + keys) and the client-side logic that encrypts
// statements, computes exposure-dependent cache keys, and decrypts results.
// The `dssp` backend may be a single DsspNode or a cluster::ClusterRouter
// fronting many; the application cannot tell the difference.
//
// Usage:
//   ScalableApp app("bookstore", &dssp, crypto::KeyRing::FromPassphrase(...));
//   app.home().database().CreateTable(...);          // schema
//   app.home().AddQueryTemplate("SELECT ...");        // templates
//   app.Finalize();                                   // register with DSSP
//   app.SetExposure(assignment);                      // security config
//   app.Query("Q1", {Value(5)});                      // serve traffic
class ScalableApp {
 public:
  ScalableApp(std::string app_id, CacheBackend* dssp, crypto::KeyRing keyring);

  HomeServer& home() { return home_; }
  const HomeServer& home() const { return home_; }
  const std::string& app_id() const { return home_.app_id(); }
  const templates::TemplateSet& templates() const {
    return home_.templates();
  }

  // Registers the application with the DSSP. Call after schema and
  // templates are final. Exposure defaults to full exposure.
  Status Finalize();

  // Sets the per-template exposure levels (sizes must match the template
  // sets). Clears the cache: entries keyed under the old levels would be
  // unreachable and unsound to keep.
  Status SetExposure(analysis::ExposureAssignment exposure);
  const analysis::ExposureAssignment& exposure() const { return exposure_; }

  // Executes a query template instance through the DSSP path.
  StatusOr<engine::QueryResult> Query(std::string_view template_id,
                                      std::vector<sql::Value> params,
                                      AccessStats* stats = nullptr);

  // Executes an update template instance: routed to the home server, then
  // the DSSP invalidates using the exposure-gated update notice.
  StatusOr<engine::UpdateEffect> Update(std::string_view template_id,
                                        std::vector<sql::Value> params,
                                        AccessStats* stats = nullptr);

  // ----- Wire path configuration (Figure 2's DSSP <-> home WAN). -----

  // Replaces the transport to the home server; defaults to the in-process
  // DirectChannel (perfect wire, today's exact behavior). Inject a
  // FaultInjectingChannel wrapped around `DirectChannel(home())` to exercise
  // degraded operation.
  void SetChannel(std::unique_ptr<Channel> channel);
  Channel& channel() { return *channel_; }

  // Enables the hardened wire client: frames are integrity-sealed, updates
  // carry dedup nonces, lost/corrupt frames are retried with bounded
  // exponential backoff under a per-request deadline, and (when
  // `policy.stale_serve_bound` > 0) queries fall back to bounded-staleness
  // cache entries while the home is unreachable. When a wire-failed update
  // may have reached the home server, its exposure-gated invalidation
  // notice is still delivered (conservative: the cache must not outlive an
  // update that might have been applied).
  //
  // Without this call the wire path is byte-for-byte the legacy one: no
  // envelope, no nonce, one attempt.
  void SetWirePolicy(const WirePolicy& policy);
  bool wire_hardened() const { return client_ != nullptr; }

  // Snapshot of the cumulative wire counters.
  WireCounters wire_counters() const;

 private:
  // Exposure-dependent cache key (Section 2.2, footnote 3).
  std::string LookupKey(const templates::QueryTemplate& tmpl,
                        analysis::ExposureLevel level,
                        const sql::Statement& bound,
                        const std::vector<sql::Value>& params) const;

  // Sends one request frame over the configured wire path, retrying when
  // hardened. Returns the (unsealed) response frame and fills the wire
  // fields of `s`.
  StatusOr<std::string> WireCall(const std::string& request_frame,
                                 AccessStats& s);

  struct AtomicWireCounters {
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> corrupt_frames_dropped{0};
    std::atomic<uint64_t> stale_serves{0};
    std::atomic<uint64_t> failures{0};
  };

  HomeServer home_;
  CacheBackend* dssp_;
  analysis::ExposureAssignment exposure_;
  bool finalized_ = false;

  std::unique_ptr<Channel> channel_;         // Never null.
  std::unique_ptr<RetryingClient> client_;   // Null on the legacy path.
  WirePolicy wire_policy_;
  std::atomic<uint64_t> next_nonce_{1};
  mutable AtomicWireCounters wire_counters_;
};

}  // namespace dssp::service

#endif  // DSSP_DSSP_APP_H_
