#include "analysis/plan.h"

#include <map>
#include <optional>
#include <utility>

#include "analysis/ipm.h"
#include "analysis/query_slots.h"
#include "analysis/satisfiability.h"
#include "common/macros.h"
#include "engine/eval.h"

namespace dssp::analysis {

namespace {

using templates::QueryTemplate;
using templates::UpdateClass;
using templates::UpdateTemplate;
using Source = ValueRef::Source;

// Mirrors the row-exclusion semantics the statement-level solver applies to
// inserted and newly assigned values (independence.cc): NULL on either side
// excludes the row (no comparison is true against NULL), incomparable types
// exclude it (the value cannot equal a differently-typed constant), and
// otherwise the comparison itself decides.
bool TestExcludes(const sql::Value& v, sql::CompareOp op,
                  const sql::Value& c) {
  if (v.is_null() || c.is_null()) return true;
  const bool comparable =
      (v.is_numeric() && c.is_numeric()) ||
      (v.type() == sql::ValueType::kString &&
       c.type() == sql::ValueType::kString);
  if (!comparable) return true;
  return !engine::CompareValues(v, op, c);
}

// A compile-time constraint: the runtime ColumnConstraint with its value
// still symbolic (template literal or parameter coordinate).
struct ConstraintTemplate {
  std::string column;
  sql::CompareOp op;
  ValueRef value;
};

// Compile-time mirror of SlotConstraints (independence.cc): the unary
// constraints a bound query statement will contribute for FROM slot `slot`,
// with parameters left as coordinates. Binding only substitutes Parameter
// operands with literals, so the set of conjuncts this extracts is exactly
// the set the solver extracts from any binding.
std::vector<ConstraintTemplate> CompileSlotConstraints(
    const sql::SelectStatement& stmt, const QuerySlots& slots, size_t slot,
    const catalog::Catalog& catalog) {
  std::vector<ConstraintTemplate> out;
  for (size_t i = 0; i < stmt.where.size(); ++i) {
    const sql::Comparison& cmp = stmt.where[i];
    for (int side = 0; side < 2; ++side) {
      const sql::Operand& a = side == 0 ? cmp.lhs : cmp.rhs;
      const sql::Operand& b = side == 0 ? cmp.rhs : cmp.lhs;
      if (!sql::IsColumn(a) ||
          (!sql::IsLiteral(b) && !sql::IsParameter(b))) {
        continue;
      }
      const auto resolved =
          slots.Resolve(std::get<sql::ColumnRef>(a), catalog);
      if (!resolved.has_value() || resolved->first != slot) continue;
      const sql::CompareOp op =
          side == 0 ? cmp.op : sql::ReverseCompareOp(cmp.op);
      ValueRef value =
          sql::IsLiteral(b)
              ? ValueRef::Const(std::get<sql::Value>(b))
              : ValueRef::At(Source::kQueryWhere, i, /*rhs=*/side == 0);
      out.push_back(ConstraintTemplate{resolved->second, op,
                                       std::move(value)});
      break;
    }
  }
  return out;
}

// Compile-time mirror of UpdatePredicateConstraints (independence.cc).
std::vector<ConstraintTemplate> CompileUpdatePredicate(
    const std::vector<sql::Comparison>& where) {
  std::vector<ConstraintTemplate> out;
  for (size_t i = 0; i < where.size(); ++i) {
    const sql::Comparison& cmp = where[i];
    for (int side = 0; side < 2; ++side) {
      const sql::Operand& a = side == 0 ? cmp.lhs : cmp.rhs;
      const sql::Operand& b = side == 0 ? cmp.rhs : cmp.lhs;
      if (!sql::IsColumn(a) ||
          (!sql::IsLiteral(b) && !sql::IsParameter(b))) {
        continue;
      }
      const sql::CompareOp op =
          side == 0 ? cmp.op : sql::ReverseCompareOp(cmp.op);
      ValueRef value =
          sql::IsLiteral(b)
              ? ValueRef::Const(std::get<sql::Value>(b))
              : ValueRef::At(Source::kUpdateWhere, i, /*rhs=*/side == 0);
      out.push_back(ConstraintTemplate{std::get<sql::ColumnRef>(a).column,
                                       op, std::move(value)});
      break;
    }
  }
  return out;
}

// True if the conjunction of the compile-time-known constraints is already
// unsatisfiable; adding the parameter-dependent ones can only shrink the
// solution set further, so UNSAT here means UNSAT for every binding.
bool ConstSubsetUnsat(const std::vector<ConstraintTemplate>& cs) {
  std::vector<ColumnConstraint> known;
  for (const ConstraintTemplate& c : cs) {
    if (c.value.is_const()) {
      known.push_back(ColumnConstraint{c.column, c.op, c.value.literal});
    }
  }
  return !UnaryConjunctionSatisfiable(known);
}

bool AllConst(const std::vector<ConstraintTemplate>& cs) {
  for (const ConstraintTemplate& c : cs) {
    if (!c.value.is_const()) return false;
  }
  return true;
}

std::vector<CompiledConstraint> Emit(std::vector<ConstraintTemplate> cs) {
  std::vector<CompiledConstraint> out;
  out.reserve(cs.size());
  for (ConstraintTemplate& c : cs) {
    out.push_back(CompiledConstraint{std::move(c.column), c.op,
                                     std::move(c.value)});
  }
  return out;
}

PairPlan Fallback(const UpdateTemplate& u, std::string reason) {
  PairPlan plan;
  plan.kind = PlanKind::kSolverFallback;
  plan.update_class = u.update_class();
  plan.rationale = "solver-fallback: " + std::move(reason);
  return plan;
}

// Maps each written column to the symbolic value assigned to it. Duplicate
// columns: last assignment wins (matching the solver's std::map overwrite).
// Returns nullopt for a shape the solver would reject (non-literal,
// non-parameter operand), which forces kSolverFallback.
std::optional<std::map<std::string, ValueRef>> AssignedValues(
    const std::vector<std::string>& columns,
    const std::vector<sql::Operand>& operands, Source source) {
  if (columns.size() != operands.size()) return std::nullopt;
  std::map<std::string, ValueRef> out;
  for (size_t i = 0; i < columns.size(); ++i) {
    const sql::Operand& op = operands[i];
    if (sql::IsLiteral(op)) {
      out[columns[i]] = ValueRef::Const(std::get<sql::Value>(op));
    } else if (sql::IsParameter(op)) {
      out[columns[i]] = ValueRef::At(source, i);
    } else {
      return std::nullopt;
    }
  }
  return out;
}

// ----- Evaluation helpers. -----

// Fetches the runtime value a ValueRef denotes. Returns nullptr when the
// bound statement's shape does not match the compiled coordinates (not a
// binding of the compiled template); callers must then invalidate.
const sql::Value* Fetch(const ValueRef& ref, const sql::Statement& update,
                        const sql::Statement& query) {
  switch (ref.source) {
    case Source::kConst:
    case Source::kQueryWhere:
      return FetchFromQuery(ref, query);
    case Source::kUpdateWhere:
    case Source::kInsertValue:
    case Source::kSetValue:
      return FetchFromUpdate(ref, update);
  }
  DSSP_UNREACHABLE("bad ValueRef source");
}

}  // namespace

const sql::Value* FetchFromQuery(const ValueRef& ref,
                                 const sql::Statement& query) {
  switch (ref.source) {
    case Source::kConst:
      return &ref.literal;
    case Source::kQueryWhere: {
      if (query.kind() != sql::StatementKind::kSelect) return nullptr;
      const std::vector<sql::Comparison>& where = query.select().where;
      if (ref.index >= where.size()) return nullptr;
      const sql::Operand& op =
          ref.rhs ? where[ref.index].rhs : where[ref.index].lhs;
      return sql::IsLiteral(op) ? &std::get<sql::Value>(op) : nullptr;
    }
    default:
      return nullptr;
  }
}

const sql::Value* FetchFromUpdate(const ValueRef& ref,
                                  const sql::Statement& update) {
  switch (ref.source) {
    case Source::kConst:
      return &ref.literal;
    case Source::kUpdateWhere: {
      const std::vector<sql::Comparison>* where = nullptr;
      if (update.kind() == sql::StatementKind::kDelete) {
        where = &update.del().where;
      } else if (update.kind() == sql::StatementKind::kUpdate) {
        where = &update.update().where;
      } else {
        return nullptr;
      }
      if (ref.index >= where->size()) return nullptr;
      const sql::Operand& op =
          ref.rhs ? (*where)[ref.index].rhs : (*where)[ref.index].lhs;
      return sql::IsLiteral(op) ? &std::get<sql::Value>(op) : nullptr;
    }
    case Source::kInsertValue: {
      if (update.kind() != sql::StatementKind::kInsert) return nullptr;
      const std::vector<sql::Operand>& values = update.insert().values;
      if (ref.index >= values.size()) return nullptr;
      return sql::IsLiteral(values[ref.index])
                 ? &std::get<sql::Value>(values[ref.index])
                 : nullptr;
    }
    case Source::kSetValue: {
      if (update.kind() != sql::StatementKind::kUpdate) return nullptr;
      const auto& set = update.update().set;
      if (ref.index >= set.size()) return nullptr;
      return sql::IsLiteral(set[ref.index].second)
                 ? &std::get<sql::Value>(set[ref.index].second)
                 : nullptr;
    }
    default:
      return nullptr;
  }
}

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kNeverInvalidate:
      return "never-invalidate";
    case PlanKind::kAlwaysInvalidate:
      return "always-invalidate";
    case PlanKind::kParamProgram:
      return "param-program";
    case PlanKind::kSolverFallback:
      return "solver-fallback";
    case PlanKind::kViewTest:
      return "view-test";
  }
  return "unknown";
}

PairPlan CompilePairPlan(const UpdateTemplate& u, const QueryTemplate& q,
                         const catalog::Catalog& catalog,
                         const InvalidationPlan::Options& options) {
  PairPlan plan;
  plan.update_class = u.update_class();

  // ----- Template level: A = 0? (Lemma 1; Section 4.5.) -----
  if (templates::IsIgnorable(u, q)) {
    plan.kind = PlanKind::kNeverInvalidate;
    plan.never_invalidate = true;
    plan.rationale =
        "A=0: ignorable (G), M(U) disjoint from P(Q) u S(Q)";
    return plan;
  }
  if (options.use_integrity_constraints &&
      InsertionIrrelevantByConstraints(u, q, catalog)) {
    plan.kind = PlanKind::kNeverInvalidate;
    plan.never_invalidate = true;
    plan.rationale =
        "A=0: insertion irrelevant by PK/FK integrity constraints (4.5)";
    return plan;
  }

  // ----- Statement level: compile the per-binding independence test. -----
  const QuerySlots slots(q.statement().select());
  const std::string& target = u.table();
  std::string detail;  // Why the statement level cannot refine, if so.
  bool always_invalidate = false;
  size_t folded_slots = 0;

  switch (u.update_class()) {
    case UpdateClass::kInsertion: {
      const sql::InsertStatement& insert = u.statement().insert();
      const auto values = AssignedValues(insert.columns, insert.values,
                                         Source::kInsertValue);
      if (!values.has_value()) {
        return Fallback(u, "unmirrorable INSERT value list");
      }
      for (size_t s = 0;
           s < slots.physical.size() && !always_invalidate; ++s) {
        if (slots.physical[s] != target) continue;
        const std::vector<ConstraintTemplate> slot_cs =
            CompileSlotConstraints(q.statement().select(), slots, s, catalog);
        CompiledInsertCheck check;
        bool always_excluded = false;
        for (const ConstraintTemplate& c : slot_cs) {
          const auto it = values->find(c.column);
          if (it == values->end()) continue;  // Never the violating test.
          if (it->second.is_const() && c.value.is_const()) {
            if (TestExcludes(it->second.literal, c.op, c.value.literal)) {
              always_excluded = true;  // Row excluded for every binding.
              break;
            }
            continue;  // Test passes for every binding: contributes nothing.
          }
          check.tests.push_back(
              CompiledValueTest{it->second, c.op, c.value});
        }
        if (always_excluded) {
          ++folded_slots;
          continue;
        }
        if (check.tests.empty()) {
          // No test can ever exclude the inserted row from this slot.
          always_invalidate = true;
          detail = "slot " + std::to_string(s) + " over " + target +
                   " admits the inserted row for every binding";
          break;
        }
        plan.program.insert_checks.push_back(std::move(check));
      }
      break;
    }
    case UpdateClass::kDeletion:
    case UpdateClass::kModification: {
      const bool is_mod = u.update_class() == UpdateClass::kModification;
      const std::vector<sql::Comparison>& where =
          is_mod ? u.statement().update().where : u.statement().del().where;
      const std::vector<ConstraintTemplate> pred =
          CompileUpdatePredicate(where);

      // "No touched row is currently relevant" (both classes).
      for (size_t s = 0;
           s < slots.physical.size() && !always_invalidate; ++s) {
        if (slots.physical[s] != target) continue;
        std::vector<ConstraintTemplate> combined =
            CompileSlotConstraints(q.statement().select(), slots, s, catalog);
        combined.insert(combined.end(), pred.begin(), pred.end());
        if (ConstSubsetUnsat(combined)) {
          ++folded_slots;  // UNSAT for every binding: never blocks.
          continue;
        }
        if (AllConst(combined)) {
          always_invalidate = true;  // SAT for every binding.
          detail = "slot " + std::to_string(s) + " over " + target +
                   ": touched rows stay relevant for every binding";
          break;
        }
        plan.program.sat_checks.push_back(
            CompiledSatCheck{Emit(std::move(combined))});
      }

      // "No touched row may newly enter" (modifications only).
      if (is_mod && !always_invalidate) {
        const sql::UpdateStatement& mod = u.statement().update();
        std::vector<std::string> set_columns;
        std::vector<sql::Operand> set_operands;
        set_columns.reserve(mod.set.size());
        set_operands.reserve(mod.set.size());
        for (const auto& [col, operand] : mod.set) {
          set_columns.push_back(col);
          set_operands.push_back(operand);
        }
        const auto set_values =
            AssignedValues(set_columns, set_operands, Source::kSetValue);
        if (!set_values.has_value()) {
          return Fallback(u, "unmirrorable SET list");
        }
        for (size_t s = 0;
             s < slots.physical.size() && !always_invalidate; ++s) {
          if (slots.physical[s] != target) continue;
          const std::vector<ConstraintTemplate> slot_cs =
              CompileSlotConstraints(q.statement().select(), slots, s,
                                     catalog);
          CompiledEntryCheck check;
          std::vector<ConstraintTemplate> residual;
          bool always_excluded = false;
          for (const ConstraintTemplate& c : slot_cs) {
            const auto it = set_values->find(c.column);
            if (it == set_values->end()) {
              residual.push_back(c);
              continue;
            }
            if (it->second.is_const() && c.value.is_const()) {
              if (TestExcludes(it->second.literal, c.op, c.value.literal)) {
                always_excluded = true;  // Post-state excluded, any binding.
                break;
              }
              continue;  // Passes for every binding.
            }
            check.set_tests.push_back(
                CompiledValueTest{it->second, c.op, c.value});
          }
          if (always_excluded) {
            ++folded_slots;
            continue;
          }
          for (const ConstraintTemplate& c : pred) {
            if (set_values->count(c.column) == 0) residual.push_back(c);
          }
          if (ConstSubsetUnsat(residual)) {
            ++folded_slots;  // Residual UNSAT for every binding.
            continue;
          }
          if (check.set_tests.empty() && AllConst(residual)) {
            always_invalidate = true;  // Rows can enter for every binding.
            detail = "slot " + std::to_string(s) + " over " + target +
                     ": modified rows can enter the result for every binding";
            break;
          }
          check.residual = Emit(std::move(residual));
          plan.program.entry_checks.push_back(std::move(check));
        }
      }
      break;
    }
  }

  if (always_invalidate) {
    // Insertions: view inspection coincides with statement inspection
    // (Section 4.4 / documented MVIS deviation), so nothing below template
    // level can refine. Deletions/modifications: the cached result can
    // still prove the touched rows absent, so the C cell runs the view
    // test.
    plan.program = ParamProgram{};
    if (u.update_class() == UpdateClass::kInsertion) {
      plan.kind = PlanKind::kAlwaysInvalidate;
      plan.rationale = "B=A for every binding: " + detail;
    } else {
      plan.kind = PlanKind::kViewTest;
      plan.rationale = "B=A for every binding: " + detail +
                       "; only view inspection can refine (C cell)";
    }
    return plan;
  }

  plan.kind = PlanKind::kParamProgram;
  size_t tests = 0;
  for (const CompiledInsertCheck& c : plan.program.insert_checks) {
    tests += c.tests.size();
  }
  for (const CompiledSatCheck& c : plan.program.sat_checks) {
    tests += c.constraints.size();
  }
  for (const CompiledEntryCheck& c : plan.program.entry_checks) {
    tests += c.set_tests.size() + c.residual.size();
  }
  plan.rationale = "param-program: " +
                   std::to_string(plan.program.num_checks()) +
                   " slot checks, " + std::to_string(tests) +
                   " compiled tests";
  if (folded_slots > 0) {
    plan.rationale +=
        ", " + std::to_string(folded_slots) + " slots constant-folded";
  }
  if (plan.program.num_checks() == 0) {
    plan.rationale += " (independent for every binding)";
  }
  return plan;
}

StmtDecision EvaluatePairPlan(const PairPlan& plan,
                              const sql::Statement& update,
                              const sql::Statement& query) {
  switch (plan.kind) {
    case PlanKind::kNeverInvalidate:
      return StmtDecision::kIndependent;
    case PlanKind::kAlwaysInvalidate:
    case PlanKind::kViewTest:
      return StmtDecision::kInvalidate;
    case PlanKind::kSolverFallback:
      return StmtDecision::kRunSolver;
    case PlanKind::kParamProgram:
      break;
  }

  for (const CompiledInsertCheck& check : plan.program.insert_checks) {
    bool excluded = false;
    for (const CompiledValueTest& test : check.tests) {
      const sql::Value* v = Fetch(test.lhs, update, query);
      const sql::Value* c = Fetch(test.rhs, update, query);
      if (v == nullptr || c == nullptr) return StmtDecision::kInvalidate;
      if (TestExcludes(*v, test.op, *c)) {
        excluded = true;
        break;
      }
    }
    if (!excluded) return StmtDecision::kInvalidate;
  }

  std::vector<ColumnConstraint> cs;
  for (const CompiledSatCheck& check : plan.program.sat_checks) {
    cs.clear();
    cs.reserve(check.constraints.size());
    for (const CompiledConstraint& c : check.constraints) {
      const sql::Value* v = Fetch(c.value, update, query);
      if (v == nullptr) return StmtDecision::kInvalidate;
      cs.push_back(ColumnConstraint{c.column, c.op, *v});
    }
    if (UnaryConjunctionSatisfiable(cs)) return StmtDecision::kInvalidate;
  }

  for (const CompiledEntryCheck& check : plan.program.entry_checks) {
    bool excluded = false;
    for (const CompiledValueTest& test : check.set_tests) {
      const sql::Value* v = Fetch(test.lhs, update, query);
      const sql::Value* c = Fetch(test.rhs, update, query);
      if (v == nullptr || c == nullptr) return StmtDecision::kInvalidate;
      if (TestExcludes(*v, test.op, *c)) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;
    cs.clear();
    cs.reserve(check.residual.size());
    for (const CompiledConstraint& c : check.residual) {
      const sql::Value* v = Fetch(c.value, update, query);
      if (v == nullptr) return StmtDecision::kInvalidate;
      cs.push_back(ColumnConstraint{c.column, c.op, *v});
    }
    if (UnaryConjunctionSatisfiable(cs)) return StmtDecision::kInvalidate;
  }

  return StmtDecision::kIndependent;
}

InvalidationPlan InvalidationPlan::Compile(
    const templates::TemplateSet& templates, const catalog::Catalog& catalog,
    const Options& options) {
  InvalidationPlan plan;
  plan.num_updates_ = templates.num_updates();
  plan.num_queries_ = templates.num_queries();
  plan.pairs_.reserve(plan.num_updates_ * plan.num_queries_);
  for (const UpdateTemplate& u : templates.updates()) {
    for (const QueryTemplate& q : templates.queries()) {
      plan.pairs_.push_back(CompilePairPlan(u, q, catalog, options));
    }
  }
  return plan;
}

StmtDecision InvalidationPlan::DecideStmt(size_t update_index,
                                          size_t query_index,
                                          const sql::Statement& update,
                                          const sql::Statement& query) const {
  return EvaluatePairPlan(pair(update_index, query_index), update, query);
}

InvalidationPlan::Summary InvalidationPlan::Summarize() const {
  Summary summary;
  for (const PairPlan& pair : pairs_) {
    switch (pair.kind) {
      case PlanKind::kNeverInvalidate:
        ++summary.never_invalidate;
        break;
      case PlanKind::kAlwaysInvalidate:
        ++summary.always_invalidate;
        break;
      case PlanKind::kParamProgram:
        ++summary.param_program;
        break;
      case PlanKind::kSolverFallback:
        ++summary.solver_fallback;
        break;
      case PlanKind::kViewTest:
        ++summary.view_test;
        break;
    }
  }
  return summary;
}

}  // namespace dssp::analysis
