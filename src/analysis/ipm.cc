#include "analysis/ipm.h"

#include <optional>

#include "analysis/query_slots.h"

namespace dssp::analysis {

namespace {

using templates::QueryTemplate;
using templates::UpdateTemplate;

// True if the query has a conjunct comparing an attribute of table `table`
// with a parameter. Such a conjunct lets a statement-inspection strategy
// test inserted values against the query instance's constants, so B < A for
// insertions into `table`.
bool QueryHasParamPredicateOnTable(const QueryTemplate& q,
                                   const std::string& table,
                                   const catalog::Catalog& catalog) {
  const sql::SelectStatement& stmt = q.statement().select();
  const QuerySlots slots(stmt);
  for (const sql::Comparison& cmp : stmt.where) {
    const sql::Operand* col_side = nullptr;
    if (sql::IsColumn(cmp.lhs) && sql::IsParameter(cmp.rhs)) {
      col_side = &cmp.lhs;
    } else if (sql::IsColumn(cmp.rhs) && sql::IsParameter(cmp.lhs)) {
      col_side = &cmp.rhs;
    } else {
      continue;
    }
    const auto resolved =
        slots.Resolve(std::get<sql::ColumnRef>(*col_side), catalog);
    if (!resolved.has_value()) return true;  // Unresolvable: be conservative.
    if (slots.physical[resolved->first] == table) return true;
  }
  return false;
}

}  // namespace

bool InsertionIrrelevantByConstraints(const UpdateTemplate& u,
                                      const QueryTemplate& q,
                                      const catalog::Catalog& catalog) {
  if (u.update_class() != templates::UpdateClass::kInsertion) return false;
  const std::string& target = u.table();
  const catalog::TableSchema* target_schema = catalog.FindTable(target);
  if (target_schema == nullptr) return false;
  const bool has_single_pk = target_schema->primary_key().size() == 1;
  const std::string pk =
      has_single_pk ? target_schema->primary_key()[0] : std::string();

  const sql::SelectStatement& stmt = q.statement().select();
  const QuerySlots slots(stmt);

  size_t target_slots = 0;
  for (size_t s = 0; s < slots.physical.size(); ++s) {
    if (slots.physical[s] != target) continue;
    ++target_slots;

    bool is_protected = false;
    for (const sql::Comparison& cmp : stmt.where) {
      if (cmp.op != sql::CompareOp::kEq) continue;
      // Identify a side that is a key-like column of this slot.
      for (int side = 0; side < 2 && !is_protected; ++side) {
        const sql::Operand& a = side == 0 ? cmp.lhs : cmp.rhs;
        const sql::Operand& b = side == 0 ? cmp.rhs : cmp.lhs;
        if (!sql::IsColumn(a)) continue;
        const auto ra = slots.Resolve(std::get<sql::ColumnRef>(a), catalog);
        if (!ra.has_value() || ra->first != s) continue;

        if (sql::IsParameter(b)) {
          // Primary-key / UNIQUE constraint (Section 4.5, case 1): with the
          // paper's non-empty-result execution assumption, a cached
          // instance pins an existing value of a unique column, so an
          // insertion can never supply that value again.
          if (target_schema->IsUniqueColumn(ra->second)) {
            is_protected = true;
          }
          continue;
        }
        if (sql::IsColumn(b) && has_single_pk && ra->second == pk) {
          const auto rb = slots.Resolve(std::get<sql::ColumnRef>(b), catalog);
          if (!rb.has_value() || rb->first == s) continue;
          // Foreign-key constraint (Section 4.5, case 2): the other side
          // must be a declared FK referencing target.pk; a fresh pk value
          // cannot be referenced by any existing row.
          const catalog::TableSchema* other =
              catalog.FindTable(slots.physical[rb->first]);
          if (other == nullptr) continue;
          for (const catalog::ForeignKey& fk : other->foreign_keys()) {
            if (fk.column == rb->second && fk.ref_table == target &&
                fk.ref_column == pk) {
              is_protected = true;
              break;
            }
          }
        }
      }
      if (is_protected) break;
    }
    if (!is_protected) return false;
  }
  return target_slots > 0;
}

PairCharacterization::ValueClass PairCharacterization::Canonical(
    IpmSymbol symbol) const {
  switch (symbol) {
    case IpmSymbol::kOne:
      return ValueClass::kOne;  // Property 1: blind always invalidates.
    case IpmSymbol::kA:
      return a_is_zero ? ValueClass::kZero : ValueClass::kOne;
    case IpmSymbol::kB:
      if (a_is_zero) return ValueClass::kZero;
      return b_equals_a ? ValueClass::kOne : ValueClass::kB;
    case IpmSymbol::kC:
      if (a_is_zero) return ValueClass::kZero;
      if (c_equals_b) {
        return b_equals_a ? ValueClass::kOne : ValueClass::kB;
      }
      return ValueClass::kC;
  }
  DSSP_UNREACHABLE("bad IpmSymbol");
}

PairCharacterization CharacterizePair(const UpdateTemplate& u,
                                      const QueryTemplate& q,
                                      const catalog::Catalog& catalog,
                                      const IpmOptions& options) {
  PairCharacterization out;

  // Section 5.1.1: a hand-verified determination takes precedence over the
  // automatic rules (the administrator vouches for its soundness).
  const auto override_it =
      options.manual_overrides.find(std::make_pair(u.id(), q.id()));
  if (override_it != options.manual_overrides.end()) {
    out = override_it->second;
    if (out.rationale.empty()) {
      out.rationale = "manual determination (Section 5.1.1)";
    }
    return out;
  }

  if (options.conservative_on_assumption_violations &&
      (!u.assumptions().ok() || !q.assumptions().ok())) {
    out.rationale = "conservative: assumption violations " +
                    u.assumptions().ToString() + q.assumptions().ToString();
    return out;
  }

  // ----- A = 0? (Section 4.2, Lemma 1; Section 4.5 refinements.) -----
  if (templates::IsIgnorable(u, q)) {
    out.a_is_zero = true;
    out.b_equals_a = true;
    out.c_equals_b = true;
    out.rationale = "A=B=C=0: ignorable (G), M(U) disjoint from P(Q) u S(Q)";
    return out;
  }
  if (options.use_integrity_constraints &&
      InsertionIrrelevantByConstraints(u, q, catalog)) {
    out.a_is_zero = true;
    out.b_equals_a = true;
    out.c_equals_b = true;
    out.rationale =
        "A=B=C=0: insertion irrelevant by PK/FK integrity constraints (4.5)";
    return out;
  }

  // A = 1 from here on. (A > 0 implies A = 1: template-level behaviour is
  // uniform across instances, Section 4.2.)
  out.rationale = "A=1 (not ignorable)";

  // ----- B = A? (Section 4.3.) -----
  switch (u.update_class()) {
    case templates::UpdateClass::kInsertion:
      // Parameters help only when inserted values can be tested against a
      // query-instance constant on the inserted table.
      out.b_equals_a =
          !QueryHasParamPredicateOnTable(q, u.table(), catalog);
      if (out.b_equals_a) {
        out.rationale += "; B=A (no parameter predicate on inserted table)";
      } else {
        out.rationale += "; B<A (query has parameter predicate on " +
                         u.table() + ")";
      }
      break;
    case templates::UpdateClass::kDeletion:
    case templates::UpdateClass::kModification:
      out.b_equals_a = templates::Disjoint(u.selection_attributes(),
                                           q.selection_attributes());
      if (out.b_equals_a) {
        out.rationale += "; B=A (S(U) disjoint from S(Q))";
      } else {
        out.rationale += "; B<A (shared selection attributes)";
      }
      break;
  }

  // ----- C = B? (Section 4.4.) -----
  const bool aggregates_block =
      options.conservative_aggregates && q.has_aggregation();
  switch (u.update_class()) {
    case templates::UpdateClass::kInsertion:
      out.c_equals_b =
          !aggregates_block && q.only_equality_joins() && q.no_top_k();
      out.rationale += out.c_equals_b
                           ? "; C=B (insertion, Q in E and N)"
                           : "; C<B possible (insertion vs non-E/N or "
                             "aggregate query)";
      break;
    case templates::UpdateClass::kDeletion:
      out.c_equals_b =
          !aggregates_block && templates::IsResultUnhelpful(u, q);
      out.rationale += out.c_equals_b
                           ? "; C=B (deletion, result-unhelpful H)"
                           : "; C<B possible (deletion, result helpful)";
      break;
    case templates::UpdateClass::kModification:
      // G is handled above (A = 0); the remaining sufficient condition is H.
      out.c_equals_b =
          !aggregates_block && templates::IsResultUnhelpful(u, q);
      out.rationale += out.c_equals_b
                           ? "; C=B (modification, result-unhelpful H)"
                           : "; C<B possible (modification, result helpful)";
      break;
  }
  return out;
}

IpmCharacterization IpmCharacterization::Compute(
    const templates::TemplateSet& templates, const catalog::Catalog& catalog,
    const IpmOptions& options) {
  IpmCharacterization out;
  out.num_updates_ = templates.num_updates();
  out.num_queries_ = templates.num_queries();
  out.pairs_.reserve(out.num_updates_ * out.num_queries_);
  for (const templates::UpdateTemplate& u : templates.updates()) {
    for (const templates::QueryTemplate& q : templates.queries()) {
      out.pairs_.push_back(CharacterizePair(u, q, catalog, options));
    }
  }
  return out;
}

IpmCharacterization::Summary IpmCharacterization::Summarize() const {
  Summary summary;
  for (const PairCharacterization& pair : pairs_) {
    if (pair.a_is_zero) {
      ++summary.all_zero;
    } else if (pair.b_equals_a) {
      if (pair.c_equals_b) ++summary.b_eq_a_c_eq_b;
      else ++summary.b_eq_a_c_lt_b;
    } else {
      if (pair.c_equals_b) ++summary.b_lt_a_c_eq_b;
      else ++summary.b_lt_a_c_lt_b;
    }
  }
  return summary;
}

}  // namespace dssp::analysis
