#ifndef DSSP_ANALYSIS_SATISFIABILITY_H_
#define DSSP_ANALYSIS_SATISFIABILITY_H_

#include <string>
#include <vector>

#include "sql/ast.h"

namespace dssp::analysis {

// A unary constraint `column op value` on one relation's row.
struct ColumnConstraint {
  std::string column;
  sql::CompareOp op;
  sql::Value value;
};

// True if some row can satisfy all constraints simultaneously. Decided
// exactly for conjunctions of unary constraints via interval intersection
// per column; columns constrained with incomparable types are unsatisfiable
// (no value has two types). Sound both ways for unary conjunctions; callers
// that drop non-unary conjuncts may only rely on `false` (UNSAT) answers.
//
// This is the satisfiability core shared by the statement-level independence
// solver (invalidation/independence.cc) and the ahead-of-time plan compiler
// (analysis/plan.cc); both must agree bit-for-bit, so there is exactly one
// implementation.
bool UnaryConjunctionSatisfiable(const std::vector<ColumnConstraint>& cs);

}  // namespace dssp::analysis

#endif  // DSSP_ANALYSIS_SATISFIABILITY_H_
