#ifndef DSSP_ANALYSIS_METHODOLOGY_H_
#define DSSP_ANALYSIS_METHODOLOGY_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/exposure.h"
#include "analysis/ipm.h"
#include "templates/template_set.h"

namespace dssp::analysis {

// Step 1 of the scalability-conscious security design methodology (Section
// 3.1): compulsory encryption of highly sensitive data. The policy names the
// sensitive attributes (e.g., everything in the credit_card relation, per
// the California data privacy law SB 1386); exposure caps are derived per
// template:
//
//  - a query whose *result* preserves a sensitive attribute is capped at
//    stmt (result encrypted);
//  - a query comparing a sensitive attribute against a parameter is capped
//    at template (parameters encrypted);
//  - an update whose parameters carry sensitive values (INSERT values into
//    sensitive columns, SET of a sensitive column, or a predicate comparing
//    a sensitive attribute with a parameter) is capped at template.
struct CompulsoryPolicy {
  templates::AttributeSet sensitive_attributes;

  // Convenience: marks every column of `table` sensitive.
  void MarkTableSensitive(const catalog::Catalog& catalog,
                          const std::string& table);
};

// Applies Step 1: starting from full exposure, lowers each template to its
// policy cap.
ExposureAssignment ComputeInitialExposure(
    const templates::TemplateSet& templates, const catalog::Catalog& catalog,
    const CompulsoryPolicy& policy);

// Step 2b (Section 3.1): greedily reduces exposure levels wherever the IPM
// characterization proves the invalidation probability of every affected
// pair unchanged. The result is independent of iteration order (each
// reduction's validity depends only on the characterization and the other
// templates' levels monotonically).
ExposureAssignment ReduceExposure(const templates::TemplateSet& templates,
                                  const IpmCharacterization& ipm,
                                  const ExposureAssignment& initial);

// True if lowering levels from `from` to `to` keeps every pair's canonical
// invalidation probability unchanged (i.e., `to` is scalability-free
// relative to `from`).
bool SameInvalidationProbabilities(const templates::TemplateSet& templates,
                                   const IpmCharacterization& ipm,
                                   const ExposureAssignment& from,
                                   const ExposureAssignment& to);

// A per-template before/after record (Figure 7 raw data).
struct TemplateExposureChange {
  std::string id;
  bool is_query = false;
  ExposureLevel initial;
  ExposureLevel final;
};

// Full methodology report for an application.
struct SecurityReport {
  ExposureAssignment initial;  // After Step 1.
  ExposureAssignment final;    // After Step 2b.
  std::vector<TemplateExposureChange> changes;  // Queries then updates.

  // Counts used in the paper's Figure 3 security axis: query templates whose
  // results are encrypted (level < view).
  size_t QueriesWithEncryptedResults() const;
  size_t QueriesWithEncryptedResultsInitial() const;

  std::string ToString() const;
};

// Runs Step 1 + Step 2a + Step 2b end to end.
SecurityReport RunMethodology(const templates::TemplateSet& templates,
                              const catalog::Catalog& catalog,
                              const CompulsoryPolicy& policy,
                              const IpmOptions& options = {});

}  // namespace dssp::analysis

#endif  // DSSP_ANALYSIS_METHODOLOGY_H_
