#ifndef DSSP_ANALYSIS_REPORT_EXPORT_H_
#define DSSP_ANALYSIS_REPORT_EXPORT_H_

#include <string>

#include "analysis/ipm.h"
#include "analysis/methodology.h"
#include "templates/template_set.h"

namespace dssp::analysis {

// Exporters turning analysis artifacts into shareable documents: an
// administrator runs the methodology once and circulates the outcome to
// security reviewers (markdown) or feeds it to dashboards (CSV).

// Markdown table of the full IPM characterization: one row per
// update/query pair with the A/B/C relations and the rationale.
std::string IpmToMarkdown(const templates::TemplateSet& templates,
                          const IpmCharacterization& ipm);

// CSV with header `update,query,a_is_zero,b_equals_a,c_equals_b,rationale`.
// Fields are quoted; embedded quotes are doubled.
std::string IpmToCsv(const templates::TemplateSet& templates,
                     const IpmCharacterization& ipm);

// Markdown table of the methodology outcome: template, kind, SQL, initial
// and final exposure, and whether Step 2 reduced it.
std::string SecurityReportToMarkdown(const templates::TemplateSet& templates,
                                     const SecurityReport& report);

// CSV with header `template,kind,initial,final,reduced`.
std::string SecurityReportToCsv(const SecurityReport& report);

}  // namespace dssp::analysis

#endif  // DSSP_ANALYSIS_REPORT_EXPORT_H_
