#ifndef DSSP_ANALYSIS_QUERY_SLOTS_H_
#define DSSP_ANALYSIS_QUERY_SLOTS_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "sql/ast.h"

namespace dssp::analysis {

// Lightweight FROM-slot view of a SELECT for static reasoning: maps slots to
// physical tables and resolves column references without a full binder.
struct QuerySlots {
  std::vector<std::string> physical;   // Physical table per slot.
  std::vector<std::string> effective;  // Alias (or table name) per slot.

  explicit QuerySlots(const sql::SelectStatement& stmt) {
    for (const sql::TableRef& ref : stmt.from) {
      physical.push_back(ref.table);
      effective.push_back(ref.effective_name());
    }
  }

  // Resolves a column reference to (slot, column name); nullopt when
  // ambiguous or unknown (callers must then be conservative).
  std::optional<std::pair<size_t, std::string>> Resolve(
      const sql::ColumnRef& ref, const catalog::Catalog& catalog) const {
    if (!ref.table.empty()) {
      for (size_t s = 0; s < effective.size(); ++s) {
        if (effective[s] == ref.table) return std::make_pair(s, ref.column);
      }
      return std::nullopt;
    }
    std::optional<std::pair<size_t, std::string>> found;
    for (size_t s = 0; s < physical.size(); ++s) {
      const catalog::TableSchema* schema = catalog.FindTable(physical[s]);
      if (schema != nullptr && schema->HasColumn(ref.column)) {
        if (found.has_value()) return std::nullopt;  // Ambiguous.
        found = std::make_pair(s, ref.column);
      }
    }
    return found;
  }
};

}  // namespace dssp::analysis

#endif  // DSSP_ANALYSIS_QUERY_SLOTS_H_
