#ifndef DSSP_ANALYSIS_IPM_H_
#define DSSP_ANALYSIS_IPM_H_

#include <map>
#include <utility>
#include <string>
#include <vector>

#include "analysis/exposure.h"
#include "catalog/schema.h"
#include "templates/template.h"
#include "templates/template_set.h"

namespace dssp::analysis {

// Static characterization of one update/query template pair's Invalidation
// Probability Matrix (Section 4): whether A = 0 (vs A = 1), whether B = A,
// and whether C = B. Every `true` is a *sound* claim (encrypting the
// corresponding information is free w.r.t. scalability); `false` means "not
// proven", the conservative answer.
struct PairCharacterization {
  bool a_is_zero = false;  // A = 0; by the gradient, A = B = C = 0.
  bool b_equals_a = false;
  bool c_equals_b = false;
  std::string rationale;  // Human-readable justification.

  // Collapses an IPM cell to a canonical value class under this
  // characterization, for "does reducing exposure change the invalidation
  // probability" tests. Distinct returns <=> provably distinct or not
  // provably equal probabilities.
  enum class ValueClass { kZero, kOne, kB, kC };
  ValueClass Canonical(IpmSymbol symbol) const;
};

struct IpmOptions {
  // Apply the Section 4.5 refinement using primary-key and foreign-key
  // integrity constraints.
  bool use_integrity_constraints = true;

  // Treat templates with aggregation/GROUP BY conservatively in the C = B
  // rules (the paper's model excludes them; Section 5.1.1 handles them
  // manually). A = 0 (ignorability) and B = A remain applicable: their
  // justifications do not depend on the result's shape.
  bool conservative_aggregates = true;

  // Follow the paper exactly for templates violating the Section 2.1.1
  // assumptions: recommend no encryption for any pair involving them.
  bool conservative_on_assumption_violations = true;

  // Section 5.1.1's manual determinations: per update/query template pair
  // ("U<i>", "Q<j>"), a hand-verified characterization that OVERRIDES the
  // automatic rules. The administrator vouches for its soundness (e.g.,
  // after reasoning about an aggregate query the model cannot handle).
  std::map<std::pair<std::string, std::string>, PairCharacterization>
      manual_overrides;
};

// Characterizes one pair (Step 2a for a single cell).
PairCharacterization CharacterizePair(const templates::UpdateTemplate& u,
                                      const templates::QueryTemplate& q,
                                      const catalog::Catalog& catalog,
                                      const IpmOptions& options = {});

// True if integrity constraints (Section 4.5) make insertion `u` irrelevant
// to `q`: every FROM slot of the inserted table is pinned by a primary-key
// equality with a parameter, or joined through a foreign key that references
// the inserted table's primary key. Exposed for tests and ablations.
bool InsertionIrrelevantByConstraints(const templates::UpdateTemplate& u,
                                      const templates::QueryTemplate& q,
                                      const catalog::Catalog& catalog);

// The full Step 2a result: one characterization per (update, query) pair.
class IpmCharacterization {
 public:
  static IpmCharacterization Compute(const templates::TemplateSet& templates,
                                     const catalog::Catalog& catalog,
                                     const IpmOptions& options = {});

  const PairCharacterization& pair(size_t update_index,
                                   size_t query_index) const {
    DSSP_CHECK(update_index < num_updates_ && query_index < num_queries_);
    return pairs_[update_index * num_queries_ + query_index];
  }

  size_t num_updates() const { return num_updates_; }
  size_t num_queries() const { return num_queries_; }

  // Table 7 row: pair counts by category.
  struct Summary {
    size_t all_zero = 0;            // A = B = C = 0.
    size_t b_lt_a_c_lt_b = 0;       // A = 1, B < A, C < B.
    size_t b_lt_a_c_eq_b = 0;       // A = 1, B < A, C = B.
    size_t b_eq_a_c_lt_b = 0;       // A = 1, B = A, C < B.
    size_t b_eq_a_c_eq_b = 0;       // A = 1, B = A, C = B.

    size_t total() const {
      return all_zero + b_lt_a_c_lt_b + b_lt_a_c_eq_b + b_eq_a_c_lt_b +
             b_eq_a_c_eq_b;
    }
  };
  Summary Summarize() const;

 private:
  size_t num_updates_ = 0;
  size_t num_queries_ = 0;
  std::vector<PairCharacterization> pairs_;
};

}  // namespace dssp::analysis

#endif  // DSSP_ANALYSIS_IPM_H_
