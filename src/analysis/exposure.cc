#include "analysis/exposure.h"

namespace dssp::analysis {

const char* ExposureLevelName(ExposureLevel level) {
  switch (level) {
    case ExposureLevel::kBlind:
      return "blind";
    case ExposureLevel::kTemplate:
      return "template";
    case ExposureLevel::kStmt:
      return "stmt";
    case ExposureLevel::kView:
      return "view";
  }
  return "unknown";
}

const char* IpmSymbolName(IpmSymbol symbol) {
  switch (symbol) {
    case IpmSymbol::kOne:
      return "1";
    case IpmSymbol::kA:
      return "A";
    case IpmSymbol::kB:
      return "B";
    case IpmSymbol::kC:
      return "C";
  }
  return "?";
}

IpmSymbol SymbolFor(ExposureLevel update_level, ExposureLevel query_level) {
  DSSP_CHECK(update_level != ExposureLevel::kView);
  if (update_level == ExposureLevel::kBlind ||
      query_level == ExposureLevel::kBlind) {
    return IpmSymbol::kOne;
  }
  if (update_level == ExposureLevel::kTemplate ||
      query_level == ExposureLevel::kTemplate) {
    return IpmSymbol::kA;
  }
  if (query_level == ExposureLevel::kStmt) {
    return IpmSymbol::kB;
  }
  return IpmSymbol::kC;  // E(U) = stmt, E(Q) = view.
}

Status ExposureAssignment::Validate() const {
  for (size_t i = 0; i < update_levels.size(); ++i) {
    if (update_levels[i] == ExposureLevel::kView) {
      return InvalidArgumentError(
          "update template " + std::to_string(i) +
          " assigned 'view' exposure: updates have no view exposure level");
    }
  }
  return Status::Ok();
}

ExposureAssignment ExposureAssignment::FullExposure(size_t num_queries,
                                                    size_t num_updates) {
  ExposureAssignment a;
  a.query_levels.assign(num_queries, ExposureLevel::kView);
  a.update_levels.assign(num_updates, ExposureLevel::kStmt);
  return a;
}

ExposureAssignment ExposureAssignment::FullEncryption(size_t num_queries,
                                                      size_t num_updates) {
  ExposureAssignment a;
  a.query_levels.assign(num_queries, ExposureLevel::kBlind);
  a.update_levels.assign(num_updates, ExposureLevel::kBlind);
  return a;
}

}  // namespace dssp::analysis
