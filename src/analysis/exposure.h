#ifndef DSSP_ANALYSIS_EXPOSURE_H_
#define DSSP_ANALYSIS_EXPOSURE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace dssp::analysis {

// Exposure levels (Section 2.3, Figure 5). Everything not exposed is
// encrypted. Query templates range over all four; update templates over
// blind/template/stmt only.
//
//   blind    - nothing exposed (statement fully encrypted)
//   template - the template is exposed; parameters encrypted
//   stmt     - template and parameters exposed
//   view     - statement and query result exposed (queries only)
enum class ExposureLevel {
  kBlind = 0,
  kTemplate = 1,
  kStmt = 2,
  kView = 3,
};

const char* ExposureLevelName(ExposureLevel level);

inline int ExposureRank(ExposureLevel level) {
  return static_cast<int>(level);
}

// The invalidation-probability cell of the IPM selected by a pair of
// exposure levels (Figure 6): 1, A, B, or C.
enum class IpmSymbol {
  kOne = 0,  // Either side blind.
  kA = 1,    // Either side template (other side not blind).
  kB = 2,    // Both statements exposed.
  kC = 3,    // Update statement + query view exposed.
};

const char* IpmSymbolName(IpmSymbol symbol);

// Maps (E(U), E(Q)) to the IPM cell per Figure 6.
IpmSymbol SymbolFor(ExposureLevel update_level, ExposureLevel query_level);

// An assignment of exposure levels to every template of an application:
// one entry per query template and per update template, by index.
struct ExposureAssignment {
  std::vector<ExposureLevel> query_levels;
  std::vector<ExposureLevel> update_levels;

  // Full exposure (Step 1 starting point): stmt for updates, view for
  // queries.
  static ExposureAssignment FullExposure(size_t num_queries,
                                         size_t num_updates);

  // Full encryption: blind everywhere.
  static ExposureAssignment FullEncryption(size_t num_queries,
                                           size_t num_updates);

  // Checks the assignment's structural invariants — today, that no update
  // template is assigned kView (updates have no view exposure level;
  // Figure 5). Methodology entry points and ScalableApp::SetExposure call
  // this so a bad assignment fails with a clear error instead of tripping
  // an invariant check deep inside SymbolFor.
  Status Validate() const;

  friend bool operator==(const ExposureAssignment& a,
                         const ExposureAssignment& b) = default;
};

}  // namespace dssp::analysis

#endif  // DSSP_ANALYSIS_EXPOSURE_H_
