#include "analysis/report_export.h"

namespace dssp::analysis {

namespace {

// CSV field quoting: always quoted, embedded quotes doubled.
std::string CsvField(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

// Markdown cell escaping: pipes would break the table.
std::string MdCell(const std::string& value) {
  std::string out;
  for (char c : value) {
    if (c == '|') out += "\\|";
    else out += c;
  }
  return out;
}

std::string PairRelations(const PairCharacterization& pair) {
  if (pair.a_is_zero) return "A=B=C=0";
  std::string out = "A=1, ";
  out += pair.b_equals_a ? "B=A" : "B<A";
  out += ", ";
  out += pair.c_equals_b ? "C=B" : "C<B";
  return out;
}

}  // namespace

std::string IpmToMarkdown(const templates::TemplateSet& templates,
                          const IpmCharacterization& ipm) {
  std::string out =
      "| update | query | relations | rationale |\n"
      "|---|---|---|---|\n";
  for (size_t i = 0; i < ipm.num_updates(); ++i) {
    for (size_t j = 0; j < ipm.num_queries(); ++j) {
      const PairCharacterization& pair = ipm.pair(i, j);
      out += "| " + MdCell(templates.updates()[i].id()) + " | " +
             MdCell(templates.queries()[j].id()) + " | " +
             PairRelations(pair) + " | " + MdCell(pair.rationale) + " |\n";
    }
  }
  return out;
}

std::string IpmToCsv(const templates::TemplateSet& templates,
                     const IpmCharacterization& ipm) {
  std::string out = "update,query,a_is_zero,b_equals_a,c_equals_b,rationale\n";
  for (size_t i = 0; i < ipm.num_updates(); ++i) {
    for (size_t j = 0; j < ipm.num_queries(); ++j) {
      const PairCharacterization& pair = ipm.pair(i, j);
      out += CsvField(templates.updates()[i].id()) + "," +
             CsvField(templates.queries()[j].id()) + "," +
             (pair.a_is_zero ? "1" : "0") + "," +
             (pair.b_equals_a ? "1" : "0") + "," +
             (pair.c_equals_b ? "1" : "0") + "," +
             CsvField(pair.rationale) + "\n";
    }
  }
  return out;
}

std::string SecurityReportToMarkdown(const templates::TemplateSet& templates,
                                     const SecurityReport& report) {
  std::string out =
      "| template | kind | statement | initial | final | reduced |\n"
      "|---|---|---|---|---|---|\n";
  for (const TemplateExposureChange& change : report.changes) {
    std::string sql;
    if (change.is_query) {
      const templates::QueryTemplate* tmpl =
          templates.FindQuery(change.id);
      if (tmpl != nullptr) sql = tmpl->ToSql();
    } else {
      const templates::UpdateTemplate* tmpl =
          templates.FindUpdate(change.id);
      if (tmpl != nullptr) sql = tmpl->ToSql();
    }
    out += "| " + MdCell(change.id) + " | " +
           (change.is_query ? "query" : "update") + " | `" + MdCell(sql) +
           "` | " + ExposureLevelName(change.initial) + " | " +
           ExposureLevelName(change.final) + " | " +
           (change.final != change.initial ? "yes" : "no") + " |\n";
  }
  return out;
}

std::string SecurityReportToCsv(const SecurityReport& report) {
  std::string out = "template,kind,initial,final,reduced\n";
  for (const TemplateExposureChange& change : report.changes) {
    out += CsvField(change.id) + "," +
           (change.is_query ? "query" : "update") + "," +
           ExposureLevelName(change.initial) + std::string(",") +
           ExposureLevelName(change.final) + "," +
           (change.final != change.initial ? "1" : "0") + "\n";
  }
  return out;
}

}  // namespace dssp::analysis
