#ifndef DSSP_ANALYSIS_AUDIT_H_
#define DSSP_ANALYSIS_AUDIT_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/exposure.h"
#include "analysis/ipm.h"
#include "analysis/methodology.h"
#include "analysis/plan.h"
#include "catalog/schema.h"
#include "sql/ast.h"
#include "templates/template_set.h"

namespace dssp::analysis {

// ---------------------------------------------------------------------------
// Static application auditor.
//
// Given a registered application — schema, template set, and (optionally) an
// exposure assignment — the auditor reuses the compiled invalidation plan
// (analysis/plan.h), the predicate-index discriminator compiler
// (dssp/view_index.h), the IPM characterization, and the satisfiability core
// to emit structured diagnostics across three lenses:
//
//   security:    what an adversary observing the DSSP learns beyond what the
//                Section 3.1 methodology requires (equality leakage through
//                deterministic parameter encryption, view-exposed results,
//                over-exposed templates, compulsory-policy violations);
//   performance: template pairs that defeat the compiled fast paths
//                (solver fallbacks, always-invalidate pairs, query templates
//                with no usable discriminator, blind updates);
//   correctness: statements that are wrong relative to the schema (type
//                mismatches, unused parameters, dead templates whose
//                predicates are unsatisfiable).
//
// Everything is static: the audit consults only the templates and the
// catalog, never the database or the cache, so it is safe to run at
// registration time (see DsspNode::SetStrictRegistration) and in CI against
// committed baselines.
//
// Layering note: the auditor's headers live in analysis/, but audit.cc is
// compiled into the dssp_service library — the discriminator check reuses
// service::ViewIndexPlan, and dssp_service already links dssp_analysis, so
// compiling the auditor into dssp_analysis would create a library cycle.
// ---------------------------------------------------------------------------

enum class AuditLens {
  kSecurity = 0,
  kPerformance = 1,
  kCorrectness = 2,
};

const char* AuditLensName(AuditLens lens);

enum class AuditSeverity {
  kInfo = 0,     // Expected consequence of the chosen design; informational.
  kWarning = 1,  // Costs security or performance; worth an explicit decision.
  kError = 2,    // The application is wrong; strict registration refuses it.
};

const char* AuditSeverityName(AuditSeverity severity);

// One diagnostic. `code` is a stable machine-readable identifier (e.g.
// "SEC-EQ-LEAK"); the set of codes is part of the JSON schema and CI
// baselines depend on it. `subject` names what the finding is about: a
// template id ("Q3"), a pair ("U1/Q2"), an attribute ("items.price"), or a
// parameter ("Q3 ?2").
struct AuditFinding {
  AuditLens lens = AuditLens::kCorrectness;
  AuditSeverity severity = AuditSeverity::kInfo;
  std::string code;
  std::string subject;
  std::string message;    // One-line statement of the finding.
  std::string rationale;  // Longer justification; may be empty.
};

struct AuditOptions {
  // Exposure levels per template. Without one, the security lens and the
  // exposure-dependent performance checks are skipped (the correctness and
  // plan-shape checks never need it).
  const ExposureAssignment* exposure = nullptr;

  // Step 1 compulsory-encryption policy. With both `exposure` and `policy`,
  // the auditor reports templates exposed beyond the policy's cap as errors.
  const CompulsoryPolicy* policy = nullptr;

  // Update template ids the operator declares hot. Always-invalidate pairs
  // reachable from a hot update are warnings instead of infos.
  std::vector<std::string> hot_updates;

  // Drop info-severity findings from the report.
  bool include_info = true;

  IpmOptions ipm;
  InvalidationPlan::Options plan;
};

struct AuditReport {
  // Sorted by (lens, code, subject, message); deterministic for baselines.
  std::vector<AuditFinding> findings;
  size_t num_errors = 0;
  size_t num_warnings = 0;
  size_t num_infos = 0;

  bool ok() const { return num_errors == 0; }

  // Human-readable report grouped by lens.
  std::string ToText() const;

  // Machine-readable report. Schema (stable; CI diffs baselines against it):
  //   {"audit_version": 1,
  //    "summary": {"errors": N, "warnings": N, "infos": N},
  //    "findings": [{"lens": ..., "severity": ..., "code": ...,
  //                  "subject": ..., "message": ..., "rationale": ...}]}
  std::string ToJson() const;
};

// Runs every lens over the application. Cost is the plan/IPM compilation
// cost: O(pairs * statement size).
AuditReport AuditApplication(const templates::TemplateSet& templates,
                             const catalog::Catalog& catalog,
                             const AuditOptions& options = {});

// Correctness lens for a single statement (exposed so tests can exercise the
// detectors on hand-built ASTs — e.g. an unused parameter cannot be produced
// through the parser, which assigns indexes by appearance). Appends
// COR-TYPE-MISMATCH / COR-UNUSED-PARAM / COR-DEAD-TEMPLATE /
// COR-CONST-CONJUNCT findings for `statement` to `findings`, with `subject`
// naming the template.
void AuditStatementCorrectness(const sql::Statement& statement,
                               const catalog::Catalog& catalog,
                               std::string_view subject,
                               std::vector<AuditFinding>* findings);

}  // namespace dssp::analysis

#endif  // DSSP_ANALYSIS_AUDIT_H_
