#include "analysis/satisfiability.h"

#include <map>
#include <optional>

namespace dssp::analysis {

namespace {

// A closed/open interval over the Value total order, per column.
class Interval {
 public:
  // Narrows by `op value`; marks empty on contradiction.
  void Constrain(sql::CompareOp op, const sql::Value& value) {
    if (empty_) return;
    if (value.is_null()) {
      // No value compares true against NULL.
      empty_ = true;
      return;
    }
    // Type consistency: a column cannot hold a value comparable to both a
    // string and a number, so mixed constraint types are unsatisfiable.
    if (type_.has_value()) {
      const bool both_numeric = *type_ && value.is_numeric();
      const bool both_string = !*type_ && !value.is_numeric();
      if (!both_numeric && !both_string) {
        empty_ = true;
        return;
      }
    } else {
      type_ = value.is_numeric();
    }
    switch (op) {
      case sql::CompareOp::kEq:
        NarrowLow(value, /*open=*/false);
        NarrowHigh(value, /*open=*/false);
        break;
      case sql::CompareOp::kGt:
        NarrowLow(value, /*open=*/true);
        break;
      case sql::CompareOp::kGe:
        NarrowLow(value, /*open=*/false);
        break;
      case sql::CompareOp::kLt:
        NarrowHigh(value, /*open=*/true);
        break;
      case sql::CompareOp::kLe:
        NarrowHigh(value, /*open=*/false);
        break;
    }
    CheckEmpty();
  }

  bool empty() const { return empty_; }

 private:
  void NarrowLow(const sql::Value& value, bool open) {
    if (!lo_.has_value() || value.Compare(*lo_) > 0 ||
        (value.Compare(*lo_) == 0 && open)) {
      lo_ = value;
      lo_open_ = open;
    }
  }
  void NarrowHigh(const sql::Value& value, bool open) {
    if (!hi_.has_value() || value.Compare(*hi_) < 0 ||
        (value.Compare(*hi_) == 0 && open)) {
      hi_ = value;
      hi_open_ = open;
    }
  }
  void CheckEmpty() {
    if (!lo_.has_value() || !hi_.has_value()) return;
    const int c = lo_->Compare(*hi_);
    if (c > 0 || (c == 0 && (lo_open_ || hi_open_))) {
      // Strictly-between emptiness (lo < x < hi with no value between) is
      // undecidable for doubles/strings in general; only int64 gaps could be
      // closed further. We keep the sound over-approximation "satisfiable".
      empty_ = true;
    }
  }

  std::optional<sql::Value> lo_;
  std::optional<sql::Value> hi_;
  bool lo_open_ = false;
  bool hi_open_ = false;
  std::optional<bool> type_;  // true = numeric, false = string.
  bool empty_ = false;
};

}  // namespace

bool UnaryConjunctionSatisfiable(const std::vector<ColumnConstraint>& cs) {
  std::map<std::string, Interval> intervals;
  for (const ColumnConstraint& c : cs) {
    intervals[c.column].Constrain(c.op, c.value);
    if (intervals[c.column].empty()) return false;
  }
  return true;
}

}  // namespace dssp::analysis
