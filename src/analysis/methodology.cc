#include "analysis/methodology.h"

#include <algorithm>
#include <cstdio>

#include "analysis/query_slots.h"

namespace dssp::analysis {

namespace {

ExposureLevel Min(ExposureLevel a, ExposureLevel b) {
  return ExposureRank(a) <= ExposureRank(b) ? a : b;
}

bool IsSensitive(const templates::AttributeSet& sensitive,
                 const std::string& table, const std::string& column) {
  return sensitive.contains(templates::AttributeId{table, column});
}

// True if a conjunct compares a sensitive attribute against a parameter,
// i.e., statement parameters would reveal sensitive values.
bool WhereHasSensitiveParam(const std::vector<sql::Comparison>& where,
                            const QuerySlots& slots,
                            const catalog::Catalog& catalog,
                            const templates::AttributeSet& sensitive) {
  for (const sql::Comparison& cmp : where) {
    const sql::Operand* col_side = nullptr;
    if (sql::IsColumn(cmp.lhs) && sql::IsParameter(cmp.rhs)) {
      col_side = &cmp.lhs;
    } else if (sql::IsColumn(cmp.rhs) && sql::IsParameter(cmp.lhs)) {
      col_side = &cmp.rhs;
    } else {
      continue;
    }
    const auto resolved =
        slots.Resolve(std::get<sql::ColumnRef>(*col_side), catalog);
    if (!resolved.has_value()) return true;  // Conservative.
    if (IsSensitive(sensitive, slots.physical[resolved->first],
                    resolved->second)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void CompulsoryPolicy::MarkTableSensitive(const catalog::Catalog& catalog,
                                          const std::string& table) {
  const catalog::TableSchema* schema = catalog.FindTable(table);
  DSSP_CHECK(schema != nullptr);
  for (const catalog::Column& col : schema->columns()) {
    sensitive_attributes.insert(templates::AttributeId{table, col.name});
  }
}

ExposureAssignment ComputeInitialExposure(
    const templates::TemplateSet& templates, const catalog::Catalog& catalog,
    const CompulsoryPolicy& policy) {
  ExposureAssignment out = ExposureAssignment::FullExposure(
      templates.num_queries(), templates.num_updates());
  const templates::AttributeSet& sensitive = policy.sensitive_attributes;

  for (size_t j = 0; j < templates.num_queries(); ++j) {
    const templates::QueryTemplate& q = templates.queries()[j];
    ExposureLevel level = ExposureLevel::kView;
    // Sensitive attribute in the result: encrypt results.
    for (const templates::AttributeId& attr : q.preserved_attributes()) {
      if (sensitive.contains(attr)) {
        level = Min(level, ExposureLevel::kStmt);
        break;
      }
    }
    // Sensitive value as a parameter: encrypt parameters too.
    const sql::SelectStatement& stmt = q.statement().select();
    const QuerySlots slots(stmt);
    if (WhereHasSensitiveParam(stmt.where, slots, catalog, sensitive)) {
      level = Min(level, ExposureLevel::kTemplate);
    }
    out.query_levels[j] = level;
  }

  for (size_t i = 0; i < templates.num_updates(); ++i) {
    const templates::UpdateTemplate& u = templates.updates()[i];
    ExposureLevel level = ExposureLevel::kStmt;
    const catalog::TableSchema* schema = catalog.FindTable(u.table());
    DSSP_CHECK(schema != nullptr);
    bool sensitive_params = false;
    switch (u.update_class()) {
      case templates::UpdateClass::kInsertion: {
        const sql::InsertStatement& insert = u.statement().insert();
        for (size_t k = 0; k < insert.columns.size(); ++k) {
          if (sql::IsParameter(insert.values[k]) &&
              IsSensitive(sensitive, u.table(), insert.columns[k])) {
            sensitive_params = true;
            break;
          }
        }
        break;
      }
      case templates::UpdateClass::kDeletion: {
        const QuerySlots slots = [&] {
          sql::SelectStatement fake;
          fake.from.push_back(sql::TableRef{u.table(), ""});
          return QuerySlots(fake);
        }();
        sensitive_params = WhereHasSensitiveParam(u.statement().del().where,
                                                  slots, catalog, sensitive);
        break;
      }
      case templates::UpdateClass::kModification: {
        const sql::UpdateStatement& update = u.statement().update();
        for (const auto& [col, value] : update.set) {
          if (sql::IsParameter(value) &&
              IsSensitive(sensitive, u.table(), col)) {
            sensitive_params = true;
            break;
          }
        }
        if (!sensitive_params) {
          const QuerySlots slots = [&] {
            sql::SelectStatement fake;
            fake.from.push_back(sql::TableRef{u.table(), ""});
            return QuerySlots(fake);
          }();
          sensitive_params =
              WhereHasSensitiveParam(update.where, slots, catalog, sensitive);
        }
        break;
      }
    }
    if (sensitive_params) level = Min(level, ExposureLevel::kTemplate);
    out.update_levels[i] = level;
  }
  return out;
}

bool SameInvalidationProbabilities(const templates::TemplateSet& templates,
                                   const IpmCharacterization& ipm,
                                   const ExposureAssignment& from,
                                   const ExposureAssignment& to) {
  DSSP_CHECK_OK(from.Validate());
  DSSP_CHECK_OK(to.Validate());
  DSSP_CHECK(from.query_levels.size() == templates.num_queries());
  DSSP_CHECK(to.query_levels.size() == templates.num_queries());
  DSSP_CHECK(from.update_levels.size() == templates.num_updates());
  DSSP_CHECK(to.update_levels.size() == templates.num_updates());
  for (size_t i = 0; i < templates.num_updates(); ++i) {
    for (size_t j = 0; j < templates.num_queries(); ++j) {
      const PairCharacterization& pair = ipm.pair(i, j);
      const auto before = pair.Canonical(
          SymbolFor(from.update_levels[i], from.query_levels[j]));
      const auto after = pair.Canonical(
          SymbolFor(to.update_levels[i], to.query_levels[j]));
      if (before != after) return false;
    }
  }
  return true;
}

ExposureAssignment ReduceExposure(const templates::TemplateSet& templates,
                                  const IpmCharacterization& ipm,
                                  const ExposureAssignment& initial) {
  DSSP_CHECK_OK(initial.Validate());
  ExposureAssignment current = initial;

  // Checks whether lowering one template by one step leaves every affected
  // pair's canonical probability unchanged.
  const auto query_reducible = [&](size_t j) {
    const ExposureLevel lower = static_cast<ExposureLevel>(
        ExposureRank(current.query_levels[j]) - 1);
    for (size_t i = 0; i < templates.num_updates(); ++i) {
      const PairCharacterization& pair = ipm.pair(i, j);
      const auto before = pair.Canonical(
          SymbolFor(current.update_levels[i], current.query_levels[j]));
      const auto after =
          pair.Canonical(SymbolFor(current.update_levels[i], lower));
      if (before != after) return false;
    }
    return true;
  };
  const auto update_reducible = [&](size_t i) {
    const ExposureLevel lower = static_cast<ExposureLevel>(
        ExposureRank(current.update_levels[i]) - 1);
    for (size_t j = 0; j < templates.num_queries(); ++j) {
      const PairCharacterization& pair = ipm.pair(i, j);
      const auto before = pair.Canonical(
          SymbolFor(current.update_levels[i], current.query_levels[j]));
      const auto after =
          pair.Canonical(SymbolFor(lower, current.query_levels[j]));
      if (before != after) return false;
    }
    return true;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t j = 0; j < templates.num_queries(); ++j) {
      while (current.query_levels[j] != ExposureLevel::kBlind &&
             query_reducible(j)) {
        current.query_levels[j] = static_cast<ExposureLevel>(
            ExposureRank(current.query_levels[j]) - 1);
        changed = true;
      }
    }
    for (size_t i = 0; i < templates.num_updates(); ++i) {
      while (current.update_levels[i] != ExposureLevel::kBlind &&
             update_reducible(i)) {
        current.update_levels[i] = static_cast<ExposureLevel>(
            ExposureRank(current.update_levels[i]) - 1);
        changed = true;
      }
    }
  }
  return current;
}

size_t SecurityReport::QueriesWithEncryptedResults() const {
  size_t count = 0;
  for (ExposureLevel level : final.query_levels) {
    if (level != ExposureLevel::kView) ++count;
  }
  return count;
}

size_t SecurityReport::QueriesWithEncryptedResultsInitial() const {
  size_t count = 0;
  for (ExposureLevel level : initial.query_levels) {
    if (level != ExposureLevel::kView) ++count;
  }
  return count;
}

std::string SecurityReport::ToString() const {
  std::string out;
  out += "template   kind    initial    final\n";
  for (const TemplateExposureChange& change : changes) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-10s %-7s %-10s %-10s%s\n",
                  change.id.c_str(), change.is_query ? "query" : "update",
                  ExposureLevelName(change.initial),
                  ExposureLevelName(change.final),
                  change.final != change.initial ? "  (reduced)" : "");
    out += line;
  }
  return out;
}

SecurityReport RunMethodology(const templates::TemplateSet& templates,
                              const catalog::Catalog& catalog,
                              const CompulsoryPolicy& policy,
                              const IpmOptions& options) {
  SecurityReport report;
  report.initial = ComputeInitialExposure(templates, catalog, policy);
  const IpmCharacterization ipm =
      IpmCharacterization::Compute(templates, catalog, options);
  report.final = ReduceExposure(templates, ipm, report.initial);
  for (size_t j = 0; j < templates.num_queries(); ++j) {
    report.changes.push_back(TemplateExposureChange{
        templates.queries()[j].id(), true, report.initial.query_levels[j],
        report.final.query_levels[j]});
  }
  for (size_t i = 0; i < templates.num_updates(); ++i) {
    report.changes.push_back(TemplateExposureChange{
        templates.updates()[i].id(), false, report.initial.update_levels[i],
        report.final.update_levels[i]});
  }
  return report;
}

}  // namespace dssp::analysis
