#include "analysis/audit.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/satisfiability.h"
#include "dssp/view_index.h"
#include "engine/program.h"
#include "sql/value.h"
#include "templates/template.h"

namespace dssp::analysis {
namespace {

using templates::AttributeId;

// ---------------------------------------------------------------------------
// Column resolution (the auditor's own minimal binder: templates have
// already passed QueryTemplate/UpdateTemplate::Create, so resolution
// failures on hand-built test ASTs simply skip the check).
// ---------------------------------------------------------------------------

struct ResolvedColumn {
  const catalog::TableSchema* table = nullptr;
  const catalog::Column* column = nullptr;
  size_t slot = 0;

  explicit operator bool() const { return column != nullptr; }
};

class SlotResolver {
 public:
  SlotResolver(const sql::SelectStatement& stmt,
               const catalog::Catalog& catalog) {
    for (const sql::TableRef& ref : stmt.from) {
      slots_.push_back({ref.effective_name(), catalog.FindTable(ref.table)});
    }
  }

  SlotResolver(const std::string& table, const catalog::Catalog& catalog) {
    slots_.push_back({table, catalog.FindTable(table)});
  }

  ResolvedColumn Resolve(const sql::ColumnRef& ref) const {
    ResolvedColumn out;
    for (size_t i = 0; i < slots_.size(); ++i) {
      const Slot& slot = slots_[i];
      if (slot.schema == nullptr) continue;
      if (!ref.table.empty() && ref.table != slot.effective) continue;
      const std::optional<size_t> index = slot.schema->ColumnIndex(ref.column);
      if (!index.has_value()) continue;
      if (out) return ResolvedColumn{};  // Ambiguous unqualified reference.
      out.table = slot.schema;
      out.column = &slot.schema->columns()[*index];
      out.slot = i;
    }
    return out;
  }

  size_t num_slots() const { return slots_.size(); }

 private:
  struct Slot {
    std::string effective;
    const catalog::TableSchema* schema;
  };
  std::vector<Slot> slots_;
};

// ---------------------------------------------------------------------------
// Type-class comparability (mirrors sql::Value::Compare's contract: numeric
// compares with numeric, string with string, NULL with everything).
// ---------------------------------------------------------------------------

bool LiteralsComparable(const sql::Value& a, const sql::Value& b) {
  if (a.is_null() || b.is_null()) return true;
  return a.is_numeric() == b.is_numeric();
}

bool LiteralComparableWithColumn(const sql::Value& v,
                                 catalog::ColumnType type) {
  if (v.is_null()) return true;
  return v.is_numeric() ? type != catalog::ColumnType::kString
                        : type == catalog::ColumnType::kString;
}

bool ColumnsComparable(catalog::ColumnType a, catalog::ColumnType b) {
  return (a == catalog::ColumnType::kString) ==
         (b == catalog::ColumnType::kString);
}

bool EvalCompare(int cmp, sql::CompareOp op) {
  switch (op) {
    case sql::CompareOp::kEq:
      return cmp == 0;
    case sql::CompareOp::kLt:
      return cmp < 0;
    case sql::CompareOp::kLe:
      return cmp <= 0;
    case sql::CompareOp::kGt:
      return cmp > 0;
    case sql::CompareOp::kGe:
      return cmp >= 0;
  }
  DSSP_UNREACHABLE("unhandled enum value");
}

std::string ComparisonToString(const sql::Comparison& c) {
  return sql::OperandToString(c.lhs) + " " + sql::CompareOpSymbol(c.op) + " " +
         sql::OperandToString(c.rhs);
}

void Add(std::vector<AuditFinding>* findings, AuditLens lens,
         AuditSeverity severity, std::string code, std::string subject,
         std::string message, std::string rationale = "") {
  findings->push_back(AuditFinding{lens, severity, std::move(code),
                                   std::move(subject), std::move(message),
                                   std::move(rationale)});
}

// ---------------------------------------------------------------------------
// Correctness lens helpers.
// ---------------------------------------------------------------------------

void CollectParamIndexes(const sql::Operand& op, std::set<int>* used) {
  if (const auto* param = std::get_if<sql::Parameter>(&op)) {
    used->insert(param->index);
  }
}

// Checks one WHERE conjunction: type mismatches, constant conjuncts, and the
// per-slot unary constraint sets fed to the satisfiability core.
void CheckWhere(const std::vector<sql::Comparison>& where,
                const SlotResolver& resolver, std::string_view subject,
                std::set<int>* params_used,
                std::vector<std::vector<ColumnConstraint>>* slot_constraints,
                std::vector<AuditFinding>* findings) {
  for (const sql::Comparison& c : where) {
    CollectParamIndexes(c.lhs, params_used);
    CollectParamIndexes(c.rhs, params_used);

    if (sql::IsLiteral(c.lhs) && sql::IsLiteral(c.rhs)) {
      const auto& lhs = std::get<sql::Value>(c.lhs);
      const auto& rhs = std::get<sql::Value>(c.rhs);
      if (!LiteralsComparable(lhs, rhs)) {
        Add(findings, AuditLens::kCorrectness, AuditSeverity::kError,
            "COR-TYPE-MISMATCH", std::string(subject),
            "conjunct `" + ComparisonToString(c) +
                "` compares incomparable literal types (" +
                sql::ValueTypeName(lhs.type()) + " vs " +
                sql::ValueTypeName(rhs.type()) + ")");
        continue;
      }
      if (EvalCompare(lhs.Compare(rhs), c.op)) {
        Add(findings, AuditLens::kCorrectness, AuditSeverity::kInfo,
            "COR-CONST-CONJUNCT", std::string(subject),
            "conjunct `" + ComparisonToString(c) +
                "` is always true and can be removed");
      } else {
        Add(findings, AuditLens::kCorrectness, AuditSeverity::kError,
            "COR-DEAD-TEMPLATE", std::string(subject),
            "conjunct `" + ComparisonToString(c) +
                "` is always false: the template can never produce or "
                "affect a row");
      }
      continue;
    }

    // Normalize a column to the left for the mixed cases.
    const sql::Operand* col_side = nullptr;
    const sql::Operand* other = nullptr;
    sql::CompareOp op = c.op;
    if (sql::IsColumn(c.lhs)) {
      col_side = &c.lhs;
      other = &c.rhs;
    } else if (sql::IsColumn(c.rhs)) {
      col_side = &c.rhs;
      other = &c.lhs;
      op = sql::ReverseCompareOp(op);
    } else {
      continue;  // Parameter-only conjunct; nothing static to check.
    }

    const auto& ref = std::get<sql::ColumnRef>(*col_side);
    const ResolvedColumn col = resolver.Resolve(ref);
    if (!col) continue;  // Create() already rejects real unresolvables.

    if (sql::IsColumn(*other)) {
      const ResolvedColumn rhs_col =
          resolver.Resolve(std::get<sql::ColumnRef>(*other));
      if (rhs_col && !ColumnsComparable(col.column->type,
                                        rhs_col.column->type)) {
        Add(findings, AuditLens::kCorrectness, AuditSeverity::kError,
            "COR-TYPE-MISMATCH", std::string(subject),
            "conjunct `" + ComparisonToString(c) + "` joins " +
                catalog::ColumnTypeName(col.column->type) + " column " +
                ref.ToString() + " with " +
                catalog::ColumnTypeName(rhs_col.column->type) + " column " +
                sql::OperandToString(*other));
      }
    } else if (sql::IsLiteral(*other)) {
      const auto& literal = std::get<sql::Value>(*other);
      if (!LiteralComparableWithColumn(literal, col.column->type)) {
        Add(findings, AuditLens::kCorrectness, AuditSeverity::kError,
            "COR-TYPE-MISMATCH", std::string(subject),
            "conjunct `" + ComparisonToString(c) + "` compares " +
                catalog::ColumnTypeName(col.column->type) + " column " +
                ref.ToString() + " with a " +
                sql::ValueTypeName(literal.type()) + " literal");
        continue;
      }
      if (!literal.is_null()) {
        (*slot_constraints)[col.slot].push_back(
            ColumnConstraint{col.column->name, op, literal});
      }
    }
  }
}

void CheckSlotSatisfiability(
    const std::vector<std::vector<ColumnConstraint>>& slot_constraints,
    std::string_view subject, std::string_view what,
    std::vector<AuditFinding>* findings) {
  for (const std::vector<ColumnConstraint>& cs : slot_constraints) {
    if (cs.size() < 2 || UnaryConjunctionSatisfiable(cs)) continue;
    std::string detail;
    for (const ColumnConstraint& c : cs) {
      if (!detail.empty()) detail += " AND ";
      detail += c.column;
      detail += ' ';
      detail += sql::CompareOpSymbol(c.op);
      detail += ' ';
      detail += c.value.ToSqlLiteral();
    }
    Add(findings, AuditLens::kCorrectness, AuditSeverity::kError,
        "COR-DEAD-TEMPLATE", std::string(subject),
        std::string(what) + " is unsatisfiable: no row meets `" + detail + "`",
        "interval intersection over the template's literal constraints is "
        "empty for every parameter binding (satisfiability core)");
  }
}

}  // namespace

const char* AuditLensName(AuditLens lens) {
  switch (lens) {
    case AuditLens::kSecurity:
      return "security";
    case AuditLens::kPerformance:
      return "performance";
    case AuditLens::kCorrectness:
      return "correctness";
  }
  DSSP_UNREACHABLE("unhandled enum value");
}

const char* AuditSeverityName(AuditSeverity severity) {
  switch (severity) {
    case AuditSeverity::kInfo:
      return "info";
    case AuditSeverity::kWarning:
      return "warning";
    case AuditSeverity::kError:
      return "error";
  }
  DSSP_UNREACHABLE("unhandled enum value");
}

void AuditStatementCorrectness(const sql::Statement& statement,
                               const catalog::Catalog& catalog,
                               std::string_view subject,
                               std::vector<AuditFinding>* findings) {
  std::set<int> params_used;

  switch (statement.kind()) {
    case sql::StatementKind::kSelect: {
      const sql::SelectStatement& select = statement.select();
      SlotResolver resolver(select, catalog);
      std::vector<std::vector<ColumnConstraint>> constraints(
          resolver.num_slots());
      CheckWhere(select.where, resolver, subject, &params_used, &constraints,
                 findings);
      if (select.limit.has_value()) {
        CollectParamIndexes(*select.limit, &params_used);
      }
      CheckSlotSatisfiability(constraints, subject, "the WHERE clause",
                              findings);
      break;
    }
    case sql::StatementKind::kInsert: {
      const sql::InsertStatement& insert = statement.insert();
      const catalog::TableSchema* table = catalog.FindTable(insert.table);
      for (const sql::Operand& value : insert.values) {
        CollectParamIndexes(value, &params_used);
      }
      if (table != nullptr) {
        const size_t expected = insert.columns.empty()
                                    ? table->num_columns()
                                    : insert.columns.size();
        if (insert.values.size() != expected) {
          Add(findings, AuditLens::kCorrectness, AuditSeverity::kError,
              "COR-TYPE-MISMATCH", std::string(subject),
              "INSERT supplies " + std::to_string(insert.values.size()) +
                  " values for " + std::to_string(expected) + " columns of " +
                  insert.table);
          break;
        }
        for (size_t i = 0; i < insert.values.size(); ++i) {
          if (!sql::IsLiteral(insert.values[i])) continue;
          const auto& literal = std::get<sql::Value>(insert.values[i]);
          const std::string& name = insert.columns.empty()
                                        ? table->columns()[i].name
                                        : insert.columns[i];
          const std::optional<size_t> index = table->ColumnIndex(name);
          if (!index.has_value()) continue;
          const catalog::Column& column = table->columns()[*index];
          if (!catalog::ValueFitsColumn(literal.type(), column.type)) {
            Add(findings, AuditLens::kCorrectness, AuditSeverity::kError,
                "COR-TYPE-MISMATCH", std::string(subject),
                "INSERT stores a " +
                    std::string(sql::ValueTypeName(literal.type())) +
                    " literal " + literal.ToSqlLiteral() + " into " +
                    std::string(catalog::ColumnTypeName(column.type)) +
                    " column " + insert.table + "." + name);
          }
        }
      }
      break;
    }
    case sql::StatementKind::kDelete: {
      const sql::DeleteStatement& del = statement.del();
      SlotResolver resolver(del.table, catalog);
      std::vector<std::vector<ColumnConstraint>> constraints(1);
      CheckWhere(del.where, resolver, subject, &params_used, &constraints,
                 findings);
      CheckSlotSatisfiability(constraints, subject, "the WHERE clause",
                              findings);
      break;
    }
    case sql::StatementKind::kUpdate: {
      const sql::UpdateStatement& update = statement.update();
      const catalog::TableSchema* table = catalog.FindTable(update.table);
      SlotResolver resolver(update.table, catalog);
      std::vector<std::vector<ColumnConstraint>> constraints(1);
      CheckWhere(update.where, resolver, subject, &params_used, &constraints,
                 findings);
      CheckSlotSatisfiability(constraints, subject, "the WHERE clause",
                              findings);
      for (const auto& [name, value] : update.set) {
        CollectParamIndexes(value, &params_used);
        if (table == nullptr || !sql::IsLiteral(value)) continue;
        const std::optional<size_t> index = table->ColumnIndex(name);
        if (!index.has_value()) continue;
        const auto& literal = std::get<sql::Value>(value);
        const catalog::Column& column = table->columns()[*index];
        if (!catalog::ValueFitsColumn(literal.type(), column.type)) {
          Add(findings, AuditLens::kCorrectness, AuditSeverity::kError,
              "COR-TYPE-MISMATCH", std::string(subject),
              "SET assigns a " +
                  std::string(sql::ValueTypeName(literal.type())) +
                  " literal " + literal.ToSqlLiteral() + " to " +
                  std::string(catalog::ColumnTypeName(column.type)) +
                  " column " + update.table + "." + name);
        }
      }
      break;
    }
  }

  for (int i = 0; i < statement.num_params; ++i) {
    if (params_used.contains(i)) continue;
    Add(findings, AuditLens::kCorrectness, AuditSeverity::kWarning,
        "COR-UNUSED-PARAM", std::string(subject) + " ?" + std::to_string(i),
        "parameter ?" + std::to_string(i) +
            " is declared but never used by the statement",
        "every bound value widens the cache-key space (distinct bindings "
        "never share a cached view) without affecting the result");
  }
}

namespace {

// ---------------------------------------------------------------------------
// Security lens helpers.
// ---------------------------------------------------------------------------

// Attributes compared against (or assigned from) parameters, i.e. the
// columns whose values travel in the statement's parameter slots.
std::vector<AttributeId> ParamBoundAttributes(const sql::Statement& statement,
                                              const catalog::Catalog& catalog) {
  std::vector<AttributeId> out;
  auto add_where = [&](const std::vector<sql::Comparison>& where,
                       const SlotResolver& resolver) {
    for (const sql::Comparison& c : where) {
      const sql::Operand* col_side = nullptr;
      if (sql::IsColumn(c.lhs) && sql::IsParameter(c.rhs)) {
        col_side = &c.lhs;
      } else if (sql::IsColumn(c.rhs) && sql::IsParameter(c.lhs)) {
        col_side = &c.rhs;
      } else {
        continue;
      }
      const ResolvedColumn col =
          resolver.Resolve(std::get<sql::ColumnRef>(*col_side));
      if (col) out.push_back({col.table->name(), col.column->name});
    }
  };

  switch (statement.kind()) {
    case sql::StatementKind::kSelect: {
      add_where(statement.select().where,
                SlotResolver(statement.select(), catalog));
      break;
    }
    case sql::StatementKind::kInsert: {
      const sql::InsertStatement& insert = statement.insert();
      const catalog::TableSchema* table = catalog.FindTable(insert.table);
      if (table == nullptr) break;
      for (size_t i = 0; i < insert.values.size(); ++i) {
        if (!sql::IsParameter(insert.values[i])) continue;
        std::string name;
        if (insert.columns.empty()) {
          if (i < table->num_columns()) name = table->columns()[i].name;
        } else if (i < insert.columns.size()) {
          name = insert.columns[i];
        }
        if (!name.empty() && table->HasColumn(name)) {
          out.push_back({table->name(), std::move(name)});
        }
      }
      break;
    }
    case sql::StatementKind::kDelete: {
      add_where(statement.del().where,
                SlotResolver(statement.del().table, catalog));
      break;
    }
    case sql::StatementKind::kUpdate: {
      const sql::UpdateStatement& update = statement.update();
      add_where(update.where, SlotResolver(update.table, catalog));
      const catalog::TableSchema* table = catalog.FindTable(update.table);
      if (table == nullptr) break;
      for (const auto& [name, value] : update.set) {
        if (sql::IsParameter(value) && table->HasColumn(name)) {
          out.push_back({table->name(), name});
        }
      }
      break;
    }
  }
  return out;
}

std::string JoinIds(const std::set<std::string>& ids) {
  std::string out;
  for (const std::string& id : ids) {
    if (!out.empty()) out += ", ";
    out += id;
  }
  return out;
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

AuditReport AuditApplication(const templates::TemplateSet& templates,
                             const catalog::Catalog& catalog,
                             const AuditOptions& options) {
  AuditReport report;
  std::vector<AuditFinding>* f = &report.findings;

  // --- Correctness lens -----------------------------------------------------
  for (const templates::QueryTemplate& q : templates.queries()) {
    AuditStatementCorrectness(q.statement(), catalog, q.id(), f);
  }
  for (const templates::UpdateTemplate& u : templates.updates()) {
    AuditStatementCorrectness(u.statement(), catalog, u.id(), f);
  }

  // --- Performance lens -----------------------------------------------------
  const InvalidationPlan plan =
      InvalidationPlan::Compile(templates, catalog, options.plan);
  const service::ViewIndexPlan view_index =
      service::ViewIndexPlan::Compile(templates, catalog, plan);
  const std::set<std::string> hot(options.hot_updates.begin(),
                                  options.hot_updates.end());

  for (size_t ui = 0; ui < templates.num_updates(); ++ui) {
    const templates::UpdateTemplate& u = templates.updates()[ui];
    std::set<std::string> always;
    std::string always_rationale;
    for (size_t qi = 0; qi < templates.num_queries(); ++qi) {
      const templates::QueryTemplate& q = templates.queries()[qi];
      const PairPlan& pair = plan.pair(ui, qi);
      switch (pair.kind) {
        case PlanKind::kSolverFallback:
          Add(f, AuditLens::kPerformance, AuditSeverity::kWarning,
              "PERF-SOLVER-FALLBACK", u.id() + "/" + q.id(),
              "no compiled decision for this pair: the general "
              "satisfiability solver runs per cached entry on the "
              "invalidation hot path",
              pair.rationale);
          break;
        case PlanKind::kAlwaysInvalidate:
          always.insert(q.id());
          if (!always_rationale.empty()) always_rationale += "; ";
          always_rationale += q.id() + ": " + pair.rationale;
          break;
        default:
          break;
      }
    }
    if (!always.empty()) {
      Add(f, AuditLens::kPerformance,
          hot.contains(u.id()) ? AuditSeverity::kWarning
                               : AuditSeverity::kInfo,
          "PERF-ALWAYS-INVALIDATE", u.id(),
          "every " + u.id() + " notice drops every cached view of " +
              JoinIds(always) + " (" + std::to_string(always.size()) + " of " +
              std::to_string(templates.num_queries()) + " query templates)" +
              (hot.contains(u.id()) ? "; this update template is declared hot"
                                    : ""),
          always_rationale);
    }
  }

  for (size_t qi = 0; qi < templates.num_queries(); ++qi) {
    const templates::QueryTemplate& q = templates.queries()[qi];
    const service::TemplateIndexSpec* spec = view_index.query_spec(qi);
    if (spec == nullptr || spec->indexable) continue;
    std::set<std::string> relevant;
    for (size_t ui = 0; ui < templates.num_updates(); ++ui) {
      if (plan.pair(ui, qi).kind != PlanKind::kNeverInvalidate) {
        relevant.insert(templates.updates()[ui].id());
      }
    }
    if (relevant.empty()) continue;
    Add(f, AuditLens::kPerformance, AuditSeverity::kWarning,
        "PERF-NO-DISCRIMINATOR", q.id(),
        "no usable discriminator: every " + JoinIds(relevant) +
            " notice visits every cached view of " + q.id() + " (O(n) scan)",
        "the predicate index keys a template's entries under the bound of "
        "one WHERE conjunct of the form `column op ?`; this template has no "
        "such conjunct, so its entries all land in the group's unindexed "
        "rest set and are visited on every relevant update");
  }

  for (size_t qi = 0; qi < templates.num_queries(); ++qi) {
    const templates::QueryTemplate& q = templates.queries()[qi];
    const StatusOr<engine::QueryProgram> program =
        engine::QueryProgram::Compile(catalog, q.statement().select());
    if (program.ok()) continue;
    Add(f, AuditLens::kPerformance, AuditSeverity::kInfo,
        "PERF-UNPLANNED-QUERY", q.id(),
        "query template does not compile to a vectorized program: every home "
        "server miss for " + q.id() + " runs the row-at-a-time interpreter",
        program.status().message());
    // The same compile failure also means the template can never be
    // server-side prepared: the home backend's per-connection statement
    // cache stores compiled QueryPrograms, so this template misses it on
    // every execution. Reported separately because the remedies differ
    // (UNPLANNED is about per-row execution cost, UNPREPARED about paying
    // parse/plan on every call even on a warm connection).
    Add(f, AuditLens::kPerformance, AuditSeverity::kInfo,
        "PERF-UNPREPARED-TEMPLATE", q.id(),
        "query template cannot be prepared: with no compiled program, " +
            q.id() + " misses the home backend's prepared-statement cache "
            "on every execution",
        program.status().message());
  }

  // --- Exposure-dependent checks (security lens + blind updates) -----------
  if (options.exposure != nullptr) {
    const ExposureAssignment& exposure = *options.exposure;
    DSSP_CHECK(exposure.query_levels.size() == templates.num_queries() &&
               exposure.update_levels.size() == templates.num_updates());

    // attr -> templates whose encrypted parameters carry it / whose
    // plaintext parameters carry it.
    std::map<AttributeId, std::set<std::string>> encrypted_params;
    std::map<AttributeId, std::set<std::string>> plaintext_params;

    auto bucket_params = [&](const sql::Statement& stmt, const std::string& id,
                             ExposureLevel level) {
      auto& bucket = level <= ExposureLevel::kTemplate ? encrypted_params
                                                       : plaintext_params;
      for (AttributeId attr : ParamBoundAttributes(stmt, catalog)) {
        bucket[std::move(attr)].insert(id);
      }
    };

    for (size_t qi = 0; qi < templates.num_queries(); ++qi) {
      const templates::QueryTemplate& q = templates.queries()[qi];
      bucket_params(q.statement(), q.id(), exposure.query_levels[qi]);
      if (exposure.query_levels[qi] == ExposureLevel::kView) {
        for (const AttributeId& attr : q.preserved_attributes()) {
          Add(f, AuditLens::kSecurity, AuditSeverity::kInfo,
              "SEC-RESULT-EXPOSED", attr.ToString(),
              "plaintext cached results of " + q.id() + " expose " +
                  attr.ToString() + " to the DSSP");
        }
      }
    }

    bool view_update = false;
    for (size_t ui = 0; ui < templates.num_updates(); ++ui) {
      const templates::UpdateTemplate& u = templates.updates()[ui];
      const ExposureLevel level = exposure.update_levels[ui];
      if (level == ExposureLevel::kView) {
        view_update = true;
        Add(f, AuditLens::kSecurity, AuditSeverity::kError, "SEC-VIEW-UPDATE",
            u.id(),
            "update template assigned exposure level view: updates have no "
            "view level (Figure 5); the notice would be rejected at runtime");
        continue;
      }
      bucket_params(u.statement(), u.id(), level);
      if (level == ExposureLevel::kBlind) {
        Add(f, AuditLens::kPerformance, AuditSeverity::kWarning,
            "PERF-BLIND-UPDATE", u.id(),
            "blind update: the DSSP learns nothing from a " + u.id() +
                " notice, so every notice invalidates the entire "
                "application cache (IPM cell 1)",
            "SymbolFor(blind, q) is 1 for every query template; raising the "
            "update to template level enables the per-pair compiled plan");
      }
    }

    for (const auto& [attr, ids] : encrypted_params) {
      Add(f, AuditLens::kSecurity, AuditSeverity::kWarning, "SEC-EQ-LEAK",
          attr.ToString(),
          "deterministic encryption of parameters bound to " +
              attr.ToString() + " leaks equality of bindings (" +
              JoinIds(ids) + ")",
          "cache keys must be deterministic for lookups to hit, so equal "
          "plaintext bindings produce equal ciphertexts; an adversary "
          "observing the DSSP can build a frequency histogram of " +
              attr.ToString() + " without any key material");
    }
    for (const auto& [attr, ids] : plaintext_params) {
      Add(f, AuditLens::kSecurity, AuditSeverity::kInfo, "SEC-PLAINTEXT-PARAM",
          attr.ToString(),
          "statement-exposed templates reveal plaintext bindings of " +
              attr.ToString() + " to the DSSP (" + JoinIds(ids) + ")");
    }

    // Step 2b / Step 1 comparisons need a structurally valid assignment.
    if (!view_update) {
      const IpmCharacterization ipm =
          IpmCharacterization::Compute(templates, catalog, options.ipm);
      const ExposureAssignment reduced =
          ReduceExposure(templates, ipm, exposure);
      auto report_overexposed = [&](const std::string& id, ExposureLevel given,
                                    ExposureLevel needed) {
        if (needed >= given) return;
        Add(f, AuditLens::kSecurity, AuditSeverity::kWarning,
            "SEC-OVEREXPOSED", id,
            std::string("exposure level ") + ExposureLevelName(given) +
                " exceeds what invalidation quality requires: level " +
                ExposureLevelName(needed) +
                " keeps every pair's invalidation probability unchanged "
                "(Section 3.1 Step 2b)",
            "the IPM characterization proves the reduction free: encrypting "
            "this information cannot increase any pair's invalidations");
      };
      for (size_t qi = 0; qi < templates.num_queries(); ++qi) {
        report_overexposed(templates.queries()[qi].id(),
                           exposure.query_levels[qi],
                           reduced.query_levels[qi]);
      }
      for (size_t ui = 0; ui < templates.num_updates(); ++ui) {
        report_overexposed(templates.updates()[ui].id(),
                           exposure.update_levels[ui],
                           reduced.update_levels[ui]);
      }

      if (options.policy != nullptr) {
        const ExposureAssignment cap =
            ComputeInitialExposure(templates, catalog, *options.policy);
        auto report_sensitive = [&](const std::string& id,
                                    ExposureLevel given, ExposureLevel capped) {
          if (given <= capped) return;
          Add(f, AuditLens::kSecurity, AuditSeverity::kError,
              "SEC-SENSITIVE-EXPOSED", id,
              std::string("exposed at level ") + ExposureLevelName(given) +
                  " but the compulsory-encryption policy caps this template "
                  "at " +
                  ExposureLevelName(capped) + " (Section 3.1 Step 1)",
              "the template carries attributes the policy marks sensitive; "
              "exposing them is a policy violation regardless of "
              "scalability");
        };
        for (size_t qi = 0; qi < templates.num_queries(); ++qi) {
          report_sensitive(templates.queries()[qi].id(),
                           exposure.query_levels[qi], cap.query_levels[qi]);
        }
        for (size_t ui = 0; ui < templates.num_updates(); ++ui) {
          report_sensitive(templates.updates()[ui].id(),
                           exposure.update_levels[ui], cap.update_levels[ui]);
        }
      }
    }
  }

  // --- Finalize: filter, sort deterministically, count ---------------------
  if (!options.include_info) {
    std::erase_if(report.findings, [](const AuditFinding& finding) {
      return finding.severity == AuditSeverity::kInfo;
    });
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const AuditFinding& a, const AuditFinding& b) {
              return std::tie(a.lens, a.code, a.subject, a.message) <
                     std::tie(b.lens, b.code, b.subject, b.message);
            });
  for (const AuditFinding& finding : report.findings) {
    switch (finding.severity) {
      case AuditSeverity::kError:
        ++report.num_errors;
        break;
      case AuditSeverity::kWarning:
        ++report.num_warnings;
        break;
      case AuditSeverity::kInfo:
        ++report.num_infos;
        break;
    }
  }
  return report;
}

std::string AuditReport::ToText() const {
  std::string out;
  AuditLens current = AuditLens::kSecurity;
  bool first = true;
  for (const AuditFinding& finding : findings) {
    if (first || finding.lens != current) {
      if (!first) out += '\n';
      current = finding.lens;
      first = false;
      out += "== ";
      out += AuditLensName(current);
      out += " ==\n";
    }
    out += '[';
    out += AuditSeverityName(finding.severity);
    out += "] ";
    out += finding.code;
    out += ' ';
    out += finding.subject;
    out += ": ";
    out += finding.message;
    out += '\n';
    if (!finding.rationale.empty()) {
      out += "    ";
      out += finding.rationale;
      out += '\n';
    }
  }
  if (!first) out += '\n';
  out += std::to_string(num_errors) + " error(s), " +
         std::to_string(num_warnings) + " warning(s), " +
         std::to_string(num_infos) + " info(s)\n";
  return out;
}

std::string AuditReport::ToJson() const {
  std::string out = "{\n  \"audit_version\": 1,\n  \"summary\": {";
  out += "\"errors\": " + std::to_string(num_errors);
  out += ", \"warnings\": " + std::to_string(num_warnings);
  out += ", \"infos\": " + std::to_string(num_infos);
  out += "},\n  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const AuditFinding& finding = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"lens\": \"";
    out += AuditLensName(finding.lens);
    out += "\", \"severity\": \"";
    out += AuditSeverityName(finding.severity);
    out += "\", \"code\": \"";
    AppendJsonEscaped(finding.code, &out);
    out += "\", \"subject\": \"";
    AppendJsonEscaped(finding.subject, &out);
    out += "\", \"message\": \"";
    AppendJsonEscaped(finding.message, &out);
    out += "\", \"rationale\": \"";
    AppendJsonEscaped(finding.rationale, &out);
    out += "\"}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace dssp::analysis
