#ifndef DSSP_ANALYSIS_PLAN_H_
#define DSSP_ANALYSIS_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/macros.h"
#include "sql/ast.h"
#include "templates/template.h"
#include "templates/template_set.h"

namespace dssp::analysis {

// ---------------------------------------------------------------------------
// Ahead-of-time invalidation-plan compiler.
//
// The runtime invalidation strategies re-derive the Section 4 template
// analysis on every (update, cached entry) decision: MTIS reruns the
// Lemma-1 / Section 4.5 reasoning, and MSIS re-walks both statements' ASTs,
// re-resolves FROM slots against the catalog, and reruns the Levy-Sagiv
// style satisfiability solve — once per cached entry, on the serving hot
// path. All of that work depends only on the *templates*, which are fixed at
// application registration.
//
// InvalidationPlan::Compile runs the analysis once per (update template,
// query template) pair and emits a compiled PairPlan: either a constant
// decision, or a small predicate program over the bound parameters that the
// strategies evaluate in O(program size) with no AST walking, no catalog
// lookups, and no solver. The compiler constant-folds every subexpression
// whose operands are template literals, so a pair whose statement-level
// outcome does not actually depend on the parameters collapses to a
// constant.
//
// Equivalence contract: for every pair and every parameter binding, the
// compiled decision is IDENTICAL to the decision the legacy derivation
// produces (enforced by tests/plan_differential_test.cc). The compiler
// refuses to compile — kSolverFallback — any shape it cannot mirror exactly.
// ---------------------------------------------------------------------------

// The decision procedure compiled for one (update, query) template pair.
enum class PlanKind {
  // A = 0 (Lemma 1 ignorability or the Section 4.5 PK/FK rules): never
  // invalidate, at any exposure level at or above template.
  kNeverInvalidate,
  // Statement-level refinement provably cannot help for any binding, and
  // neither can view inspection (insertions): always invalidate.
  kAlwaysInvalidate,
  // A compiled per-parameter predicate program decides independence without
  // invoking the general solver.
  kParamProgram,
  // Compilation was not provably equivalent (unexpected statement shape);
  // run the general solver at decision time. Defensive — none of the paper
  // workloads produce it.
  kSolverFallback,
  // Statement-level refinement provably cannot help for any binding, but
  // the pair is a deletion/modification whose cached *result* may still
  // refine the decision (the C cell): always invalidate below view level,
  // run the view test at view level.
  kViewTest,
};

const char* PlanKindName(PlanKind kind);

// Where a compiled comparison fetches its constant when the program runs
// against bound statements. Template literals fold to kConst at compile
// time; parameter positions are compiled to direct AST coordinates so the
// evaluator indexes the bound statement without walking or resolving it.
struct ValueRef {
  enum class Source {
    kConst,        // `literal` below.
    kQueryWhere,   // query.select().where[index], side picked by `rhs`.
    kUpdateWhere,  // DELETE/UPDATE where[index], side picked by `rhs`.
    kInsertValue,  // insert.values[index].
    kSetValue,     // update.set[index].second.
  };

  Source source = Source::kConst;
  size_t index = 0;
  bool rhs = true;
  sql::Value literal;

  static ValueRef Const(sql::Value v) {
    ValueRef ref;
    ref.literal = std::move(v);
    return ref;
  }
  static ValueRef At(Source source, size_t index, bool rhs = true) {
    ValueRef ref;
    ref.source = source;
    ref.index = index;
    ref.rhs = rhs;
    return ref;
  }

  bool is_const() const { return source == Source::kConst; }
};

// One compiled unary test `column op <value>` feeding the interval solver.
struct CompiledConstraint {
  std::string column;  // Resolved physical column name.
  sql::CompareOp op;
  ValueRef value;
};

// `fetch(lhs) op fetch(rhs)` row-exclusion test: mirrors the solver's
// inserted-value / SET-value checks (NULL or an incomparable type excludes
// the row, as does the comparison failing).
struct CompiledValueTest {
  ValueRef lhs;  // Inserted / newly assigned value.
  sql::CompareOp op;
  ValueRef rhs;  // The slot constraint's constant.
};

// Per-FROM-slot check compiled for an insertion: the inserted row is
// excluded from the slot iff some test excludes it. Slots the compiler
// proved always-excluded are dropped from the program entirely.
struct CompiledInsertCheck {
  std::vector<CompiledValueTest> tests;
};

// Per-slot check compiled for a deletion (and a modification's "currently
// relevant" half): the update is independent of the slot iff the combined
// constraint conjunction is unsatisfiable.
struct CompiledSatCheck {
  std::vector<CompiledConstraint> constraints;
};

// Per-slot check compiled for a modification's "may newly enter" half
// (ModificationCannotEnter): the modified rows cannot enter via the slot iff
// some set test excludes them or the residual conjunction is unsatisfiable.
struct CompiledEntryCheck {
  std::vector<CompiledValueTest> set_tests;
  std::vector<CompiledConstraint> residual;
};

// The compiled statement-level predicate program of one pair. Only the
// vectors matching the update class are populated.
struct ParamProgram {
  std::vector<CompiledInsertCheck> insert_checks;
  std::vector<CompiledSatCheck> sat_checks;
  std::vector<CompiledEntryCheck> entry_checks;

  size_t num_checks() const {
    return insert_checks.size() + sat_checks.size() + entry_checks.size();
  }
};

// The compiled decision procedure of one (update, query) template pair.
struct PairPlan {
  PlanKind kind = PlanKind::kSolverFallback;
  // Template-level decision (the A cell): true means DNI for the whole
  // template group — kind is kNeverInvalidate exactly when this is set.
  bool never_invalidate = false;
  templates::UpdateClass update_class = templates::UpdateClass::kInsertion;
  ParamProgram program;  // Populated for kParamProgram.
  std::string rationale;  // Human-readable justification.
};

// Outcome of the statement-level compiled decision for one bound pair.
enum class StmtDecision {
  kIndependent,  // Provably independent: do not invalidate.
  kInvalidate,   // Not provably independent: invalidate.
  kRunSolver,    // kSolverFallback — the caller must run the solver.
};

// The full compiled plan of one application: one PairPlan per
// (update template, query template) pair, indexed like the TemplateSet.
class InvalidationPlan {
 public:
  struct Options {
    // Apply the Section 4.5 PK/FK refinement. Must match the
    // use_integrity_constraints flag of every strategy consulting the plan.
    bool use_integrity_constraints = true;
  };

  // Compiles the plan for `templates` against `catalog`. Runs once at app
  // registration; cost is O(pairs * statement size).
  static InvalidationPlan Compile(const templates::TemplateSet& templates,
                                  const catalog::Catalog& catalog,
                                  const Options& options);
  static InvalidationPlan Compile(const templates::TemplateSet& templates,
                                  const catalog::Catalog& catalog) {
    return Compile(templates, catalog, Options{});
  }

  const PairPlan& pair(size_t update_index, size_t query_index) const {
    DSSP_CHECK(update_index < num_updates_ && query_index < num_queries_);
    return pairs_[update_index * num_queries_ + query_index];
  }

  size_t num_updates() const { return num_updates_; }
  size_t num_queries() const { return num_queries_; }

  // Evaluates the pair's statement-level decision on bound statements.
  // Bit-identical to ProvablyIndependent(...) for statements bound from the
  // pair's templates; a statement whose shape does not match the compiled
  // coordinates yields kInvalidate (sound). Never consults the catalog.
  StmtDecision DecideStmt(size_t update_index, size_t query_index,
                          const sql::Statement& update,
                          const sql::Statement& query) const;

  // Pair counts by compiled kind (explain/ablation reporting).
  struct Summary {
    size_t never_invalidate = 0;
    size_t always_invalidate = 0;
    size_t param_program = 0;
    size_t solver_fallback = 0;
    size_t view_test = 0;

    size_t total() const {
      return never_invalidate + always_invalidate + param_program +
             solver_fallback + view_test;
    }
  };
  Summary Summarize() const;

 private:
  size_t num_updates_ = 0;
  size_t num_queries_ = 0;
  std::vector<PairPlan> pairs_;
};

// Compiles a single pair (exposed for tests and the explain tool).
PairPlan CompilePairPlan(const templates::UpdateTemplate& u,
                         const templates::QueryTemplate& q,
                         const catalog::Catalog& catalog,
                         const InvalidationPlan::Options& options = {});

// Evaluates one compiled pair on bound statements (kRunSolver for
// kSolverFallback pairs).
StmtDecision EvaluatePairPlan(const PairPlan& plan,
                              const sql::Statement& update,
                              const sql::Statement& query);

// Fetches the runtime value a query-side ValueRef (kConst / kQueryWhere)
// denotes from a bound SELECT; nullptr when the statement's shape does not
// match the compiled coordinates or the ref is update-side. The returned
// pointer aliases `query` (or `ref` for constants).
const sql::Value* FetchFromQuery(const ValueRef& ref,
                                 const sql::Statement& query);

// Update-side counterpart (kConst / kUpdateWhere / kInsertValue /
// kSetValue); nullptr on shape mismatch or a query-side ref.
const sql::Value* FetchFromUpdate(const ValueRef& ref,
                                  const sql::Statement& update);

}  // namespace dssp::analysis

#endif  // DSSP_ANALYSIS_PLAN_H_
