#include "templates/template_set.h"

namespace dssp::templates {

Status TemplateSet::AddQuery(QueryTemplate tmpl) {
  if (FindQuery(tmpl.id()) != nullptr) {
    return AlreadyExistsError("query template " + tmpl.id());
  }
  queries_.push_back(std::move(tmpl));
  return Status::Ok();
}

Status TemplateSet::AddUpdate(UpdateTemplate tmpl) {
  if (FindUpdate(tmpl.id()) != nullptr) {
    return AlreadyExistsError("update template " + tmpl.id());
  }
  updates_.push_back(std::move(tmpl));
  return Status::Ok();
}

Status TemplateSet::AddQuerySql(std::string_view sql,
                                const catalog::Catalog& catalog) {
  const std::string id = "Q" + std::to_string(queries_.size() + 1);
  DSSP_ASSIGN_OR_RETURN(QueryTemplate tmpl,
                        QueryTemplate::Create(id, sql, catalog));
  return AddQuery(std::move(tmpl));
}

Status TemplateSet::AddUpdateSql(std::string_view sql,
                                 const catalog::Catalog& catalog) {
  const std::string id = "U" + std::to_string(updates_.size() + 1);
  DSSP_ASSIGN_OR_RETURN(UpdateTemplate tmpl,
                        UpdateTemplate::Create(id, sql, catalog));
  return AddUpdate(std::move(tmpl));
}

const QueryTemplate* TemplateSet::FindQuery(std::string_view id) const {
  for (const QueryTemplate& tmpl : queries_) {
    if (tmpl.id() == id) return &tmpl;
  }
  return nullptr;
}

const UpdateTemplate* TemplateSet::FindUpdate(std::string_view id) const {
  for (const UpdateTemplate& tmpl : updates_) {
    if (tmpl.id() == id) return &tmpl;
  }
  return nullptr;
}

size_t TemplateSet::QueryIndex(std::string_view id) const {
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i].id() == id) return i;
  }
  return kNpos;
}

size_t TemplateSet::UpdateIndex(std::string_view id) const {
  for (size_t i = 0; i < updates_.size(); ++i) {
    if (updates_[i].id() == id) return i;
  }
  return kNpos;
}

}  // namespace dssp::templates
