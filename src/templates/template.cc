#include "templates/template.h"

#include <algorithm>
#include <map>

#include "sql/parser.h"

namespace dssp::templates {

std::string AttributeSetToString(const AttributeSet& set) {
  std::string out = "{";
  bool first = true;
  for (const AttributeId& attr : set) {
    if (!first) out += ", ";
    first = false;
    out += attr.ToString();
  }
  out += "}";
  return out;
}

bool Disjoint(const AttributeSet& a, const AttributeSet& b) {
  // Walk the smaller set.
  const AttributeSet& small = a.size() <= b.size() ? a : b;
  const AttributeSet& large = a.size() <= b.size() ? b : a;
  return std::none_of(small.begin(), small.end(), [&](const AttributeId& x) {
    return large.contains(x);
  });
}

const char* UpdateClassName(UpdateClass cls) {
  switch (cls) {
    case UpdateClass::kInsertion:
      return "insertion";
    case UpdateClass::kDeletion:
      return "deletion";
    case UpdateClass::kModification:
      return "modification";
  }
  return "unknown";
}

std::string AssumptionReport::ToString() const {
  if (ok()) return "ok";
  std::string out;
  if (compares_within_relation) out += "[compares within one relation]";
  if (has_embedded_constants) out += "[embedded constants]";
  if (cartesian_product) out += "[empty selection predicate]";
  return out;
}

namespace {

// Maps FROM-clause slots to physical schemas and resolves column references.
class SlotResolver {
 public:
  static StatusOr<SlotResolver> ForSelect(const sql::SelectStatement& stmt,
                                          const catalog::Catalog& catalog) {
    SlotResolver resolver;
    for (const sql::TableRef& ref : stmt.from) {
      const catalog::TableSchema* schema = catalog.FindTable(ref.table);
      if (schema == nullptr) return NotFoundError("table " + ref.table);
      for (const auto& [name, slot] : resolver.by_name_) {
        if (name == ref.effective_name()) {
          return InvalidArgumentError("duplicate FROM name " + name);
        }
      }
      resolver.by_name_.emplace_back(ref.effective_name(),
                                     resolver.slots_.size());
      resolver.slots_.push_back(schema);
    }
    return resolver;
  }

  static StatusOr<SlotResolver> ForTable(const std::string& table,
                                         const catalog::Catalog& catalog) {
    SlotResolver resolver;
    const catalog::TableSchema* schema = catalog.FindTable(table);
    if (schema == nullptr) return NotFoundError("table " + table);
    resolver.by_name_.emplace_back(table, 0);
    resolver.slots_.push_back(schema);
    return resolver;
  }

  // Resolves `ref` to (slot, physical attribute).
  StatusOr<std::pair<size_t, AttributeId>> Resolve(
      const sql::ColumnRef& ref) const {
    if (!ref.table.empty()) {
      for (const auto& [name, slot] : by_name_) {
        if (name == ref.table) {
          if (!slots_[slot]->HasColumn(ref.column)) {
            return NotFoundError("column " + ref.ToString());
          }
          return std::make_pair(slot,
                                AttributeId{slots_[slot]->name(), ref.column});
        }
      }
      return NotFoundError("table " + ref.table + " in template scope");
    }
    std::optional<std::pair<size_t, AttributeId>> found;
    for (const auto& [name, slot] : by_name_) {
      if (slots_[slot]->HasColumn(ref.column)) {
        if (found.has_value()) {
          return InvalidArgumentError("ambiguous column " + ref.column);
        }
        found = std::make_pair(slot,
                               AttributeId{slots_[slot]->name(), ref.column});
      }
    }
    if (!found.has_value()) return NotFoundError("column " + ref.column);
    return *found;
  }

  size_t num_slots() const { return slots_.size(); }
  const catalog::TableSchema& slot_schema(size_t slot) const {
    return *slots_[slot];
  }

 private:
  std::vector<std::pair<std::string, size_t>> by_name_;
  std::vector<const catalog::TableSchema*> slots_;
};

// Analyzes the WHERE conjunction shared by queries and updates. Populates
// selection attributes, join-equality classification, and assumption flags.
Status AnalyzeWhere(const std::vector<sql::Comparison>& where,
                    const SlotResolver& resolver, AttributeSet* s,
                    bool* only_equality_joins, AssumptionReport* report) {
  for (const sql::Comparison& cmp : where) {
    const bool lhs_col = sql::IsColumn(cmp.lhs);
    const bool rhs_col = sql::IsColumn(cmp.rhs);
    std::optional<size_t> lhs_slot;
    std::optional<size_t> rhs_slot;
    if (lhs_col) {
      DSSP_ASSIGN_OR_RETURN(auto resolved,
                            resolver.Resolve(std::get<sql::ColumnRef>(cmp.lhs)));
      lhs_slot = resolved.first;
      s->insert(resolved.second);
    }
    if (rhs_col) {
      DSSP_ASSIGN_OR_RETURN(auto resolved,
                            resolver.Resolve(std::get<sql::ColumnRef>(cmp.rhs)));
      rhs_slot = resolved.first;
      s->insert(resolved.second);
    }
    if (lhs_col && rhs_col) {
      if (*lhs_slot == *rhs_slot) {
        // Assumption 1 (Section 2.1.1): predicates compare values across two
        // relations or against a constant; within one relation violates it.
        report->compares_within_relation = true;
      } else if (cmp.op != sql::CompareOp::kEq) {
        *only_equality_joins = false;  // Not in class E.
      }
    }
    if (sql::IsLiteral(cmp.lhs) || sql::IsLiteral(cmp.rhs)) {
      // Assumption 2: no constants that might aid invalidation are embedded
      // in the template.
      report->has_embedded_constants = true;
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<QueryTemplate> QueryTemplate::Create(
    std::string id, std::string_view sql, const catalog::Catalog& catalog) {
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (stmt.kind() != sql::StatementKind::kSelect) {
    return InvalidArgumentError("query template must be a SELECT: " +
                                std::string(sql));
  }
  QueryTemplate tmpl;
  tmpl.id_ = std::move(id);
  tmpl.statement_ = std::move(stmt);
  const sql::SelectStatement& select = tmpl.statement_.select();

  DSSP_ASSIGN_OR_RETURN(SlotResolver resolver,
                        SlotResolver::ForSelect(select, catalog));

  DSSP_RETURN_IF_ERROR(AnalyzeWhere(select.where, resolver, &tmpl.s_,
                                    &tmpl.only_equality_joins_,
                                    &tmpl.assumptions_));
  if (select.where.empty()) {
    // Assumption 3: every query has a non-empty selection predicate.
    tmpl.assumptions_.cartesian_product = true;
  }

  // ORDER BY attributes belong to S(Q) (Table 5).
  for (const sql::OrderByItem& item : select.order_by) {
    DSSP_ASSIGN_OR_RETURN(auto resolved, resolver.Resolve(item.column));
    tmpl.s_.insert(resolved.second);
  }

  // P(Q): preserved attributes. For aggregates we conservatively include the
  // aggregated column (the output is derived from it); GROUP BY columns
  // appear in the output as well.
  for (const sql::SelectItem& item : select.items) {
    if (item.func != sql::AggregateFunc::kNone) {
      tmpl.has_aggregation_ = true;
      if (!item.star) {
        DSSP_ASSIGN_OR_RETURN(auto resolved, resolver.Resolve(item.column));
        tmpl.p_.insert(resolved.second);
      }
      // Aggregate outputs are derived values, not preserved attributes.
      tmpl.output_columns_.push_back(OutputColumn{});
      continue;
    }
    if (item.star) {
      // Expansion order matches the engine: FROM slots in order, columns in
      // schema order.
      for (size_t slot = 0; slot < resolver.num_slots(); ++slot) {
        const catalog::TableSchema& schema = resolver.slot_schema(slot);
        for (const catalog::Column& col : schema.columns()) {
          const AttributeId attr{schema.name(), col.name};
          tmpl.p_.insert(attr);
          tmpl.output_columns_.push_back(OutputColumn{slot, attr});
        }
      }
      continue;
    }
    DSSP_ASSIGN_OR_RETURN(auto resolved, resolver.Resolve(item.column));
    tmpl.p_.insert(resolved.second);
    tmpl.output_columns_.push_back(
        OutputColumn{resolved.first, resolved.second});
  }
  for (const sql::ColumnRef& col : select.group_by) {
    tmpl.has_aggregation_ = true;
    DSSP_ASSIGN_OR_RETURN(auto resolved, resolver.Resolve(col));
    tmpl.p_.insert(resolved.second);
  }

  return tmpl;
}

StatusOr<UpdateTemplate> UpdateTemplate::Create(
    std::string id, std::string_view sql, const catalog::Catalog& catalog) {
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (stmt.kind() == sql::StatementKind::kSelect) {
    return InvalidArgumentError("update template must not be a SELECT: " +
                                std::string(sql));
  }
  UpdateTemplate tmpl;
  tmpl.id_ = std::move(id);
  tmpl.statement_ = std::move(stmt);

  switch (tmpl.statement_.kind()) {
    case sql::StatementKind::kInsert: {
      const sql::InsertStatement& insert = tmpl.statement_.insert();
      tmpl.class_ = UpdateClass::kInsertion;
      tmpl.table_ = insert.table;
      DSSP_ASSIGN_OR_RETURN(SlotResolver resolver,
                            SlotResolver::ForTable(insert.table, catalog));
      const catalog::TableSchema& schema = resolver.slot_schema(0);
      for (const std::string& col : insert.columns) {
        if (!schema.HasColumn(col)) {
          return NotFoundError("column " + col + " in table " + insert.table);
        }
      }
      // M(U): all attributes of the table (Table 5).
      for (const catalog::Column& col : schema.columns()) {
        tmpl.m_.insert(AttributeId{schema.name(), col.name});
      }
      for (const sql::Operand& value : insert.values) {
        if (sql::IsLiteral(value)) {
          tmpl.assumptions_.has_embedded_constants = true;
        }
      }
      break;
    }
    case sql::StatementKind::kDelete: {
      const sql::DeleteStatement& del = tmpl.statement_.del();
      tmpl.class_ = UpdateClass::kDeletion;
      tmpl.table_ = del.table;
      DSSP_ASSIGN_OR_RETURN(SlotResolver resolver,
                            SlotResolver::ForTable(del.table, catalog));
      bool unused = true;
      DSSP_RETURN_IF_ERROR(AnalyzeWhere(del.where, resolver, &tmpl.s_,
                                        &unused, &tmpl.assumptions_));
      const catalog::TableSchema& schema = resolver.slot_schema(0);
      for (const catalog::Column& col : schema.columns()) {
        tmpl.m_.insert(AttributeId{schema.name(), col.name});
      }
      break;
    }
    case sql::StatementKind::kUpdate: {
      const sql::UpdateStatement& update = tmpl.statement_.update();
      tmpl.class_ = UpdateClass::kModification;
      tmpl.table_ = update.table;
      DSSP_ASSIGN_OR_RETURN(SlotResolver resolver,
                            SlotResolver::ForTable(update.table, catalog));
      bool unused = true;
      DSSP_RETURN_IF_ERROR(AnalyzeWhere(update.where, resolver, &tmpl.s_,
                                        &unused, &tmpl.assumptions_));
      const catalog::TableSchema& schema = resolver.slot_schema(0);
      for (const auto& [col, value] : update.set) {
        if (!schema.HasColumn(col)) {
          return NotFoundError("column " + col + " in table " + update.table);
        }
        tmpl.m_.insert(AttributeId{schema.name(), col});
        if (sql::IsLiteral(value)) {
          tmpl.assumptions_.has_embedded_constants = true;
        }
      }
      break;
    }
    case sql::StatementKind::kSelect:
      DSSP_UNREACHABLE("checked above");
  }
  return tmpl;
}

namespace {

bool SameSelectItem(const sql::SelectItem& a, const sql::SelectItem& b) {
  return a.func == b.func && a.star == b.star && a.column == b.column;
}

bool SameTableRef(const sql::TableRef& a, const sql::TableRef& b) {
  return a.table == b.table && a.alias == b.alias;
}

bool SameOrderByItem(const sql::OrderByItem& a, const sql::OrderByItem& b) {
  return a.column == b.column && a.descending == b.descending;
}

// Matches one template operand against the corresponding operand of a bound
// instance, capturing parameter bindings. `have` tracks which parameter
// indexes are already bound (a repeated parameter must rebind equal values).
bool MatchOperand(const sql::Operand& tmpl_op, const sql::Operand& bound_op,
                  std::vector<sql::Value>* params, std::vector<bool>* have) {
  if (sql::IsColumn(tmpl_op)) {
    return sql::IsColumn(bound_op) &&
           std::get<sql::ColumnRef>(tmpl_op) ==
               std::get<sql::ColumnRef>(bound_op);
  }
  if (!sql::IsLiteral(bound_op)) return false;  // Instance must be bound.
  const sql::Value& value = std::get<sql::Value>(bound_op);
  if (sql::IsLiteral(tmpl_op)) {
    // Embedded template constants must match exactly (same type and bits;
    // EncodeForKey distinguishes 1 from 1.0 and NULL from everything).
    return std::get<sql::Value>(tmpl_op).EncodeForKey() ==
           value.EncodeForKey();
  }
  const int index = std::get<sql::Parameter>(tmpl_op).index;
  if (index < 0 || static_cast<size_t>(index) >= params->size()) return false;
  if ((*have)[index]) {
    return (*params)[index].EncodeForKey() == value.EncodeForKey();
  }
  (*have)[index] = true;
  (*params)[index] = value;
  return true;
}

}  // namespace

bool QueryTemplate::MatchInstance(const sql::SelectStatement& bound,
                                  std::vector<sql::Value>* params) const {
  const sql::SelectStatement& tmpl = statement_.select();
  if (tmpl.items.size() != bound.items.size() ||
      tmpl.from.size() != bound.from.size() ||
      tmpl.where.size() != bound.where.size() ||
      tmpl.group_by.size() != bound.group_by.size() ||
      tmpl.order_by.size() != bound.order_by.size() ||
      tmpl.limit.has_value() != bound.limit.has_value()) {
    return false;
  }
  for (size_t i = 0; i < tmpl.items.size(); ++i) {
    if (!SameSelectItem(tmpl.items[i], bound.items[i])) return false;
  }
  for (size_t i = 0; i < tmpl.from.size(); ++i) {
    if (!SameTableRef(tmpl.from[i], bound.from[i])) return false;
  }
  for (size_t i = 0; i < tmpl.group_by.size(); ++i) {
    if (tmpl.group_by[i] != bound.group_by[i]) return false;
  }
  for (size_t i = 0; i < tmpl.order_by.size(); ++i) {
    if (!SameOrderByItem(tmpl.order_by[i], bound.order_by[i])) return false;
  }

  params->assign(static_cast<size_t>(num_params()), sql::Value());
  std::vector<bool> have(params->size(), false);
  for (size_t i = 0; i < tmpl.where.size(); ++i) {
    if (tmpl.where[i].op != bound.where[i].op) return false;
    if (!MatchOperand(tmpl.where[i].lhs, bound.where[i].lhs, params, &have) ||
        !MatchOperand(tmpl.where[i].rhs, bound.where[i].rhs, params, &have)) {
      return false;
    }
  }
  if (tmpl.limit.has_value() &&
      !MatchOperand(*tmpl.limit, *bound.limit, params, &have)) {
    return false;
  }
  // Every parameter must have been captured (the parser numbers parameters
  // densely, so this only fails on hand-built statements).
  for (size_t i = 0; i < have.size(); ++i) {
    if (!have[i]) return false;
  }
  return true;
}

std::string SelectShapeKey(const sql::SelectStatement& stmt) {
  sql::SelectStatement masked = stmt;
  for (sql::Comparison& cmp : masked.where) {
    if (!sql::IsColumn(cmp.lhs)) cmp.lhs = sql::Parameter{};
    if (!sql::IsColumn(cmp.rhs)) cmp.rhs = sql::Parameter{};
  }
  if (masked.limit.has_value() && !sql::IsColumn(*masked.limit)) {
    masked.limit = sql::Parameter{};
  }
  return sql::ToSql(masked);
}

bool IsIgnorable(const UpdateTemplate& u, const QueryTemplate& q) {
  AttributeSet p_union_s = q.preserved_attributes();
  p_union_s.insert(q.selection_attributes().begin(),
                   q.selection_attributes().end());
  return Disjoint(u.modified_attributes(), p_union_s);
}

bool IsResultUnhelpful(const UpdateTemplate& u, const QueryTemplate& q) {
  return Disjoint(u.selection_attributes(), q.preserved_attributes());
}

}  // namespace dssp::templates
