#include "templates/template.h"

#include <algorithm>
#include <map>

#include "sql/parser.h"

namespace dssp::templates {

std::string AttributeSetToString(const AttributeSet& set) {
  std::string out = "{";
  bool first = true;
  for (const AttributeId& attr : set) {
    if (!first) out += ", ";
    first = false;
    out += attr.ToString();
  }
  out += "}";
  return out;
}

bool Disjoint(const AttributeSet& a, const AttributeSet& b) {
  // Walk the smaller set.
  const AttributeSet& small = a.size() <= b.size() ? a : b;
  const AttributeSet& large = a.size() <= b.size() ? b : a;
  return std::none_of(small.begin(), small.end(), [&](const AttributeId& x) {
    return large.contains(x);
  });
}

const char* UpdateClassName(UpdateClass cls) {
  switch (cls) {
    case UpdateClass::kInsertion:
      return "insertion";
    case UpdateClass::kDeletion:
      return "deletion";
    case UpdateClass::kModification:
      return "modification";
  }
  return "unknown";
}

std::string AssumptionReport::ToString() const {
  if (ok()) return "ok";
  std::string out;
  if (compares_within_relation) out += "[compares within one relation]";
  if (has_embedded_constants) out += "[embedded constants]";
  if (cartesian_product) out += "[empty selection predicate]";
  return out;
}

namespace {

// Maps FROM-clause slots to physical schemas and resolves column references.
class SlotResolver {
 public:
  static StatusOr<SlotResolver> ForSelect(const sql::SelectStatement& stmt,
                                          const catalog::Catalog& catalog) {
    SlotResolver resolver;
    for (const sql::TableRef& ref : stmt.from) {
      const catalog::TableSchema* schema = catalog.FindTable(ref.table);
      if (schema == nullptr) return NotFoundError("table " + ref.table);
      for (const auto& [name, slot] : resolver.by_name_) {
        if (name == ref.effective_name()) {
          return InvalidArgumentError("duplicate FROM name " + name);
        }
      }
      resolver.by_name_.emplace_back(ref.effective_name(),
                                     resolver.slots_.size());
      resolver.slots_.push_back(schema);
    }
    return resolver;
  }

  static StatusOr<SlotResolver> ForTable(const std::string& table,
                                         const catalog::Catalog& catalog) {
    SlotResolver resolver;
    const catalog::TableSchema* schema = catalog.FindTable(table);
    if (schema == nullptr) return NotFoundError("table " + table);
    resolver.by_name_.emplace_back(table, 0);
    resolver.slots_.push_back(schema);
    return resolver;
  }

  // Resolves `ref` to (slot, physical attribute).
  StatusOr<std::pair<size_t, AttributeId>> Resolve(
      const sql::ColumnRef& ref) const {
    if (!ref.table.empty()) {
      for (const auto& [name, slot] : by_name_) {
        if (name == ref.table) {
          if (!slots_[slot]->HasColumn(ref.column)) {
            return NotFoundError("column " + ref.ToString());
          }
          return std::make_pair(slot,
                                AttributeId{slots_[slot]->name(), ref.column});
        }
      }
      return NotFoundError("table " + ref.table + " in template scope");
    }
    std::optional<std::pair<size_t, AttributeId>> found;
    for (const auto& [name, slot] : by_name_) {
      if (slots_[slot]->HasColumn(ref.column)) {
        if (found.has_value()) {
          return InvalidArgumentError("ambiguous column " + ref.column);
        }
        found = std::make_pair(slot,
                               AttributeId{slots_[slot]->name(), ref.column});
      }
    }
    if (!found.has_value()) return NotFoundError("column " + ref.column);
    return *found;
  }

  size_t num_slots() const { return slots_.size(); }
  const catalog::TableSchema& slot_schema(size_t slot) const {
    return *slots_[slot];
  }

 private:
  std::vector<std::pair<std::string, size_t>> by_name_;
  std::vector<const catalog::TableSchema*> slots_;
};

// Analyzes the WHERE conjunction shared by queries and updates. Populates
// selection attributes, join-equality classification, and assumption flags.
Status AnalyzeWhere(const std::vector<sql::Comparison>& where,
                    const SlotResolver& resolver, AttributeSet* s,
                    bool* only_equality_joins, AssumptionReport* report) {
  for (const sql::Comparison& cmp : where) {
    const bool lhs_col = sql::IsColumn(cmp.lhs);
    const bool rhs_col = sql::IsColumn(cmp.rhs);
    std::optional<size_t> lhs_slot;
    std::optional<size_t> rhs_slot;
    if (lhs_col) {
      DSSP_ASSIGN_OR_RETURN(auto resolved,
                            resolver.Resolve(std::get<sql::ColumnRef>(cmp.lhs)));
      lhs_slot = resolved.first;
      s->insert(resolved.second);
    }
    if (rhs_col) {
      DSSP_ASSIGN_OR_RETURN(auto resolved,
                            resolver.Resolve(std::get<sql::ColumnRef>(cmp.rhs)));
      rhs_slot = resolved.first;
      s->insert(resolved.second);
    }
    if (lhs_col && rhs_col) {
      if (*lhs_slot == *rhs_slot) {
        // Assumption 1 (Section 2.1.1): predicates compare values across two
        // relations or against a constant; within one relation violates it.
        report->compares_within_relation = true;
      } else if (cmp.op != sql::CompareOp::kEq) {
        *only_equality_joins = false;  // Not in class E.
      }
    }
    if (sql::IsLiteral(cmp.lhs) || sql::IsLiteral(cmp.rhs)) {
      // Assumption 2: no constants that might aid invalidation are embedded
      // in the template.
      report->has_embedded_constants = true;
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<QueryTemplate> QueryTemplate::Create(
    std::string id, std::string_view sql, const catalog::Catalog& catalog) {
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (stmt.kind() != sql::StatementKind::kSelect) {
    return InvalidArgumentError("query template must be a SELECT: " +
                                std::string(sql));
  }
  QueryTemplate tmpl;
  tmpl.id_ = std::move(id);
  tmpl.statement_ = std::move(stmt);
  const sql::SelectStatement& select = tmpl.statement_.select();

  DSSP_ASSIGN_OR_RETURN(SlotResolver resolver,
                        SlotResolver::ForSelect(select, catalog));

  DSSP_RETURN_IF_ERROR(AnalyzeWhere(select.where, resolver, &tmpl.s_,
                                    &tmpl.only_equality_joins_,
                                    &tmpl.assumptions_));
  if (select.where.empty()) {
    // Assumption 3: every query has a non-empty selection predicate.
    tmpl.assumptions_.cartesian_product = true;
  }

  // ORDER BY attributes belong to S(Q) (Table 5).
  for (const sql::OrderByItem& item : select.order_by) {
    DSSP_ASSIGN_OR_RETURN(auto resolved, resolver.Resolve(item.column));
    tmpl.s_.insert(resolved.second);
  }

  // P(Q): preserved attributes. For aggregates we conservatively include the
  // aggregated column (the output is derived from it); GROUP BY columns
  // appear in the output as well.
  for (const sql::SelectItem& item : select.items) {
    if (item.func != sql::AggregateFunc::kNone) {
      tmpl.has_aggregation_ = true;
      if (!item.star) {
        DSSP_ASSIGN_OR_RETURN(auto resolved, resolver.Resolve(item.column));
        tmpl.p_.insert(resolved.second);
      }
      // Aggregate outputs are derived values, not preserved attributes.
      tmpl.output_columns_.push_back(OutputColumn{});
      continue;
    }
    if (item.star) {
      // Expansion order matches the engine: FROM slots in order, columns in
      // schema order.
      for (size_t slot = 0; slot < resolver.num_slots(); ++slot) {
        const catalog::TableSchema& schema = resolver.slot_schema(slot);
        for (const catalog::Column& col : schema.columns()) {
          const AttributeId attr{schema.name(), col.name};
          tmpl.p_.insert(attr);
          tmpl.output_columns_.push_back(OutputColumn{slot, attr});
        }
      }
      continue;
    }
    DSSP_ASSIGN_OR_RETURN(auto resolved, resolver.Resolve(item.column));
    tmpl.p_.insert(resolved.second);
    tmpl.output_columns_.push_back(
        OutputColumn{resolved.first, resolved.second});
  }
  for (const sql::ColumnRef& col : select.group_by) {
    tmpl.has_aggregation_ = true;
    DSSP_ASSIGN_OR_RETURN(auto resolved, resolver.Resolve(col));
    tmpl.p_.insert(resolved.second);
  }

  return tmpl;
}

StatusOr<UpdateTemplate> UpdateTemplate::Create(
    std::string id, std::string_view sql, const catalog::Catalog& catalog) {
  DSSP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (stmt.kind() == sql::StatementKind::kSelect) {
    return InvalidArgumentError("update template must not be a SELECT: " +
                                std::string(sql));
  }
  UpdateTemplate tmpl;
  tmpl.id_ = std::move(id);
  tmpl.statement_ = std::move(stmt);

  switch (tmpl.statement_.kind()) {
    case sql::StatementKind::kInsert: {
      const sql::InsertStatement& insert = tmpl.statement_.insert();
      tmpl.class_ = UpdateClass::kInsertion;
      tmpl.table_ = insert.table;
      DSSP_ASSIGN_OR_RETURN(SlotResolver resolver,
                            SlotResolver::ForTable(insert.table, catalog));
      const catalog::TableSchema& schema = resolver.slot_schema(0);
      for (const std::string& col : insert.columns) {
        if (!schema.HasColumn(col)) {
          return NotFoundError("column " + col + " in table " + insert.table);
        }
      }
      // M(U): all attributes of the table (Table 5).
      for (const catalog::Column& col : schema.columns()) {
        tmpl.m_.insert(AttributeId{schema.name(), col.name});
      }
      for (const sql::Operand& value : insert.values) {
        if (sql::IsLiteral(value)) {
          tmpl.assumptions_.has_embedded_constants = true;
        }
      }
      break;
    }
    case sql::StatementKind::kDelete: {
      const sql::DeleteStatement& del = tmpl.statement_.del();
      tmpl.class_ = UpdateClass::kDeletion;
      tmpl.table_ = del.table;
      DSSP_ASSIGN_OR_RETURN(SlotResolver resolver,
                            SlotResolver::ForTable(del.table, catalog));
      bool unused = true;
      DSSP_RETURN_IF_ERROR(AnalyzeWhere(del.where, resolver, &tmpl.s_,
                                        &unused, &tmpl.assumptions_));
      const catalog::TableSchema& schema = resolver.slot_schema(0);
      for (const catalog::Column& col : schema.columns()) {
        tmpl.m_.insert(AttributeId{schema.name(), col.name});
      }
      break;
    }
    case sql::StatementKind::kUpdate: {
      const sql::UpdateStatement& update = tmpl.statement_.update();
      tmpl.class_ = UpdateClass::kModification;
      tmpl.table_ = update.table;
      DSSP_ASSIGN_OR_RETURN(SlotResolver resolver,
                            SlotResolver::ForTable(update.table, catalog));
      bool unused = true;
      DSSP_RETURN_IF_ERROR(AnalyzeWhere(update.where, resolver, &tmpl.s_,
                                        &unused, &tmpl.assumptions_));
      const catalog::TableSchema& schema = resolver.slot_schema(0);
      for (const auto& [col, value] : update.set) {
        if (!schema.HasColumn(col)) {
          return NotFoundError("column " + col + " in table " + update.table);
        }
        tmpl.m_.insert(AttributeId{schema.name(), col});
        if (sql::IsLiteral(value)) {
          tmpl.assumptions_.has_embedded_constants = true;
        }
      }
      break;
    }
    case sql::StatementKind::kSelect:
      DSSP_UNREACHABLE("checked above");
  }
  return tmpl;
}

bool IsIgnorable(const UpdateTemplate& u, const QueryTemplate& q) {
  AttributeSet p_union_s = q.preserved_attributes();
  p_union_s.insert(q.selection_attributes().begin(),
                   q.selection_attributes().end());
  return Disjoint(u.modified_attributes(), p_union_s);
}

bool IsResultUnhelpful(const UpdateTemplate& u, const QueryTemplate& q) {
  return Disjoint(u.selection_attributes(), q.preserved_attributes());
}

}  // namespace dssp::templates
