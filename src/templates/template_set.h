#ifndef DSSP_TEMPLATES_TEMPLATE_SET_H_
#define DSSP_TEMPLATES_TEMPLATE_SET_H_

#include <string>
#include <string_view>
#include <vector>

#include "templates/template.h"

namespace dssp::templates {

// The fixed sets Q^T = {Q1..Qn} and U^T = {U1..Um} of one application
// (Section 2.1). Ids must be unique across queries and across updates.
class TemplateSet {
 public:
  TemplateSet() = default;

  Status AddQuery(QueryTemplate tmpl);
  Status AddUpdate(UpdateTemplate tmpl);

  // Parses `sql` and registers it with the next id ("Q<k>" / "U<k>").
  Status AddQuerySql(std::string_view sql, const catalog::Catalog& catalog);
  Status AddUpdateSql(std::string_view sql, const catalog::Catalog& catalog);

  const std::vector<QueryTemplate>& queries() const { return queries_; }
  const std::vector<UpdateTemplate>& updates() const { return updates_; }

  const QueryTemplate* FindQuery(std::string_view id) const;
  const UpdateTemplate* FindUpdate(std::string_view id) const;

  // Index of the template with `id` in queries()/updates(), or npos.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t QueryIndex(std::string_view id) const;
  size_t UpdateIndex(std::string_view id) const;

  size_t num_queries() const { return queries_.size(); }
  size_t num_updates() const { return updates_.size(); }

 private:
  std::vector<QueryTemplate> queries_;
  std::vector<UpdateTemplate> updates_;
};

}  // namespace dssp::templates

#endif  // DSSP_TEMPLATES_TEMPLATE_SET_H_
