#ifndef DSSP_TEMPLATES_TEMPLATE_H_
#define DSSP_TEMPLATES_TEMPLATE_H_

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "sql/ast.h"

namespace dssp::templates {

// A fully-qualified physical attribute `table.column` (aliases resolved).
struct AttributeId {
  std::string table;
  std::string column;

  friend auto operator<=>(const AttributeId& a, const AttributeId& b) =
      default;

  std::string ToString() const { return table + "." + column; }
};

using AttributeSet = std::set<AttributeId>;

std::string AttributeSetToString(const AttributeSet& set);

// Set intersection emptiness: true if a and b share no attribute.
bool Disjoint(const AttributeSet& a, const AttributeSet& b);

// The paper's update classes (Section 2.1 / Table 6).
enum class UpdateClass {
  kInsertion,     // U-T-I
  kDeletion,      // U-T-D
  kModification,  // U-T-M
};

const char* UpdateClassName(UpdateClass cls);

// Which of the paper's Section 2.1.1 simplifying assumptions a template
// violates. A violating template gets the conservative treatment: no
// encryption is recommended for any pair involving it.
struct AssumptionReport {
  bool compares_within_relation = false;  // Assumption 1 violated.
  bool has_embedded_constants = false;    // Assumption 2 violated.
  bool cartesian_product = false;         // Assumption 3 violated (queries).

  bool ok() const {
    return !compares_within_relation && !has_embedded_constants &&
           !cartesian_product;
  }
  std::string ToString() const;
};

// A query template: a SELECT statement with `?` parameters, plus the derived
// attribute sets and classifications the static analysis consumes.
//
//   S(Q): attributes in selection predicates or ORDER BY     (Table 5)
//   P(Q): attributes preserved in the result                 (Table 5)
//   E:    only equality joins (or no joins)                  (Table 6)
//   N:    no top-k construct                                 (Table 6)
class QueryTemplate {
 public:
  // Parses and analyzes `sql` against `catalog`. Fails if the statement is
  // not a SELECT, references unknown tables/columns, or is ambiguous.
  static StatusOr<QueryTemplate> Create(std::string id, std::string_view sql,
                                        const catalog::Catalog& catalog);

  const std::string& id() const { return id_; }
  const sql::Statement& statement() const { return statement_; }
  std::string ToSql() const { return sql::ToSql(statement_); }
  int num_params() const { return statement_.num_params; }

  // Binds parameters, producing an executable statement instance.
  sql::Statement Bind(const std::vector<sql::Value>& params) const {
    return sql::BindParameters(statement_, params);
  }

  const AttributeSet& selection_attributes() const { return s_; }
  const AttributeSet& preserved_attributes() const { return p_; }

  bool only_equality_joins() const { return only_equality_joins_; }  // E
  bool no_top_k() const { return !statement_.select().limit.has_value(); }
  bool has_aggregation() const { return has_aggregation_; }

  // Provenance of each result column, in the engine's output order (stars
  // expanded). `slot`/`attribute` are unset for aggregate outputs, whose
  // values are derived rather than preserved.
  struct OutputColumn {
    std::optional<size_t> slot;                    // FROM-slot index.
    std::optional<AttributeId> attribute;          // Physical attribute.
  };
  const std::vector<OutputColumn>& output_columns() const {
    return output_columns_;
  }

  const AssumptionReport& assumptions() const { return assumptions_; }

  // Structural match of a fully-bound SELECT instance against this template:
  // same select list, FROM, GROUP BY and ORDER BY; each WHERE conjunct has
  // the same operator and column operands, template literals equal the
  // instance's literals exactly, and template parameters capture the
  // instance's literals (a parameter appearing twice must bind the same
  // value). On success fills `params` (resized to num_params()) with the
  // captured values and returns true; on mismatch returns false and leaves
  // `params` unspecified.
  bool MatchInstance(const sql::SelectStatement& bound,
                     std::vector<sql::Value>* params) const;

 private:
  QueryTemplate() = default;

  std::string id_;
  sql::Statement statement_;
  AttributeSet s_;
  AttributeSet p_;
  std::vector<OutputColumn> output_columns_;
  bool only_equality_joins_ = true;
  bool has_aggregation_ = false;
  AssumptionReport assumptions_;
};

// An update template: INSERT / DELETE / UPDATE with `?` parameters, plus
// derived sets:
//
//   S(U): attributes used in selection predicates            (Table 5)
//   M(U): attributes modified; for insertions and deletions, all attributes
//         of the target table                                (Table 5)
class UpdateTemplate {
 public:
  static StatusOr<UpdateTemplate> Create(std::string id, std::string_view sql,
                                         const catalog::Catalog& catalog);

  const std::string& id() const { return id_; }
  const sql::Statement& statement() const { return statement_; }
  std::string ToSql() const { return sql::ToSql(statement_); }
  int num_params() const { return statement_.num_params; }

  sql::Statement Bind(const std::vector<sql::Value>& params) const {
    return sql::BindParameters(statement_, params);
  }

  UpdateClass update_class() const { return class_; }
  const std::string& table() const { return table_; }

  const AttributeSet& selection_attributes() const { return s_; }
  const AttributeSet& modified_attributes() const { return m_; }

  const AssumptionReport& assumptions() const { return assumptions_; }

 private:
  UpdateTemplate() = default;

  std::string id_;
  sql::Statement statement_;
  UpdateClass class_ = UpdateClass::kInsertion;
  std::string table_;
  AttributeSet s_;
  AttributeSet m_;
  AssumptionReport assumptions_;
};

// Canonical shape key of a SELECT: its SQL text with every literal and
// parameter operand (WHERE operands and LIMIT) masked to `?`. All bound
// instances of one template share the template's own shape key, so a
// key-indexed template lookup narrows MatchInstance to a handful of
// candidates.
std::string SelectShapeKey(const sql::SelectStatement& stmt);

// Pair property G (Table 6): U is *ignorable* for Q iff
// M(U) ∩ (P(Q) ∪ S(Q)) = {}. An ignorable update can never change the
// query's result (Lemma 1: A_ij = 0).
bool IsIgnorable(const UpdateTemplate& u, const QueryTemplate& q);

// Pair property H (Table 6): Q is *result-unhelpful* for U iff
// S(U) ∩ P(Q) = {} — the cached result carries no attribute the update's
// predicate mentions, so inspecting it cannot reduce invalidations.
bool IsResultUnhelpful(const UpdateTemplate& u, const QueryTemplate& q);

}  // namespace dssp::templates

#endif  // DSSP_TEMPLATES_TEMPLATE_H_
