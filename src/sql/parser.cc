#include "sql/parser.h"

#include <cstdlib>

#include "sql/tokenizer.h"

namespace dssp::sql {

namespace {

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseStatement() {
    Statement stmt;
    if (PeekKeyword("SELECT")) {
      DSSP_ASSIGN_OR_RETURN(SelectStatement s, ParseSelect());
      stmt.node = std::move(s);
    } else if (PeekKeyword("INSERT")) {
      DSSP_ASSIGN_OR_RETURN(InsertStatement s, ParseInsert());
      stmt.node = std::move(s);
    } else if (PeekKeyword("DELETE")) {
      DSSP_ASSIGN_OR_RETURN(DeleteStatement s, ParseDelete());
      stmt.node = std::move(s);
    } else if (PeekKeyword("UPDATE")) {
      DSSP_ASSIGN_OR_RETURN(UpdateStatement s, ParseUpdate());
      stmt.node = std::move(s);
    } else {
      return Unexpected("SELECT, INSERT, DELETE, or UPDATE");
    }
    if (Peek().type != TokenType::kEnd) {
      return Unexpected("end of statement");
    }
    stmt.num_params = next_param_;
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool PeekSymbol(std::string_view sym) const {
    return Peek().type == TokenType::kSymbol && Peek().text == sym;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeSymbol(std::string_view sym) {
    if (PeekSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Unexpected(std::string_view expected) const {
    return ParseError("expected " + std::string(expected) + " but found '" +
                      Peek().text + "' at offset " +
                      std::to_string(Peek().offset));
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) return Unexpected(kw);
    return Status::Ok();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!ConsumeSymbol(sym)) return Unexpected("'" + std::string(sym) + "'");
    return Status::Ok();
  }

  StatusOr<std::string> ParseIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Unexpected("identifier");
    }
    return Advance().text;
  }

  // col := ident [ '.' ident ]
  StatusOr<ColumnRef> ParseColumnRef() {
    DSSP_ASSIGN_OR_RETURN(std::string first, ParseIdentifier());
    ColumnRef ref;
    if (ConsumeSymbol(".")) {
      DSSP_ASSIGN_OR_RETURN(std::string second, ParseIdentifier());
      ref.table = std::move(first);
      ref.column = std::move(second);
    } else {
      ref.column = std::move(first);
    }
    return ref;
  }

  StatusOr<Operand> ParseOperand() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kIntLiteral: {
        Advance();
        return Operand(Value(static_cast<int64_t>(
            std::strtoll(tok.text.c_str(), nullptr, 10))));
      }
      case TokenType::kDoubleLiteral: {
        Advance();
        return Operand(Value(std::strtod(tok.text.c_str(), nullptr)));
      }
      case TokenType::kStringLiteral: {
        Advance();
        return Operand(Value(tok.text));
      }
      case TokenType::kParameter: {
        Advance();
        return Operand(Parameter{next_param_++});
      }
      case TokenType::kKeyword: {
        if (tok.text == "NULL") {
          Advance();
          return Operand(Value::Null());
        }
        return Unexpected("operand");
      }
      case TokenType::kIdentifier: {
        DSSP_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        return Operand(std::move(ref));
      }
      default:
        return Unexpected("operand");
    }
  }

  StatusOr<CompareOp> ParseCompareOp() {
    if (Peek().type != TokenType::kSymbol) {
      return Unexpected("comparison operator");
    }
    const std::string& sym = Peek().text;
    CompareOp op;
    if (sym == "=") {
      op = CompareOp::kEq;
    } else if (sym == "<") {
      op = CompareOp::kLt;
    } else if (sym == "<=") {
      op = CompareOp::kLe;
    } else if (sym == ">") {
      op = CompareOp::kGt;
    } else if (sym == ">=") {
      op = CompareOp::kGe;
    } else {
      return Unexpected("comparison operator");
    }
    Advance();
    return op;
  }

  StatusOr<std::vector<Comparison>> ParseWhere() {
    std::vector<Comparison> where;
    if (!ConsumeKeyword("WHERE")) return where;
    while (true) {
      Comparison cmp;
      DSSP_ASSIGN_OR_RETURN(cmp.lhs, ParseOperand());
      DSSP_ASSIGN_OR_RETURN(cmp.op, ParseCompareOp());
      DSSP_ASSIGN_OR_RETURN(cmp.rhs, ParseOperand());
      where.push_back(std::move(cmp));
      if (!ConsumeKeyword("AND")) break;
    }
    return where;
  }

  StatusOr<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().type == TokenType::kKeyword) {
      const std::string& kw = Peek().text;
      AggregateFunc func = AggregateFunc::kNone;
      if (kw == "MIN") func = AggregateFunc::kMin;
      else if (kw == "MAX") func = AggregateFunc::kMax;
      else if (kw == "COUNT") func = AggregateFunc::kCount;
      else if (kw == "SUM") func = AggregateFunc::kSum;
      else if (kw == "AVG") func = AggregateFunc::kAvg;
      if (func != AggregateFunc::kNone) {
        Advance();
        DSSP_RETURN_IF_ERROR(ExpectSymbol("("));
        item.func = func;
        if (ConsumeSymbol("*")) {
          if (func != AggregateFunc::kCount) {
            return ParseError("'*' argument only allowed for COUNT");
          }
          item.star = true;
        } else {
          DSSP_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        }
        DSSP_RETURN_IF_ERROR(ExpectSymbol(")"));
        return item;
      }
      return Unexpected("select item");
    }
    if (ConsumeSymbol("*")) {
      item.star = true;
      return item;
    }
    DSSP_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
    return item;
  }

  StatusOr<SelectStatement> ParseSelect() {
    DSSP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStatement stmt;
    while (true) {
      DSSP_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    DSSP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      TableRef ref;
      DSSP_ASSIGN_OR_RETURN(ref.table, ParseIdentifier());
      if (ConsumeKeyword("AS")) {
        DSSP_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier());
      } else if (Peek().type == TokenType::kIdentifier) {
        // Implicit alias: FROM toys t1.
        ref.alias = Advance().text;
      }
      stmt.from.push_back(std::move(ref));
      if (!ConsumeSymbol(",")) break;
    }
    DSSP_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    if (ConsumeKeyword("GROUP")) {
      DSSP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        DSSP_ASSIGN_OR_RETURN(ColumnRef col, ParseColumnRef());
        stmt.group_by.push_back(std::move(col));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("ORDER")) {
      DSSP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderByItem item;
        DSSP_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        if (ConsumeKeyword("DESC")) {
          item.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().type == TokenType::kIntLiteral) {
        stmt.limit = Operand(Value(static_cast<int64_t>(
            std::strtoll(Advance().text.c_str(), nullptr, 10))));
      } else if (Peek().type == TokenType::kParameter) {
        Advance();
        stmt.limit = Operand(Parameter{next_param_++});
      } else {
        return Unexpected("LIMIT count");
      }
    }
    return stmt;
  }

  StatusOr<InsertStatement> ParseInsert() {
    DSSP_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    DSSP_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStatement stmt;
    DSSP_ASSIGN_OR_RETURN(stmt.table, ParseIdentifier());
    DSSP_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      DSSP_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
      stmt.columns.push_back(std::move(col));
      if (!ConsumeSymbol(",")) break;
    }
    DSSP_RETURN_IF_ERROR(ExpectSymbol(")"));
    DSSP_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    DSSP_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      DSSP_ASSIGN_OR_RETURN(Operand op, ParseOperand());
      if (IsColumn(op)) {
        return ParseError("INSERT values must be literals or parameters");
      }
      stmt.values.push_back(std::move(op));
      if (!ConsumeSymbol(",")) break;
    }
    DSSP_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (stmt.columns.size() != stmt.values.size()) {
      return ParseError("INSERT column/value count mismatch");
    }
    return stmt;
  }

  StatusOr<DeleteStatement> ParseDelete() {
    DSSP_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    DSSP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStatement stmt;
    DSSP_ASSIGN_OR_RETURN(stmt.table, ParseIdentifier());
    DSSP_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    return stmt;
  }

  StatusOr<UpdateStatement> ParseUpdate() {
    DSSP_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    UpdateStatement stmt;
    DSSP_ASSIGN_OR_RETURN(stmt.table, ParseIdentifier());
    DSSP_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      DSSP_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
      DSSP_RETURN_IF_ERROR(ExpectSymbol("="));
      DSSP_ASSIGN_OR_RETURN(Operand op, ParseOperand());
      if (IsColumn(op)) {
        return ParseError("UPDATE SET values must be literals or parameters");
      }
      stmt.set.emplace_back(std::move(col), std::move(op));
      if (!ConsumeSymbol(",")) break;
    }
    DSSP_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_param_ = 0;
};

}  // namespace

StatusOr<Statement> Parse(std::string_view sql) {
  DSSP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Statement ParseOrDie(std::string_view sql) {
  StatusOr<Statement> result = Parse(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "ParseOrDie failed for [%.*s]: %s\n",
                 static_cast<int>(sql.size()), sql.data(),
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace dssp::sql
