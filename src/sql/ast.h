#ifndef DSSP_SQL_AST_H_
#define DSSP_SQL_AST_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sql/value.h"

namespace dssp::sql {

// The query/update language of the paper (Section 2.1):
//  - SELECT-project-join queries with conjunctive comparison predicates,
//    optional ORDER BY, top-k (LIMIT), and (Section 5.1.1) aggregation /
//    GROUP BY constructs;
//  - INSERT of a fully specified row, DELETE with an arithmetic predicate,
//    and UPDATE (modification) of non-key attributes.
// Templates contain `?` parameters bound at execution time.

// The five comparison operators of the paper's selection predicates.
enum class CompareOp {
  kEq,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpSymbol(CompareOp op);

// Flips the operator as if swapping the operand sides (e.g., a < b ~ b > a).
CompareOp ReverseCompareOp(CompareOp op);

// A (possibly qualified) column reference. `table` is the alias or table
// name as written; empty if unqualified.
struct ColumnRef {
  std::string table;
  std::string column;

  friend bool operator==(const ColumnRef& a, const ColumnRef& b) = default;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

// A `?` placeholder; `index` is its zero-based position in the statement.
struct Parameter {
  int index = 0;

  friend bool operator==(const Parameter& a, const Parameter& b) = default;
};

// Either a literal, a column reference, or a parameter.
using Operand = std::variant<Value, ColumnRef, Parameter>;

bool IsLiteral(const Operand& op);
bool IsColumn(const Operand& op);
bool IsParameter(const Operand& op);

std::string OperandToString(const Operand& op);

// One conjunct of a WHERE clause: `lhs op rhs`.
struct Comparison {
  Operand lhs;
  CompareOp op;
  Operand rhs;
};

enum class AggregateFunc {
  kNone = 0,
  kMin,
  kMax,
  kCount,
  kSum,
  kAvg,
};

const char* AggregateFuncName(AggregateFunc func);

// One item of the select list: a column, `*`, or an aggregate. `star` with
// func == kNone means `SELECT *`; with func == kCount means COUNT(*).
struct SelectItem {
  AggregateFunc func = AggregateFunc::kNone;
  bool star = false;
  ColumnRef column;
};

// A FROM-clause entry. The effective name for qualification is the alias if
// present, otherwise the table name.
struct TableRef {
  std::string table;
  std::string alias;

  const std::string& effective_name() const {
    return alias.empty() ? table : alias;
  }
};

struct OrderByItem {
  ColumnRef column;
  bool descending = false;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<Comparison> where;  // Conjunction of comparisons.
  std::vector<ColumnRef> group_by;
  std::vector<OrderByItem> order_by;
  std::optional<Operand> limit;  // Integer literal or parameter.

  bool has_aggregate() const;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;
  std::vector<Operand> values;  // Literals or parameters only.
};

struct DeleteStatement {
  std::string table;
  std::vector<Comparison> where;
};

struct UpdateStatement {
  std::string table;
  // SET column = operand (literal or parameter).
  std::vector<std::pair<std::string, Operand>> set;
  std::vector<Comparison> where;
};

enum class StatementKind {
  kSelect,
  kInsert,
  kDelete,
  kUpdate,
};

const char* StatementKindName(StatementKind kind);

// A parsed SQL statement of any of the four kinds.
struct Statement {
  std::variant<SelectStatement, InsertStatement, DeleteStatement,
               UpdateStatement>
      node;
  int num_params = 0;

  StatementKind kind() const {
    switch (node.index()) {
      case 0:
        return StatementKind::kSelect;
      case 1:
        return StatementKind::kInsert;
      case 2:
        return StatementKind::kDelete;
      default:
        return StatementKind::kUpdate;
    }
  }

  bool is_query() const { return kind() == StatementKind::kSelect; }
  bool is_update() const { return !is_query(); }

  const SelectStatement& select() const {
    return std::get<SelectStatement>(node);
  }
  SelectStatement& select() { return std::get<SelectStatement>(node); }
  const InsertStatement& insert() const {
    return std::get<InsertStatement>(node);
  }
  InsertStatement& insert() { return std::get<InsertStatement>(node); }
  const DeleteStatement& del() const {
    return std::get<DeleteStatement>(node);
  }
  DeleteStatement& del() { return std::get<DeleteStatement>(node); }
  const UpdateStatement& update() const {
    return std::get<UpdateStatement>(node);
  }
  UpdateStatement& update() { return std::get<UpdateStatement>(node); }
};

// Renders a statement back to canonical SQL text. The output re-parses to an
// equivalent statement; parameters print as `?`.
std::string ToSql(const Statement& stmt);
std::string ToSql(const SelectStatement& stmt);
std::string ToSql(const InsertStatement& stmt);
std::string ToSql(const DeleteStatement& stmt);
std::string ToSql(const UpdateStatement& stmt);

// Replaces every Parameter operand with the corresponding literal from
// `params`. DSSP_CHECKs that `params` covers all parameter indexes.
Statement BindParameters(const Statement& stmt,
                         const std::vector<Value>& params);

}  // namespace dssp::sql

#endif  // DSSP_SQL_AST_H_
