#include "sql/ast.h"

#include "common/macros.h"

namespace dssp::sql {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  DSSP_UNREACHABLE("bad CompareOp");
}

CompareOp ReverseCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  DSSP_UNREACHABLE("bad CompareOp");
}

bool IsLiteral(const Operand& op) {
  return std::holds_alternative<Value>(op);
}
bool IsColumn(const Operand& op) {
  return std::holds_alternative<ColumnRef>(op);
}
bool IsParameter(const Operand& op) {
  return std::holds_alternative<Parameter>(op);
}

std::string OperandToString(const Operand& op) {
  if (IsLiteral(op)) return std::get<Value>(op).ToSqlLiteral();
  if (IsColumn(op)) return std::get<ColumnRef>(op).ToString();
  return "?";
}

const char* AggregateFuncName(AggregateFunc func) {
  switch (func) {
    case AggregateFunc::kNone:
      return "";
    case AggregateFunc::kMin:
      return "MIN";
    case AggregateFunc::kMax:
      return "MAX";
    case AggregateFunc::kCount:
      return "COUNT";
    case AggregateFunc::kSum:
      return "SUM";
    case AggregateFunc::kAvg:
      return "AVG";
  }
  DSSP_UNREACHABLE("bad AggregateFunc");
}

bool SelectStatement::has_aggregate() const {
  for (const SelectItem& item : items) {
    if (item.func != AggregateFunc::kNone) return true;
  }
  return false;
}

const char* StatementKindName(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect:
      return "select";
    case StatementKind::kInsert:
      return "insert";
    case StatementKind::kDelete:
      return "delete";
    case StatementKind::kUpdate:
      return "update";
  }
  DSSP_UNREACHABLE("bad StatementKind");
}

namespace {

std::string WhereToSql(const std::vector<Comparison>& where) {
  if (where.empty()) return "";
  std::string out = " WHERE ";
  for (size_t i = 0; i < where.size(); ++i) {
    if (i != 0) out += " AND ";
    out += OperandToString(where[i].lhs);
    out += " ";
    out += CompareOpSymbol(where[i].op);
    out += " ";
    out += OperandToString(where[i].rhs);
  }
  return out;
}

}  // namespace

std::string ToSql(const SelectStatement& stmt) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i != 0) out += ", ";
    const SelectItem& item = stmt.items[i];
    if (item.func != AggregateFunc::kNone) {
      out += AggregateFuncName(item.func);
      out += "(";
      out += item.star ? "*" : item.column.ToString();
      out += ")";
    } else if (item.star) {
      out += "*";
    } else {
      out += item.column.ToString();
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i != 0) out += ", ";
    out += stmt.from[i].table;
    if (!stmt.from[i].alias.empty()) {
      out += " AS ";
      out += stmt.from[i].alias;
    }
  }
  out += WhereToSql(stmt.where);
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i != 0) out += ", ";
      out += stmt.group_by[i].ToString();
    }
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i != 0) out += ", ";
      out += stmt.order_by[i].column.ToString();
      if (stmt.order_by[i].descending) out += " DESC";
    }
  }
  if (stmt.limit.has_value()) {
    out += " LIMIT ";
    out += OperandToString(*stmt.limit);
  }
  return out;
}

std::string ToSql(const InsertStatement& stmt) {
  std::string out = "INSERT INTO ";
  out += stmt.table;
  out += " (";
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    if (i != 0) out += ", ";
    out += stmt.columns[i];
  }
  out += ") VALUES (";
  for (size_t i = 0; i < stmt.values.size(); ++i) {
    if (i != 0) out += ", ";
    out += OperandToString(stmt.values[i]);
  }
  out += ")";
  return out;
}

std::string ToSql(const DeleteStatement& stmt) {
  std::string out = "DELETE FROM ";
  out += stmt.table;
  out += WhereToSql(stmt.where);
  return out;
}

std::string ToSql(const UpdateStatement& stmt) {
  std::string out = "UPDATE ";
  out += stmt.table;
  out += " SET ";
  for (size_t i = 0; i < stmt.set.size(); ++i) {
    if (i != 0) out += ", ";
    out += stmt.set[i].first;
    out += " = ";
    out += OperandToString(stmt.set[i].second);
  }
  out += WhereToSql(stmt.where);
  return out;
}

std::string ToSql(const Statement& stmt) {
  switch (stmt.kind()) {
    case StatementKind::kSelect:
      return ToSql(stmt.select());
    case StatementKind::kInsert:
      return ToSql(stmt.insert());
    case StatementKind::kDelete:
      return ToSql(stmt.del());
    case StatementKind::kUpdate:
      return ToSql(stmt.update());
  }
  DSSP_UNREACHABLE("bad StatementKind");
}

namespace {

void BindOperand(Operand& op, const std::vector<Value>& params) {
  if (IsParameter(op)) {
    const int index = std::get<Parameter>(op).index;
    DSSP_CHECK(index >= 0 &&
               static_cast<size_t>(index) < params.size());
    op = params[index];
  }
}

void BindWhere(std::vector<Comparison>& where,
               const std::vector<Value>& params) {
  for (Comparison& cmp : where) {
    BindOperand(cmp.lhs, params);
    BindOperand(cmp.rhs, params);
  }
}

}  // namespace

Statement BindParameters(const Statement& stmt,
                         const std::vector<Value>& params) {
  DSSP_CHECK(static_cast<size_t>(stmt.num_params) <= params.size());
  Statement bound = stmt;
  bound.num_params = 0;
  switch (bound.kind()) {
    case StatementKind::kSelect: {
      SelectStatement& s = bound.select();
      BindWhere(s.where, params);
      if (s.limit.has_value()) BindOperand(*s.limit, params);
      break;
    }
    case StatementKind::kInsert: {
      for (Operand& v : bound.insert().values) BindOperand(v, params);
      break;
    }
    case StatementKind::kDelete: {
      BindWhere(bound.del().where, params);
      break;
    }
    case StatementKind::kUpdate: {
      UpdateStatement& u = bound.update();
      for (auto& [col, op] : u.set) BindOperand(op, params);
      BindWhere(u.where, params);
      break;
    }
  }
  return bound;
}

}  // namespace dssp::sql
