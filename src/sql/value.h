#ifndef DSSP_SQL_VALUE_H_
#define DSSP_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/macros.h"

namespace dssp::sql {

// Runtime value types supported by the engine.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

// A dynamically-typed SQL value. Comparisons between int64 and double are
// performed numerically; all other cross-type comparisons are a programming
// error (the binder checks types before execution).
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(int v) : rep_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (rep_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return rep_.index() == 0; }

  int64_t AsInt64() const {
    DSSP_CHECK(type() == ValueType::kInt64);
    return std::get<int64_t>(rep_);
  }
  double AsDouble() const {
    if (type() == ValueType::kInt64) {
      return static_cast<double>(std::get<int64_t>(rep_));
    }
    DSSP_CHECK(type() == ValueType::kDouble);
    return std::get<double>(rep_);
  }
  const std::string& AsString() const {
    DSSP_CHECK(type() == ValueType::kString);
    return std::get<std::string>(rep_);
  }

  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  // Three-way comparison: -1, 0, or +1. Nulls compare equal to each other
  // and less than everything else (total order for sorting and keys).
  // Requires comparable types (numeric/numeric or string/string) otherwise.
  int Compare(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

  // SQL-literal rendering: NULL, 42, 3.5, 'text' (quotes escaped by
  // doubling). Round-trips through the parser.
  std::string ToSqlLiteral() const;

  // Compact unambiguous encoding used for hashing/cache keys (type tag +
  // payload, length-prefixed).
  std::string EncodeForKey() const;

  // Decodes one value produced by EncodeForKey starting at `*pos`, advancing
  // `*pos` past it. Returns false on malformed/truncated input.
  static bool DecodeFromKey(std::string_view data, size_t* pos, Value* out);

  uint64_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

}  // namespace dssp::sql

#endif  // DSSP_SQL_VALUE_H_
