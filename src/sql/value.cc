#include "sql/value.h"

#include <cstdio>
#include <cstring>

#include "common/hash.h"

namespace dssp::sql {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

int Value::Compare(const Value& other) const {
  const bool a_null = is_null();
  const bool b_null = other.is_null();
  if (a_null || b_null) {
    if (a_null && b_null) return 0;
    return a_null ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      const int64_t a = AsInt64();
      const int64_t b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsDouble();
    const double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  DSSP_CHECK(type() == ValueType::kString &&
             other.type() == ValueType::kString);
  const int c = AsString().compare(other.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", AsDouble());
      std::string s(buf);
      // Ensure the literal re-parses as a double, not an integer.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  DSSP_UNREACHABLE("bad value type");
}

std::string Value::EncodeForKey() const {
  std::string out;
  out.push_back(static_cast<char>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64: {
      const int64_t v = AsInt64();
      out.append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case ValueType::kDouble: {
      const double v = AsDouble();
      out.append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case ValueType::kString: {
      const std::string& s = AsString();
      const uint64_t n = s.size();
      out.append(reinterpret_cast<const char*>(&n), sizeof(n));
      out += s;
      break;
    }
  }
  return out;
}

bool Value::DecodeFromKey(std::string_view data, size_t* pos, Value* out) {
  if (*pos >= data.size()) return false;
  const char tag = data[(*pos)++];
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kInt64: {
      if (*pos + sizeof(int64_t) > data.size()) return false;
      int64_t v;
      std::memcpy(&v, data.data() + *pos, sizeof(v));
      *pos += sizeof(v);
      *out = Value(v);
      return true;
    }
    case ValueType::kDouble: {
      if (*pos + sizeof(double) > data.size()) return false;
      double v;
      std::memcpy(&v, data.data() + *pos, sizeof(v));
      *pos += sizeof(v);
      *out = Value(v);
      return true;
    }
    case ValueType::kString: {
      if (*pos + sizeof(uint64_t) > data.size()) return false;
      uint64_t len;
      std::memcpy(&len, data.data() + *pos, sizeof(len));
      *pos += sizeof(len);
      if (*pos + len > data.size()) return false;
      *out = Value(std::string(data.substr(*pos, len)));
      *pos += len;
      return true;
    }
    default:
      return false;
  }
}

uint64_t Value::Hash() const {
  // Hash int64 and double consistently with Compare's numeric equality
  // (e.g., Value(2) == Value(2.0) must hash equally).
  if (is_numeric()) {
    const double d = AsDouble();
    if (type() == ValueType::kInt64 ||
        (d == static_cast<double>(static_cast<int64_t>(d)) &&
         d >= -9.2e18 && d <= 9.2e18)) {
      const int64_t v = type() == ValueType::kInt64
                            ? AsInt64()
                            : static_cast<int64_t>(d);
      return Hash64(std::string_view(reinterpret_cast<const char*>(&v),
                                     sizeof(v)));
    }
    return Hash64(std::string_view(reinterpret_cast<const char*>(&d),
                                   sizeof(d)));
  }
  return Hash64(EncodeForKey());
}

}  // namespace dssp::sql
