#include "sql/tokenizer.h"

#include <cctype>

#include "common/strings.h"

namespace dssp::sql {

namespace {

constexpr const char* kKeywords[] = {
    "SELECT", "FROM",  "WHERE",  "AND",    "ORDER",  "BY",     "GROUP",
    "LIMIT",  "AS",    "INSERT", "INTO",   "VALUES", "DELETE", "UPDATE",
    "SET",    "ASC",   "DESC",   "MIN",    "MAX",    "COUNT",  "SUM",
    "AVG",    "NULL",
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsKeyword(std::string_view word) {
  for (const char* kw : kKeywords) {
    if (AsciiEqualsIgnoreCase(word, kw)) return true;
  }
  return false;
}

StatusOr<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      std::string word(sql.substr(i, j - i));
      if (IsKeyword(word)) {
        tokens.push_back({TokenType::kKeyword, AsciiToUpper(word), start});
      } else {
        tokens.push_back({TokenType::kIdentifier, std::move(word), start});
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
                       ((sql[j] == '+' || sql[j] == '-') &&
                        (sql[j - 1] == 'e' || sql[j - 1] == 'E')))) {
        if (sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E') is_double = true;
        ++j;
      }
      tokens.push_back({is_double ? TokenType::kDoubleLiteral
                                  : TokenType::kIntLiteral,
                        std::string(sql.substr(i, j - i)), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string content;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            content += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        content += sql[j];
        ++j;
      }
      if (!closed) {
        return ParseError("unterminated string literal at offset " +
                          std::to_string(start));
      }
      tokens.push_back({TokenType::kStringLiteral, std::move(content), start});
      i = j;
      continue;
    }
    if (c == '?') {
      tokens.push_back({TokenType::kParameter, "?", start});
      ++i;
      continue;
    }
    if (c == '<' || c == '>') {
      if (i + 1 < n && sql[i + 1] == '=') {
        tokens.push_back(
            {TokenType::kSymbol, std::string(sql.substr(i, 2)), start});
        i += 2;
      } else {
        tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
        ++i;
      }
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '.' || c == '*' ||
        c == '=') {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return ParseError(std::string("unexpected character '") + c +
                      "' at offset " + std::to_string(start));
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace dssp::sql
