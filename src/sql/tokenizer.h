#ifndef DSSP_SQL_TOKENIZER_H_
#define DSSP_SQL_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/value.h"

namespace dssp::sql {

enum class TokenType {
  kIdentifier,   // toys, toy_id
  kKeyword,      // SELECT, FROM, ... (uppercased in `text`)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // unquoted/unescaped content in `text`
  kParameter,      // ?
  kSymbol,         // ( ) , . * = < <= > >=
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;  // Keywords uppercased; identifiers as written.
  size_t offset = 0;  // Byte offset in the input, for error messages.
};

// Splits `sql` into tokens. Keywords are recognized case-insensitively.
StatusOr<std::vector<Token>> Tokenize(std::string_view sql);

// True if `word` (case-insensitive) is a reserved keyword.
bool IsKeyword(std::string_view word);

}  // namespace dssp::sql

#endif  // DSSP_SQL_TOKENIZER_H_
