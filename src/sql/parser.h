#ifndef DSSP_SQL_PARSER_H_
#define DSSP_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace dssp::sql {

// Parses one SQL statement in the paper's query/update language:
//
//   SELECT item {, item} FROM table [AS alias] {, table [AS alias]}
//     [WHERE cmp {AND cmp}] [GROUP BY col {, col}]
//     [ORDER BY col [ASC|DESC] {, col [ASC|DESC]}] [LIMIT (int | ?)]
//   INSERT INTO table (col {, col}) VALUES (operand {, operand})
//   DELETE FROM table [WHERE cmp {AND cmp}]
//   UPDATE table SET col = operand {, col = operand} [WHERE cmp {AND cmp}]
//
// where item is col | * | MIN|MAX|COUNT|SUM|AVG '(' col | * ')',
// cmp is operand (= | < | <= | > | >=) operand, and operand is a column,
// an int/double/'string' literal, NULL, or `?`.
//
// Parameters are numbered left to right from 0.
StatusOr<Statement> Parse(std::string_view sql);

// Parse that DSSP_CHECKs success; for statically known statements.
Statement ParseOrDie(std::string_view sql);

}  // namespace dssp::sql

#endif  // DSSP_SQL_PARSER_H_
