#ifndef DSSP_CATALOG_SCHEMA_H_
#define DSSP_CATALOG_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/value.h"

namespace dssp::catalog {

// Column types (non-null; the engine additionally permits NULL values).
enum class ColumnType {
  kInt64,
  kDouble,
  kString,
};

const char* ColumnTypeName(ColumnType type);

// True if a runtime value of `value_type` may be stored in a column of
// `column_type` (NULL is always storable; int64 widens to double).
bool ValueFitsColumn(sql::ValueType value_type, ColumnType column_type);

struct Column {
  std::string name;
  ColumnType type;
};

// A foreign-key constraint: this table's `column` references
// `ref_table`.`ref_column` (which must be `ref_table`'s primary key).
struct ForeignKey {
  std::string column;
  std::string ref_table;
  std::string ref_column;
};

// Schema of one base relation, including its integrity constraints: the
// primary-key and foreign-key constraints the paper's Section 4.5 analysis
// consumes, plus single-column UNIQUE constraints (the natural third
// member of "basic database integrity constraints" — the analysis exploits
// them exactly like primary keys).
class TableSchema {
 public:
  TableSchema(std::string name, std::vector<Column> columns,
              std::vector<std::string> primary_key,
              std::vector<ForeignKey> foreign_keys = {},
              std::vector<std::string> unique_columns = {});

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  const std::vector<ForeignKey>& foreign_keys() const {
    return foreign_keys_;
  }
  const std::vector<std::string>& unique_columns() const {
    return unique_columns_;
  }

  // True if `column` alone determines at most one row: the single-column
  // primary key or a declared UNIQUE column.
  bool IsUniqueColumn(std::string_view column) const;

  // Index of `column` in columns(), or nullopt.
  std::optional<size_t> ColumnIndex(std::string_view column) const;

  bool HasColumn(std::string_view column) const {
    return ColumnIndex(column).has_value();
  }

  // True if `column` is part of the primary key.
  bool IsPrimaryKeyColumn(std::string_view column) const;

  // True if the primary key is exactly the single column `column`.
  bool IsSingleColumnPrimaryKey(std::string_view column) const {
    return primary_key_.size() == 1 && primary_key_[0] == column;
  }

  size_t num_columns() const { return columns_.size(); }

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::string> primary_key_;  // May be empty (no PK).
  std::vector<ForeignKey> foreign_keys_;
  std::vector<std::string> unique_columns_;
};

// The set of base relations of one application's database.
class Catalog {
 public:
  Catalog() = default;

  // Registers a table. Fails on duplicate names or malformed constraints
  // (unknown PK/FK columns; FK referencing a missing table/non-PK column —
  // FK targets must already be registered).
  Status AddTable(TableSchema schema);

  const TableSchema* FindTable(std::string_view name) const;

  // DSSP_CHECKs that the table exists.
  const TableSchema& GetTable(std::string_view name) const;

  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, TableSchema, std::less<>> tables_;
};

}  // namespace dssp::catalog

#endif  // DSSP_CATALOG_SCHEMA_H_
