#include "catalog/schema.h"

namespace dssp::catalog {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "unknown";
}

bool ValueFitsColumn(sql::ValueType value_type, ColumnType column_type) {
  switch (value_type) {
    case sql::ValueType::kNull:
      return true;
    case sql::ValueType::kInt64:
      return column_type == ColumnType::kInt64 ||
             column_type == ColumnType::kDouble;
    case sql::ValueType::kDouble:
      return column_type == ColumnType::kDouble;
    case sql::ValueType::kString:
      return column_type == ColumnType::kString;
  }
  return false;
}

TableSchema::TableSchema(std::string name, std::vector<Column> columns,
                         std::vector<std::string> primary_key,
                         std::vector<ForeignKey> foreign_keys,
                         std::vector<std::string> unique_columns)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      primary_key_(std::move(primary_key)),
      foreign_keys_(std::move(foreign_keys)),
      unique_columns_(std::move(unique_columns)) {}

bool TableSchema::IsUniqueColumn(std::string_view column) const {
  if (IsSingleColumnPrimaryKey(column)) return true;
  for (const std::string& unique : unique_columns_) {
    if (unique == column) return true;
  }
  return false;
}

std::optional<size_t> TableSchema::ColumnIndex(
    std::string_view column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return i;
  }
  return std::nullopt;
}

bool TableSchema::IsPrimaryKeyColumn(std::string_view column) const {
  for (const std::string& pk : primary_key_) {
    if (pk == column) return true;
  }
  return false;
}

Status Catalog::AddTable(TableSchema schema) {
  if (tables_.contains(schema.name())) {
    return AlreadyExistsError("table " + schema.name());
  }
  for (const std::string& pk : schema.primary_key()) {
    if (!schema.HasColumn(pk)) {
      return InvalidArgumentError("primary key column " + pk +
                                  " not in table " + schema.name());
    }
  }
  for (const std::string& unique : schema.unique_columns()) {
    if (!schema.HasColumn(unique)) {
      return InvalidArgumentError("unique column " + unique +
                                  " not in table " + schema.name());
    }
  }
  for (const ForeignKey& fk : schema.foreign_keys()) {
    if (!schema.HasColumn(fk.column)) {
      return InvalidArgumentError("foreign key column " + fk.column +
                                  " not in table " + schema.name());
    }
    // A self-referencing FK (e.g. employees.manager_id -> employees.id)
    // resolves against the table being added, which is not in tables_ yet.
    const TableSchema* ref =
        fk.ref_table == schema.name() ? &schema : FindTable(fk.ref_table);
    if (ref == nullptr) {
      return InvalidArgumentError("foreign key of " + schema.name() +
                                  " references unknown table " +
                                  fk.ref_table);
    }
    if (!ref->IsSingleColumnPrimaryKey(fk.ref_column)) {
      return InvalidArgumentError(
          "foreign key of " + schema.name() + " must reference the "
          "single-column primary key of " + fk.ref_table);
    }
  }
  std::string name = schema.name();
  tables_.emplace(std::move(name), std::move(schema));
  return Status::Ok();
}

const TableSchema* Catalog::FindTable(std::string_view name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const TableSchema& Catalog::GetTable(std::string_view name) const {
  const TableSchema* table = FindTable(name);
  DSSP_CHECK(table != nullptr);
  return *table;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, schema] : tables_) names.push_back(name);
  return names;
}

}  // namespace dssp::catalog
