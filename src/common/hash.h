#ifndef DSSP_COMMON_HASH_H_
#define DSSP_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dssp {

// SipHash-2-4 keyed pseudo-random function (Aumasson & Bernstein).
// Used for hash indexes, cache-key digests, and as the round function of the
// deterministic cipher in crypto/. Deterministic for a fixed key.
uint64_t SipHash24(uint64_t k0, uint64_t k1, std::string_view data);

// Unkeyed convenience hash for in-process hash tables.
inline uint64_t Hash64(std::string_view data) {
  return SipHash24(0x736f6d6570736575ULL, 0x646f72616e646f6dULL, data);
}

// Combines two 64-bit hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace dssp

#endif  // DSSP_COMMON_HASH_H_
