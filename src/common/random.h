#ifndef DSSP_COMMON_RANDOM_H_
#define DSSP_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace dssp {

// Deterministic, seedable PRNG (xoshiro256**). Used everywhere in the project
// so that workloads, simulations, and tests are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

// Zipf-distributed integers over {1, ..., n} with exponent `theta`.
// Precomputes the CDF once; each sample is a binary search. The paper's
// bookstore workload uses Zipf-skewed book popularity (Brynjolfsson et al.).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double theta);

  // Returns a rank in {1, ..., n}; rank 1 is the most popular.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace dssp

#endif  // DSSP_COMMON_RANDOM_H_
