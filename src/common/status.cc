#include "common/status.h"

namespace dssp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kConstraintViolation:
      return "constraint violation";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kCorruptFrame:
      return "corrupt frame";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kStatusCodeEnd:
      break;
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status ConstraintViolationError(std::string message) {
  return Status(StatusCode::kConstraintViolation, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status CorruptFrameError(std::string message) {
  return Status(StatusCode::kCorruptFrame, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

}  // namespace dssp
