#ifndef DSSP_COMMON_STRINGS_H_
#define DSSP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace dssp {

// ASCII-only case conversion (SQL keywords are ASCII).
std::string AsciiToLower(std::string_view s);
std::string AsciiToUpper(std::string_view s);

// Case-insensitive ASCII equality.
bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b);

// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace dssp

#endif  // DSSP_COMMON_STRINGS_H_
