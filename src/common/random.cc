#include "common/random.h"

#include <algorithm>

namespace dssp {

namespace {

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  DSSP_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return v % n;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  DSSP_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  DSSP_CHECK(mean > 0);
  double u = NextDouble();
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  DSSP_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
    cdf_[i - 1] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace dssp
