#ifndef DSSP_COMMON_MUTEX_H_
#define DSSP_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/macros.h"

// Thin annotated wrappers over the standard-library synchronization types.
// libstdc++'s std::mutex/std::shared_mutex carry no thread-safety-analysis
// attributes, so fields guarded by them are invisible to -Wthread-safety;
// these wrappers put a DSSP_CAPABILITY on the lockable type and scoped
// capabilities on the RAII holders, which is all the analysis needs to check
// a DSSP_GUARDED_BY field end to end. They add no state and no behavior:
// every call forwards to the wrapped standard type.

namespace dssp {

// Exclusive mutex (wraps std::mutex).
class DSSP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DSSP_ACQUIRE() { mu_.lock(); }
  void Unlock() DSSP_RELEASE() { mu_.unlock(); }
  bool TryLock() DSSP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // The wrapped mutex, for std APIs that need the raw type (e.g. building a
  // std::unique_lock for deferred or multi-mutex locking). Callers taking
  // this path step outside the analysis and must say why.
  std::mutex& native() { return mu_; }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Scoped exclusive lock over Mutex (the std::lock_guard replacement).
class DSSP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DSSP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DSSP_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

// Reader/writer mutex (wraps std::shared_mutex).
class DSSP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() DSSP_ACQUIRE() { mu_.lock(); }
  void Unlock() DSSP_RELEASE() { mu_.unlock(); }
  void LockShared() DSSP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() DSSP_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive (writer) lock over SharedMutex.
class DSSP_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) DSSP_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() DSSP_RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Scoped shared (reader) lock over SharedMutex. The destructor is annotated
// with the generic DSSP_RELEASE (not RELEASE_SHARED): clang's analysis treats
// the generic form as releasing whichever mode was acquired, which is the
// convention annotated scoped readers use.
class DSSP_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) DSSP_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() DSSP_RELEASE() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable usable under a MutexLock. Wait() releases and reacquires
// the underlying mutex internally; from the analysis's point of view the
// capability is held across the call, which matches how guarded state may be
// touched immediately before and after waiting. Callers re-test their
// predicate in an explicit `while (!pred) cv.Wait(lock);` loop — the
// std::condition_variable lambda-predicate overload is deliberately not
// exposed, because the analysis checks lambdas as separate functions that do
// not inherit the caller's lock set.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dssp

#endif  // DSSP_COMMON_MUTEX_H_
