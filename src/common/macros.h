#ifndef DSSP_COMMON_MACROS_H_
#define DSSP_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Invariant-checking macros. A failed check indicates a programming error
// (not a recoverable condition) and aborts the process.
//
// DSSP_CHECK(cond)          - abort unless cond holds.
// DSSP_CHECK_OK(status)     - abort unless status.ok().
// DSSP_UNREACHABLE(msg)     - abort; marks logically unreachable code.

#define DSSP_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DSSP_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define DSSP_CHECK_OK(expr)                                                  \
  do {                                                                       \
    const auto& dssp_check_ok_status = (expr);                               \
    if (!dssp_check_ok_status.ok()) {                                        \
      std::fprintf(stderr, "DSSP_CHECK_OK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, dssp_check_ok_status.message().c_str());        \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define DSSP_UNREACHABLE(msg)                                                \
  do {                                                                       \
    std::fprintf(stderr, "DSSP_UNREACHABLE at %s:%d: %s\n", __FILE__,        \
                 __LINE__, msg);                                             \
    std::abort();                                                            \
  } while (0)

// Clang thread-safety-analysis annotations. Under Clang with -Wthread-safety
// these let the compiler prove the lock protocols that used to live only in
// comments: which mutex guards which field, which functions must (or must
// not) be called with a lock held, and which RAII types acquire/release a
// capability. Under other compilers every macro expands to nothing, so the
// annotated headers stay portable.
//
// The annotated capability types live in common/mutex.h (dssp::Mutex,
// dssp::SharedMutex, the RAII lock holders, and dssp::CondVar); the raw
// standard-library types carry no annotations, so guarded fields must be
// protected by the wrapper types for the analysis to see anything.

#if defined(__clang__)
#define DSSP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DSSP_THREAD_ANNOTATION_(x)
#endif

// Type annotations: a class that represents a lockable resource, or an RAII
// holder whose lifetime equals the critical section.
#define DSSP_CAPABILITY(x) DSSP_THREAD_ANNOTATION_(capability(x))
#define DSSP_SCOPED_CAPABILITY DSSP_THREAD_ANNOTATION_(scoped_lockable)

// Data annotations: reads/writes of the member require the named capability.
#define DSSP_GUARDED_BY(x) DSSP_THREAD_ANNOTATION_(guarded_by(x))
#define DSSP_PT_GUARDED_BY(x) DSSP_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function annotations: lock-state preconditions and effects.
#define DSSP_REQUIRES(...) \
  DSSP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define DSSP_REQUIRES_SHARED(...) \
  DSSP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define DSSP_ACQUIRE(...) \
  DSSP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DSSP_ACQUIRE_SHARED(...) \
  DSSP_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define DSSP_RELEASE(...) \
  DSSP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DSSP_RELEASE_SHARED(...) \
  DSSP_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define DSSP_TRY_ACQUIRE(...) \
  DSSP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define DSSP_EXCLUDES(...) DSSP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define DSSP_RETURN_CAPABILITY(x) DSSP_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for lock patterns the analysis cannot express (e.g. locking a
// dynamic array of mutexes). Use sparingly and document why at each site.
#define DSSP_NO_THREAD_SAFETY_ANALYSIS \
  DSSP_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // DSSP_COMMON_MACROS_H_
