#ifndef DSSP_COMMON_MACROS_H_
#define DSSP_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Invariant-checking macros. A failed check indicates a programming error
// (not a recoverable condition) and aborts the process.
//
// DSSP_CHECK(cond)          - abort unless cond holds.
// DSSP_CHECK_OK(status)     - abort unless status.ok().
// DSSP_UNREACHABLE(msg)     - abort; marks logically unreachable code.

#define DSSP_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DSSP_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define DSSP_CHECK_OK(expr)                                                  \
  do {                                                                       \
    const auto& dssp_check_ok_status = (expr);                               \
    if (!dssp_check_ok_status.ok()) {                                        \
      std::fprintf(stderr, "DSSP_CHECK_OK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, dssp_check_ok_status.message().c_str());        \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define DSSP_UNREACHABLE(msg)                                                \
  do {                                                                       \
    std::fprintf(stderr, "DSSP_UNREACHABLE at %s:%d: %s\n", __FILE__,        \
                 __LINE__, msg);                                             \
    std::abort();                                                            \
  } while (0)

#endif  // DSSP_COMMON_MACROS_H_
