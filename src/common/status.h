#ifndef DSSP_COMMON_STATUS_H_
#define DSSP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace dssp {

// Error categories for recoverable failures. Programming errors use
// DSSP_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kConstraintViolation,
  kParseError,
  kCorruptFrame,       // Wire frame failed its integrity check.
  kUnavailable,        // Peer unreachable after exhausting retries.
  kDeadlineExceeded,   // Per-request deadline expired before success.

  // Sentinel: one past the last real code. Keep last; wire-format
  // validation derives the legal code range from it.
  kStatusCodeEnd,
};

// Returns a short human-readable name for `code` ("ok", "parse error", ...).
const char* StatusCodeName(StatusCode code);

// A lightweight success-or-error value (the project does not use exceptions).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    DSSP_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience factories.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status ConstraintViolationError(std::string message);
Status ParseError(std::string message);
Status CorruptFrameError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);

// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return SomeError(...);`.
  StatusOr(T value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    DSSP_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DSSP_CHECK(ok());
    return *value_;
  }
  T& value() & {
    DSSP_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    DSSP_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates an error Status from an expression that yields Status.
#define DSSP_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::dssp::Status dssp_rie_status = (expr);         \
    if (!dssp_rie_status.ok()) return dssp_rie_status; \
  } while (0)

// Assigns the value of a StatusOr expression to `lhs`, or propagates its
// error. Usage: DSSP_ASSIGN_OR_RETURN(auto x, Compute());
#define DSSP_ASSIGN_OR_RETURN(lhs, expr)                   \
  DSSP_ASSIGN_OR_RETURN_IMPL_(                             \
      DSSP_STATUS_CONCAT_(dssp_aor_, __LINE__), lhs, expr)

#define DSSP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define DSSP_STATUS_CONCAT_(a, b) DSSP_STATUS_CONCAT_IMPL_(a, b)
#define DSSP_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace dssp

#endif  // DSSP_COMMON_STATUS_H_
