#include "common/strings.h"

#include <cctype>

namespace dssp {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i];
    char cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace dssp
