#include "cluster/bus.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "dssp/protocol.h"
#include "sql/ast.h"
#include "sql/parser.h"

namespace dssp::cluster {

using service::ChannelOutcome;
using service::ErrorResponse;
using service::InvalidateBatchRequest;
using service::InvalidateBatchResponse;
using service::InvalidateRequest;
using service::InvalidateResponse;
using service::MessageType;
using service::Seal;
using service::Unseal;
using service::UpdateNotice;

namespace {

constexpr uint64_t kNoTemplateWire = static_cast<uint64_t>(-1);

std::string SealedError(StatusCode code, std::string message) {
  return Seal(service::Encode(ErrorResponse{code, std::move(message)}));
}

}  // namespace

StatusOr<uint64_t> NodeChannel::ApplyNoticeLocked(std::string_view inner) {
  DSSP_ASSIGN_OR_RETURN(InvalidateRequest request,
                        service::DecodeInvalidateRequest(inner));

  // Refuse a level byte outside the legal update range before force-casting
  // it into the enum; the node re-validates, but an arbitrary byte must not
  // reach enum-typed code at all.
  if (request.level > static_cast<uint8_t>(analysis::ExposureLevel::kStmt)) {
    return Status(StatusCode::kInvalidArgument,
                  "invalidate request exposure level out of range");
  }

  UpdateNotice notice;
  notice.level = static_cast<analysis::ExposureLevel>(request.level);
  notice.template_index =
      request.template_index == kNoTemplateWire
          ? service::CacheEntry::kNoTemplate
          : static_cast<size_t>(request.template_index);
  if (!request.statement_sql.empty()) {
    DSSP_ASSIGN_OR_RETURN(notice.statement, sql::Parse(request.statement_sql));
  }

  // Reject malformed/misrouted notices (e.g. a template index out of range
  // for this app) instead of applying them. Rejected notices are
  // deliberately NOT recorded in the nonce map: they applied nothing, so a
  // later corrected frame with the same nonce must not be suppressed as a
  // duplicate.
  DSSP_RETURN_IF_ERROR(node_.ValidateNotice(request.app_id, notice));

  const auto it = applied_nonces_.find(request.nonce);
  if (it != applied_nonces_.end()) {
    duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  const uint64_t invalidated = node_.OnUpdate(request.app_id, notice);
  notices_applied_.fetch_add(1, std::memory_order_relaxed);
  applied_nonces_.emplace(request.nonce, invalidated);
  dedup_fifo_.push_back(request.nonce);
  if (dedup_fifo_.size() > kDedupWindow) {
    applied_nonces_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
  return invalidated;
}

std::string NodeChannel::HandleBatch(std::string_view inner) {
  auto batch = service::DecodeInvalidateBatchRequest(inner);
  if (!batch.ok()) {
    return service::Encode(
        ErrorResponse{batch.status().code(), batch.status().message()});
  }
  batches_received_.fetch_add(1, std::memory_order_relaxed);

  MutexLock lock(dedup_mu_);
  // At-most-once for the whole envelope: a retried batch (response lost on
  // the wire) replays the stored acks byte for byte instead of touching the
  // node again. The per-notice nonce check below would suppress re-applies
  // anyway, but replaying the acks keeps duplicate accounting exact.
  const auto it = applied_batches_.find(batch->nonce);
  if (it != applied_batches_.end()) {
    duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  InvalidateBatchResponse response;
  response.acks.reserve(batch->notices.size());
  for (const std::string& notice_frame : batch->notices) {
    InvalidateBatchResponse::Ack ack;
    auto applied = ApplyNoticeLocked(notice_frame);
    if (applied.ok()) {
      ack.accepted = true;
      ack.entries_invalidated = *applied;
    } else {
      ack.accepted = false;
      ack.code = applied.status().code();
    }
    response.acks.push_back(ack);
  }
  std::string encoded = service::Encode(response);
  applied_batches_.emplace(batch->nonce, encoded);
  batch_fifo_.push_back(batch->nonce);
  if (batch_fifo_.size() > kDedupWindow) {
    applied_batches_.erase(batch_fifo_.front());
    batch_fifo_.pop_front();
  }
  return encoded;
}

ChannelOutcome NodeChannel::RoundTrip(std::string_view frame) {
  ChannelOutcome outcome;
  if (!alive()) return outcome;  // Crashed/partitioned: frame on the floor.

  outcome.home_deliveries = 1;
  outcome.delivered = true;

  auto inner = Unseal(frame);
  if (!inner.ok()) {
    outcome.response =
        SealedError(inner.status().code(), inner.status().message());
    return outcome;
  }

  if (service::PeekType(*inner) == MessageType::kInvalidateBatchRequest) {
    outcome.response = Seal(HandleBatch(*inner));
    return outcome;
  }

  StatusOr<uint64_t> invalidated = uint64_t{0};
  {
    MutexLock lock(dedup_mu_);
    invalidated = ApplyNoticeLocked(*inner);
  }
  if (!invalidated.ok()) {
    outcome.response = SealedError(invalidated.status().code(),
                                   invalidated.status().message());
    return outcome;
  }
  outcome.response = Seal(service::Encode(InvalidateResponse{*invalidated}));
  return outcome;
}

InvalidationBus::InvalidationBus(BusOptions options)
    : options_(std::move(options)) {}

void InvalidationBus::AddMember(int node, service::Channel* channel) {
  DSSP_CHECK(channel != nullptr);
  auto member = std::make_unique<Member>();
  member->node = node;
  member->channel = channel;
  member->client = std::make_unique<service::RetryingClient>(
      channel, options_.retry,
      options_.seed ^ (static_cast<uint64_t>(node) * 0x9e3779b97f4a7c15ULL));
  const bool inserted = members_.emplace(node, std::move(member)).second;
  DSSP_CHECK(inserted);
}

void InvalidationBus::SetWireObserver(
    std::function<void(int node, bool ok)> observer) {
  observer_ = std::move(observer);
}

void InvalidationBus::SetDeferred(int node, bool deferred) {
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  MutexLock lock(it->second->mu);
  it->second->deferred = deferred;
}

StatusOr<InvalidationBus::DrainResult> InvalidationBus::SendSingleLocked(
    Member& member) {
  DrainResult result;
  service::WireStats ws;
  auto response = member.client->Call(member.queue.front(), &ws);
  wire_retries_.fetch_add(ws.retries, std::memory_order_relaxed);
  if (!response.ok()) {
    // Unreachable through the whole retry budget: the frame (and everything
    // queued behind it, order preserved) waits for the next drain.
    // Invalidations already applied by earlier frames stand.
    unreachable_failures_.fetch_add(1, std::memory_order_relaxed);
    if (observer_) observer_(member.node, false);
    return response.status();
  }
  if (observer_) observer_(member.node, true);
  if (service::PeekType(*response) == MessageType::kInvalidateResponse) {
    auto ack = service::DecodeInvalidateResponse(*response);
    DSSP_CHECK(ack.ok());
    ++result.frames;
    result.entries += ack->entries_invalidated;
    delivered_notices_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // The member answered but rejected the frame (kError): deterministic,
    // so retrying is pointless — drop it and keep the queue moving. The
    // member is now permanently behind by this notice; Dropped() exposes
    // that to the router so stale reads stop trusting its backlog count.
    dropped_frames_.fetch_add(1, std::memory_order_relaxed);
    ++member.dropped;
  }
  member.queue.pop_front();
  return result;
}

StatusOr<InvalidationBus::DrainResult> InvalidationBus::SendBatchLocked(
    Member& member, size_t count) {
  InvalidateBatchRequest batch;
  batch.nonce = next_nonce_.fetch_add(1, std::memory_order_relaxed);
  batch.notices.reserve(count);
  for (size_t i = 0; i < count; ++i) batch.notices.push_back(member.queue[i]);

  service::WireStats ws;
  auto response = member.client->Call(service::Encode(batch), &ws);
  wire_retries_.fetch_add(ws.retries, std::memory_order_relaxed);
  if (!response.ok()) {
    // The whole envelope failed on the wire; every notice stays queued, in
    // order, exactly as under the unbatched path. One unreachable_failure
    // per wire exchange (not per notice) — the counter tracks wire events.
    unreachable_failures_.fetch_add(1, std::memory_order_relaxed);
    if (observer_) observer_(member.node, false);
    return response.status();
  }
  if (observer_) observer_(member.node, true);
  batches_sent_.fetch_add(1, std::memory_order_relaxed);
  batched_notices_.fetch_add(count, std::memory_order_relaxed);

  DrainResult result;
  if (service::PeekType(*response) == MessageType::kInvalidateBatchResponse) {
    auto acks = service::DecodeInvalidateBatchResponse(*response);
    DSSP_CHECK(acks.ok());
    DSSP_CHECK(acks->acks.size() == count);
    // Partial-ack: each notice settles on its own — an accepted one counts
    // as delivered, a refused one as dropped (deterministic refusal, never
    // retried) — so one bad notice cannot poison the batch around it.
    for (const auto& ack : acks->acks) {
      if (ack.accepted) {
        ++result.frames;
        result.entries += ack.entries_invalidated;
        delivered_notices_.fetch_add(1, std::memory_order_relaxed);
      } else {
        dropped_frames_.fetch_add(1, std::memory_order_relaxed);
        ++member.dropped;
      }
    }
  } else {
    // The member refused the whole envelope (malformed batch — defensive;
    // we built it ourselves). Deterministic, so drop all of it.
    dropped_frames_.fetch_add(count, std::memory_order_relaxed);
    member.dropped += count;
  }
  member.queue.erase(member.queue.begin(),
                     member.queue.begin() + static_cast<ptrdiff_t>(count));
  return result;
}

StatusOr<InvalidationBus::DrainResult> InvalidationBus::DrainLocked(
    Member& member) {
  const size_t max_batch = options_.max_batch > 0 ? options_.max_batch : 1;
  DrainResult total;
  while (!member.queue.empty()) {
    const size_t count = std::min(max_batch, member.queue.size());
    auto sent = count > 1 ? SendBatchLocked(member, count)
                          : SendSingleLocked(member);
    if (!sent.ok()) return sent.status();
    total.frames += sent->frames;
    total.entries += sent->entries;
  }
  return total;
}

PublishOutcome InvalidationBus::Publish(const std::string& app_id,
                                        const UpdateNotice& notice) {
  published_.fetch_add(1, std::memory_order_relaxed);

  InvalidateRequest request;
  request.app_id = app_id;
  request.level = static_cast<uint8_t>(notice.level);
  request.template_index =
      notice.template_index == service::CacheEntry::kNoTemplate
          ? kNoTemplateWire
          : static_cast<uint64_t>(notice.template_index);
  if (notice.statement.has_value()) {
    request.statement_sql = sql::ToSql(*notice.statement);
  }
  request.nonce = next_nonce_.fetch_add(1, std::memory_order_relaxed);
  const std::string frame = service::Encode(request);

  PublishOutcome outcome;
  for (auto& [node, member] : members_) {
    MutexLock lock(member->mu);
    member->queue.push_back(frame);
    if (member->deferred || member->queue.size() <= options_.bus_lag) {
      ++outcome.deferred_members;
      continue;
    }
    auto drained = DrainLocked(*member);
    if (drained.ok()) {
      outcome.entries_invalidated += drained->entries;
      ++outcome.delivered_members;
    } else {
      ++outcome.failed_members;
    }
  }
  return outcome;
}

StatusOr<uint64_t> InvalidationBus::Flush(int node) {
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  MutexLock lock(it->second->mu);
  DSSP_ASSIGN_OR_RETURN(const DrainResult drained, DrainLocked(*it->second));
  return drained.frames;
}

size_t InvalidationBus::Pending(int node) const {
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  MutexLock lock(it->second->mu);
  return it->second->queue.size();
}

uint64_t InvalidationBus::Dropped(int node) const {
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  MutexLock lock(it->second->mu);
  return it->second->dropped;
}

BusStats InvalidationBus::stats() const {
  BusStats out;
  out.published = published_.load(std::memory_order_relaxed);
  out.delivered_notices = delivered_notices_.load(std::memory_order_relaxed);
  out.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  out.batched_notices = batched_notices_.load(std::memory_order_relaxed);
  out.dropped_frames = dropped_frames_.load(std::memory_order_relaxed);
  out.unreachable_failures =
      unreachable_failures_.load(std::memory_order_relaxed);
  out.wire_retries = wire_retries_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace dssp::cluster
