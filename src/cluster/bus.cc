#include "cluster/bus.h"

#include <utility>

#include "dssp/protocol.h"
#include "sql/ast.h"
#include "sql/parser.h"

namespace dssp::cluster {

using service::ChannelOutcome;
using service::ErrorResponse;
using service::InvalidateRequest;
using service::InvalidateResponse;
using service::MessageType;
using service::Seal;
using service::Unseal;
using service::UpdateNotice;

namespace {

constexpr uint64_t kNoTemplateWire = static_cast<uint64_t>(-1);

std::string SealedError(StatusCode code, std::string message) {
  return Seal(service::Encode(ErrorResponse{code, std::move(message)}));
}

}  // namespace

ChannelOutcome NodeChannel::RoundTrip(std::string_view frame) {
  ChannelOutcome outcome;
  if (!alive()) return outcome;  // Crashed/partitioned: frame on the floor.

  outcome.home_deliveries = 1;
  outcome.delivered = true;

  auto inner = Unseal(frame);
  if (!inner.ok()) {
    outcome.response =
        SealedError(inner.status().code(), inner.status().message());
    return outcome;
  }
  auto request = service::DecodeInvalidateRequest(*inner);
  if (!request.ok()) {
    outcome.response =
        SealedError(request.status().code(), request.status().message());
    return outcome;
  }

  // Refuse a level byte outside the legal update range before force-casting
  // it into the enum; the node re-validates, but an arbitrary byte must not
  // reach enum-typed code at all.
  if (request->level > static_cast<uint8_t>(analysis::ExposureLevel::kStmt)) {
    outcome.response =
        SealedError(StatusCode::kInvalidArgument,
                    "invalidate request exposure level out of range");
    return outcome;
  }

  UpdateNotice notice;
  notice.level = static_cast<analysis::ExposureLevel>(request->level);
  notice.template_index =
      request->template_index == kNoTemplateWire
          ? service::CacheEntry::kNoTemplate
          : static_cast<size_t>(request->template_index);
  if (!request->statement_sql.empty()) {
    auto statement = sql::Parse(request->statement_sql);
    if (!statement.ok()) {
      outcome.response = SealedError(statement.status().code(),
                                     statement.status().message());
      return outcome;
    }
    notice.statement = std::move(*statement);
  }

  // Reject malformed/misrouted notices (e.g. a template index out of range
  // for this app) with an error frame instead of applying them. Rejected
  // frames are deliberately NOT recorded in the nonce map: they applied
  // nothing, so a later corrected frame with the same nonce must not be
  // suppressed as a duplicate.
  const Status valid = node_.ValidateNotice(request->app_id, notice);
  if (!valid.ok()) {
    outcome.response = SealedError(valid.code(), valid.message());
    return outcome;
  }

  uint64_t invalidated = 0;
  {
    std::lock_guard<std::mutex> lock(dedup_mu_);
    const auto it = applied_nonces_.find(request->nonce);
    if (it != applied_nonces_.end()) {
      duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
      invalidated = it->second;
    } else {
      invalidated = node_.OnUpdate(request->app_id, notice);
      notices_applied_.fetch_add(1, std::memory_order_relaxed);
      applied_nonces_.emplace(request->nonce, invalidated);
      dedup_fifo_.push_back(request->nonce);
      if (dedup_fifo_.size() > kDedupWindow) {
        applied_nonces_.erase(dedup_fifo_.front());
        dedup_fifo_.pop_front();
      }
    }
  }
  outcome.response = Seal(service::Encode(InvalidateResponse{invalidated}));
  return outcome;
}

InvalidationBus::InvalidationBus(BusOptions options)
    : options_(std::move(options)) {}

void InvalidationBus::AddMember(int node, service::Channel* channel) {
  DSSP_CHECK(channel != nullptr);
  auto member = std::make_unique<Member>();
  member->node = node;
  member->channel = channel;
  member->client = std::make_unique<service::RetryingClient>(
      channel, options_.retry,
      options_.seed ^ (static_cast<uint64_t>(node) * 0x9e3779b97f4a7c15ULL));
  const bool inserted = members_.emplace(node, std::move(member)).second;
  DSSP_CHECK(inserted);
}

void InvalidationBus::SetWireObserver(
    std::function<void(int node, bool ok)> observer) {
  observer_ = std::move(observer);
}

void InvalidationBus::SetDeferred(int node, bool deferred) {
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  std::lock_guard<std::mutex> lock(it->second->mu);
  it->second->deferred = deferred;
}

StatusOr<InvalidationBus::DrainResult> InvalidationBus::DrainLocked(
    Member& member) {
  DrainResult total;
  while (!member.queue.empty()) {
    service::WireStats ws;
    auto response = member.client->Call(member.queue.front(), &ws);
    wire_retries_.fetch_add(ws.retries, std::memory_order_relaxed);
    if (!response.ok()) {
      // Unreachable through the whole retry budget: the frame (and
      // everything queued behind it, order preserved) waits for the next
      // drain. Invalidations already applied by earlier frames stand.
      failed_deliveries_.fetch_add(1, std::memory_order_relaxed);
      if (observer_) observer_(member.node, false);
      return response.status();
    }
    if (observer_) observer_(member.node, true);
    if (service::PeekType(*response) == MessageType::kInvalidateResponse) {
      auto ack = service::DecodeInvalidateResponse(*response);
      DSSP_CHECK(ack.ok());
      ++total.frames;
      total.entries += ack->entries_invalidated;
      delivered_frames_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // The member answered but rejected the frame (kError): deterministic,
      // so retrying is pointless — drop it and keep the queue moving.
      failed_deliveries_.fetch_add(1, std::memory_order_relaxed);
    }
    member.queue.pop_front();
  }
  return total;
}

PublishOutcome InvalidationBus::Publish(const std::string& app_id,
                                        const UpdateNotice& notice) {
  published_.fetch_add(1, std::memory_order_relaxed);

  InvalidateRequest request;
  request.app_id = app_id;
  request.level = static_cast<uint8_t>(notice.level);
  request.template_index =
      notice.template_index == service::CacheEntry::kNoTemplate
          ? kNoTemplateWire
          : static_cast<uint64_t>(notice.template_index);
  if (notice.statement.has_value()) {
    request.statement_sql = sql::ToSql(*notice.statement);
  }
  request.nonce = next_nonce_.fetch_add(1, std::memory_order_relaxed);
  const std::string frame = service::Encode(request);

  PublishOutcome outcome;
  for (auto& [node, member] : members_) {
    std::lock_guard<std::mutex> lock(member->mu);
    member->queue.push_back(frame);
    if (member->deferred || member->queue.size() <= options_.bus_lag) {
      ++outcome.deferred_members;
      continue;
    }
    auto drained = DrainLocked(*member);
    if (drained.ok()) {
      outcome.entries_invalidated += drained->entries;
      ++outcome.delivered_members;
    } else {
      ++outcome.failed_members;
    }
  }
  return outcome;
}

StatusOr<uint64_t> InvalidationBus::Flush(int node) {
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  std::lock_guard<std::mutex> lock(it->second->mu);
  DSSP_ASSIGN_OR_RETURN(const DrainResult drained, DrainLocked(*it->second));
  return drained.frames;
}

size_t InvalidationBus::Pending(int node) const {
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  std::lock_guard<std::mutex> lock(it->second->mu);
  return it->second->queue.size();
}

BusCounters InvalidationBus::counters() const {
  BusCounters out;
  out.published = published_.load(std::memory_order_relaxed);
  out.delivered_frames = delivered_frames_.load(std::memory_order_relaxed);
  out.failed_deliveries =
      failed_deliveries_.load(std::memory_order_relaxed);
  out.wire_retries = wire_retries_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace dssp::cluster
