#include "cluster/router.h"

#include <utility>

#include "common/macros.h"

namespace dssp::cluster {

using service::CacheEntry;
using service::DsspNode;
using service::DsspStats;
using service::UpdateNotice;

namespace {

thread_local RouteInfo tls_last_route;

// Ring placement key: apps are isolated tenants, so the same cache key in
// two apps must be free to land on different members.
std::string RouteKey(const std::string& app_id, const std::string& key) {
  std::string route;
  route.reserve(app_id.size() + 1 + key.size());
  route.append(app_id);
  route.push_back('\0');
  route.append(key);
  return route;
}

}  // namespace

ClusterRouter::ClusterRouter(ClusterOptions options)
    : options_(std::move(options)),
      membership_(options_.membership),
      bus_(options_.bus),
      ring_(options_.seed, options_.vnodes_per_node) {
  DSSP_CHECK(options_.num_nodes >= 1);
  DSSP_CHECK(options_.replication >= 1);
  members_.reserve(options_.num_nodes);
  for (int i = 0; i < options_.num_nodes; ++i) {
    auto member = std::make_unique<Member>();
    member->node = std::make_unique<DsspNode>();
    member->endpoint = std::make_unique<NodeChannel>(*member->node);
    // Start outside any warming window; only a real rejoin resets to 0.
    member->lookups_since_rejoin.store(options_.warming_window,
                                       std::memory_order_relaxed);
    service::Channel* wire = member->endpoint.get();
    if (options_.bus_faults.has_value()) {
      member->faulty_wire = std::make_unique<service::FaultInjectingChannel>(
          *member->endpoint, *options_.bus_faults,
          options_.seed ^ (static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL));
      wire = member->faulty_wire.get();
    }
    membership_.AddNode(i);
    bus_.AddMember(i, wire);
    ring_.AddNode(i);
    members_.push_back(std::move(member));
  }
  ring_epoch_ = membership_.epoch();
  // Bus deliveries double as failure-detector probes. The observer only
  // touches the membership table (never the bus) — it runs under the bus's
  // per-member queue lock, so calling back into the bus would deadlock.
  bus_.SetWireObserver(
      [this](int node, bool ok) { ObserveWire(node, ok); });
}

size_t ClusterRouter::CheckIndex(int i) const {
  DSSP_CHECK(i >= 0 && static_cast<size_t>(i) < members_.size());
  return static_cast<size_t>(i);
}

void ClusterRouter::ObserveWire(int node, bool ok) {
  if (ok) {
    membership_.ReportSuccess(node);
  } else {
    membership_.ReportFailure(node);
  }
}

void ClusterRouter::MaybeRebuildRing() {
  const uint64_t epoch = membership_.epoch();
  MutexLock lock(ring_mu_);
  if (epoch == ring_epoch_) return;
  const std::vector<int> servable = membership_.ServableNodes();
  // Reconcile instead of rebuilding from scratch: AddNode/RemoveNode are
  // idempotent and only the changed members' vnodes move.
  std::vector<bool> keep(members_.size(), false);
  for (int node : servable) keep[static_cast<size_t>(node)] = true;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (keep[i]) {
      ring_.AddNode(static_cast<int>(i));
    } else {
      ring_.RemoveNode(static_cast<int>(i));
    }
  }
  ring_epoch_ = epoch;
  rebalances_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<int> ClusterRouter::ServableOwners(const std::string& key) {
  MaybeRebuildRing();
  std::vector<int> owners;
  {
    MutexLock lock(ring_mu_);
    owners = ring_.Owners(key, options_.replication);
  }
  std::vector<int> servable;
  servable.reserve(owners.size());
  for (int node : owners) {
    Member& member = *members_[CheckIndex(node)];
    if (!member.endpoint->alive()) {
      // A dead wire observed on the lookup path feeds the same failure
      // detector as a failed bus delivery.
      if (membership_.ReportFailure(node) && !membership_.Servable(node)) {
        bus_.SetDeferred(node, true);
      }
      continue;
    }
    if (!membership_.Servable(node)) continue;
    if (bus_.Pending(node) > options_.bus.bus_lag) {
      // Reachable but lagging beyond the staleness bound: serving from it
      // could return a result the bus has already invalidated elsewhere.
      lagging_skips_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    servable.push_back(node);
  }
  return servable;
}

Status ClusterRouter::RegisterApp(std::string app_id,
                                  const catalog::Catalog* catalog,
                                  const templates::TemplateSet* templates) {
  for (auto& member : members_) {
    DSSP_RETURN_IF_ERROR(member->node->RegisterApp(app_id, catalog, templates));
  }
  return Status::Ok();
}

std::optional<CacheEntry> ClusterRouter::Lookup(const std::string& app_id,
                                                const std::string& key) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<int> owners = ServableOwners(RouteKey(app_id, key));
  if (owners.empty()) {
    // Whole replica set unservable: miss, the app falls back to its home.
    tls_last_route = RouteInfo{-1, false, false};
    return std::nullopt;
  }
  for (size_t idx = 0; idx < owners.size(); ++idx) {
    const int node = owners[idx];
    Member& member = *members_[CheckIndex(node)];
    auto entry = member.node->Lookup(app_id, key);
    if (!entry.has_value()) continue;
    member.routed_lookups.fetch_add(1, std::memory_order_relaxed);
    const uint64_t since =
        member.lookups_since_rejoin.fetch_add(1, std::memory_order_relaxed);
    if (since < options_.warming_window) {
      member.warming_lookups.fetch_add(1, std::memory_order_relaxed);
    }
    if (idx == 0) {
      member.hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      member.replica_fallback_hits.fetch_add(1, std::memory_order_relaxed);
      replica_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
    tls_last_route = RouteInfo{node, idx != 0, true};
    return entry;
  }
  // Clean miss, attributed to the preferred owner (it pays the store later).
  const int node = owners.front();
  Member& member = *members_[CheckIndex(node)];
  member.routed_lookups.fetch_add(1, std::memory_order_relaxed);
  const uint64_t since =
      member.lookups_since_rejoin.fetch_add(1, std::memory_order_relaxed);
  if (since < options_.warming_window) {
    member.warming_lookups.fetch_add(1, std::memory_order_relaxed);
  }
  tls_last_route = RouteInfo{node, false, false};
  return std::nullopt;
}

std::optional<CacheEntry> ClusterRouter::LookupStale(
    const std::string& app_id, const std::string& key,
    uint64_t max_updates_behind) {
  const std::vector<int> owners = ServableOwners(RouteKey(app_id, key));
  for (size_t idx = 0; idx < owners.size(); ++idx) {
    const int node = owners[idx];
    Member& member = *members_[CheckIndex(node)];
    // A member that refused notices is permanently behind by that many
    // updates with nothing queued to replay — its backlog count understates
    // its true staleness, so no k bound derived from Pending() is sound.
    // Backlog-unsafe: skip it for stale reads entirely.
    if (bus_.Dropped(node) > 0) {
      lagging_skips_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Updates still queued on the bus for this member have not bumped its
    // local epoch yet, so an entry it retained reads `pending` updates
    // fresher than it globally is. Tighten the k-staleness bound by the
    // backlog (and skip the member when the backlog alone exceeds it).
    const uint64_t pending = bus_.Pending(node);
    if (pending > max_updates_behind) {
      lagging_skips_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto entry =
        member.node->LookupStale(app_id, key, max_updates_behind - pending);
    if (!entry.has_value()) continue;
    tls_last_route = RouteInfo{node, idx != 0, true};
    return entry;
  }
  tls_last_route = RouteInfo{owners.empty() ? -1 : owners.front(), false, false};
  return std::nullopt;
}

void ClusterRouter::Store(const std::string& app_id, CacheEntry entry) {
  const std::vector<int> owners = ServableOwners(RouteKey(app_id, entry.key));
  if (owners.empty()) {
    tls_last_route = RouteInfo{-1, false, false};
    return;  // Nobody to hold it; the next lookup goes home again.
  }
  tls_last_route = RouteInfo{owners.front(), false, false};
  // Write-through to the whole servable replica set so any of them can
  // answer when the owner dies.
  for (size_t idx = 0; idx < owners.size(); ++idx) {
    Member& member = *members_[CheckIndex(owners[idx])];
    member.stores.fetch_add(1, std::memory_order_relaxed);
    if (idx + 1 == owners.size()) {
      member.node->Store(app_id, std::move(entry));
    } else {
      member.node->Store(app_id, entry);
    }
  }
}

size_t ClusterRouter::OnUpdate(const std::string& app_id,
                               const UpdateNotice& notice) {
  // Updates are fanned to everyone, so for queueing purposes the simulator
  // charges them round-robin over the servable members.
  const std::vector<int> servable = membership_.ServableNodes();
  int charge = -1;
  if (!servable.empty()) {
    const uint64_t turn = update_rr_.fetch_add(1, std::memory_order_relaxed);
    charge = servable[turn % servable.size()];
  }
  const PublishOutcome outcome = bus_.Publish(app_id, notice);
  // Members the failure detector declared down get their queue deferred, so
  // the next publish does not burn a retry budget on a dead wire.
  for (size_t i = 0; i < members_.size(); ++i) {
    const int node = static_cast<int>(i);
    if (!membership_.Servable(node)) bus_.SetDeferred(node, true);
  }
  tls_last_route = RouteInfo{charge, false, false};
  return outcome.entries_invalidated;
}

size_t ClusterRouter::ClearCache(const std::string& app_id) {
  size_t cleared = 0;
  for (auto& member : members_) cleared += member->node->ClearCache(app_id);
  return cleared;
}

void ClusterRouter::SetStaleRetention(const std::string& app_id,
                                      size_t max_entries) {
  for (auto& member : members_) {
    member->node->SetStaleRetention(app_id, max_entries);
  }
}

void ClusterRouter::SetCacheCapacity(const std::string& app_id,
                                     size_t max_entries) {
  // Ceil-divide the cluster budget so N members never hold less than the
  // single-node deployment would.
  const size_t per_member =
      max_entries == 0
          ? 0
          : (max_entries + members_.size() - 1) / members_.size();
  for (auto& member : members_) {
    member->node->SetCacheCapacity(app_id, per_member);
  }
}

void ClusterRouter::KillNode(int node) {
  members_[CheckIndex(node)]->endpoint->Kill();
}

StatusOr<uint64_t> ClusterRouter::ReviveNode(int node) {
  Member& member = *members_[CheckIndex(node)];
  member.endpoint->Revive();
  bus_.SetDeferred(node, false);
  // The rejoin gate: replay every invalidation the member missed, in order,
  // before it may serve a single lookup. Its cache survives the outage
  // (warm rejoin) precisely because this drain brings it back within the
  // staleness bound.
  auto drained = bus_.Flush(node);
  if (!drained.ok()) {
    bus_.SetDeferred(node, true);
    return drained.status();
  }
  membership_.Rejoin(node);
  membership_.ReportSuccess(node);
  member.lookups_since_rejoin.store(0, std::memory_order_relaxed);
  MaybeRebuildRing();
  return *drained;
}

NodeRouteStats ClusterRouter::node_stats(int i) const {
  const Member& member = *members_[CheckIndex(i)];
  NodeRouteStats out;
  out.health = membership_.health(i);
  out.routed_lookups = member.routed_lookups.load(std::memory_order_relaxed);
  out.hits = member.hits.load(std::memory_order_relaxed);
  out.replica_fallback_hits =
      member.replica_fallback_hits.load(std::memory_order_relaxed);
  out.stores = member.stores.load(std::memory_order_relaxed);
  out.warming_lookups =
      member.warming_lookups.load(std::memory_order_relaxed);
  out.bus_pending = bus_.Pending(i);
  out.bus_dropped = bus_.Dropped(i);
  out.cache_entries = member.node->TotalCacheSize();
  return out;
}

ClusterRouteStats ClusterRouter::route_stats() const {
  ClusterRouteStats out;
  out.lookups = lookups_.load(std::memory_order_relaxed);
  out.replica_fallbacks = replica_fallbacks_.load(std::memory_order_relaxed);
  out.lagging_skips = lagging_skips_.load(std::memory_order_relaxed);
  out.rebalances = rebalances_.load(std::memory_order_relaxed);
  return out;
}

DsspStats ClusterRouter::AppStats(const std::string& app_id) const {
  DsspStats total;
  for (const auto& member : members_) {
    const DsspStats s = member->node->stats(app_id);
    total.lookups += s.lookups;
    total.hits += s.hits;
    total.misses += s.misses;
    total.stores += s.stores;
    total.updates_observed += s.updates_observed;
    total.entries_invalidated += s.entries_invalidated;
    total.stale_hits += s.stale_hits;
  }
  return total;
}

size_t ClusterRouter::TotalCacheSize(const std::string& app_id) const {
  size_t total = 0;
  for (const auto& member : members_) {
    total += member->node->CacheSize(app_id);
  }
  return total;
}

RouteInfo ClusterRouter::ConsumeLastRoute() {
  const RouteInfo route = tls_last_route;
  tls_last_route = RouteInfo{};
  return route;
}

}  // namespace dssp::cluster
