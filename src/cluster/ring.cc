#include "cluster/ring.h"

#include <cstring>
#include <string>

#include "common/hash.h"
#include "common/macros.h"

namespace dssp::cluster {

namespace {

// Distinct SipHash key halves for ring positions vs. cache keys, so a cache
// key can never be engineered to collide with a virtual-node position.
constexpr uint64_t kVnodeK1 = 0x72696e672d766e64ULL;  // "ring-vnd"
constexpr uint64_t kKeyK1 = 0x72696e672d6b6579ULL;    // "ring-key"

uint64_t VnodePoint(uint64_t seed, int node, int vnode) {
  char buf[8];
  const uint32_t n = static_cast<uint32_t>(node);
  const uint32_t v = static_cast<uint32_t>(vnode);
  std::memcpy(buf, &n, 4);
  std::memcpy(buf + 4, &v, 4);
  return SipHash24(seed, kVnodeK1, std::string_view(buf, sizeof(buf)));
}

}  // namespace

HashRing::HashRing(uint64_t seed, int vnodes_per_node)
    : seed_(seed), vnodes_(vnodes_per_node) {
  DSSP_CHECK(vnodes_ > 0);
}

void HashRing::AddNode(int node) {
  DSSP_CHECK(node >= 0);
  if (!nodes_.insert(node).second) return;
  for (int v = 0; v < vnodes_; ++v) {
    // On the astronomically unlikely 64-bit collision the smaller node id
    // wins deterministically, keeping placement a pure function of the
    // member set.
    const uint64_t point = VnodePoint(seed_, node, v);
    const auto it = points_.find(point);
    if (it == points_.end() || node < it->second) points_[point] = node;
  }
}

void HashRing::RemoveNode(int node) {
  if (nodes_.erase(node) == 0) return;
  for (auto it = points_.begin(); it != points_.end();) {
    it = it->second == node ? points_.erase(it) : std::next(it);
  }
  // Restore any points this node had won from a colliding member.
  for (int other : nodes_) {
    for (int v = 0; v < vnodes_; ++v) {
      const uint64_t point = VnodePoint(seed_, other, v);
      const auto it = points_.find(point);
      if (it == points_.end() || other < it->second) points_[point] = other;
    }
  }
}

uint64_t HashRing::KeyPoint(std::string_view key) const {
  return SipHash24(seed_, kKeyK1, key);
}

std::vector<int> HashRing::Owners(std::string_view key,
                                  size_t replicas) const {
  std::vector<int> owners;
  if (points_.empty() || replicas == 0) return owners;
  const size_t want = std::min(replicas, nodes_.size());
  owners.reserve(want);
  // Walk clockwise from the key's position, collecting distinct nodes.
  auto it = points_.lower_bound(KeyPoint(key));
  for (size_t step = 0; step < points_.size() && owners.size() < want;
       ++step) {
    if (it == points_.end()) it = points_.begin();
    bool seen = false;
    for (int node : owners) seen = seen || node == it->second;
    if (!seen) owners.push_back(it->second);
    ++it;
  }
  return owners;
}

int HashRing::OwnerOf(std::string_view key) const {
  const std::vector<int> owners = Owners(key, 1);
  return owners.empty() ? -1 : owners[0];
}

std::vector<double> HashRing::LoadShares(size_t probes) const {
  const int max_node = nodes_.empty() ? -1 : *nodes_.rbegin();
  std::vector<double> shares(static_cast<size_t>(max_node + 1), 0.0);
  if (points_.empty() || probes == 0) return shares;
  for (size_t i = 0; i < probes; ++i) {
    const int owner = OwnerOf("probe:" + std::to_string(i));
    shares[static_cast<size_t>(owner)] += 1.0 / static_cast<double>(probes);
  }
  return shares;
}

}  // namespace dssp::cluster
