#ifndef DSSP_CLUSTER_ROUTER_H_
#define DSSP_CLUSTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/bus.h"
#include "cluster/membership.h"
#include "cluster/ring.h"
#include "common/mutex.h"
#include "common/status.h"
#include "dssp/channel.h"
#include "dssp/node.h"

namespace dssp::cluster {

struct ClusterOptions {
  int num_nodes = 4;
  // Each key lives on its ring owner plus replication-1 fallback replicas
  // (stores are write-through to all of them). 1 = no replication: a dead
  // owner degrades straight to a home-server round trip.
  size_t replication = 2;
  int vnodes_per_node = HashRing::kDefaultVnodes;
  uint64_t seed = 0xC105FE2;
  BusOptions bus;
  MembershipPolicy membership;
  // Optional fault injection on the node<->node invalidation wire; the bus
  // inherits retry/backoff/dedup from the PR-2 machinery, so a lossy bus
  // wire degrades gracefully instead of corrupting caches.
  std::optional<service::FaultProfile> bus_faults;
  // Lookups routed to a member within this many lookups after its rejoin
  // are counted as cache-warming traffic (observability for failover cost).
  uint64_t warming_window = 256;
};

// Per-member routing counters (relaxed-atomic snapshot).
struct NodeRouteStats {
  NodeHealth health = NodeHealth::kAlive;
  uint64_t routed_lookups = 0;        // Logical lookups this member led.
  uint64_t hits = 0;                  // Hits served as the preferred owner.
  uint64_t replica_fallback_hits = 0;  // Hits served standing in for one.
  uint64_t stores = 0;                 // Entries written (incl. replicas).
  uint64_t warming_lookups = 0;        // Lookups inside the rejoin window.
  size_t bus_pending = 0;              // Undelivered invalidation notices.
  uint64_t bus_dropped = 0;  // Notices this member refused (lost forever);
                             // nonzero makes it backlog-unsafe for stale
                             // reads — fresh lookups are unaffected because
                             // refusals are symmetric across members (every
                             // member validates against the same app
                             // registration).
  size_t cache_entries = 0;
};

// Cluster-wide routing counters.
struct ClusterRouteStats {
  uint64_t lookups = 0;
  uint64_t replica_fallbacks = 0;  // Hits served by a fallback replica.
  uint64_t lagging_skips = 0;      // Members skipped over the bus-lag bound.
  uint64_t rebalances = 0;         // Ring rebuilds after health transitions.
};

// What the last cache operation on this thread did; the cluster simulator
// reads it to charge service time to the right member's worker pool.
struct RouteInfo {
  int node = -1;                  // Member that led the operation.
  bool replica_fallback = false;  // A fallback replica answered.
  bool hit = false;
};

// N DsspNodes composed into one logical DSSP behind the CacheBackend
// interface: a seeded consistent-hash ring places each (app, key) on an
// owner plus replicas, lookups fall back across replicas when the owner is
// dead or lagging, stores are write-through to the replica set, and every
// update notice rides the invalidation bus to all members. Membership
// (alive/suspect/down/rejoin) is driven by the wire failures the router and
// bus observe; health transitions rebuild the ring, rebalancing the key
// space onto the survivors.
//
// Single-node fidelity: with num_nodes=1 the ring has one owner, the bus
// one member, and every operation lands on that node exactly as it would
// on a bare DsspNode.
//
// Thread-safe: the member set is fixed at construction; the ring snapshot
// is copy-on-rebuild behind a mutex; everything else is the members' own
// synchronization plus relaxed counters.
class ClusterRouter : public service::CacheBackend {
 public:
  explicit ClusterRouter(ClusterOptions options = ClusterOptions{});

  // ----- CacheBackend (what ScalableApp sees). -----
  Status RegisterApp(std::string app_id, const catalog::Catalog* catalog,
                     const templates::TemplateSet* templates) override;
  std::optional<service::CacheEntry> Lookup(const std::string& app_id,
                                            const std::string& key) override;
  std::optional<service::CacheEntry> LookupStale(
      const std::string& app_id, const std::string& key,
      uint64_t max_updates_behind) override;
  void Store(const std::string& app_id, service::CacheEntry entry) override;
  size_t OnUpdate(const std::string& app_id,
                  const service::UpdateNotice& notice) override;
  size_t ClearCache(const std::string& app_id) override;
  void SetStaleRetention(const std::string& app_id,
                         size_t max_entries) override;

  // Fans the capacity bound to every member (each holds ~1/N of the keys,
  // so the per-member cap is the cluster cap divided by the member count).
  void SetCacheCapacity(const std::string& app_id, size_t max_entries);

  // ----- Chaos / failover controls. -----

  // Simulates a crash or partition of one member: its wire endpoint drops
  // every frame. Lookups fail over to replicas immediately; membership
  // marks it suspect then down as failures accumulate; the bus queues its
  // invalidation notices.
  void KillNode(int node);

  // Heals the member's wire, drains its queued invalidation notices (the
  // gate: a member that missed invalidations must catch up before it may
  // serve), and rejoins it to the ring. Returns the notices replayed, or
  // the wire error if the drain itself failed (member still down).
  StatusOr<uint64_t> ReviveNode(int node);

  // ----- Introspection. -----
  int num_nodes() const { return static_cast<int>(members_.size()); }
  service::DsspNode& node(int i) { return *members_[CheckIndex(i)]->node; }
  MembershipTable& membership() { return membership_; }
  InvalidationBus& bus() { return bus_; }
  const ClusterOptions& options() const { return options_; }

  NodeRouteStats node_stats(int i) const;
  ClusterRouteStats route_stats() const;

  // Sums one app's DsspStats over all members (a logical lookup that
  // probed several members counts once per member probed).
  service::DsspStats AppStats(const std::string& app_id) const;
  size_t TotalCacheSize(const std::string& app_id) const;

  // The route taken by this thread's most recent Lookup/Store/OnUpdate;
  // reading resets it. Thread-local, so the simulator's single-threaded
  // event loop (and each concurrent worker) sees only its own ops.
  static RouteInfo ConsumeLastRoute();

 private:
  struct Member {
    std::unique_ptr<service::DsspNode> node;
    std::unique_ptr<NodeChannel> endpoint;
    // Non-null when options.bus_faults is set; sits between the bus's
    // retry client and the endpoint.
    std::unique_ptr<service::FaultInjectingChannel> faulty_wire;
    std::atomic<uint64_t> routed_lookups{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> replica_fallback_hits{0};
    std::atomic<uint64_t> stores{0};
    std::atomic<uint64_t> warming_lookups{0};
    // Lookups since the last rejoin; < warming_window counts as warming.
    std::atomic<uint64_t> lookups_since_rejoin{~0ULL};
  };

  size_t CheckIndex(int i) const;

  // Servable owner list for `key`: ring owners filtered through membership
  // and the per-member wire/lag checks, preference order preserved.
  // Reports wire failures for dead owners as it goes.
  std::vector<int> ServableOwners(const std::string& key);

  // Rebuilds the ring snapshot if membership changed since the last build.
  void MaybeRebuildRing();

  void ObserveWire(int node, bool ok);

  ClusterOptions options_;
  std::vector<std::unique_ptr<Member>> members_;
  MembershipTable membership_;
  InvalidationBus bus_;

  mutable Mutex ring_mu_;
  HashRing ring_ DSSP_GUARDED_BY(ring_mu_);
  uint64_t ring_epoch_ DSSP_GUARDED_BY(ring_mu_) = 0;

  std::atomic<uint64_t> lookups_{0};
  std::atomic<uint64_t> replica_fallbacks_{0};
  std::atomic<uint64_t> lagging_skips_{0};
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<uint64_t> update_rr_{0};  // Round-robin for update charging.
};

}  // namespace dssp::cluster

#endif  // DSSP_CLUSTER_ROUTER_H_
