#ifndef DSSP_CLUSTER_BUS_H_
#define DSSP_CLUSTER_BUS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "dssp/channel.h"
#include "dssp/node.h"
#include "dssp/retry.h"

namespace dssp::cluster {

// In-process wire endpoint of one cluster member: the DirectChannel
// equivalent for the node<->node invalidation wire. Accepts sealed
// kInvalidateRequest frames, applies them to the member's DsspNode, and
// answers with a sealed kInvalidateResponse — so the publishing side can run
// the ordinary RetryingClient (and, wrapped in a FaultInjectingChannel, the
// ordinary fault model) against it.
//
// At-most-once: each frame carries a nonce; a retried or transport-
// duplicated frame whose nonce was already applied returns the stored
// invalidation count without touching the node — re-running would not break
// cache correctness (invalidation is idempotent on entries) but WOULD
// advance the staleness epoch twice, silently tightening every k-staleness
// bound derived from it.
//
// Kill() simulates a crash or partition of this member: every frame is
// dropped undelivered until Revive(). The node object itself stays intact,
// exactly like a process that lost its network: its (possibly stale) cache
// survives to the rejoin, which is why the rejoin path must drain the
// pending queue before the member serves again.
class NodeChannel : public service::Channel {
 public:
  static constexpr size_t kDedupWindow = 65536;

  explicit NodeChannel(service::DsspNode& node) : node_(node) {}

  service::ChannelOutcome RoundTrip(std::string_view frame) override;

  void Kill() { alive_.store(false, std::memory_order_release); }
  void Revive() { alive_.store(true, std::memory_order_release); }
  bool alive() const { return alive_.load(std::memory_order_acquire); }

  uint64_t notices_applied() const {
    return notices_applied_.load(std::memory_order_relaxed);
  }
  uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_.load(std::memory_order_relaxed);
  }
  uint64_t batches_received() const {
    return batches_received_.load(std::memory_order_relaxed);
  }

 private:
  // Decodes, validates, nonce-dedups, and applies one kInvalidateRequest
  // frame. Returns the entries invalidated, or the (deterministic) refusal
  // status.
  StatusOr<uint64_t> ApplyNoticeLocked(std::string_view inner)
      DSSP_REQUIRES(dedup_mu_);

  // Handles an unsealed kInvalidateBatchRequest; returns the unsealed
  // response frame (kInvalidateBatchResponse, or kError for a malformed
  // envelope).
  std::string HandleBatch(std::string_view inner);

  service::DsspNode& node_;
  std::atomic<bool> alive_{true};
  std::atomic<uint64_t> notices_applied_{0};
  std::atomic<uint64_t> duplicates_suppressed_{0};
  std::atomic<uint64_t> batches_received_{0};

  // Nonce -> entries invalidated, bounded FIFO (mirrors HomeServer's update
  // dedup). The mutex also serializes apply, so a concurrent retry of the
  // same nonce cannot double-apply. Batch envelopes get their own dedup map
  // (nonce -> full encoded response) so a retried batch whose response was
  // lost replays the stored acks verbatim; the per-notice map stays the
  // authoritative guard — a notice that already arrived via a singleton
  // frame is suppressed even when it reappears inside a batch.
  Mutex dedup_mu_;
  std::unordered_map<uint64_t, uint64_t> applied_nonces_
      DSSP_GUARDED_BY(dedup_mu_);
  std::deque<uint64_t> dedup_fifo_ DSSP_GUARDED_BY(dedup_mu_);
  std::unordered_map<uint64_t, std::string> applied_batches_
      DSSP_GUARDED_BY(dedup_mu_);
  std::deque<uint64_t> batch_fifo_ DSSP_GUARDED_BY(dedup_mu_);
};

struct BusOptions {
  // Staleness bound: the most undelivered notices a reachable member may
  // accumulate before Publish synchronously drains it. 0 (default) delivers
  // on every publish — the strongest bound, and what the consistency oracle
  // runs under. A member lagging beyond the bound must not serve lookups
  // (the router enforces this via Pending()). The bound counts NOTICES, not
  // wire frames, so it is identical under batched and unbatched fan-out.
  size_t bus_lag = 0;
  // Most notices coalesced into one sealed kInvalidateBatchRequest frame
  // when a drain finds more than one queued. 1 (default) = legacy
  // frame-per-notice wire, byte-identical to the pre-batching bus. Under
  // update storms, a batch of N amortizes one seal/retry round trip over N
  // notices; per-member FIFO order and the invalidation set are unchanged.
  size_t max_batch = 1;
  service::RetryPolicy retry;
  uint64_t seed = 0xB05B05B0;
};

// Per-publish outcome, aggregated over members.
struct PublishOutcome {
  uint64_t entries_invalidated = 0;  // Summed over members delivered to now.
  int delivered_members = 0;
  int deferred_members = 0;  // Queued within the lag bound or marked down.
  int failed_members = 0;    // Wire retry budget exhausted; notice kept.
};

// Cumulative bus counters (relaxed-atomic snapshot). Permanent drops and
// transient unreachability are deliberately separate: a dropped frame
// vanished from its queue (the member refused it — deterministic, never
// retried), while an unreachable failure keeps the frame queued for the
// next drain. Conflating them would let silently-vanished notices hide
// inside ordinary wire noise.
struct BusStats {
  uint64_t published = 0;           // Publish calls (one notice each).
  uint64_t delivered_notices = 0;   // Notices acknowledged by a member.
  uint64_t batches_sent = 0;        // Multi-notice frames put on the wire.
  uint64_t batched_notices = 0;     // Notices that rode those frames.
  uint64_t dropped_frames = 0;      // Refused notices, removed from queues.
  uint64_t unreachable_failures = 0;  // Wire budget exhausted; frames kept.
  uint64_t wire_retries = 0;        // RetryingClient retries, all members.
};

// Fans each exposure-gated UpdateNotice out to every member node over the
// hardened wire path (sealed frames, bounded-backoff retries, nonce dedup —
// all inherited from the PR-2 machinery, so a lossy inter-node wire gets
// fault tolerance for free). Every member has a FIFO pending queue; a frame
// leaves the queue only once its delivery is acknowledged, so an
// unreachable member accumulates exactly the notices it missed and replays
// them, in order, when the router drains it at rejoin.
//
// Thread-safe. Queue discipline is per member: a slow member never blocks
// fan-out to the others.
class InvalidationBus {
 public:
  explicit InvalidationBus(BusOptions options = BusOptions{});

  InvalidationBus(const InvalidationBus&) = delete;
  InvalidationBus& operator=(const InvalidationBus&) = delete;

  // Registers a member reachable over `channel` (not owned; must outlive
  // the bus). Members must be added before the first Publish.
  void AddMember(int node, service::Channel* channel);

  // Observer invoked after every completed wire call to a member:
  // (node, ok). The router wires this into the MembershipTable, making bus
  // deliveries the failure detector's primary signal source.
  void SetWireObserver(std::function<void(int node, bool ok)> observer);

  // Marks a member deferred: Publish only queues for it, never attempts
  // delivery (the router defers members it has declared down, so a dead
  // node does not cost a retry storm on every update).
  void SetDeferred(int node, bool deferred);

  // Encodes the notice once and enqueues it for every member, then drains
  // each non-deferred member whose queue exceeds the lag bound.
  PublishOutcome Publish(const std::string& app_id,
                         const service::UpdateNotice& notice);

  // Drains one member's queue in FIFO order — coalescing up to max_batch
  // notices per wire frame — stopping at the first frame whose delivery
  // fails (that frame and everything behind it stay queued). Returns the
  // notices replayed, or the wire error.
  StatusOr<uint64_t> Flush(int node);

  size_t Pending(int node) const;

  // Notices this member refused (deterministically) and the bus therefore
  // dropped. A member with dropped notices is permanently behind by that
  // many updates with nothing left to replay — the router must treat it as
  // backlog-unsafe for k-staleness reads.
  uint64_t Dropped(int node) const;

  BusStats stats() const;

 private:
  struct Member {
    int node = 0;
    service::Channel* channel = nullptr;
    std::unique_ptr<service::RetryingClient> client;
    mutable Mutex mu;
    std::deque<std::string> queue DSSP_GUARDED_BY(mu);
    bool deferred DSSP_GUARDED_BY(mu) = false;
    uint64_t dropped DSSP_GUARDED_BY(mu) = 0;
  };

  struct DrainResult {
    uint64_t frames = 0;   // Notices acknowledged (applied or deduped).
    uint64_t entries = 0;  // Cache entries those notices invalidated.
  };

  // Drains member.queue.
  StatusOr<DrainResult> DrainLocked(Member& member)
      DSSP_REQUIRES(member.mu);

  // One singleton / one batched wire exchange.
  StatusOr<DrainResult> SendSingleLocked(Member& member)
      DSSP_REQUIRES(member.mu);
  StatusOr<DrainResult> SendBatchLocked(Member& member, size_t count)
      DSSP_REQUIRES(member.mu);

  BusOptions options_;
  std::map<int, std::unique_ptr<Member>> members_;
  std::function<void(int, bool)> observer_;
  std::atomic<uint64_t> next_nonce_{1};
  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> delivered_notices_{0};
  std::atomic<uint64_t> batches_sent_{0};
  std::atomic<uint64_t> batched_notices_{0};
  std::atomic<uint64_t> dropped_frames_{0};
  std::atomic<uint64_t> unreachable_failures_{0};
  std::atomic<uint64_t> wire_retries_{0};
};

}  // namespace dssp::cluster

#endif  // DSSP_CLUSTER_BUS_H_
