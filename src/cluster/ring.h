#ifndef DSSP_CLUSTER_RING_H_
#define DSSP_CLUSTER_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string_view>
#include <vector>

namespace dssp::cluster {

// Seeded consistent-hash ring with virtual nodes: routes each cache key to
// an owner node plus R-1 distinct replicas, and remaps only ~1/N of the key
// space when a node joins or leaves (the property that makes membership
// churn survivable with warm caches).
//
// Placement is a pure function of (seed, member set): every router replica
// computing over the same membership view agrees on owners without any
// coordination. Virtual nodes smooth the per-node key-space share; 64 per
// node keeps the max/min load ratio within ~1.3 for small clusters.
//
// Not thread-safe: the ClusterRouter rebuilds a ring snapshot under its own
// lock on membership changes and reads it immutably afterwards.
class HashRing {
 public:
  static constexpr int kDefaultVnodes = 64;

  explicit HashRing(uint64_t seed, int vnodes_per_node = kDefaultVnodes);

  // Adding an existing node or removing a missing one is a no-op, so the
  // router can reconcile toward a membership view idempotently.
  void AddNode(int node);
  void RemoveNode(int node);
  bool HasNode(int node) const { return nodes_.contains(node); }
  size_t num_nodes() const { return nodes_.size(); }

  // The nodes responsible for `key`, owner first, then up to replicas-1
  // distinct fallbacks in ring (preference) order. Returns fewer when the
  // ring has fewer members; empty on an empty ring.
  std::vector<int> Owners(std::string_view key, size_t replicas) const;

  // Owners(key, 1), or -1 on an empty ring.
  int OwnerOf(std::string_view key) const;

  // Fraction of `probes` sampled keys owned by each node (diagnostics: the
  // cluster ablation reports placement balance).
  std::vector<double> LoadShares(size_t probes) const;

 private:
  uint64_t KeyPoint(std::string_view key) const;

  uint64_t seed_;
  int vnodes_;
  std::map<uint64_t, int> points_;  // Ring position -> node.
  std::set<int> nodes_;
};

}  // namespace dssp::cluster

#endif  // DSSP_CLUSTER_RING_H_
