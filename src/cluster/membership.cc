#include "cluster/membership.h"

#include "common/macros.h"

namespace dssp::cluster {

const char* NodeHealthName(NodeHealth health) {
  switch (health) {
    case NodeHealth::kAlive:
      return "alive";
    case NodeHealth::kSuspect:
      return "suspect";
    case NodeHealth::kDown:
      return "down";
  }
  DSSP_UNREACHABLE("bad NodeHealth");
}

MembershipTable::MembershipTable(MembershipPolicy policy) : policy_(policy) {
  DSSP_CHECK(policy_.suspect_after > 0 &&
             policy_.down_after >= policy_.suspect_after);
}

void MembershipTable::AddNode(int node) {
  DSSP_CHECK(node >= 0);
  MutexLock lock(mu_);
  members_.try_emplace(node);
}

NodeHealth MembershipTable::health(int node) const {
  MutexLock lock(mu_);
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  return it->second.health;
}

bool MembershipTable::Servable(int node) const {
  return health(node) != NodeHealth::kDown;
}

bool MembershipTable::ReportFailure(int node) {
  MutexLock lock(mu_);
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  Member& member = it->second;
  if (member.health == NodeHealth::kDown) return false;
  ++member.consecutive_failures;
  NodeHealth next = member.health;
  if (member.consecutive_failures >= policy_.down_after) {
    next = NodeHealth::kDown;
  } else if (member.consecutive_failures >= policy_.suspect_after) {
    next = NodeHealth::kSuspect;
  }
  if (next == member.health) return false;
  member.health = next;
  if (next == NodeHealth::kSuspect) ++member.counters.suspect_transitions;
  if (next == NodeHealth::kDown) ++member.counters.down_transitions;
  epoch_.fetch_add(1, std::memory_order_release);
  return true;
}

bool MembershipTable::ReportSuccess(int node) {
  MutexLock lock(mu_);
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  Member& member = it->second;
  member.consecutive_failures = 0;
  if (member.health != NodeHealth::kSuspect) return false;
  member.health = NodeHealth::kAlive;
  epoch_.fetch_add(1, std::memory_order_release);
  return true;
}

bool MembershipTable::Rejoin(int node) {
  MutexLock lock(mu_);
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  Member& member = it->second;
  if (member.health != NodeHealth::kDown) return false;
  member.health = NodeHealth::kAlive;
  member.consecutive_failures = 0;
  ++member.counters.rejoins;
  epoch_.fetch_add(1, std::memory_order_release);
  return true;
}

std::vector<int> MembershipTable::ServableNodes() const {
  MutexLock lock(mu_);
  std::vector<int> nodes;
  nodes.reserve(members_.size());
  for (const auto& [id, member] : members_) {
    if (member.health != NodeHealth::kDown) nodes.push_back(id);
  }
  return nodes;
}

MemberCounters MembershipTable::counters(int node) const {
  MutexLock lock(mu_);
  const auto it = members_.find(node);
  DSSP_CHECK(it != members_.end());
  return it->second.counters;
}

}  // namespace dssp::cluster
