#ifndef DSSP_CLUSTER_MEMBERSHIP_H_
#define DSSP_CLUSTER_MEMBERSHIP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "common/mutex.h"

namespace dssp::cluster {

// A member's health as seen by the router, driven by consecutive wire
// failures (there is no gossip layer: in the paper's topology the router
// front-ends every node, so its own wire observations are the failure
// detector).
//
//   kAlive ---failures >= suspect_after---> kSuspect
//   kSuspect --failures >= down_after-----> kDown
//   kSuspect --any wire success-----------> kAlive
//   kDown ----explicit Rejoin-------------> kAlive
//
// A suspect node still serves (its last observation might have been a
// transient drop) but the router prefers healthier replicas for stores. A
// down node is excluded from the ring until the invalidation bus has
// drained its pending-notice queue and Rejoin is called — serving from a
// node that missed invalidations would violate the staleness bound.
enum class NodeHealth { kAlive, kSuspect, kDown };

const char* NodeHealthName(NodeHealth health);

struct MembershipPolicy {
  int suspect_after = 2;  // Consecutive wire failures -> kSuspect.
  int down_after = 4;     // Consecutive wire failures -> kDown.
};

// Lifetime transition counters for one member.
struct MemberCounters {
  uint64_t suspect_transitions = 0;
  uint64_t down_transitions = 0;
  uint64_t rejoins = 0;
};

// Health registry for a fixed member set. Thread-safe; every health
// transition bumps a global epoch so the router knows to rebuild its ring
// snapshot without polling each member.
class MembershipTable {
 public:
  explicit MembershipTable(MembershipPolicy policy = MembershipPolicy{});

  void AddNode(int node);

  NodeHealth health(int node) const;
  bool Servable(int node) const;  // health != kDown.

  // Wire observations. Each returns true when the member's health changed
  // (the caller should then rebuild routing state). A success clears the
  // consecutive-failure streak and recovers a suspect, but never revives a
  // down node: that requires Rejoin, gated on bus-queue drain.
  bool ReportFailure(int node);
  bool ReportSuccess(int node);

  // kDown -> kAlive with a cleared failure streak. No-op unless down.
  bool Rejoin(int node);

  // Bumped on every health transition; reading it is lock-free.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  std::vector<int> ServableNodes() const;
  MemberCounters counters(int node) const;
  const MembershipPolicy& policy() const { return policy_; }

 private:
  struct Member {
    NodeHealth health = NodeHealth::kAlive;
    int consecutive_failures = 0;
    MemberCounters counters;
  };

  MembershipPolicy policy_;
  mutable Mutex mu_;
  std::map<int, Member> members_ DSSP_GUARDED_BY(mu_);
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace dssp::cluster

#endif  // DSSP_CLUSTER_MEMBERSHIP_H_
