#ifndef DSSP_SIM_EVENT_EXECUTOR_H_
#define DSSP_SIM_EVENT_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"

namespace dssp::sim {

// What a simulation event means to its handler. Client events drive the
// closed-loop page model; kill/rejoin are the chaos-scenario events, made
// first-class so they fire at their exact virtual time instead of
// piggybacking on whichever client event happens to pop next.
enum class SimEventKind : uint8_t {
  kClient = 0,
  kKill = 1,
  kRejoin = 2,
};

struct SimEvent {
  double time = 0;
  uint64_t seq = 0;  // Schedule order; tie-break for determinism.
  int32_t client = -1;  // Client index, or the node for kill/rejoin.
  SimEventKind kind = SimEventKind::kClient;
};

struct EventExecutorOptions {
  // Event-queue shards. A client's events always land in the same shard
  // (client % shards), so per-shard bucket appends replace the global
  // O(log N) heap discipline.
  size_t shards = 64;
  // Fixed thread set for the per-epoch harvest+sort. 0 = auto (hardware
  // concurrency, capped at 8); 1 = fully inline, no threads.
  int harvest_threads = 0;
  // Virtual-time width of one epoch. Events are bucketed by
  // floor(time / epoch_s); each Run iteration harvests exactly one epoch
  // across all shards behind a global virtual-time barrier.
  double epoch_s = 0.25;
};

// Epoch-based discrete-event executor built to multiplex ~10^6 closed-loop
// clients over a fixed thread set. The classic simulator keeps one global
// min-heap: every Schedule and every pop pays O(log N) on a single thread,
// and at a million in-flight clients the heap IS the simulation. Here
// Schedule is an O(1) append into a per-shard epoch bucket; Run advances a
// global virtual-time barrier one epoch at a time — harvesting each shard's
// due bucket, sorting shards in parallel on the fixed thread set, and
// k-way-merging the sorted runs — then executes the merged epoch strictly
// serialized in (time, seq) order on the calling thread.
//
// Determinism: execution order is the exact global (time, seq) order, the
// same total order the single heap produces, independent of shard count and
// thread count. Bucketing never reorders across epochs (times in epoch E
// all precede times in epoch E+1) and the per-shard sort + merge restores
// the order within one. Handlers run only on the Run caller's thread, so a
// simulation using this executor reproduces the single-threaded simulator
// bit for bit.
//
// The handler may Schedule freely, including into the epoch being executed:
// such events enter a live min-heap that the merge consults alongside the
// harvested runs. Scheduling into the past (time below the event being
// handled) is a checked error.
class EventExecutor {
 public:
  // Returns false to stop the run (remaining events are discarded).
  using Handler = std::function<bool(const SimEvent&)>;

  explicit EventExecutor(EventExecutorOptions options = EventExecutorOptions{});

  EventExecutor(const EventExecutor&) = delete;
  EventExecutor& operator=(const EventExecutor&) = delete;

  // O(1) amortized. Callable before Run (seeding) and from inside a handler
  // (the closed loop); never from other threads during Run.
  void Schedule(double time, int32_t client,
                SimEventKind kind = SimEventKind::kClient);

  // Executes all events in global (time, seq) order until the queues drain
  // or the handler returns false. Not reentrant.
  void Run(const Handler& handler);

  uint64_t events_executed() const { return events_executed_; }
  uint64_t epochs_run() const { return epochs_run_; }
  size_t shards() const { return shards_.size(); }
  int harvest_threads() const { return num_threads_; }

 private:
  struct EventAfter {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  struct Shard {
    // epoch index -> events due in that epoch, schedule order. Ordered map:
    // begin() is the shard's next due epoch.
    std::map<uint64_t, std::vector<SimEvent>> buckets;
  };

  uint64_t EpochOf(double time) const {
    return static_cast<uint64_t>(time / options_.epoch_s);
  }

  // Sorts `runs` on the fixed thread set (inline when small or threadless).
  void SortRuns(std::vector<std::vector<SimEvent>>& runs);

  void StartPool();
  void StopPool();
  void WorkerLoop();

  EventExecutorOptions options_;
  std::vector<Shard> shards_;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  uint64_t epochs_run_ = 0;

  // Run-time state for handler re-entry into Schedule.
  bool running_ = false;
  uint64_t current_epoch_ = 0;
  double current_time_ = 0;
  std::priority_queue<SimEvent, std::vector<SimEvent>, EventAfter> live_;

  // Fixed harvest/sort thread set, started on first Run that needs it.
  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  dssp::Mutex pool_mu_;
  dssp::CondVar pool_cv_;
  dssp::CondVar done_cv_;
  std::vector<std::vector<SimEvent>>* pool_runs_ DSSP_GUARDED_BY(pool_mu_) =
      nullptr;
  std::atomic<size_t> pool_next_{0};
  size_t pool_done_ DSSP_GUARDED_BY(pool_mu_) = 0;
  uint64_t pool_generation_ DSSP_GUARDED_BY(pool_mu_) = 0;
  bool pool_stop_ DSSP_GUARDED_BY(pool_mu_) = false;
};

}  // namespace dssp::sim

#endif  // DSSP_SIM_EVENT_EXECUTOR_H_
