#include "sim/cluster_sim.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "sim/event_executor.h"
#include "sim/histogram.h"
#include "sim/resource.h"

namespace dssp::sim {

namespace {

struct ClientState {
  size_t tenant = 0;
  bool in_page = false;
  double page_start = 0;
  std::vector<DbOp> ops;
  size_t op_index = 0;
};

struct TenantState {
  Tenant spec;
  size_t host = 0;  // Index into the home-tier host array.
  LatencyHistogram response_times;
  SimResult result;
  uint64_t hits = 0;
  uint64_t lookups = 0;

  explicit TenantState(const Tenant& tenant) : spec(tenant) {
    result.num_clients = tenant.num_clients;
  }
};

}  // namespace

StatusOr<ClusterSimResult> RunClusterSimulation(
    cluster::ClusterRouter& router, std::vector<Tenant> tenants,
    const SimConfig& config, const ClusterScenario& scenario,
    const HomeTopology& topology) {
  DSSP_CHECK(!tenants.empty());
  DSSP_CHECK(topology.num_hosts >= 0 && topology.pool_size >= 0);
  const int num_nodes = router.num_nodes();
  if (scenario.kill_at_s >= 0) {
    DSSP_CHECK(scenario.kill_node >= 0 && scenario.kill_node < num_nodes);
    DSSP_CHECK(scenario.rejoin_retry_s > 0);
  }
  Rng rng(config.seed);

  // One FIFO worker pool per member node — the scale-out resource.
  std::vector<QueueingResource> node_cpus;
  node_cpus.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    node_cpus.emplace_back(config.dssp_workers);
  }

  ClusterSimResult cluster_result;
  cluster_result.node_ops.assign(static_cast<size_t>(num_nodes), 0);

  // The home tier: M backend hosts, each a bounded connection pool shared by
  // its assigned tenants (round-robin). Defaults reproduce the legacy
  // per-tenant QueueingResource(config.home_workers) bit for bit.
  const size_t num_hosts = topology.num_hosts > 0
                               ? static_cast<size_t>(topology.num_hosts)
                               : tenants.size();
  backend::PoolOptions pool_options;
  pool_options.size =
      topology.pool_size > 0 ? topology.pool_size : config.home_workers;
  pool_options.lease_latency_s = topology.lease_latency_s;
  pool_options.lease_deadline_s = topology.lease_deadline_s;
  std::vector<std::unique_ptr<backend::BackendHost>> hosts;
  hosts.reserve(num_hosts);
  for (size_t h = 0; h < num_hosts; ++h) {
    hosts.push_back(std::make_unique<backend::BackendHost>(pool_options));
  }
  cluster_result.host_ops.assign(num_hosts, 0);

  std::vector<std::unique_ptr<TenantState>> states;
  std::vector<ClientState> clients;
  for (size_t t = 0; t < tenants.size(); ++t) {
    DSSP_CHECK(tenants[t].app != nullptr && tenants[t].generator != nullptr &&
               tenants[t].num_clients > 0);
    states.push_back(std::make_unique<TenantState>(tenants[t]));
    states.back()->host = t % num_hosts;
    // The functional layer joins the host too: co-hosted tenants execute on
    // the same pooled connections (shared prepared-statement caches keyed by
    // tenant identity), not just the same timing resource.
    hosts[states.back()->host]->AttachTenant(&tenants[t].app->home());
    for (int c = 0; c < tenants[t].num_clients; ++c) {
      ClientState client;
      client.tenant = t;
      clients.push_back(std::move(client));
    }
  }

  EventExecutorOptions exec_options;
  if (config.sim_threads > 0) exec_options.harvest_threads = config.sim_threads;
  if (config.sim_epoch_s > 0) exec_options.epoch_s = config.sim_epoch_s;
  EventExecutor executor(exec_options);

  // The chaos scenario is a first-class event: scheduled before the client
  // arrivals so its seq (the equal-time tie-break) makes it fire ahead of
  // any client event landing on the same virtual instant. The rejoin is
  // scheduled when the kill fires, so `rejoin_at_s < kill_at_s` degenerates
  // to "rejoin immediately after the kill" exactly as before.
  if (scenario.kill_at_s >= 0) {
    executor.Schedule(scenario.kill_at_s, scenario.kill_node,
                      SimEventKind::kKill);
  }

  if (config.exponential_arrivals) {
    // Poisson arrivals at the steady-state aggregate rate N / think_mean:
    // exponential inter-arrival gaps, one draw per client (same rng stream
    // length as the legacy stagger).
    const double gap_mean =
        config.think_time_mean_s / static_cast<double>(clients.size());
    double arrival = 0;
    for (size_t c = 0; c < clients.size(); ++c) {
      arrival += rng.NextExponential(gap_mean);
      executor.Schedule(arrival, static_cast<int32_t>(c));
    }
  } else {
    // Legacy: stagger initial arrivals uniformly over one think time.
    for (size_t c = 0; c < clients.size(); ++c) {
      executor.Schedule(rng.NextDouble() * config.think_time_mean_s,
                        static_cast<int32_t>(c));
    }
  }

  const double client_bw = config.client_bandwidth_bps / 8.0;  // bytes/s
  const double wan_bw = config.wan_bandwidth_bps / 8.0;

  Status error = Status::Ok();
  executor.Run([&](const SimEvent& event) -> bool {
    const double now = event.time;
    if (now > config.duration_s) return false;

    if (event.kind == SimEventKind::kKill) {
      router.KillNode(event.client);
      cluster_result.kill_fired = true;
      cluster_result.kill_fired_at_s = now;
      if (scenario.rejoin_at_s >= 0) {
        executor.Schedule(std::max(scenario.rejoin_at_s, now), event.client,
                          SimEventKind::kRejoin);
      }
      return true;
    }
    if (event.kind == SimEventKind::kRejoin) {
      // The drain can fail when the bus wire carries injected faults; retry
      // at a fixed virtual interval until it goes through or the run ends.
      auto replayed = router.ReviveNode(event.client);
      if (replayed.ok()) {
        cluster_result.rejoin_fired = true;
        cluster_result.rejoin_fired_at_s = now;
        cluster_result.rejoin_replayed = *replayed;
      } else {
        executor.Schedule(now + scenario.rejoin_retry_s, event.client,
                          SimEventKind::kRejoin);
      }
      return true;
    }

    ClientState& client = clients[static_cast<size_t>(event.client)];
    TenantState& tenant = *states[client.tenant];
    if (!client.in_page) {
      client.in_page = true;
      client.page_start = now;
      client.ops = tenant.spec.generator->NextPage(rng);
      client.op_index = 0;
    }

    if (client.op_index >= client.ops.size()) {
      if (now >= config.warmup_s) {
        tenant.response_times.Record(now - client.page_start);
        ++cluster_result.pages_measured;
      }
      ++tenant.result.pages_completed;
      client.in_page = false;
      const double think = rng.NextExponential(config.think_time_mean_s);
      executor.Schedule(now + think, event.client);
      return true;
    }

    const DbOp& op = client.ops[client.op_index++];
    service::AccessStats stats;
    bool op_failed = false;
    if (op.is_update) {
      auto effect = tenant.spec.app->Update(op.template_id, op.params, &stats);
      if (effect.ok()) {
        ++tenant.result.home_updates;
      } else if (effect.status().code() == StatusCode::kUnavailable ||
                 effect.status().code() == StatusCode::kDeadlineExceeded) {
        op_failed = true;
      } else {
        error = effect.status();
        return false;
      }
    } else {
      auto ignored = tenant.spec.app->Query(op.template_id, op.params, &stats);
      if (!ignored.ok()) {
        if (ignored.status().code() != StatusCode::kUnavailable &&
            ignored.status().code() != StatusCode::kDeadlineExceeded) {
          error = ignored.status();
          return false;
        }
        op_failed = true;
      }
      ++tenant.lookups;
      if (stats.cache_hit) ++tenant.hits;
      if (!stats.cache_hit && !stats.served_stale && !op_failed) {
        ++tenant.result.home_queries;
      }
    }
    ++tenant.result.db_ops;
    tenant.result.entries_invalidated += stats.entries_invalidated;
    tenant.result.wire_retries += stats.wire_retries;
    tenant.result.wire_timeouts += stats.wire_timeouts;
    if (stats.served_stale) ++tenant.result.stale_serves;
    if (op_failed) ++tenant.result.failed_ops;

    // Which member did the cache work? The router recorded it while the op
    // executed above (thread-local, so this event loop reads its own op).
    const cluster::RouteInfo route = cluster::ClusterRouter::ConsumeLastRoute();
    int charge_node = route.node;
    if (charge_node < 0) {
      // No servable owner: the router still hashed and probed. Charge a
      // deterministic stand-in pool so the op is not free.
      charge_node = event.client % num_nodes;
      ++cluster_result.unrouted_ops;
    } else if (route.replica_fallback) {
      ++cluster_result.fallback_ops;
    }
    ++cluster_result.node_ops[static_cast<size_t>(charge_node)];

    // Client -> DSSP cluster.
    const double at_dssp =
        now + config.client_latency_s +
        static_cast<double>(stats.request_bytes) / client_bw;
    // Per-member processing: only the routed member's pool is occupied —
    // this is where adding nodes buys throughput.
    const double dssp_service =
        config.dssp_lookup_s + static_cast<double>(stats.entries_invalidated) *
                                   config.dssp_per_invalidation_s;
    double dssp_done =
        node_cpus[static_cast<size_t>(charge_node)].Schedule(at_dssp,
                                                             dssp_service);

    if ((!stats.cache_hit || stats.is_update) && !stats.served_stale &&
        !op_failed) {
      const double at_home =
          dssp_done + config.wan_latency_s +
          static_cast<double>(stats.wan_request_bytes) / wan_bw;
      const double home_service =
          stats.is_update
              ? config.home_update_base_s
              : config.home_query_base_s +
                    static_cast<double>(stats.result_rows) *
                        config.home_query_per_row_s;
      // Home time queues on the tenant's host pool: with default topology
      // this is the old per-tenant Schedule arithmetic; with shared hosts,
      // co-tenants contend and saturation becomes queued leases (never
      // failed ops — backpressure).
      const backend::ConnectionPool::Admission admission =
          hosts[tenant.host]->pool().Admit(at_home, home_service);
      ++cluster_result.host_ops[tenant.host];
      dssp_done = admission.done + config.wan_latency_s +
                  static_cast<double>(stats.wan_response_bytes) / wan_bw;
    }
    dssp_done += stats.wire_delay_s;

    // DSSP -> client.
    const double at_client =
        dssp_done + config.client_latency_s +
        static_cast<double>(stats.response_bytes) / client_bw;
    executor.Schedule(at_client, event.client);
    return true;
  });
  if (!error.ok()) return error;

  for (const auto& state : states) {
    SimResult result = state->result;
    const LatencyHistogram& h = state->response_times;
    if (!h.empty()) {
      result.mean_response_s = h.Mean();
      result.p50_response_s = h.Percentile(0.50);
      result.p90_response_s = h.Percentile(config.percentile);
      result.p99_response_s = h.Percentile(0.99);
      result.max_response_s = h.Max();
    } else {
      result.mean_response_s = config.duration_s;
      result.p50_response_s = config.duration_s;
      result.p90_response_s = config.duration_s;
      result.p99_response_s = config.duration_s;
      result.max_response_s = config.duration_s;
    }
    result.cache_hit_rate =
        state->lookups == 0 ? 0.0
                            : static_cast<double>(state->hits) /
                                  static_cast<double>(state->lookups);
    cluster_result.tenants.push_back(result);
  }

  cluster_result.measured_duration_s = config.duration_s - config.warmup_s;
  cluster_result.throughput_pages_per_s =
      cluster_result.measured_duration_s <= 0
          ? 0.0
          : static_cast<double>(cluster_result.pages_measured) /
                cluster_result.measured_duration_s;
  cluster_result.events_executed = executor.events_executed();
  cluster_result.executor_epochs = executor.epochs_run();
  for (const auto& host : hosts) {
    const backend::PoolStats pool = host->pool().Stats();
    cluster_result.pool_leases_queued += pool.leases_queued;
    cluster_result.pool_lease_timeouts += pool.lease_timeouts;
    cluster_result.pool_wait_s_total += pool.total_wait_s;
    cluster_result.pool_wait_s_max =
        std::max(cluster_result.pool_wait_s_max, pool.max_wait_s);
    cluster_result.catalogs_loaded += host->catalogs_loaded();
  }
  return cluster_result;
}

}  // namespace dssp::sim
