#ifndef DSSP_SIM_CONFIG_H_
#define DSSP_SIM_CONFIG_H_

#include <cstdint>

namespace dssp::sim {

// Timing model of the paper's Emulab deployment (Section 5.2):
//  - home server <-> DSSP: high-latency, low-bandwidth WAN duplex link
//    (100 ms, 2 Mbps);
//  - client <-> DSSP: low-latency, high-bandwidth link (5 ms, 20 Mbps);
//  - clients issue a page request, wait, then think for an exponentially
//    distributed time with mean 7 s;
//  - each run lasts ten minutes from a cold cache;
//  - scalability = max concurrent users with 90% of page responses under
//    two seconds.
struct SimConfig {
  // Links.
  double client_latency_s = 0.005;
  double client_bandwidth_bps = 20e6;
  double wan_latency_s = 0.100;
  double wan_bandwidth_bps = 2e6;

  // DSSP node: a small pool of workers; per-op costs.
  int dssp_workers = 8;
  double dssp_lookup_s = 0.0002;
  double dssp_per_invalidation_s = 0.00002;

  // Home server: the bottleneck resource, a FIFO worker pool. Service
  // times model the paper's commodity P-III 850 MHz MySQL4 home server.
  int home_workers = 1;
  double home_query_base_s = 0.010;
  double home_query_per_row_s = 0.00005;
  double home_update_base_s = 0.008;

  // Client behaviour.
  double think_time_mean_s = 7.0;

  // Run shape. Pages completing before `warmup_s` are excluded from the
  // response-time statistics (the paper's ten-minute cold-cache runs
  // amortize warmup; shorter runs should skip it explicitly).
  double duration_s = 600.0;
  double warmup_s = 0.0;
  uint64_t seed = 42;

  // SLO used for the scalability metric.
  double response_time_limit_s = 2.0;
  double percentile = 0.90;

  // Initial-arrival model. The legacy default staggers each client's first
  // page uniformly over one think time, which biases warmup-window
  // percentiles (a uniform ramp, not the Poisson arrivals the steady-state
  // think model implies). true draws exponential inter-arrivals with mean
  // think_time_mean_s / num_clients instead. Kept opt-in so the published
  // figure runs stay bit-identical under the legacy seed.
  bool exponential_arrivals = false;

  // Event-executor shape (RunClusterSimulation only; 0 = auto). Neither
  // affects results — execution order is deterministic in (time, seq)
  // regardless — only how the harvest/sort work is spread over threads.
  int sim_threads = 0;
  double sim_epoch_s = 0;
};

}  // namespace dssp::sim

#endif  // DSSP_SIM_CONFIG_H_
