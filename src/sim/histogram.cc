#include "sim/histogram.h"

#include <algorithm>
#include <cmath>

namespace dssp::sim {

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

int LatencyHistogram::BucketFor(double seconds) const {
  const double clamped = std::clamp(seconds, kMinTracked, kMaxTracked);
  const double position =
      std::log10(clamped / kMinTracked) * kBucketsPerDecade;
  return std::min(kNumBuckets - 1,
                  std::max(0, static_cast<int>(position)));
}

double LatencyHistogram::BucketMidpoint(int bucket) const {
  // Geometric midpoint of [lo, hi) where lo = kMin * 10^(bucket/bpd).
  const double exponent =
      (static_cast<double>(bucket) + 0.5) / kBucketsPerDecade;
  return kMinTracked * std::pow(10.0, exponent);
}

void LatencyHistogram::Record(double seconds) {
  // Latencies computed as differences of floating-point timestamps can come
  // out as tiny negative values; clamp rather than abort.
  if (seconds < 0) seconds = 0;
  ++buckets_[BucketFor(seconds)];
  if (count_ == 0) {
    min_ = seconds;
    max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double clamped_p = std::clamp(p, 0.0, 1.0);
  // Rank of the quantile sample, 1-based, matching nearest-rank semantics.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(clamped_p *
                                         static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b];
    if (cumulative >= rank) {
      // Clamp the estimate into the observed range for tight tails.
      return std::clamp(BucketMidpoint(b), min_, max_);
    }
  }
  return max_;
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace dssp::sim
