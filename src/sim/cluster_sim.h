#ifndef DSSP_SIM_CLUSTER_SIM_H_
#define DSSP_SIM_CLUSTER_SIM_H_

#include <cstdint>
#include <vector>

#include "backend/host.h"
#include "cluster/router.h"
#include "common/status.h"
#include "sim/config.h"
#include "sim/simulator.h"

namespace dssp::sim {

// Shape of the home tier: how many physical backend hosts serve the N
// tenants, and how each host's connection pool is provisioned. Tenants are
// assigned to hosts round-robin (tenant t -> host t % num_hosts), and each
// host's pool is the simulated resource home work queues on — so home-server
// capacity (pool size, lease latency) is a first-class knob.
//
// The default (num_hosts = 0, pool_size = 0) gives every tenant a private
// host whose pool has config.home_workers connections and zero lease
// overhead — arithmetic identical to the per-tenant QueueingResource it
// replaced, so legacy callers see bit-identical timing.
struct HomeTopology {
  int num_hosts = 0;          // 0 = one host per tenant.
  int pool_size = 0;          // Connections per host; 0 = config.home_workers.
  double lease_latency_s = 0; // Per-lease checkout overhead (simulated).
  double lease_deadline_s = 0;  // Queued waits past this count as timeouts.
};

// Optional mid-run failover chaos: kill one member at a virtual instant and
// (optionally) rejoin it later. Negative times disable each step. Kill and
// rejoin are scheduled as first-class simulation events, so they fire at
// their exact virtual time even when the event queue is quiet.
struct ClusterScenario {
  double kill_at_s = -1;
  int kill_node = 0;
  double rejoin_at_s = -1;
  // A rejoin whose drain fails (e.g. injected bus faults) is retried this
  // much later, until it succeeds or the run ends.
  double rejoin_retry_s = 0.25;
};

// RunClusterSimulation outcome: the familiar per-tenant results plus
// cluster-level routing and failover accounting.
struct ClusterSimResult {
  std::vector<SimResult> tenants;

  // Pages completing inside the measured window (after warmup), all
  // tenants; the scale-out ablation's throughput metric.
  size_t pages_measured = 0;
  double measured_duration_s = 0;
  double throughput_pages_per_s = 0;

  // DB ops charged to each member's worker pool by the router's RouteInfo.
  std::vector<uint64_t> node_ops;
  uint64_t fallback_ops = 0;  // Served by a non-preferred replica.
  uint64_t unrouted_ops = 0;  // No servable owner: fell through to home.

  // Failover bookkeeping (meaningful when the scenario fired).
  bool kill_fired = false;
  bool rejoin_fired = false;
  uint64_t rejoin_replayed = 0;  // Invalidation notices drained at rejoin.
  double kill_fired_at_s = -1;    // Exact virtual kill instant.
  double rejoin_fired_at_s = -1;  // Exact virtual rejoin instant.

  // Event-executor accounting.
  uint64_t events_executed = 0;
  uint64_t executor_epochs = 0;

  // Home-tier accounting (per HomeTopology). Backpressure proof: every op
  // completes — saturation shows up as queued leases and wait time, never as
  // failed client ops.
  std::vector<uint64_t> host_ops;   // Home ops charged to each host's pool.
  uint64_t pool_leases_queued = 0;  // Ops that waited for a free connection.
  uint64_t pool_lease_timeouts = 0;  // Waits past topology.lease_deadline_s.
  double pool_wait_s_total = 0;      // Simulated seconds spent queued.
  double pool_wait_s_max = 0;        // Worst single queued wait.
  uint64_t catalogs_loaded = 0;  // Lazy per-tenant catalog materializations.
};

// The multi-tenant discrete-event simulation, re-pointed at a cluster: the
// single shared DSSP worker pool becomes one FIFO pool per member node, and
// each operation's service time is charged to the member that actually
// handled it (the router records the route thread-locally per operation).
// Driven by the epoch-based EventExecutor, so million-client runs multiplex
// over a fixed thread set instead of a global heap; execution stays
// serialized in (time, seq) order, and timing semantics are identical to
// RunMultiTenantSimulation, so a 1-node cluster reproduces the single-node
// numbers bit for bit.
//
// Every tenant's ScalableApp must already be constructed over `router` as
// its CacheBackend and finalized/populated.
StatusOr<ClusterSimResult> RunClusterSimulation(
    cluster::ClusterRouter& router, std::vector<Tenant> tenants,
    const SimConfig& config, const ClusterScenario& scenario = {},
    const HomeTopology& topology = {});

}  // namespace dssp::sim

#endif  // DSSP_SIM_CLUSTER_SIM_H_
