#ifndef DSSP_SIM_CLUSTER_SIM_H_
#define DSSP_SIM_CLUSTER_SIM_H_

#include <cstdint>
#include <vector>

#include "cluster/router.h"
#include "common/status.h"
#include "sim/config.h"
#include "sim/simulator.h"

namespace dssp::sim {

// Optional mid-run failover chaos: kill one member at a virtual instant and
// (optionally) rejoin it later. Negative times disable each step.
struct ClusterScenario {
  double kill_at_s = -1;
  int kill_node = 0;
  double rejoin_at_s = -1;
};

// RunClusterSimulation outcome: the familiar per-tenant results plus
// cluster-level routing and failover accounting.
struct ClusterSimResult {
  std::vector<SimResult> tenants;

  // Pages completing inside the measured window (after warmup), all
  // tenants; the scale-out ablation's throughput metric.
  size_t pages_measured = 0;
  double measured_duration_s = 0;
  double throughput_pages_per_s = 0;

  // DB ops charged to each member's worker pool by the router's RouteInfo.
  std::vector<uint64_t> node_ops;
  uint64_t fallback_ops = 0;  // Served by a non-preferred replica.
  uint64_t unrouted_ops = 0;  // No servable owner: fell through to home.

  // Failover bookkeeping (meaningful when the scenario fired).
  bool kill_fired = false;
  bool rejoin_fired = false;
  uint64_t rejoin_replayed = 0;  // Invalidation notices drained at rejoin.
};

// The multi-tenant discrete-event simulation, re-pointed at a cluster: the
// single shared DSSP worker pool becomes one FIFO pool per member node, and
// each operation's service time is charged to the member that actually
// handled it (the router records the route thread-locally per operation).
// Timing semantics are otherwise identical to RunMultiTenantSimulation, so
// a 1-node cluster reproduces the single-node numbers.
//
// Every tenant's ScalableApp must already be constructed over `router` as
// its CacheBackend and finalized/populated.
StatusOr<ClusterSimResult> RunClusterSimulation(
    cluster::ClusterRouter& router, std::vector<Tenant> tenants,
    const SimConfig& config, const ClusterScenario& scenario = {});

}  // namespace dssp::sim

#endif  // DSSP_SIM_CLUSTER_SIM_H_
