#ifndef DSSP_SIM_SIMULATOR_H_
#define DSSP_SIM_SIMULATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dssp/app.h"
#include "sim/config.h"
#include "sim/workload.h"

namespace dssp::sim {

// Aggregate outcome of one simulated run.
struct SimResult {
  int num_clients = 0;
  size_t pages_completed = 0;
  size_t db_ops = 0;
  double mean_response_s = 0;
  double p50_response_s = 0;
  double p90_response_s = 0;
  double p99_response_s = 0;
  double max_response_s = 0;
  double cache_hit_rate = 0;
  uint64_t entries_invalidated = 0;
  uint64_t home_queries = 0;
  uint64_t home_updates = 0;

  // Wire-path outcomes (all zero when the tenant runs the perfect direct
  // wire). Failed ops exhausted the retry budget and returned no result;
  // stale serves answered from the bounded-staleness store instead.
  uint64_t wire_retries = 0;
  uint64_t wire_timeouts = 0;
  uint64_t stale_serves = 0;
  uint64_t failed_ops = 0;

  bool MeetsSlo(const SimConfig& config) const {
    return p90_response_s <= config.response_time_limit_s;
  }

  std::string ToString() const;
};

// One application sharing the simulated DSSP node: its (finalized,
// populated) service stack, its page generator, and its client population.
// Each tenant gets its own simulated home server; all tenants share the
// DSSP node's worker pool (the paper's Figure 1 topology: one provider,
// many home servers).
struct Tenant {
  service::ScalableApp* app = nullptr;
  SessionGenerator* generator = nullptr;
  int num_clients = 0;
};

// Runs `num_clients` simulated users against `app` (already finalized and
// populated) for `config.duration_s` virtual seconds, starting from a cold
// DSSP cache. Each client alternates page requests (whose DB operations
// come from `generator`) with exponential think times.
//
// Database operations execute atomically at their virtual service instant;
// network latency, bandwidth, and FIFO queueing at the home server and the
// DSSP node are then charged to the page's response time. This serializes
// the system (the race-handling of a real deployment's non-transactional
// invalidation protocol is not modeled), which is the standard fidelity
// level for cache-scalability studies.
StatusOr<SimResult> RunSimulation(service::ScalableApp& app,
                                  SessionGenerator& generator,
                                  int num_clients, const SimConfig& config);

// Multi-tenant variant: all tenants' clients share the DSSP node (and its
// worker pool); each tenant's misses and updates queue at its own home
// server. Returns one SimResult per tenant, in input order.
StatusOr<std::vector<SimResult>> RunMultiTenantSimulation(
    std::vector<Tenant> tenants, const SimConfig& config);

}  // namespace dssp::sim

#endif  // DSSP_SIM_SIMULATOR_H_
