#ifndef DSSP_SIM_SEARCH_H_
#define DSSP_SIM_SEARCH_H_

#include <functional>
#include <utility>
#include <vector>

#include "sim/config.h"
#include "sim/simulator.h"

namespace dssp::sim {

// Runs one simulation at a given user count against a FRESH system (the
// callee must rebuild the application: updates mutate the master database,
// and each measurement starts from a cold cache, as in the paper).
using ProbeFn = std::function<StatusOr<SimResult>(int num_clients)>;

struct ScalabilityResult {
  // Max concurrent users meeting the SLO (0 if even `min_users` fails).
  int max_users = 0;
  // Every probe taken, in order.
  std::vector<SimResult> probes;
};

// Finds the scalability of a configuration: exponential ramp from
// `min_users` until the SLO fails (or `max_users` passes), then binary
// search to within `tolerance` users.
StatusOr<ScalabilityResult> FindMaxUsers(const ProbeFn& probe,
                                         const SimConfig& config,
                                         int min_users = 10,
                                         int max_users = 20000,
                                         int tolerance = 25);

}  // namespace dssp::sim

#endif  // DSSP_SIM_SEARCH_H_
