#ifndef DSSP_SIM_WORKLOAD_H_
#define DSSP_SIM_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "sql/value.h"

namespace dssp::sim {

// One database access issued while serving a page.
struct DbOp {
  bool is_update = false;
  std::string template_id;
  std::vector<sql::Value> params;
};

// Generates the database-access sequence of one HTTP page request.
// Implementations model an application's interaction mix (browse / search /
// buy / post / bid ...) with realistic parameter distributions.
class SessionGenerator {
 public:
  virtual ~SessionGenerator() = default;

  // The DB operations of the next page for some client. Implementations may
  // keep state (e.g., id counters for inserts) but must stay deterministic
  // given the Rng stream.
  virtual std::vector<DbOp> NextPage(Rng& rng) = 0;
};

}  // namespace dssp::sim

#endif  // DSSP_SIM_WORKLOAD_H_
