#include "sim/event_executor.h"

#include <algorithm>
#include <limits>

namespace dssp::sim {

namespace {

// Below this many due events, sorting inline beats waking the pool.
constexpr size_t kInlineSortThreshold = 4096;

bool EventBefore(const SimEvent& a, const SimEvent& b) {
  return a.time < b.time || (a.time == b.time && a.seq < b.seq);
}

}  // namespace

EventExecutor::EventExecutor(EventExecutorOptions options)
    : options_(options) {
  DSSP_CHECK(options_.shards >= 1);
  DSSP_CHECK(options_.epoch_s > 0);
  shards_.resize(options_.shards);
  if (options_.harvest_threads > 0) {
    num_threads_ = options_.harvest_threads;
  } else {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads_ = static_cast<int>(std::min(hw == 0 ? 1u : hw, 8u));
  }
}

void EventExecutor::Schedule(double time, int32_t client, SimEventKind kind) {
  SimEvent event;
  event.time = time;
  event.seq = next_seq_++;
  event.client = client;
  event.kind = kind;
  if (running_) {
    DSSP_CHECK(time >= current_time_);
    if (EpochOf(time) == current_epoch_) {
      // Due inside the epoch being executed: the harvested runs are already
      // sorted, so it joins via the live heap the merge also consults.
      live_.push(event);
      return;
    }
  }
  // Scenario events all share shard 0; they are rare, and a stable shard
  // keeps execution order independent of how many shards exist.
  const size_t shard =
      kind == SimEventKind::kClient
          ? static_cast<size_t>(static_cast<uint32_t>(client)) % shards_.size()
          : 0;
  shards_[shard].buckets[EpochOf(time)].push_back(event);
}

void EventExecutor::SortRuns(std::vector<std::vector<SimEvent>>& runs) {
  size_t total = 0;
  for (const auto& run : runs) total += run.size();
  if (num_threads_ <= 1 || total < kInlineSortThreshold) {
    for (auto& run : runs) std::sort(run.begin(), run.end(), EventBefore);
    return;
  }
  StartPool();
  {
    MutexLock lock(pool_mu_);
    pool_runs_ = &runs;
    pool_next_.store(0, std::memory_order_relaxed);
    pool_done_ = 0;
    ++pool_generation_;
    pool_cv_.NotifyAll();
    // Explicit predicate loop (not the lambda-predicate wait overload):
    // thread-safety analysis checks lambdas as separate functions that do
    // not inherit the caller's lock set, so the guarded reads live here.
    while (pool_done_ != workers_.size()) done_cv_.Wait(lock);
    pool_runs_ = nullptr;
  }
}

void EventExecutor::StartPool() {
  if (!workers_.empty()) return;
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void EventExecutor::StopPool() {
  {
    MutexLock lock(pool_mu_);
    pool_stop_ = true;
    pool_cv_.NotifyAll();
  }
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  MutexLock lock(pool_mu_);
  pool_stop_ = false;
}

void EventExecutor::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    std::vector<std::vector<SimEvent>>* runs = nullptr;
    {
      MutexLock lock(pool_mu_);
      while (!pool_stop_ && pool_generation_ == seen_generation) {
        pool_cv_.Wait(lock);
      }
      if (pool_stop_) return;
      seen_generation = pool_generation_;
      runs = pool_runs_;
    }
    // Work-steal whole runs off a shared atomic cursor; per-run sort order
    // does not depend on which worker sorted it.
    for (size_t i = pool_next_.fetch_add(1, std::memory_order_relaxed);
         i < runs->size();
         i = pool_next_.fetch_add(1, std::memory_order_relaxed)) {
      std::sort((*runs)[i].begin(), (*runs)[i].end(), EventBefore);
    }
    {
      MutexLock lock(pool_mu_);
      ++pool_done_;
      if (pool_done_ == workers_.size()) done_cv_.NotifyAll();
    }
  }
}

void EventExecutor::Run(const Handler& handler) {
  DSSP_CHECK(!running_);
  running_ = true;

  // Merge heap entries: index of a harvested run with at least one event
  // left; ordered by that run's head event.
  std::vector<std::vector<SimEvent>> runs;
  std::vector<size_t> cursor;

  while (true) {
    // Global virtual-time barrier: the earliest epoch any shard has due.
    uint64_t epoch = std::numeric_limits<uint64_t>::max();
    for (const Shard& shard : shards_) {
      if (shard.buckets.empty()) continue;
      epoch = std::min(epoch, shard.buckets.begin()->first);
    }
    if (epoch == std::numeric_limits<uint64_t>::max()) break;
    current_epoch_ = epoch;

    // Harvest: move this epoch's bucket out of every shard that has one.
    runs.clear();
    for (Shard& shard : shards_) {
      const auto it = shard.buckets.find(epoch);
      if (it == shard.buckets.end()) continue;
      runs.push_back(std::move(it->second));
      shard.buckets.erase(it);
    }
    SortRuns(runs);

    cursor.assign(runs.size(), 0);
    auto head_after = [&](size_t a, size_t b) {
      const SimEvent& ea = runs[a][cursor[a]];
      const SimEvent& eb = runs[b][cursor[b]];
      return EventBefore(eb, ea);
    };
    std::priority_queue<size_t, std::vector<size_t>, decltype(head_after)>
        heads(head_after);
    for (size_t i = 0; i < runs.size(); ++i) {
      if (!runs[i].empty()) heads.push(i);
    }

    // Execute the merged epoch serialized in (time, seq) order, folding in
    // events the handler schedules back into this same epoch.
    while (!heads.empty() || !live_.empty()) {
      SimEvent event;
      bool from_live = false;
      if (heads.empty()) {
        from_live = true;
      } else if (!live_.empty()) {
        const size_t i = heads.top();
        from_live = EventBefore(live_.top(), runs[i][cursor[i]]);
      }
      if (from_live) {
        event = live_.top();
        live_.pop();
      } else {
        const size_t i = heads.top();
        heads.pop();
        event = runs[i][cursor[i]];
        if (++cursor[i] < runs[i].size()) heads.push(i);
      }

      current_time_ = event.time;
      ++events_executed_;
      if (!handler(event)) {
        // Stopped mid-epoch: drop everything still pending, like the
        // classic loop breaking out with a non-empty heap.
        live_ = {};
        for (Shard& shard : shards_) shard.buckets.clear();
        ++epochs_run_;
        running_ = false;
        StopPool();
        return;
      }
    }
    ++epochs_run_;
  }

  running_ = false;
  StopPool();
}

}  // namespace dssp::sim
