#include "sim/trace.h"

#include "common/strings.h"
#include "sql/tokenizer.h"

namespace dssp::sim {

std::vector<DbOp> RecordPages(SessionGenerator& generator, Rng& rng,
                              int pages) {
  std::vector<DbOp> trace;
  for (int page = 0; page < pages; ++page) {
    for (DbOp& op : generator.NextPage(rng)) {
      trace.push_back(std::move(op));
    }
  }
  return trace;
}

std::string SerializeTrace(const std::vector<DbOp>& trace) {
  std::string out;
  for (const DbOp& op : trace) {
    out += op.is_update ? "U " : "Q ";
    out += op.template_id;
    for (const sql::Value& param : op.params) {
      out += " ";
      out += param.ToSqlLiteral();
    }
    out += "\n";
  }
  return out;
}

StatusOr<std::vector<DbOp>> ParseTrace(std::string_view text) {
  std::vector<DbOp> trace;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    const std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;

    const auto fail = [&](const std::string& what) {
      return ParseError("trace line " + std::to_string(line_number) + ": " +
                        what);
    };

    DbOp op;
    if (StartsWith(line, "Q ")) {
      op.is_update = false;
    } else if (StartsWith(line, "U ")) {
      op.is_update = true;
    } else {
      return fail("expected 'Q ' or 'U ' prefix");
    }

    const std::string_view rest = StripWhitespace(line.substr(2));
    const size_t space = rest.find(' ');
    op.template_id = std::string(rest.substr(0, space));
    if (op.template_id.empty()) return fail("missing template id");

    if (space != std::string_view::npos) {
      // Parameters are SQL literals: reuse the SQL tokenizer.
      DSSP_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens,
                            sql::Tokenize(rest.substr(space + 1)));
      for (const sql::Token& token : tokens) {
        switch (token.type) {
          case sql::TokenType::kIntLiteral:
            op.params.emplace_back(static_cast<int64_t>(
                std::strtoll(token.text.c_str(), nullptr, 10)));
            break;
          case sql::TokenType::kDoubleLiteral:
            op.params.emplace_back(std::strtod(token.text.c_str(), nullptr));
            break;
          case sql::TokenType::kStringLiteral:
            op.params.emplace_back(token.text);
            break;
          case sql::TokenType::kKeyword:
            if (token.text == "NULL") {
              op.params.push_back(sql::Value::Null());
              break;
            }
            return fail("unexpected keyword " + token.text);
          case sql::TokenType::kEnd:
            break;
          default:
            return fail("unexpected token '" + token.text + "'");
        }
      }
    }
    trace.push_back(std::move(op));
  }
  return trace;
}

StatusOr<ReplayStats> ReplayTrace(service::ScalableApp& app,
                                  const std::vector<DbOp>& trace) {
  ReplayStats stats;
  for (const DbOp& op : trace) {
    service::AccessStats access;
    if (op.is_update) {
      DSSP_ASSIGN_OR_RETURN(engine::UpdateEffect effect,
                            app.Update(op.template_id, op.params, &access));
      ++stats.updates;
      stats.rows_affected += effect.rows_affected;
      stats.entries_invalidated += access.entries_invalidated;
    } else {
      DSSP_ASSIGN_OR_RETURN(engine::QueryResult result,
                            app.Query(op.template_id, op.params, &access));
      ++stats.queries;
      stats.rows_returned += result.num_rows();
      if (access.cache_hit) ++stats.cache_hits;
    }
  }
  return stats;
}

}  // namespace dssp::sim
