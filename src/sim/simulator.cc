#include "sim/simulator.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <queue>
#include <vector>

#include "common/random.h"
#include "sim/histogram.h"
#include "sim/resource.h"

namespace dssp::sim {

std::string SimResult::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "clients=%d pages=%zu ops=%zu mean=%.3fs p50=%.3fs "
                "p90=%.3fs p99=%.3fs hit_rate=%.3f invalidated=%llu "
                "home_q=%llu home_u=%llu",
                num_clients, pages_completed, db_ops, mean_response_s,
                p50_response_s, p90_response_s, p99_response_s,
                cache_hit_rate,
                static_cast<unsigned long long>(entries_invalidated),
                static_cast<unsigned long long>(home_queries),
                static_cast<unsigned long long>(home_updates));
  return buf;
}

namespace {

struct Event {
  double time;
  uint64_t seq;  // Tie-break for determinism.
  int client;

  bool operator>(const Event& other) const {
    return time > other.time || (time == other.time && seq > other.seq);
  }
};

struct ClientState {
  size_t tenant = 0;
  bool in_page = false;
  double page_start = 0;
  std::vector<DbOp> ops;
  size_t op_index = 0;
};

struct TenantState {
  Tenant spec;
  QueueingResource home_cpu;
  LatencyHistogram response_times;
  SimResult result;
  uint64_t hits = 0;
  uint64_t lookups = 0;

  TenantState(const Tenant& tenant, int home_workers)
      : spec(tenant), home_cpu(home_workers) {
    result.num_clients = tenant.num_clients;
  }
};

}  // namespace

StatusOr<std::vector<SimResult>> RunMultiTenantSimulation(
    std::vector<Tenant> tenants, const SimConfig& config) {
  DSSP_CHECK(!tenants.empty());
  Rng rng(config.seed);

  QueueingResource dssp_cpu(config.dssp_workers);
  std::vector<std::unique_ptr<TenantState>> states;
  std::vector<ClientState> clients;
  for (size_t t = 0; t < tenants.size(); ++t) {
    DSSP_CHECK(tenants[t].app != nullptr &&
               tenants[t].generator != nullptr &&
               tenants[t].num_clients > 0);
    states.push_back(
        std::make_unique<TenantState>(tenants[t], config.home_workers));
    for (int c = 0; c < tenants[t].num_clients; ++c) {
      ClientState client;
      client.tenant = t;
      clients.push_back(std::move(client));
    }
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  uint64_t seq = 0;
  if (config.exponential_arrivals) {
    // Poisson arrivals at the steady-state aggregate rate N / think_mean:
    // exponential inter-arrival gaps, one draw per client (same rng stream
    // length as the legacy stagger).
    const double gap_mean =
        config.think_time_mean_s / static_cast<double>(clients.size());
    double arrival = 0;
    for (size_t c = 0; c < clients.size(); ++c) {
      arrival += rng.NextExponential(gap_mean);
      events.push(Event{arrival, seq++, static_cast<int>(c)});
    }
  } else {
    // Legacy: stagger initial arrivals uniformly over one think time.
    for (size_t c = 0; c < clients.size(); ++c) {
      events.push(Event{rng.NextDouble() * config.think_time_mean_s, seq++,
                        static_cast<int>(c)});
    }
  }

  const double client_bw = config.client_bandwidth_bps / 8.0;  // bytes/s
  const double wan_bw = config.wan_bandwidth_bps / 8.0;

  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    const double now = event.time;
    if (now > config.duration_s) break;

    ClientState& client = clients[event.client];
    TenantState& tenant = *states[client.tenant];
    if (!client.in_page) {
      client.in_page = true;
      client.page_start = now;
      client.ops = tenant.spec.generator->NextPage(rng);
      client.op_index = 0;
    }

    if (client.op_index >= client.ops.size()) {
      // Page complete. Warmup pages serve traffic but are not measured.
      if (now >= config.warmup_s) {
        tenant.response_times.Record(now - client.page_start);
      }
      ++tenant.result.pages_completed;
      client.in_page = false;
      const double think = rng.NextExponential(config.think_time_mean_s);
      events.push(Event{now + think, seq++, event.client});
      continue;
    }

    // Execute the next DB operation of this page. The cache/database effect
    // happens atomically now; delays are charged to the page afterwards.
    const DbOp& op = client.ops[client.op_index++];
    service::AccessStats stats;
    bool op_failed = false;
    if (op.is_update) {
      auto effect = tenant.spec.app->Update(op.template_id, op.params,
                                            &stats);
      if (effect.ok()) {
        ++tenant.result.home_updates;
      } else if (effect.status().code() == StatusCode::kUnavailable ||
                 effect.status().code() == StatusCode::kDeadlineExceeded) {
        // Degraded wire: the op ran out of retry budget. Charge its wire
        // time and keep the run going (a saturated WAN is a result, not a
        // simulator failure).
        op_failed = true;
      } else {
        return effect.status();
      }
    } else {
      auto ignored = tenant.spec.app->Query(op.template_id, op.params,
                                            &stats);
      if (!ignored.ok()) {
        if (ignored.status().code() != StatusCode::kUnavailable &&
            ignored.status().code() != StatusCode::kDeadlineExceeded) {
          return ignored.status();
        }
        op_failed = true;
      }
      ++tenant.lookups;
      if (stats.cache_hit) ++tenant.hits;
      if (!stats.cache_hit && !stats.served_stale && !op_failed) {
        ++tenant.result.home_queries;
      }
    }
    ++tenant.result.db_ops;
    tenant.result.entries_invalidated += stats.entries_invalidated;
    tenant.result.wire_retries += stats.wire_retries;
    tenant.result.wire_timeouts += stats.wire_timeouts;
    if (stats.served_stale) ++tenant.result.stale_serves;
    if (op_failed) ++tenant.result.failed_ops;

    // Client -> DSSP.
    const double at_dssp = now + config.client_latency_s +
                           static_cast<double>(stats.request_bytes) /
                               client_bw;
    // DSSP processing (lookup + invalidation work for updates), shared
    // across all tenants.
    const double dssp_service =
        config.dssp_lookup_s +
        static_cast<double>(stats.entries_invalidated) *
            config.dssp_per_invalidation_s;
    double dssp_done = dssp_cpu.Schedule(at_dssp, dssp_service);

    // Misses and updates make a WAN round trip through this tenant's own
    // home server. Ops the wire never completed (failed or served stale)
    // skip the home service stop: their cost is the wire delay below.
    if ((!stats.cache_hit || stats.is_update) && !stats.served_stale &&
        !op_failed) {
      const double at_home =
          dssp_done + config.wan_latency_s +
          static_cast<double>(stats.wan_request_bytes) / wan_bw;
      const double home_service =
          stats.is_update
              ? config.home_update_base_s
              : config.home_query_base_s +
                    static_cast<double>(stats.result_rows) *
                        config.home_query_per_row_s;
      const double home_done = tenant.home_cpu.Schedule(at_home,
                                                        home_service);
      dssp_done = home_done + config.wan_latency_s +
                  static_cast<double>(stats.wan_response_bytes) / wan_bw;
    }
    // Retry latency: injected wire faults, per-attempt timeouts, and
    // backoff waits (0 on the perfect wire, so fault-free timing is
    // unchanged).
    dssp_done += stats.wire_delay_s;

    // DSSP -> client.
    const double at_client =
        dssp_done + config.client_latency_s +
        static_cast<double>(stats.response_bytes) / client_bw;
    events.push(Event{at_client, seq++, event.client});
  }

  std::vector<SimResult> results;
  for (const auto& state : states) {
    SimResult result = state->result;
    const LatencyHistogram& h = state->response_times;
    if (!h.empty()) {
      result.mean_response_s = h.Mean();
      result.p50_response_s = h.Percentile(0.50);
      result.p90_response_s = h.Percentile(config.percentile);
      result.p99_response_s = h.Percentile(0.99);
      result.max_response_s = h.Max();
    } else {
      // No page finished inside the measured window: the system is
      // hopelessly saturated.
      result.mean_response_s = config.duration_s;
      result.p50_response_s = config.duration_s;
      result.p90_response_s = config.duration_s;
      result.p99_response_s = config.duration_s;
      result.max_response_s = config.duration_s;
    }
    result.cache_hit_rate =
        state->lookups == 0
            ? 0.0
            : static_cast<double>(state->hits) /
                  static_cast<double>(state->lookups);
    results.push_back(result);
  }
  return results;
}

StatusOr<SimResult> RunSimulation(service::ScalableApp& app,
                                  SessionGenerator& generator,
                                  int num_clients, const SimConfig& config) {
  DSSP_ASSIGN_OR_RETURN(
      std::vector<SimResult> results,
      RunMultiTenantSimulation({Tenant{&app, &generator, num_clients}},
                               config));
  DSSP_CHECK(results.size() == 1);
  return results[0];
}

}  // namespace dssp::sim
