#ifndef DSSP_SIM_TRACE_H_
#define DSSP_SIM_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dssp/app.h"
#include "sim/workload.h"

namespace dssp::sim {

// Workload traces: a recorded sequence of database operations (template id
// + parameters) that can be saved as text, diffed, and replayed against any
// exposure configuration. Experiments that compare configurations replay
// the SAME trace so differences are attributable to the configuration, not
// to workload randomness.
//
// Text format, one operation per line (parameters are SQL literals):
//
//   Q Q4 'SCIFI'
//   U U6 55 417
//   # comments and blank lines are ignored

// Records `pages` pages from `generator` into a flat operation list.
std::vector<DbOp> RecordPages(SessionGenerator& generator, Rng& rng,
                              int pages);

// Serializes a trace to the text format above.
std::string SerializeTrace(const std::vector<DbOp>& trace);

// Parses the text format; fails on malformed lines.
StatusOr<std::vector<DbOp>> ParseTrace(std::string_view text);

// Outcome of replaying a trace through the live service path.
struct ReplayStats {
  size_t queries = 0;
  size_t updates = 0;
  size_t cache_hits = 0;
  size_t entries_invalidated = 0;
  size_t rows_returned = 0;
  size_t rows_affected = 0;

  double hit_rate() const {
    return queries == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(queries);
  }
};

// Replays every operation in order against `app` (finalized, populated).
// Fails fast on the first operation error.
StatusOr<ReplayStats> ReplayTrace(service::ScalableApp& app,
                                  const std::vector<DbOp>& trace);

}  // namespace dssp::sim

#endif  // DSSP_SIM_TRACE_H_
