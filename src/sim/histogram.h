#ifndef DSSP_SIM_HISTOGRAM_H_
#define DSSP_SIM_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace dssp::sim {

// A log-bucketed latency histogram (HDR-histogram style): constant memory
// regardless of sample count, ~2.3% relative quantile error (100 buckets
// per decade across 1 µs .. 1000 s). The simulator records every page
// response here, so ten-minute runs with thousands of clients do not
// accumulate per-sample vectors.
class LatencyHistogram {
 public:
  LatencyHistogram();

  // Records a latency in seconds (clamped into the tracked range).
  void Record(double seconds);

  // The p-quantile (p in [0, 1]) as the geometric midpoint of the bucket
  // containing it; exact min/max are tracked separately. Returns 0 when
  // empty.
  double Percentile(double p) const;

  double Mean() const;
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Adds all of `other`'s samples.
  void Merge(const LatencyHistogram& other);

  void Reset();

 private:
  static constexpr double kMinTracked = 1e-6;   // 1 microsecond.
  static constexpr double kMaxTracked = 1e3;    // 1000 seconds.
  static constexpr int kBucketsPerDecade = 100;
  static constexpr int kDecades = 9;
  static constexpr int kNumBuckets = kBucketsPerDecade * kDecades;

  int BucketFor(double seconds) const;
  double BucketMidpoint(int bucket) const;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace dssp::sim

#endif  // DSSP_SIM_HISTOGRAM_H_
