#ifndef DSSP_SIM_RESOURCE_H_
#define DSSP_SIM_RESOURCE_H_

#include <algorithm>
#include <vector>

#include "common/macros.h"

namespace dssp::sim {

// A FIFO worker pool in virtual time: jobs go to the earliest-free worker.
// Models the home server's DBMS workers and the DSSP node's CPU.
class QueueingResource {
 public:
  explicit QueueingResource(int workers) : busy_until_(workers, 0.0) {
    DSSP_CHECK(workers > 0);
  }

  // Enqueues a job arriving at `arrival` needing `service` seconds; returns
  // its completion time and advances the worker's clock.
  double Schedule(double arrival, double service) {
    auto it = std::min_element(busy_until_.begin(), busy_until_.end());
    const double start = std::max(arrival, *it);
    *it = start + service;
    return *it;
  }

  // Total queueing delay a job arriving now would see before starting.
  double CurrentBacklog(double now) const {
    const double earliest =
        *std::min_element(busy_until_.begin(), busy_until_.end());
    return std::max(0.0, earliest - now);
  }

  void Reset() {
    for (double& b : busy_until_) b = 0.0;
  }

 private:
  std::vector<double> busy_until_;
};

}  // namespace dssp::sim

#endif  // DSSP_SIM_RESOURCE_H_
