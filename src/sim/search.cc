#include "sim/search.h"

namespace dssp::sim {

StatusOr<ScalabilityResult> FindMaxUsers(const ProbeFn& probe,
                                         const SimConfig& config,
                                         int min_users, int max_users,
                                         int tolerance) {
  DSSP_CHECK(min_users > 0 && max_users >= min_users && tolerance > 0);
  ScalabilityResult out;

  const auto run = [&](int users) -> StatusOr<bool> {
    DSSP_ASSIGN_OR_RETURN(SimResult result, probe(users));
    out.probes.push_back(result);
    return result.MeetsSlo(config);
  };

  // Exponential ramp. Scalability need not be monotone at the very low
  // end: with few clients a shared cache fills slowly, so cold-cache-bound
  // configurations can fail at 10 users yet pass at 200. The ramp therefore
  // keeps going past early failures and only treats a failure as the upper
  // edge once some user count has passed.
  int good = 0;
  int bad = -1;
  int users = min_users;
  while (users <= max_users) {
    DSSP_ASSIGN_OR_RETURN(bool ok, run(users));
    if (ok) {
      good = users;
    } else if (good > 0) {
      bad = users;
      break;
    }
    users *= 2;
  }
  if (good == 0) {
    out.max_users = 0;  // No probed user count met the SLO.
    return out;
  }
  if (bad < 0) {
    out.max_users = good;  // Met the SLO all the way up to max_users.
    return out;
  }

  // Binary search in (good, bad).
  while (bad - good > tolerance) {
    const int mid = good + (bad - good) / 2;
    DSSP_ASSIGN_OR_RETURN(bool ok, run(mid));
    if (ok) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  out.max_users = good;
  return out;
}

}  // namespace dssp::sim
