#ifndef DSSP_CRYPTO_KEYRING_H_
#define DSSP_CRYPTO_KEYRING_H_

#include <map>
#include <string>
#include <string_view>

#include "crypto/cipher.h"

namespace dssp::crypto {

// Holds one application's master key and hands out purpose-specific ciphers.
// The DSSP itself never sees a KeyRing: keys live at the application home
// server and (conceptually) in client-side application code, which is what
// keeps DSSP administrators and co-tenant applications out (paper Section 1,
// footnote 1).
class KeyRing {
 public:
  explicit KeyRing(const Key& master) : master_(master) {}

  // Creates a keyring from a human-readable secret (for tests/examples).
  static KeyRing FromPassphrase(std::string_view passphrase);

  // A cipher for the given purpose label (e.g., "statement", "params:QT3",
  // "result"). Ciphers for equal labels are identical; for different labels
  // they are independent.
  DeterministicCipher CipherFor(std::string_view purpose) const;

  const Key& master() const { return master_; }

 private:
  Key master_;
};

}  // namespace dssp::crypto

#endif  // DSSP_CRYPTO_KEYRING_H_
