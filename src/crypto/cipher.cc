#include "crypto/cipher.h"

#include <cstring>

#include "common/hash.h"
#include "common/macros.h"

namespace dssp::crypto {

namespace {

// Expands a SipHash-based keystream of `out.size()` bytes derived from
// (key, round, seed_data) and XORs it into `out`. The seed is compressed to
// a 64-bit digest once, then expanded in counter mode, so the cost is
// O(|seed| + |out|).
void XorKeystream(const Key& key, uint64_t round, std::string_view seed_data,
                  std::string* out) {
  const uint64_t seed_digest =
      SipHash24(key.k0 ^ (round * 0x9e3779b97f4a7c15ULL), key.k1, seed_data);
  uint64_t counter = 0;
  size_t pos = 0;
  while (pos < out->size()) {
    const uint64_t block = SipHash24(
        key.k0 ^ (round * 0x9e3779b97f4a7c15ULL), seed_digest,
        std::string_view(reinterpret_cast<const char*>(&counter),
                         sizeof(counter)));
    unsigned char bytes[8];
    std::memcpy(bytes, &block, sizeof(block));
    for (size_t i = 0; i < 8 && pos < out->size(); ++i, ++pos) {
      (*out)[pos] = static_cast<char>(
          static_cast<unsigned char>((*out)[pos]) ^ bytes[i]);
    }
    ++counter;
  }
}

}  // namespace

Key DeriveKey(const Key& master, std::string_view label) {
  Key derived;
  derived.k0 = SipHash24(master.k0, master.k1, label);
  std::string label2(label);
  label2 += "\x01";
  derived.k1 = SipHash24(master.k0, master.k1, label2);
  return derived;
}

std::string DeterministicCipher::Encrypt(std::string_view plaintext) const {
  std::string data(plaintext);
  if (data.size() < 2) {
    // Degenerate Feistel: XOR with a keystream seeded only by length, which
    // is still deterministic and invertible.
    XorKeystream(key_, 0xffff, "short", &data);
    return data;
  }
  const size_t half = data.size() / 2;
  // 4 Feistel rounds: L ^= F(R); swap roles.
  for (uint64_t round = 0; round < 4; ++round) {
    const bool left_active = (round % 2 == 0);
    std::string_view other =
        left_active ? std::string_view(data).substr(half)
                    : std::string_view(data).substr(0, half);
    std::string seed(other);
    std::string target = left_active ? data.substr(0, half)
                                     : data.substr(half);
    XorKeystream(key_, round, seed, &target);
    if (left_active) {
      data.replace(0, half, target);
    } else {
      data.replace(half, data.size() - half, target);
    }
  }
  return data;
}

std::string DeterministicCipher::Decrypt(std::string_view ciphertext) const {
  std::string data(ciphertext);
  if (data.size() < 2) {
    XorKeystream(key_, 0xffff, "short", &data);
    return data;
  }
  const size_t half = data.size() / 2;
  // Run the rounds in reverse. XOR is self-inverse, so each round undoes
  // itself given the same seed half.
  for (uint64_t round = 4; round-- > 0;) {
    const bool left_active = (round % 2 == 0);
    std::string_view other =
        left_active ? std::string_view(data).substr(half)
                    : std::string_view(data).substr(0, half);
    std::string seed(other);
    std::string target = left_active ? data.substr(0, half)
                                     : data.substr(half);
    XorKeystream(key_, round, seed, &target);
    if (left_active) {
      data.replace(0, half, target);
    } else {
      data.replace(half, data.size() - half, target);
    }
  }
  return data;
}

uint64_t DeterministicCipher::Tag(std::string_view plaintext) const {
  return SipHash24(key_.k0 ^ 0x7461675f5f5f5f5fULL, key_.k1, plaintext);
}

}  // namespace dssp::crypto
