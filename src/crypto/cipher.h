#ifndef DSSP_CRYPTO_CIPHER_H_
#define DSSP_CRYPTO_CIPHER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dssp::crypto {

// A 128-bit symmetric key.
struct Key {
  uint64_t k0 = 0;
  uint64_t k1 = 0;

  friend bool operator==(const Key& a, const Key& b) = default;
};

// Derives a named sub-key from a master key (e.g., one key per application,
// per template, or per purpose such as "params" vs "results").
Key DeriveKey(const Key& master, std::string_view label);

// Deterministic, length-preserving symmetric cipher.
//
// Construction: a 4-round unbalanced Feistel network whose round function is
// a SipHash-2-4-seeded keystream (a Luby-Rackoff-style PRP). Deterministic
// encryption is REQUIRED by the DSSP design: the cache must be able to use
// ciphertexts as lookup keys, so equal plaintexts must produce equal
// ciphertexts under the same key (paper Section 2.2, footnote 3).
//
// This is a functional stand-in for a vetted deterministic AEAD such as
// AES-SIV. It exercises the same code paths (opaque, deterministic,
// invertible blobs) but MUST NOT be used to protect real data.
class DeterministicCipher {
 public:
  explicit DeterministicCipher(const Key& key) : key_(key) {}

  // Returns a ciphertext with the same length as `plaintext`.
  std::string Encrypt(std::string_view plaintext) const;

  // Inverse of Encrypt.
  std::string Decrypt(std::string_view ciphertext) const;

  // A deterministic 64-bit tag of the plaintext under this key. Used where a
  // fixed-size digest of an encrypted item is needed (e.g., hash-map keys).
  uint64_t Tag(std::string_view plaintext) const;

  const Key& key() const { return key_; }

 private:
  Key key_;
};

}  // namespace dssp::crypto

#endif  // DSSP_CRYPTO_CIPHER_H_
