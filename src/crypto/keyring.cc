#include "crypto/keyring.h"

#include "common/hash.h"

namespace dssp::crypto {

KeyRing KeyRing::FromPassphrase(std::string_view passphrase) {
  Key key;
  key.k0 = SipHash24(0x6b657972696e6731ULL, 0x6b657972696e6732ULL,
                     passphrase);
  std::string p2(passphrase);
  p2 += "\x02";
  key.k1 = SipHash24(0x6b657972696e6733ULL, 0x6b657972696e6734ULL, p2);
  return KeyRing(key);
}

DeterministicCipher KeyRing::CipherFor(std::string_view purpose) const {
  return DeterministicCipher(DeriveKey(master_, purpose));
}

}  // namespace dssp::crypto
