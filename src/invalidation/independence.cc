#include "invalidation/independence.h"

#include <atomic>
#include <map>
#include <optional>

#include "analysis/ipm.h"
#include "analysis/query_slots.h"
#include "engine/eval.h"

namespace dssp::invalidation {

namespace {

using analysis::QuerySlots;

std::atomic<uint64_t> g_solver_invocations{0};

// Extracts unary constraints over one FROM slot from a bound conjunction.
// Non-unary conjuncts (joins, same-row column comparisons) are skipped:
// extra conjuncts only shrink the solution set, so UNSAT conclusions from
// the unary subset remain sound.
std::vector<ColumnConstraint> SlotConstraints(
    const std::vector<sql::Comparison>& where, const QuerySlots& slots,
    size_t slot, const catalog::Catalog& catalog) {
  std::vector<ColumnConstraint> out;
  for (const sql::Comparison& cmp : where) {
    for (int side = 0; side < 2; ++side) {
      const sql::Operand& a = side == 0 ? cmp.lhs : cmp.rhs;
      const sql::Operand& b = side == 0 ? cmp.rhs : cmp.lhs;
      if (!sql::IsColumn(a) || !sql::IsLiteral(b)) continue;
      const auto resolved =
          slots.Resolve(std::get<sql::ColumnRef>(a), catalog);
      if (!resolved.has_value() || resolved->first != slot) continue;
      const sql::CompareOp op =
          side == 0 ? cmp.op : sql::ReverseCompareOp(cmp.op);
      out.push_back(
          ColumnConstraint{resolved->second, op, std::get<sql::Value>(b)});
      break;
    }
  }
  return out;
}

// Unary constraints of a single-table update predicate (DELETE/UPDATE).
std::vector<ColumnConstraint> UpdatePredicateConstraints(
    const std::vector<sql::Comparison>& where) {
  std::vector<ColumnConstraint> out;
  for (const sql::Comparison& cmp : where) {
    for (int side = 0; side < 2; ++side) {
      const sql::Operand& a = side == 0 ? cmp.lhs : cmp.rhs;
      const sql::Operand& b = side == 0 ? cmp.rhs : cmp.lhs;
      if (!sql::IsColumn(a) || !sql::IsLiteral(b)) continue;
      const sql::CompareOp op =
          side == 0 ? cmp.op : sql::ReverseCompareOp(cmp.op);
      out.push_back(ColumnConstraint{std::get<sql::ColumnRef>(a).column, op,
                                     std::get<sql::Value>(b)});
      break;
    }
  }
  return out;
}

// New values assigned by a bound modification, by column name.
std::map<std::string, sql::Value> SetValues(const sql::UpdateStatement& stmt) {
  std::map<std::string, sql::Value> values;
  for (const auto& [col, operand] : stmt.set) {
    DSSP_CHECK(sql::IsLiteral(operand));
    values[col] = std::get<sql::Value>(operand);
  }
  return values;
}

bool InsertCannotAffectSlot(const sql::InsertStatement& insert,
                            const std::vector<ColumnConstraint>& slot_cs) {
  // The inserted row's values are fully known; it is excluded from a slot if
  // it violates any of the slot's constant constraints.
  std::map<std::string, sql::Value> values;
  for (size_t i = 0; i < insert.columns.size(); ++i) {
    DSSP_CHECK(sql::IsLiteral(insert.values[i]));
    values[insert.columns[i]] = std::get<sql::Value>(insert.values[i]);
  }
  for (const ColumnConstraint& c : slot_cs) {
    const auto it = values.find(c.column);
    if (it == values.end()) continue;
    // Guard incomparable types (schema'd workloads never hit this).
    const sql::Value& v = it->second;
    const bool comparable =
        (!v.is_null() && !c.value.is_null()) &&
        ((v.is_numeric() && c.value.is_numeric()) ||
         (v.type() == sql::ValueType::kString &&
          c.value.type() == sql::ValueType::kString));
    if (v.is_null() || c.value.is_null()) return true;  // NULL fails any op.
    if (!comparable) return true;  // Differing types cannot compare equal.
    if (!engine::CompareValues(v, c.op, c.value)) return true;
  }
  return false;
}

}  // namespace

uint64_t SolverInvocations() {
  return g_solver_invocations.load(std::memory_order_relaxed);
}

bool ModificationCannotEnter(const templates::UpdateTemplate& update_template,
                             const sql::Statement& update,
                             const sql::Statement& query,
                             const catalog::Catalog& catalog) {
  DSSP_CHECK(update.kind() == sql::StatementKind::kUpdate);
  const sql::UpdateStatement& mod = update.update();
  const std::map<std::string, sql::Value> new_values = SetValues(mod);
  const std::vector<ColumnConstraint> pred =
      UpdatePredicateConstraints(mod.where);
  const QuerySlots slots(query.select());

  for (size_t s = 0; s < slots.physical.size(); ++s) {
    if (slots.physical[s] != update_template.table()) continue;
    const std::vector<ColumnConstraint> slot_cs =
        SlotConstraints(query.select().where, slots, s, catalog);
    // Post-state: modified columns hold the new values; unmodified columns
    // keep their pre-state values, which satisfy the predicate's constraints
    // on them.
    bool excluded = false;
    std::vector<ColumnConstraint> combined;
    for (const ColumnConstraint& c : slot_cs) {
      const auto it = new_values.find(c.column);
      if (it != new_values.end()) {
        const sql::Value& v = it->second;
        if (v.is_null() || c.value.is_null()) {
          excluded = true;
          break;
        }
        const bool comparable =
            (v.is_numeric() && c.value.is_numeric()) ||
            (v.type() == sql::ValueType::kString &&
             c.value.type() == sql::ValueType::kString);
        if (!comparable || !engine::CompareValues(v, c.op, c.value)) {
          excluded = true;
          break;
        }
      } else {
        combined.push_back(c);
      }
    }
    if (excluded) continue;
    for (const ColumnConstraint& c : pred) {
      if (!new_values.contains(c.column)) combined.push_back(c);
    }
    if (UnaryConjunctionSatisfiable(combined)) return false;
  }
  return true;
}

bool ProvablyIndependent(const templates::UpdateTemplate& update_template,
                         const sql::Statement& update,
                         const templates::QueryTemplate& query_template,
                         const sql::Statement& query,
                         const catalog::Catalog& catalog,
                         bool use_integrity_constraints) {
  g_solver_invocations.fetch_add(1, std::memory_order_relaxed);
  // Template-level facts apply at statement level too.
  if (templates::IsIgnorable(update_template, query_template)) return true;
  if (use_integrity_constraints &&
      analysis::InsertionIrrelevantByConstraints(update_template,
                                                 query_template, catalog)) {
    return true;
  }

  const QuerySlots slots(query.select());
  const std::string& target = update_template.table();

  switch (update_template.update_class()) {
    case templates::UpdateClass::kInsertion: {
      const sql::InsertStatement& insert = update.insert();
      for (size_t s = 0; s < slots.physical.size(); ++s) {
        if (slots.physical[s] != target) continue;
        const std::vector<ColumnConstraint> slot_cs =
            SlotConstraints(query.select().where, slots, s, catalog);
        if (!InsertCannotAffectSlot(insert, slot_cs)) return false;
      }
      return true;
    }
    case templates::UpdateClass::kDeletion: {
      const std::vector<ColumnConstraint> pred =
          UpdatePredicateConstraints(update.del().where);
      for (size_t s = 0; s < slots.physical.size(); ++s) {
        if (slots.physical[s] != target) continue;
        std::vector<ColumnConstraint> combined =
            SlotConstraints(query.select().where, slots, s, catalog);
        combined.insert(combined.end(), pred.begin(), pred.end());
        // A deleted row can only matter if it satisfies both the deletion
        // predicate and the slot's constant predicates.
        if (UnaryConjunctionSatisfiable(combined)) return false;
      }
      return true;
    }
    case templates::UpdateClass::kModification: {
      const std::vector<ColumnConstraint> pred =
          UpdatePredicateConstraints(update.update().where);
      // (a) No modified row may currently be relevant...
      for (size_t s = 0; s < slots.physical.size(); ++s) {
        if (slots.physical[s] != target) continue;
        std::vector<ColumnConstraint> combined =
            SlotConstraints(query.select().where, slots, s, catalog);
        combined.insert(combined.end(), pred.begin(), pred.end());
        if (UnaryConjunctionSatisfiable(combined)) return false;
      }
      // ...and (b) no modified row may become relevant.
      return ModificationCannotEnter(update_template, update, query, catalog);
    }
  }
  DSSP_UNREACHABLE("bad update class");
}

}  // namespace dssp::invalidation
