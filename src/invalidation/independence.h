#ifndef DSSP_INVALIDATION_INDEPENDENCE_H_
#define DSSP_INVALIDATION_INDEPENDENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/satisfiability.h"
#include "catalog/schema.h"
#include "sql/ast.h"
#include "templates/template.h"

namespace dssp::invalidation {

// The satisfiability core lives in analysis/satisfiability.h so the
// ahead-of-time plan compiler shares the exact implementation; re-exported
// here for the solver's existing callers.
using analysis::ColumnConstraint;
using analysis::UnaryConjunctionSatisfiable;

// Process-wide count of ProvablyIndependent invocations (relaxed atomic).
// The plan-compiler ablation uses it to measure how many general-solver
// runs compiled programs replace.
uint64_t SolverInvocations();

// Statement-level independence (the Levy-Sagiv-style test a minimal
// statement-inspection strategy runs): true if the bound update statement
// provably cannot change the bound query statement's result on ANY database
// instance consistent with `catalog`'s integrity constraints. False means
// "unknown" (the caller must invalidate).
// `use_integrity_constraints` additionally applies the Section 4.5 PK/FK
// rules, which are sound only under the paper's execution assumption that
// cached results subject to insertion/deletion invalidation are non-empty.
bool ProvablyIndependent(const templates::UpdateTemplate& update_template,
                         const sql::Statement& update,
                         const templates::QueryTemplate& query_template,
                         const sql::Statement& query,
                         const catalog::Catalog& catalog,
                         bool use_integrity_constraints = true);

// The "entry" half of the modification test, exposed for the
// view-inspection strategy: true if no row modified by `update` can satisfy
// the query's per-slot constant predicates *after* the modification (so the
// modified rows cannot newly enter the result). Requires a modification
// statement.
bool ModificationCannotEnter(const templates::UpdateTemplate& update_template,
                             const sql::Statement& update,
                             const sql::Statement& query,
                             const catalog::Catalog& catalog);

}  // namespace dssp::invalidation

#endif  // DSSP_INVALIDATION_INDEPENDENCE_H_
