#ifndef DSSP_INVALIDATION_INDEPENDENCE_H_
#define DSSP_INVALIDATION_INDEPENDENCE_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "sql/ast.h"
#include "templates/template.h"

namespace dssp::invalidation {

// A unary constraint `column op value` on one relation's row.
struct ColumnConstraint {
  std::string column;
  sql::CompareOp op;
  sql::Value value;
};

// True if some row can satisfy all constraints simultaneously. Decided
// exactly for conjunctions of unary constraints via interval intersection
// per column; columns constrained with incomparable types are unsatisfiable
// (no value has two types). Sound both ways for unary conjunctions; callers
// that drop non-unary conjuncts may only rely on `false` (UNSAT) answers.
bool UnaryConjunctionSatisfiable(const std::vector<ColumnConstraint>& cs);

// Statement-level independence (the Levy-Sagiv-style test a minimal
// statement-inspection strategy runs): true if the bound update statement
// provably cannot change the bound query statement's result on ANY database
// instance consistent with `catalog`'s integrity constraints. False means
// "unknown" (the caller must invalidate).
// `use_integrity_constraints` additionally applies the Section 4.5 PK/FK
// rules, which are sound only under the paper's execution assumption that
// cached results subject to insertion/deletion invalidation are non-empty.
bool ProvablyIndependent(const templates::UpdateTemplate& update_template,
                         const sql::Statement& update,
                         const templates::QueryTemplate& query_template,
                         const sql::Statement& query,
                         const catalog::Catalog& catalog,
                         bool use_integrity_constraints = true);

// The "entry" half of the modification test, exposed for the
// view-inspection strategy: true if no row modified by `update` can satisfy
// the query's per-slot constant predicates *after* the modification (so the
// modified rows cannot newly enter the result). Requires a modification
// statement.
bool ModificationCannotEnter(const templates::UpdateTemplate& update_template,
                             const sql::Statement& update,
                             const sql::Statement& query,
                             const catalog::Catalog& catalog);

}  // namespace dssp::invalidation

#endif  // DSSP_INVALIDATION_INDEPENDENCE_H_
