#include "invalidation/strategies.h"

#include <map>

#include "analysis/ipm.h"
#include "analysis/query_slots.h"
#include "engine/eval.h"
#include "invalidation/independence.h"

namespace dssp::invalidation {

Decision BlindStrategy::Decide(const UpdateView& update,
                               const CachedQueryView& query) const {
  (void)update;
  (void)query;
  return Decision::kInvalidate;
}

namespace {

// True when both views carry the TemplateSet coordinates a compiled plan is
// indexed by.
bool HasPlanIndices(const UpdateView& update, const CachedQueryView& query) {
  return update.template_index != kNoTemplateIndex &&
         query.template_index != kNoTemplateIndex;
}

}  // namespace

Decision TemplateInspectionStrategy::Decide(
    const UpdateView& update, const CachedQueryView& query) const {
  if (update.tmpl == nullptr || query.tmpl == nullptr) {
    return Decision::kInvalidate;
  }
  if (plan_ != nullptr && HasPlanIndices(update, query)) {
    // Compiled A-cell decision: never_invalidate captures exactly the
    // Lemma-1 / Section 4.5 template checks below.
    return plan_->pair(update.template_index, query.template_index)
                   .never_invalidate
               ? Decision::kDoNotInvalidate
               : Decision::kInvalidate;
  }
  if (templates::IsIgnorable(*update.tmpl, *query.tmpl)) {
    return Decision::kDoNotInvalidate;
  }
  if (use_integrity_constraints_ &&
      analysis::InsertionIrrelevantByConstraints(*update.tmpl, *query.tmpl,
                                                 catalog_)) {
    return Decision::kDoNotInvalidate;
  }
  return Decision::kInvalidate;
}

Decision StatementInspectionStrategy::Decide(
    const UpdateView& update, const CachedQueryView& query) const {
  if (update.tmpl == nullptr || query.tmpl == nullptr) {
    return Decision::kInvalidate;
  }
  if (plan_ != nullptr && HasPlanIndices(update, query)) {
    const analysis::PairPlan& pair =
        plan_->pair(update.template_index, query.template_index);
    if (pair.never_invalidate) return Decision::kDoNotInvalidate;
    if (use_independence_solver_ && update.statement != nullptr &&
        query.statement != nullptr) {
      switch (analysis::EvaluatePairPlan(pair, *update.statement,
                                         *query.statement)) {
        case analysis::StmtDecision::kIndependent:
          return Decision::kDoNotInvalidate;
        case analysis::StmtDecision::kInvalidate:
          return Decision::kInvalidate;
        case analysis::StmtDecision::kRunSolver:
          return ProvablyIndependent(*update.tmpl, *update.statement,
                                     *query.tmpl, *query.statement, catalog_,
                                     use_integrity_constraints_)
                     ? Decision::kDoNotInvalidate
                     : Decision::kInvalidate;
      }
    }
    return Decision::kInvalidate;
  }
  if (templates::IsIgnorable(*update.tmpl, *query.tmpl)) {
    return Decision::kDoNotInvalidate;
  }
  if (use_integrity_constraints_ &&
      analysis::InsertionIrrelevantByConstraints(*update.tmpl, *query.tmpl,
                                                 catalog_)) {
    return Decision::kDoNotInvalidate;
  }
  if (use_independence_solver_ && update.statement != nullptr &&
      query.statement != nullptr &&
      ProvablyIndependent(*update.tmpl, *update.statement, *query.tmpl,
                          *query.statement, catalog_,
                          use_integrity_constraints_)) {
    return Decision::kDoNotInvalidate;
  }
  return Decision::kInvalidate;
}

namespace {

// Tests whether any cached result row, viewed as the slot-`slot` contributing
// base row, satisfies the update's predicate. Requires every predicate
// attribute to be preserved from that slot; returns nullopt when it is not
// (the caller must then fall back to the statement-level decision).
std::optional<bool> AnyResultRowMatches(
    const templates::QueryTemplate& query_template,
    const engine::QueryResult& result, size_t slot,
    const catalog::TableSchema& schema,
    const std::vector<sql::Comparison>& predicate) {
  const std::vector<templates::QueryTemplate::OutputColumn>& outputs =
      query_template.output_columns();
  if (outputs.size() != result.num_columns()) return std::nullopt;

  // Map each predicate-referenced column to a result column index.
  std::map<std::string, size_t> column_to_output;
  for (const sql::Comparison& cmp : predicate) {
    for (const sql::Operand* op : {&cmp.lhs, &cmp.rhs}) {
      if (!sql::IsColumn(*op)) continue;
      const std::string& col = std::get<sql::ColumnRef>(*op).column;
      if (column_to_output.contains(col)) continue;
      bool found = false;
      for (size_t k = 0; k < outputs.size(); ++k) {
        if (outputs[k].slot == slot && outputs[k].attribute.has_value() &&
            outputs[k].attribute->column == col) {
          column_to_output[col] = k;
          found = true;
          break;
        }
      }
      if (!found) return std::nullopt;  // Attribute not preserved from slot.
    }
  }

  // Bind the predicate once; Matches() surfaces errors per row at exactly
  // the points EvalPredicateOnRow would (errors conservatively count as a
  // match below).
  const engine::BoundPredicate bound =
      engine::BoundPredicate::Bind(schema, predicate);
  for (const engine::Row& result_row : result.rows()) {
    // Reconstruct the contributing base row (only predicate-referenced
    // columns matter; the predicate never reads the others).
    engine::Row base(schema.num_columns());
    for (const auto& [col, k] : column_to_output) {
      base[*schema.ColumnIndex(col)] = result_row[k];
    }
    const StatusOr<bool> matches = bound.Matches(base);
    if (!matches.ok() || *matches) return true;
  }
  return false;
}

}  // namespace

Decision ViewInspectionStrategy::Decide(const UpdateView& update,
                                        const CachedQueryView& query) const {
  // Start from the statement-level decision; the view can only refine it.
  if (sis_.Decide(update, query) == Decision::kDoNotInvalidate) {
    return Decision::kDoNotInvalidate;
  }
  if (update.tmpl == nullptr || update.statement == nullptr ||
      query.tmpl == nullptr || query.statement == nullptr ||
      query.result == nullptr) {
    return Decision::kInvalidate;
  }

  const templates::UpdateTemplate& u = *update.tmpl;
  const catalog::TableSchema* schema = catalog_.FindTable(u.table());
  if (schema == nullptr) return Decision::kInvalidate;

  const std::vector<sql::Comparison>* predicate = nullptr;
  switch (u.update_class()) {
    case templates::UpdateClass::kInsertion:
      // Documented deviation: insertions keep the MSIS decision. For
      // queries in E ∩ N this is exactly minimal (Section 4.4 proves
      // C = B); outside E/N it is merely conservative.
      return Decision::kInvalidate;
    case templates::UpdateClass::kDeletion:
      predicate = &update.statement->del().where;
      break;
    case templates::UpdateClass::kModification:
      predicate = &update.statement->update().where;
      // The modified rows might newly enter the result; the view cannot
      // rule that out, only the statement test can.
      if (!ModificationCannotEnter(u, *update.statement, *query.statement,
                                   catalog_)) {
        return Decision::kInvalidate;
      }
      break;
  }

  // The update touches only rows matching `predicate`. If, for every FROM
  // slot over the updated table, no cached result row derives from such a
  // row, the cached result cannot change.
  const analysis::QuerySlots slots(query.statement->select());
  for (size_t s = 0; s < slots.physical.size(); ++s) {
    if (slots.physical[s] != u.table()) continue;
    const std::optional<bool> any_match = AnyResultRowMatches(
        *query.tmpl, *query.result, s, *schema, *predicate);
    if (!any_match.has_value() || *any_match) {
      return Decision::kInvalidate;
    }
  }
  return Decision::kDoNotInvalidate;
}

Decision MixedStrategy::Decide(const UpdateView& update,
                               const CachedQueryView& query) const {
  switch (analysis::SymbolFor(update.level, query.level)) {
    case analysis::IpmSymbol::kOne:
      return blind_.Decide(update, query);
    case analysis::IpmSymbol::kA:
      return tis_.Decide(update, query);
    case analysis::IpmSymbol::kB:
      return sis_.Decide(update, query);
    case analysis::IpmSymbol::kC:
      return vis_.Decide(update, query);
  }
  DSSP_UNREACHABLE("bad IpmSymbol");
}

}  // namespace dssp::invalidation
