#ifndef DSSP_INVALIDATION_STRATEGY_H_
#define DSSP_INVALIDATION_STRATEGY_H_

#include <optional>
#include <string_view>

#include "analysis/exposure.h"
#include "engine/query_result.h"
#include "sql/ast.h"
#include "templates/template.h"

namespace dssp::invalidation {

enum class Decision {
  kInvalidate,       // I
  kDoNotInvalidate,  // DNI
};

// Sentinel for "template index unknown" in the views below; equals
// CacheEntry::kNoTemplate. Strategies that hold a compiled InvalidationPlan
// need the TemplateSet index of both templates to look up the pair's plan;
// views built from ad-hoc templates (tests) leave the index unset and take
// the legacy re-derivation path.
inline constexpr size_t kNoTemplateIndex = static_cast<size_t>(-1);

// What the DSSP can see about a completed update, as limited by the update
// template's exposure level:
//   blind    -> nothing (tmpl/statement unset)
//   template -> tmpl set
//   stmt     -> tmpl + bound statement set
struct UpdateView {
  analysis::ExposureLevel level = analysis::ExposureLevel::kBlind;
  const templates::UpdateTemplate* tmpl = nullptr;
  const sql::Statement* statement = nullptr;  // Fully bound.
  size_t template_index = kNoTemplateIndex;   // Index of tmpl, if known.
};

// What the DSSP can see about a cached query result, as limited by the
// query template's exposure level:
//   blind    -> nothing
//   template -> tmpl set
//   stmt     -> tmpl + bound statement set
//   view     -> tmpl + statement + plaintext result set
struct CachedQueryView {
  analysis::ExposureLevel level = analysis::ExposureLevel::kBlind;
  const templates::QueryTemplate* tmpl = nullptr;
  const sql::Statement* statement = nullptr;  // Fully bound.
  const engine::QueryResult* result = nullptr;
  size_t template_index = kNoTemplateIndex;  // Index of tmpl, if known.
};

// A view invalidation strategy (Section 2.2): invoked for every cached
// entry whenever an update completes. Correctness requirement: whenever the
// entry's underlying result would change, the strategy must return
// kInvalidate. Implementations must only consult the fields their class is
// allowed to see.
class InvalidationStrategy {
 public:
  virtual ~InvalidationStrategy() = default;

  virtual Decision Decide(const UpdateView& update,
                          const CachedQueryView& query) const = 0;

  virtual std::string_view name() const = 0;
};

}  // namespace dssp::invalidation

#endif  // DSSP_INVALIDATION_STRATEGY_H_
