#ifndef DSSP_INVALIDATION_STRATEGY_H_
#define DSSP_INVALIDATION_STRATEGY_H_

#include <optional>
#include <string_view>

#include "analysis/exposure.h"
#include "engine/query_result.h"
#include "sql/ast.h"
#include "templates/template.h"

namespace dssp::invalidation {

enum class Decision {
  kInvalidate,       // I
  kDoNotInvalidate,  // DNI
};

// What the DSSP can see about a completed update, as limited by the update
// template's exposure level:
//   blind    -> nothing (tmpl/statement unset)
//   template -> tmpl set
//   stmt     -> tmpl + bound statement set
struct UpdateView {
  analysis::ExposureLevel level = analysis::ExposureLevel::kBlind;
  const templates::UpdateTemplate* tmpl = nullptr;
  const sql::Statement* statement = nullptr;  // Fully bound.
};

// What the DSSP can see about a cached query result, as limited by the
// query template's exposure level:
//   blind    -> nothing
//   template -> tmpl set
//   stmt     -> tmpl + bound statement set
//   view     -> tmpl + statement + plaintext result set
struct CachedQueryView {
  analysis::ExposureLevel level = analysis::ExposureLevel::kBlind;
  const templates::QueryTemplate* tmpl = nullptr;
  const sql::Statement* statement = nullptr;  // Fully bound.
  const engine::QueryResult* result = nullptr;
};

// A view invalidation strategy (Section 2.2): invoked for every cached
// entry whenever an update completes. Correctness requirement: whenever the
// entry's underlying result would change, the strategy must return
// kInvalidate. Implementations must only consult the fields their class is
// allowed to see.
class InvalidationStrategy {
 public:
  virtual ~InvalidationStrategy() = default;

  virtual Decision Decide(const UpdateView& update,
                          const CachedQueryView& query) const = 0;

  virtual std::string_view name() const = 0;
};

}  // namespace dssp::invalidation

#endif  // DSSP_INVALIDATION_STRATEGY_H_
