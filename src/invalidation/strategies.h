#ifndef DSSP_INVALIDATION_STRATEGIES_H_
#define DSSP_INVALIDATION_STRATEGIES_H_

#include "analysis/plan.h"
#include "catalog/schema.h"
#include "invalidation/strategy.h"

namespace dssp::invalidation {

// All strategies below optionally take a compiled analysis::InvalidationPlan.
// When one is supplied AND both views carry their TemplateSet indices, the
// strategy answers from the plan — an O(1) pair lookup plus (for MSIS) a
// compiled parameter program — instead of re-deriving the Section 4 analysis
// per call; the general solver runs only for kSolverFallback pairs. The plan
// must have been compiled from the same TemplateSet/Catalog the views refer
// to, with Options matching the strategy's use_integrity_constraints flag.
// Decisions are bit-identical either way (tests/plan_differential_test.cc).

// Minimal blind strategy (MBS): with nothing exposed, correctness forces
// invalidating every cached result on every update.
class BlindStrategy : public InvalidationStrategy {
 public:
  Decision Decide(const UpdateView& update,
                  const CachedQueryView& query) const override;
  std::string_view name() const override { return "MBS"; }
};

// Minimal template-inspection strategy (MTIS): uses only the templates.
// DNI exactly when the static analysis proves A = 0 — the pair is ignorable
// (Lemma 1) or ruled out by PK/FK integrity constraints (Section 4.5).
class TemplateInspectionStrategy : public InvalidationStrategy {
 public:
  explicit TemplateInspectionStrategy(
      const catalog::Catalog& catalog, bool use_integrity_constraints = true,
      const analysis::InvalidationPlan* plan = nullptr)
      : catalog_(catalog),
        use_integrity_constraints_(use_integrity_constraints),
        plan_(plan) {}

  Decision Decide(const UpdateView& update,
                  const CachedQueryView& query) const override;
  std::string_view name() const override { return "MTIS"; }

 private:
  const catalog::Catalog& catalog_;
  bool use_integrity_constraints_;
  const analysis::InvalidationPlan* plan_;
};

// Minimal statement-inspection strategy (MSIS): additionally sees bound
// parameters and runs the statement-level independence test (Levy-Sagiv
// style satisfiability over the shared attributes).
class StatementInspectionStrategy : public InvalidationStrategy {
 public:
  explicit StatementInspectionStrategy(
      const catalog::Catalog& catalog, bool use_independence_solver = true,
      bool use_integrity_constraints = true,
      const analysis::InvalidationPlan* plan = nullptr)
      : catalog_(catalog),
        use_independence_solver_(use_independence_solver),
        use_integrity_constraints_(use_integrity_constraints),
        plan_(plan) {}

  Decision Decide(const UpdateView& update,
                  const CachedQueryView& query) const override;
  std::string_view name() const override { return "MSIS"; }

 private:
  const catalog::Catalog& catalog_;
  bool use_independence_solver_;
  bool use_integrity_constraints_;
  const analysis::InvalidationPlan* plan_;
};

// View-inspection strategy (VIS): additionally inspects the cached result.
// For deletions and modifications it checks whether any result row derives
// from a row the update touches; for insertions it coincides with MSIS (a
// deliberate, documented deviation from strict minimality for queries
// outside E/N, which is rare and affects only precision, never correctness).
class ViewInspectionStrategy : public InvalidationStrategy {
 public:
  explicit ViewInspectionStrategy(
      const catalog::Catalog& catalog, bool use_integrity_constraints = true,
      const analysis::InvalidationPlan* plan = nullptr)
      : catalog_(catalog),
        sis_(catalog, /*use_independence_solver=*/true,
             use_integrity_constraints, plan) {}

  Decision Decide(const UpdateView& update,
                  const CachedQueryView& query) const override;
  std::string_view name() const override { return "MVIS"; }

 private:
  const catalog::Catalog& catalog_;
  StatementInspectionStrategy sis_;
};

// Mixed strategy (Section 2.3): dispatches each (update, query) pair to the
// strategy class its exposure levels select (Figure 6's shaded cells).
class MixedStrategy : public InvalidationStrategy {
 public:
  explicit MixedStrategy(const catalog::Catalog& catalog,
                         const analysis::InvalidationPlan* plan = nullptr)
      : blind_(),
        tis_(catalog, /*use_integrity_constraints=*/true, plan),
        sis_(catalog, /*use_independence_solver=*/true,
             /*use_integrity_constraints=*/true, plan),
        vis_(catalog, /*use_integrity_constraints=*/true, plan) {}

  Decision Decide(const UpdateView& update,
                  const CachedQueryView& query) const override;
  std::string_view name() const override { return "mixed"; }

 private:
  BlindStrategy blind_;
  TemplateInspectionStrategy tis_;
  StatementInspectionStrategy sis_;
  ViewInspectionStrategy vis_;
};

}  // namespace dssp::invalidation

#endif  // DSSP_INVALIDATION_STRATEGIES_H_
