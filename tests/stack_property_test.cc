// Whole-stack properties across exposure levels, exercised through the real
// service path (client logic -> DSSP -> wire protocol -> home server):
//
//  1. Answer correctness: at EVERY exposure level, every query answered via
//     the DSSP matches a direct master-database execution at that moment.
//  2. Exposure monotonicity: replaying the same trace, the DSSP hit rate is
//     non-increasing as exposure shrinks view -> stmt -> template -> blind
//     (less information => more conservative invalidation => fewer hits).
//  3. Simulation determinism per application.

#include <gtest/gtest.h>

#include "crypto/keyring.h"
#include "dssp/app.h"
#include "sim/simulator.h"
#include "workloads/application.h"

namespace dssp::service {
namespace {

using analysis::ExposureAssignment;
using analysis::ExposureLevel;

struct Trace {
  std::vector<sim::DbOp> ops;
};

Trace RecordTrace(workloads::Application& workload, int pages,
                  uint64_t seed) {
  Trace trace;
  auto session = workload.NewSession(seed);
  Rng rng(seed);
  for (int page = 0; page < pages; ++page) {
    for (sim::DbOp& op : session->NextPage(rng)) {
      trace.ops.push_back(std::move(op));
    }
  }
  return trace;
}

class StackPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StackPropertyTest, AnswersMatchMasterAndHitsAreMonotone) {
  // Record one trace (template ids + params) from a throwaway instance so
  // every exposure level replays identical operations.
  Trace trace;
  {
    DsspNode node;
    ScalableApp app(GetParam(), &node,
                    crypto::KeyRing::FromPassphrase("trace"));
    auto workload = workloads::MakeApplication(GetParam());
    ASSERT_TRUE(workload->Setup(app, 0.25, 31).ok());
    trace = RecordTrace(*workload, 120, 5);
  }

  const ExposureLevel levels[] = {ExposureLevel::kView, ExposureLevel::kStmt,
                                  ExposureLevel::kTemplate,
                                  ExposureLevel::kBlind};
  double previous_hit_rate = 1.1;
  for (ExposureLevel level : levels) {
    DsspNode node;
    ScalableApp app(GetParam(), &node,
                    crypto::KeyRing::FromPassphrase("replay"));
    auto workload = workloads::MakeApplication(GetParam());
    ASSERT_TRUE(workload->Setup(app, 0.25, 31).ok());
    ASSERT_TRUE(app.Finalize().ok());
    ExposureAssignment exposure = ExposureAssignment::FullExposure(
        app.templates().num_queries(), app.templates().num_updates());
    for (auto& l : exposure.query_levels) l = level;
    for (auto& l : exposure.update_levels) {
      l = level == ExposureLevel::kView ? ExposureLevel::kStmt : level;
    }
    ASSERT_TRUE(app.SetExposure(exposure).ok());

    for (const sim::DbOp& op : trace.ops) {
      if (op.is_update) {
        ASSERT_TRUE(app.Update(op.template_id, op.params).ok())
            << op.template_id;
        continue;
      }
      auto via_dssp = app.Query(op.template_id, op.params);
      ASSERT_TRUE(via_dssp.ok()) << op.template_id;
      // Property 1: the DSSP-served answer equals direct execution.
      const size_t index = app.templates().QueryIndex(op.template_id);
      const sql::Statement bound =
          app.templates().queries()[index].Bind(op.params);
      auto direct = app.home().database().ExecuteQuery(bound);
      ASSERT_TRUE(direct.ok());
      EXPECT_TRUE(via_dssp->SameResult(*direct))
          << GetParam() << " " << op.template_id << " at "
          << ExposureLevelName(level);
    }

    // Property 2: hit rates shrink with exposure.
    const double hit_rate = node.stats(GetParam()).hit_rate();
    EXPECT_LE(hit_rate, previous_hit_rate + 1e-9)
        << "at " << ExposureLevelName(level);
    previous_hit_rate = hit_rate;
  }
  // The extremes genuinely differ on these workloads.
  EXPECT_LT(previous_hit_rate, 0.2);  // Blind hit rate is tiny.
}

TEST_P(StackPropertyTest, SimulationIsDeterministic) {
  sim::SimConfig config;
  config.duration_s = 40;
  auto run = [&]() {
    DsspNode node;
    ScalableApp app(GetParam(), &node,
                    crypto::KeyRing::FromPassphrase("det"));
    auto workload = workloads::MakeApplication(GetParam());
    DSSP_CHECK_OK(workload->Setup(app, 0.25, 11));
    DSSP_CHECK_OK(app.Finalize());
    auto generator = workload->NewSession(2);
    auto result = sim::RunSimulation(app, *generator, 25, config);
    DSSP_CHECK(result.ok());
    return *result;
  };
  const sim::SimResult a = run();
  const sim::SimResult b = run();
  EXPECT_EQ(a.pages_completed, b.pages_completed);
  EXPECT_EQ(a.db_ops, b.db_ops);
  EXPECT_DOUBLE_EQ(a.p90_response_s, b.p90_response_s);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);
  EXPECT_EQ(a.entries_invalidated, b.entries_invalidated);
}

INSTANTIATE_TEST_SUITE_P(Apps, StackPropertyTest,
                         ::testing::Values("toystore", "auction", "bboard",
                                           "bookstore"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dssp::service
