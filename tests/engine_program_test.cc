// Vectorized engine tests. The row-at-a-time interpreter (ExecuteSelect) is
// the oracle everywhere:
//
//  1. Typed filter kernels (engine/batch.h): every (column type, CompareOp,
//     rhs type) pair differentially against a per-row reference, plus
//     selection-vector edge cases (empty, all-pass, single row, dead slots).
//  2. StableTopK: its k-prefix equals std::stable_sort's on duplicate-heavy
//     random keys, for every k.
//  3. BoundPredicate vs EvalPredicateOnRow: identical StatusOr<bool> on
//     randomized predicates including broken column references, unbound
//     parameters, incomparable operand types, and NULL-laden rows.
//  4. All four paper workloads: every registered query template compiles,
//     and QueryProgram::Execute is bit-identical (serialized bytes, ordered
//     flag, error Status) to the interpreter across randomized parameter
//     bindings — valid, NULL, and deliberately mistyped.
//  5. The HomeServer wire path: every template-shaped query is served by a
//     compiled program (interpreter_fallback_queries() == 0) until
//     SetProgramExecutionEnabled(false) routes them back.
//  6. Randomized synthetic templates (joins, aggregates, GROUP BY, ORDER BY
//     with partial keys, literal and parameter LIMITs) over randomized
//     small databases with NULLs: compiled vs interpreted results must
//     match bit-for-bit, including row order without any ORDER BY at all.
//
// Sections 4 and 6 together run well over 100k differential queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/node.h"
#include "engine/batch.h"
#include "engine/database.h"
#include "engine/eval.h"
#include "engine/executor.h"
#include "engine/program.h"
#include "sql/parser.h"
#include "templates/template.h"
#include "workloads/application.h"

namespace dssp::engine {
namespace {

using catalog::ColumnType;
using catalog::TableSchema;
using sql::CompareOp;
using sql::Value;

// ---------------------------------------------------------------------------
// 1. Filter kernels vs per-row reference.
// ---------------------------------------------------------------------------

// The interpreter's comparison on raw values: NULL on either side is false.
bool RefCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  return CompareValues(lhs, op, rhs);
}

SelectionVector RefFilterValue(const Table& table, size_t col, CompareOp op,
                               const Value& rhs, const SelectionVector& sel) {
  SelectionVector out;
  for (const uint32_t slot : sel) {
    if (RefCompare(table.RowAt(slot)[col], op, rhs)) out.push_back(slot);
  }
  return out;
}

SelectionVector RefFilterColumn(const Table& table, size_t lhs_col,
                                CompareOp op, size_t rhs_col,
                                const SelectionVector& sel) {
  SelectionVector out;
  for (const uint32_t slot : sel) {
    const Row& row = table.RowAt(slot);
    if (RefCompare(row[lhs_col], op, row[rhs_col])) out.push_back(slot);
  }
  return out;
}

constexpr CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kLt,
                                 CompareOp::kLe, CompareOp::kGt,
                                 CompareOp::kGe};

class KernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema("k",
                                            {{"i", ColumnType::kInt64},
                                             {"d", ColumnType::kDouble},
                                             {"s", ColumnType::kString},
                                             {"i2", ColumnType::kInt64},
                                             {"d2", ColumnType::kDouble}},
                                            /*primary_key=*/{}))
                    .ok());
    Rng rng(99);
    for (int r = 0; r < 200; ++r) {
      Row row(5);
      if (!rng.NextBool(0.15)) {
        row[0] = Value(static_cast<int64_t>(rng.NextBelow(9)) - 4);
      }
      if (!rng.NextBool(0.15)) {
        // A double column legally holds widened int64 values too; mix tags.
        row[1] = rng.NextBool(0.4)
                     ? Value(static_cast<int64_t>(rng.NextBelow(7)) - 3)
                     : Value(static_cast<double>(rng.NextBelow(13)) / 2 - 3);
      }
      if (!rng.NextBool(0.15)) {
        row[2] = Value(std::string(1, static_cast<char>('a' + rng.NextBelow(5))));
      }
      if (!rng.NextBool(0.15)) {
        row[3] = Value(static_cast<int64_t>(rng.NextBelow(9)) - 4);
      }
      if (!rng.NextBool(0.15)) {
        row[4] = rng.NextBool(0.4)
                     ? Value(static_cast<int64_t>(rng.NextBelow(7)) - 3)
                     : Value(static_cast<double>(rng.NextBelow(13)) / 2 - 3);
      }
      ASSERT_TRUE(db_.InsertRow("k", std::move(row)).ok());
    }
    // Dead slots: the kernels must skip them via the selection vector the
    // caller builds from live().
    Table* table = db_.FindMutableTable("k");
    for (size_t slot = 0; slot < table->slot_count(); slot += 17) {
      if (table->IsLive(slot)) table->DeleteSlot(slot);
    }
  }

  const Table& table() const { return db_.GetTable("k"); }

  Database db_;
};

TEST_F(KernelTest, SelectLiveSlotsMatchesAllSlots) {
  SelectionVector sel;
  SelectLiveSlots(table(), &sel);
  const std::vector<size_t> expected = table().AllSlots();
  ASSERT_EQ(sel.size(), expected.size());
  for (size_t i = 0; i < sel.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(sel[i]), expected[i]);
  }
}

TEST_F(KernelTest, ValueKernelsMatchReferenceForEveryTypeAndOp) {
  SelectionVector base;
  SelectLiveSlots(table(), &base);
  const std::vector<Value> rhs_values = {
      Value(static_cast<int64_t>(0)),  Value(static_cast<int64_t>(-2)),
      Value(static_cast<int64_t>(3)),  Value(1.5),
      Value(-0.5),                     Value(2.0),
      Value(std::string("b")),         Value(std::string("d")),
      Value(std::string("")),          Value::Null(),
  };
  for (size_t col = 0; col < 5; ++col) {
    const bool is_string = col == 2;
    for (const CompareOp op : kAllOps) {
      for (const Value& rhs : rhs_values) {
        // Skip combinations the compiler statically rejects.
        if (!rhs.is_null() && is_string != (rhs.type() == sql::ValueType::kString)) {
          continue;
        }
        SelectionVector sel = base;
        FilterColumnVsValue(table(), col, op, rhs, &sel);
        EXPECT_EQ(sel, RefFilterValue(table(), col, op, rhs, base))
            << "col=" << col << " op=" << sql::CompareOpSymbol(op)
            << " rhs=" << rhs.ToSqlLiteral();
      }
    }
  }
}

TEST_F(KernelTest, ColumnKernelsMatchReferenceForEveryPairAndOp) {
  SelectionVector base;
  SelectLiveSlots(table(), &base);
  // Numeric x numeric (int/int, int/double both directions, double/double)
  // and string/string.
  const std::pair<size_t, size_t> pairs[] = {{0, 3}, {0, 1}, {1, 0},
                                             {1, 4}, {2, 2}};
  for (const auto& [lhs, rhs] : pairs) {
    for (const CompareOp op : kAllOps) {
      SelectionVector sel = base;
      FilterColumnVsColumn(table(), lhs, op, rhs, &sel);
      EXPECT_EQ(sel, RefFilterColumn(table(), lhs, op, rhs, base))
          << "lhs=" << lhs << " rhs=" << rhs
          << " op=" << sql::CompareOpSymbol(op);
    }
  }
}

TEST_F(KernelTest, FusedLiveFilterEqualsSelectThenFilter) {
  // The fused single-pass kernels must equal SelectLiveSlots followed by
  // the corresponding compacting filter, for every (col, op, rhs) combo.
  SelectionVector base;
  SelectLiveSlots(table(), &base);
  const std::vector<Value> rhs_values = {
      Value(static_cast<int64_t>(0)), Value(1.5), Value(std::string("b")),
      Value::Null()};
  for (size_t col = 0; col < 5; ++col) {
    const bool is_string = col == 2;
    for (const CompareOp op : kAllOps) {
      for (const Value& rhs : rhs_values) {
        if (!rhs.is_null() &&
            is_string != (rhs.type() == sql::ValueType::kString)) {
          continue;
        }
        SelectionVector two_pass = base;
        FilterColumnVsValue(table(), col, op, rhs, &two_pass);
        SelectionVector fused{99, 7};  // Pre-filled: must be replaced.
        SelectLiveWhereColumnVsValue(table(), col, op, rhs, &fused);
        EXPECT_EQ(fused, two_pass)
            << "col=" << col << " op=" << sql::CompareOpSymbol(op)
            << " rhs=" << rhs.ToSqlLiteral();
      }
    }
  }
  const std::pair<size_t, size_t> pairs[] = {{0, 3}, {0, 1}, {1, 0},
                                             {1, 4}, {2, 2}};
  for (const auto& [lhs, rhs] : pairs) {
    for (const CompareOp op : kAllOps) {
      SelectionVector two_pass = base;
      FilterColumnVsColumn(table(), lhs, op, rhs, &two_pass);
      SelectionVector fused{99, 7};
      SelectLiveWhereColumnVsColumn(table(), lhs, op, rhs, &fused);
      EXPECT_EQ(fused, two_pass) << "lhs=" << lhs << " rhs=" << rhs
                                 << " op=" << sql::CompareOpSymbol(op);
    }
  }
}

TEST_F(KernelTest, SelectionVectorEdgeCases) {
  // Empty in -> empty out.
  SelectionVector sel;
  FilterColumnVsValue(table(), 0, CompareOp::kEq, Value(1), &sel);
  EXPECT_TRUE(sel.empty());

  // NULL rhs clears everything.
  SelectLiveSlots(table(), &sel);
  FilterColumnVsValue(table(), 0, CompareOp::kEq, Value::Null(), &sel);
  EXPECT_TRUE(sel.empty());

  // Single-row vectors keep or drop exactly that row.
  SelectionVector base;
  SelectLiveSlots(table(), &base);
  for (const uint32_t slot : {base.front(), base[base.size() / 2], base.back()}) {
    SelectionVector one{slot};
    FilterColumnVsValue(table(), 2, CompareOp::kGe, Value(std::string("a")),
                        &one);
    EXPECT_EQ(one, RefFilterValue(table(), 2, CompareOp::kGe,
                                  Value(std::string("a")), {slot}));
  }

  // An always-true filter preserves the vector bit-for-bit (all-pass path).
  SelectionVector all = base;
  FilterColumnVsColumn(table(), 0, CompareOp::kEq, 0, &all);
  EXPECT_EQ(all, RefFilterColumn(table(), 0, CompareOp::kEq, 0, base));
}

// ---------------------------------------------------------------------------
// 2. StableTopK vs std::stable_sort.
// ---------------------------------------------------------------------------

TEST(StableTopKTest, PrefixEqualsStableSortForEveryK) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = rng.NextBelow(40);
    std::vector<int> keys(n);
    for (int& k : keys) k = static_cast<int>(rng.NextBelow(5));  // Many ties.
    std::vector<size_t> sorted(n);
    for (size_t i = 0; i < n; ++i) sorted[i] = i;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](size_t a, size_t b) { return keys[a] < keys[b]; });
    for (size_t k = 0; k <= n + 2; ++k) {
      std::vector<size_t> order(n);
      for (size_t i = 0; i < n; ++i) order[i] = i;
      StableTopK(order, k, [&](size_t a, size_t b) {
        return keys[a] < keys[b] ? -1 : (keys[a] > keys[b] ? 1 : 0);
      });
      const size_t expect_n = std::min(k, n);
      ASSERT_EQ(order.size(), k < n ? k : n);
      for (size_t i = 0; i < expect_n; ++i) {
        EXPECT_EQ(order[i], sorted[i]) << "n=" << n << " k=" << k;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 3. BoundPredicate vs EvalPredicateOnRow.
// ---------------------------------------------------------------------------

TEST(BoundPredicateTest, MatchesPerRowEvaluatorOnRandomizedPredicates) {
  const TableSchema schema("p",
                           {{"a", ColumnType::kInt64},
                            {"b", ColumnType::kDouble},
                            {"c", ColumnType::kString}},
                           /*primary_key=*/{});
  Rng rng(31);
  const auto random_value = [&]() -> Value {
    switch (rng.NextBelow(4)) {
      case 0:
        return Value(static_cast<int64_t>(rng.NextBelow(5)) - 2);
      case 1:
        return Value(static_cast<double>(rng.NextBelow(9)) / 2 - 2);
      case 2:
        return Value(std::string(1, static_cast<char>('a' + rng.NextBelow(3))));
      default:
        return Value::Null();
    }
  };
  const auto random_operand = [&]() -> sql::Operand {
    switch (rng.NextBelow(8)) {
      case 0:
        return sql::ColumnRef{"", "a"};
      case 1:
        return sql::ColumnRef{"", "b"};
      case 2:
        return sql::ColumnRef{"", "c"};
      case 3:
        return sql::ColumnRef{"p", "a"};
      case 4:
        return sql::ColumnRef{"wrong", "a"};  // Deferred resolution error.
      case 5:
        return sql::ColumnRef{"", "nope"};  // Deferred resolution error.
      case 6:
        return sql::Parameter{0};  // Deferred "unbound parameter" error.
      default:
        return random_value();
    }
  };
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<sql::Comparison> where;
    const size_t n = rng.NextBelow(4);
    for (size_t i = 0; i < n; ++i) {
      where.push_back(sql::Comparison{
          random_operand(),
          kAllOps[rng.NextBelow(5)],
          random_operand(),
      });
    }
    const BoundPredicate bound = BoundPredicate::Bind(schema, where);
    for (int r = 0; r < 5; ++r) {
      Row row{random_value(), random_value(), random_value()};
      // Columns must hold fitting values; coerce to declared types.
      if (!row[0].is_null()) row[0] = Value(static_cast<int64_t>(rng.NextBelow(5)));
      if (!row[1].is_null() && row[1].type() == sql::ValueType::kString) {
        row[1] = Value(0.5);
      }
      if (!row[2].is_null()) {
        row[2] = Value(std::string(1, static_cast<char>('a' + rng.NextBelow(3))));
      }
      const StatusOr<bool> expected = EvalPredicateOnRow(schema, where, row);
      const StatusOr<bool> got = bound.Matches(row);
      ASSERT_EQ(got.ok(), expected.ok()) << "trial " << trial;
      if (expected.ok()) {
        EXPECT_EQ(*got, *expected);
      } else {
        EXPECT_EQ(got.status(), expected.status());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Shared differential helpers.
// ---------------------------------------------------------------------------

void ExpectSameOutcome(const StatusOr<QueryResult>& program,
                       const StatusOr<QueryResult>& interpreter,
                       const std::string& context) {
  ASSERT_EQ(program.ok(), interpreter.ok())
      << context << "\nprogram: "
      << (program.ok() ? "ok" : program.status().ToString())
      << "\ninterpreter: "
      << (interpreter.ok() ? "ok" : interpreter.status().ToString());
  if (interpreter.ok()) {
    // Serialized bytes cover names, row order, values, and the ordered
    // flag — the strongest available equality.
    ASSERT_EQ(program->Serialize(), interpreter->Serialize())
        << context << "\nprogram:\n"
        << program->ToDebugString(30) << "interpreter:\n"
        << interpreter->ToDebugString(30);
  } else {
    EXPECT_EQ(program.status(), interpreter.status()) << context;
  }
}

// What a parameter is compared against, for biasing random bindings.
struct ParamSpec {
  bool is_limit = false;
  std::string table;  // Non-empty when compared with a column.
  size_t col = 0;
};

// Resolves `ref` within `stmt.from` to (physical table, column index).
bool ResolveRef(const sql::SelectStatement& stmt,
                const catalog::Catalog& catalog, const sql::ColumnRef& ref,
                std::string* table, size_t* col) {
  for (const sql::TableRef& from : stmt.from) {
    if (!ref.table.empty() && ref.table != from.effective_name()) continue;
    const catalog::TableSchema* schema = catalog.FindTable(from.table);
    if (schema == nullptr) continue;
    const std::optional<size_t> idx = schema->ColumnIndex(ref.column);
    if (!idx.has_value()) continue;
    *table = from.table;
    *col = *idx;
    return true;
  }
  return false;
}

std::vector<ParamSpec> ParamSpecs(const sql::Statement& stmt,
                                  const catalog::Catalog& catalog) {
  std::vector<ParamSpec> specs(static_cast<size_t>(stmt.num_params));
  const sql::SelectStatement& select = stmt.select();
  for (const sql::Comparison& cmp : select.where) {
    for (const auto& [param_op, other_op] :
         {std::pair(&cmp.lhs, &cmp.rhs), std::pair(&cmp.rhs, &cmp.lhs)}) {
      if (!sql::IsParameter(*param_op) || !sql::IsColumn(*other_op)) continue;
      ParamSpec& spec =
          specs[static_cast<size_t>(std::get<sql::Parameter>(*param_op).index)];
      if (!spec.table.empty()) continue;
      ResolveRef(select, catalog, std::get<sql::ColumnRef>(*other_op),
                 &spec.table, &spec.col);
    }
  }
  if (select.limit.has_value() && sql::IsParameter(*select.limit)) {
    specs[static_cast<size_t>(std::get<sql::Parameter>(*select.limit).index)]
        .is_limit = true;
  }
  return specs;
}

// Draws one binding for `spec`: usually a value sampled from the live data
// of the compared column (so equality probes hit), sometimes a typed
// random value, a NULL, or a deliberately mistyped value (the program must
// reproduce the interpreter's error byte-for-byte).
Value DrawParam(const Database& db, const ParamSpec& spec, Rng& rng) {
  if (spec.is_limit) {
    switch (rng.NextBelow(10)) {
      case 0:
        return Value(static_cast<int64_t>(-1 - rng.NextBelow(3)));
      case 1:
        return Value(std::string("nan"));
      case 2:
        return Value(2.5);
      default:
        return Value(static_cast<int64_t>(rng.NextBelow(12)));
    }
  }
  if (!spec.table.empty() && rng.NextBool(0.6)) {
    const Table& table = db.GetTable(spec.table);
    if (table.slot_count() > 0) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const size_t slot = rng.NextBelow(table.slot_count());
        if (table.IsLive(slot)) return table.RowAt(slot)[spec.col];
      }
    }
  }
  switch (rng.NextBelow(8)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(std::string(1, static_cast<char>('a' + rng.NextBelow(26))));
    case 2:
      return Value(static_cast<double>(rng.NextBelow(500)) / 4);
    default:
      return Value(static_cast<int64_t>(rng.NextBelow(2000)));
  }
}

// ---------------------------------------------------------------------------
// 4. Paper workloads: compile everything, differential under random params.
// ---------------------------------------------------------------------------

class WorkloadProgramTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadProgramTest, EveryTemplateCompilesAndMatchesInterpreter) {
  service::DsspNode node;
  service::ScalableApp app(GetParam(), &node,
                           crypto::KeyRing::FromPassphrase("program-test"));
  auto workload = workloads::MakeApplication(GetParam());
  ASSERT_TRUE(workload->Setup(app, /*scale=*/0.1, /*seed=*/5).ok());
  ASSERT_TRUE(app.Finalize().ok());

  const Database& db = app.home().database();
  Rng rng(2026);
  size_t executed = 0;
  for (const templates::QueryTemplate& tmpl : app.templates().queries()) {
    StatusOr<QueryProgram> program =
        QueryProgram::Compile(db.catalog(), tmpl.statement().select());
    ASSERT_TRUE(program.ok())
        << GetParam() << " " << tmpl.id() << ": " << program.status().ToString();
    EXPECT_EQ(program->num_params(), tmpl.num_params());

    const std::vector<ParamSpec> specs =
        ParamSpecs(tmpl.statement(), db.catalog());
    for (int round = 0; round < 400; ++round) {
      std::vector<Value> params;
      params.reserve(specs.size());
      for (const ParamSpec& spec : specs) {
        params.push_back(DrawParam(db, spec, rng));
      }
      const sql::Statement bound = tmpl.Bind(params);
      ExpectSameOutcome(program->Execute(db, params),
                        db.ExecuteQuery(bound),
                        GetParam() + (" " + tmpl.id()) + " round " +
                            std::to_string(round));
      ++executed;
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GT(executed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Apps, WorkloadProgramTest,
                         ::testing::Values("toystore", "auction", "bboard",
                                           "bookstore"));

// ---------------------------------------------------------------------------
// 5. HomeServer wire path: zero interpreter fallbacks.
// ---------------------------------------------------------------------------

TEST(HomeServerProgramTest, TemplateQueriesNeverFallBackToInterpreter) {
  service::DsspNode node;
  service::ScalableApp app("auction", &node,
                           crypto::KeyRing::FromPassphrase("program-test"));
  auto workload = workloads::MakeApplication("auction");
  ASSERT_TRUE(workload->Setup(app, /*scale=*/0.1, /*seed=*/3).ok());
  ASSERT_TRUE(app.Finalize().ok());

  service::HomeServer& home = app.home();
  const Database& db = home.database();
  Rng rng(11);
  uint64_t sent = 0;
  for (const templates::QueryTemplate& tmpl : app.templates().queries()) {
    const std::vector<ParamSpec> specs =
        ParamSpecs(tmpl.statement(), db.catalog());
    for (int round = 0; round < 20; ++round) {
      std::vector<Value> params;
      for (const ParamSpec& spec : specs) {
        params.push_back(DrawParam(db, spec, rng));
      }
      const std::string sql = sql::ToSql(tmpl.Bind(params));
      const auto served =
          home.HandleQuery(home.statement_cipher().Encrypt(sql),
                           /*plaintext_result=*/true);
      const auto direct = db.Query(sql);
      ASSERT_EQ(served.ok(), direct.ok()) << sql;
      if (direct.ok()) {
        EXPECT_EQ(*served, direct->Serialize()) << sql;
        ++sent;
      }
    }
  }
  // Every successfully served template instance took the compiled path.
  EXPECT_EQ(home.interpreter_fallback_queries(), 0u);
  EXPECT_EQ(home.program_queries() >= sent, true);

  // Disabling program execution routes everything to the interpreter with
  // identical results.
  home.SetProgramExecutionEnabled(false);
  const std::string sql = "SELECT u_nickname, u_rating FROM users WHERE u_id = 1";
  const auto fallback = home.HandleQuery(
      home.statement_cipher().Encrypt(sql), /*plaintext_result=*/true);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(*fallback, db.Query(sql)->Serialize());
  EXPECT_EQ(home.interpreter_fallback_queries(), 1u);

  // A non-template (ad-hoc) query falls back but still answers correctly.
  home.SetProgramExecutionEnabled(true);
  const std::string adhoc = "SELECT r_name FROM regions WHERE r_id = 2";
  const auto adhoc_result = home.HandleQuery(
      home.statement_cipher().Encrypt(adhoc), /*plaintext_result=*/true);
  ASSERT_TRUE(adhoc_result.ok());
  EXPECT_EQ(*adhoc_result, db.Query(adhoc)->Serialize());
  EXPECT_EQ(home.interpreter_fallback_queries(), 2u);
}

// ---------------------------------------------------------------------------
// 6. Randomized synthetic templates over randomized databases.
// ---------------------------------------------------------------------------

class SyntheticProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SyntheticProgramTest, CompiledMatchesInterpreterBitForBit) {
  Rng rng(GetParam() * 7919 + 1);

  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("ta",
                                         {{"a1", ColumnType::kInt64},
                                          {"a2", ColumnType::kInt64},
                                          {"a3", ColumnType::kString},
                                          {"a4", ColumnType::kDouble}},
                                         /*primary_key=*/{}))
                  .ok());
  ASSERT_TRUE(db.CreateTable(TableSchema("tb",
                                         {{"b1", ColumnType::kInt64},
                                          {"b2", ColumnType::kInt64}},
                                         /*primary_key=*/{}))
                  .ok());
  const auto small_int = [&]() -> Value {
    if (rng.NextBool(0.1)) return Value::Null();
    return Value(static_cast<int64_t>(rng.NextBelow(6)));
  };
  const size_t na = 2 + rng.NextBelow(18);
  for (size_t i = 0; i < na; ++i) {
    Row row(4);
    row[0] = small_int();
    row[1] = small_int();
    if (!rng.NextBool(0.1)) {
      row[2] = Value(std::string(1, static_cast<char>('a' + rng.NextBelow(4))));
    }
    if (!rng.NextBool(0.1)) {
      // Mix int64-tagged and double-tagged values in the double column.
      row[3] = rng.NextBool(0.5)
                   ? Value(static_cast<int64_t>(rng.NextBelow(5)))
                   : Value(static_cast<double>(rng.NextBelow(9)) / 2);
    }
    ASSERT_TRUE(db.InsertRow("ta", std::move(row)).ok());
  }
  const size_t nb = 2 + rng.NextBelow(12);
  for (size_t i = 0; i < nb; ++i) {
    ASSERT_TRUE(db.InsertRow("tb", Row{small_int(), small_int()}).ok());
  }
  // Punch holes so slot ids and index buckets see dead entries.
  {
    Table* ta = db.FindMutableTable("ta");
    for (size_t slot = 1; slot < ta->slot_count(); slot += 5) {
      if (ta->IsLive(slot)) ta->DeleteSlot(slot);
    }
  }

  const char* ops[] = {"=", "<", "<=", ">", ">="};
  const char* a_num_cols[] = {"a1", "a2", "a4"};
  const char* b_cols[] = {"b1", "b2"};

  for (int trial = 0; trial < 60; ++trial) {
    int next_param = 0;
    const bool join = rng.NextBool(0.4);
    const bool aggregate = rng.NextBool(0.3);

    std::string sql = "SELECT ";
    if (aggregate) {
      const bool grouped = rng.NextBool(0.7);
      std::vector<std::string> items;
      if (grouped) items.push_back("a1");
      items.push_back("COUNT(*)");
      if (rng.NextBool(0.5)) items.push_back("SUM(a4)");
      if (rng.NextBool(0.5)) items.push_back("AVG(a2)");
      if (rng.NextBool(0.3)) items.push_back("MIN(a3)");
      if (rng.NextBool(0.3)) items.push_back("MAX(a1)");
      for (size_t i = 0; i < items.size(); ++i) {
        if (i != 0) sql += ", ";
        sql += items[i];
      }
      sql += join ? " FROM ta, tb" : " FROM ta";
      std::string tail_group = grouped ? " GROUP BY a1" : "";
      std::string where;
      const size_t n_conjuncts = rng.NextBelow(3);
      std::vector<std::string> conjuncts;
      for (size_t i = 0; i < n_conjuncts; ++i) {
        const char* op = ops[rng.NextBelow(5)];
        if (rng.NextBool(0.5)) {
          conjuncts.push_back(std::string(a_num_cols[rng.NextBelow(3)]) + " " +
                              op + " ?");
          ++next_param;
        } else {
          conjuncts.push_back(std::string(a_num_cols[rng.NextBelow(2)]) + " " +
                              op + " " + std::to_string(rng.NextBelow(6)));
        }
      }
      if (join) {
        conjuncts.push_back(std::string("a1 = ") + b_cols[rng.NextBelow(2)]);
      }
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        where += (i == 0 ? " WHERE " : " AND ") + conjuncts[i];
      }
      sql += where + tail_group;
      if (grouped && rng.NextBool(0.5)) {
        sql += " ORDER BY a1";
        if (rng.NextBool(0.5)) sql += " DESC";
        if (rng.NextBool(0.5)) {
          if (rng.NextBool(0.5)) {
            sql += " LIMIT " + std::to_string(rng.NextBelow(6));
          } else {
            sql += " LIMIT ?";
            ++next_param;
          }
        }
      }
    } else {
      switch (rng.NextBelow(3)) {
        case 0:
          sql += "*";
          break;
        case 1:
          sql += "a1, a3, a4";
          break;
        default:
          sql += join ? "a2, b1" : "a2, a1";
          break;
      }
      sql += join ? " FROM ta, tb" : " FROM ta";
      std::vector<std::string> conjuncts;
      const size_t n_conjuncts = rng.NextBelow(4);
      for (size_t i = 0; i < n_conjuncts; ++i) {
        const char* op = ops[rng.NextBelow(5)];
        switch (rng.NextBelow(5)) {
          case 0:
            conjuncts.push_back(std::string("a3 ") + op + " ?");
            ++next_param;
            break;
          case 1:
            conjuncts.push_back(std::string(a_num_cols[rng.NextBelow(3)]) +
                                " " + op + " ?");
            ++next_param;
            break;
          case 2:
            conjuncts.push_back(std::string("a3 ") + op + " '" +
                                std::string(1, 'a' + rng.NextBelow(4)) + "'");
            break;
          case 3:
            // Column vs column within ta (incl. double col).
            conjuncts.push_back(std::string(a_num_cols[rng.NextBelow(3)]) +
                                " " + op + " " + a_num_cols[rng.NextBelow(3)]);
            break;
          default:
            conjuncts.push_back(std::string(a_num_cols[rng.NextBelow(2)]) +
                                " " + op + " " +
                                std::to_string(rng.NextBelow(6)));
            break;
        }
      }
      if (join) {
        conjuncts.push_back(std::string(rng.NextBool(0.7) ? "a1" : "a2") +
                            " " + ops[rng.NextBelow(5)] + " " +
                            b_cols[rng.NextBelow(2)]);
      }
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        sql += (i == 0 ? " WHERE " : " AND ") + conjuncts[i];
      }
      if (rng.NextBool(0.5)) {
        // Deliberately partial sort keys: tie order must still match the
        // interpreter exactly.
        sql += " ORDER BY ";
        sql += a_num_cols[rng.NextBelow(3)];
        if (rng.NextBool(0.5)) sql += " DESC";
        if (rng.NextBool(0.4)) {
          sql += ", a3";
          if (rng.NextBool(0.5)) sql += " DESC";
        }
      }
      if (rng.NextBool(0.4)) {
        if (rng.NextBool(0.6)) {
          sql += " LIMIT " + std::to_string(rng.NextBelow(8));
        } else {
          sql += " LIMIT ?";
          ++next_param;
        }
      }
    }

    SCOPED_TRACE(sql);
    const sql::Statement stmt = sql::ParseOrDie(sql);
    ASSERT_EQ(stmt.num_params, next_param);
    const StatusOr<QueryProgram> program =
        QueryProgram::Compile(db.catalog(), stmt.select());

    for (int round = 0; round < 70; ++round) {
      std::vector<Value> params;
      for (int p = 0; p < next_param; ++p) {
        switch (rng.NextBelow(10)) {
          case 0:
            params.push_back(Value::Null());
            break;
          case 1:
            params.push_back(Value(
                std::string(1, static_cast<char>('a' + rng.NextBelow(4)))));
            break;
          case 2:
            params.push_back(Value(static_cast<double>(rng.NextBelow(9)) / 2));
            break;
          case 3:
            params.push_back(Value(static_cast<int64_t>(rng.NextBelow(4)) - 2));
            break;
          default:
            params.push_back(Value(static_cast<int64_t>(rng.NextBelow(7))));
            break;
        }
      }
      const sql::Statement bound = sql::BindParameters(stmt, params);
      const StatusOr<QueryResult> interpreted = db.ExecuteQuery(bound);
      if (!program.ok()) {
        // Compilation rejects only statements the interpreter also rejects,
        // with the same error, for every binding.
        ASSERT_FALSE(interpreted.ok());
        EXPECT_EQ(program.status(), interpreted.status());
        continue;
      }
      ExpectSameOutcome(program->Execute(db, params), interpreted,
                        "round " + std::to_string(round));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticProgramTest,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace dssp::engine
