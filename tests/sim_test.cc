#include <gtest/gtest.h>

#include "crypto/keyring.h"
#include "sim/resource.h"
#include "sim/search.h"
#include "sim/simulator.h"
#include "workloads/application.h"

namespace dssp::sim {
namespace {

// ----- QueueingResource -----

TEST(QueueingResourceTest, SingleWorkerFifo) {
  QueueingResource r(1);
  EXPECT_DOUBLE_EQ(r.Schedule(0.0, 1.0), 1.0);
  // Arrives while busy: queues.
  EXPECT_DOUBLE_EQ(r.Schedule(0.5, 1.0), 2.0);
  // Arrives after idle: starts immediately.
  EXPECT_DOUBLE_EQ(r.Schedule(5.0, 0.5), 5.5);
}

TEST(QueueingResourceTest, MultiWorkerParallelism) {
  QueueingResource r(2);
  EXPECT_DOUBLE_EQ(r.Schedule(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.Schedule(0.0, 1.0), 1.0);  // Second worker.
  EXPECT_DOUBLE_EQ(r.Schedule(0.0, 1.0), 2.0);  // Queues behind one.
}

TEST(QueueingResourceTest, BacklogAndReset) {
  QueueingResource r(1);
  r.Schedule(0.0, 3.0);
  EXPECT_DOUBLE_EQ(r.CurrentBacklog(1.0), 2.0);
  EXPECT_DOUBLE_EQ(r.CurrentBacklog(4.0), 0.0);
  r.Reset();
  EXPECT_DOUBLE_EQ(r.CurrentBacklog(1.0), 0.0);
}

// ----- Simulator on the real toystore app -----

struct SimHarness {
  SimHarness() : app("toystore", &node, crypto::KeyRing::FromPassphrase("k")) {
    workload = workloads::MakeApplication("toystore");
    DSSP_CHECK_OK(workload->Setup(app, 1.0, 3));
    DSSP_CHECK_OK(app.Finalize());
    generator = workload->NewSession(1);
  }

  service::DsspNode node;
  service::ScalableApp app;
  std::unique_ptr<workloads::Application> workload;
  std::unique_ptr<SessionGenerator> generator;
};

SimConfig FastConfig() {
  SimConfig config;
  config.duration_s = 60.0;
  return config;
}

TEST(SimulatorTest, ProducesPlausibleMetrics) {
  SimHarness h;
  auto result = RunSimulation(h.app, *h.generator, 20, FastConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_clients, 20);
  EXPECT_GT(result->pages_completed, 50u);
  EXPECT_GT(result->db_ops, result->pages_completed / 2);
  EXPECT_GT(result->mean_response_s, 0.0);
  EXPECT_GE(result->p90_response_s, result->mean_response_s * 0.5);
  EXPECT_GE(result->max_response_s, result->p90_response_s);
  EXPECT_GT(result->cache_hit_rate, 0.0);
  EXPECT_LT(result->cache_hit_rate, 1.0);
  EXPECT_FALSE(result->ToString().empty());
}

TEST(SimulatorTest, DeterministicForFixedSeed) {
  SimHarness h1;
  SimHarness h2;
  const SimConfig config = FastConfig();
  auto r1 = RunSimulation(h1.app, *h1.generator, 15, config);
  auto r2 = RunSimulation(h2.app, *h2.generator, 15, config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->pages_completed, r2->pages_completed);
  EXPECT_EQ(r1->db_ops, r2->db_ops);
  EXPECT_DOUBLE_EQ(r1->p90_response_s, r2->p90_response_s);
  EXPECT_DOUBLE_EQ(r1->cache_hit_rate, r2->cache_hit_rate);
}

TEST(SimulatorTest, MoreClientsMoreWork) {
  SimHarness h1;
  SimHarness h2;
  const SimConfig config = FastConfig();
  auto small = RunSimulation(h1.app, *h1.generator, 5, config);
  auto large = RunSimulation(h2.app, *h2.generator, 50, config);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->pages_completed, small->pages_completed * 3);
}

TEST(SimulatorTest, SaturationRaisesResponseTimes) {
  SimHarness h1;
  SimHarness h2;
  SimConfig config = FastConfig();
  // Make the home server very slow so saturation appears at low user
  // counts even with warm caches.
  config.home_query_base_s = 0.2;
  config.home_update_base_s = 0.2;
  config.home_workers = 1;
  auto light = RunSimulation(h1.app, *h1.generator, 3, config);
  auto heavy = RunSimulation(h2.app, *h2.generator, 300, config);
  ASSERT_TRUE(light.ok());
  ASSERT_TRUE(heavy.ok());
  EXPECT_GT(heavy->p90_response_s, light->p90_response_s * 2);
}

TEST(SimulatorTest, SloPredicate) {
  SimConfig config;
  SimResult result;
  result.p90_response_s = 1.9;
  EXPECT_TRUE(result.MeetsSlo(config));
  result.p90_response_s = 2.1;
  EXPECT_FALSE(result.MeetsSlo(config));
}

// ----- Scalability search (with a synthetic probe). -----

TEST(SearchTest, FindsThresholdOfSyntheticSystem) {
  // Synthetic system: meets the SLO iff users <= 730.
  const SimConfig config;
  const ProbeFn probe = [&](int users) -> StatusOr<SimResult> {
    SimResult r;
    r.num_clients = users;
    r.p90_response_s = users <= 730 ? 1.0 : 3.0;
    return r;
  };
  auto result = FindMaxUsers(probe, config, 10, 20000, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->max_users, 720);
  EXPECT_LE(result->max_users, 730);
  EXPECT_FALSE(result->probes.empty());
}

TEST(SearchTest, AllPassingReturnsLastRampPoint) {
  const SimConfig config;
  const ProbeFn probe = [&](int users) -> StatusOr<SimResult> {
    SimResult r;
    r.num_clients = users;
    r.p90_response_s = 0.5;
    return r;
  };
  auto result = FindMaxUsers(probe, config, 10, 1000, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->max_users, 640);  // Last doubling <= 1000.
}

TEST(SearchTest, SurvivesColdCacheFailuresAtLowUserCounts) {
  // Cold-cache-bound systems can fail at low user counts and pass at
  // higher ones; the ramp must keep going past early failures.
  const SimConfig config;
  const ProbeFn probe = [&](int users) -> StatusOr<SimResult> {
    SimResult r;
    r.num_clients = users;
    r.p90_response_s = (users >= 50 && users <= 730) ? 1.0 : 3.0;
    return r;
  };
  auto result = FindMaxUsers(probe, config, 10, 20000, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->max_users, 720);
  EXPECT_LE(result->max_users, 730);
}

TEST(SearchTest, NothingPassingReturnsZero) {
  const SimConfig config;
  const ProbeFn probe = [&](int users) -> StatusOr<SimResult> {
    SimResult r;
    r.num_clients = users;
    r.p90_response_s = 10.0;
    return r;
  };
  auto result = FindMaxUsers(probe, config, 10, 1000, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->max_users, 0);
}

TEST(SearchTest, ProbeErrorsPropagate) {
  const SimConfig config;
  const ProbeFn probe = [&](int) -> StatusOr<SimResult> {
    return InvalidArgumentError("boom");
  };
  auto result = FindMaxUsers(probe, config);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace dssp::sim
