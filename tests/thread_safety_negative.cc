// NEGATIVE thread-safety-analysis fixture — intentionally WRONG code.
//
// This file is NOT part of the CMake build. The CI thread-safety lane
// compiles it directly with
//
//   clang++ -std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety \
//       -Isrc tests/thread_safety_negative.cc
//
// and asserts the compile FAILS. That proves the lane has teeth: if the
// annotations in common/mutex.h ever stop flagging an unguarded access (a
// macro regression, a compiler flag typo, a wrapper losing its capability
// attribute), this fixture compiles cleanly and CI goes red.
//
// Under non-Clang compilers the annotations are no-ops and this file is
// valid C++ — which is exactly why it must never be linked into a real
// target.

#include "common/mutex.h"

namespace dssp {

class Counter {
 public:
  // BUG (deliberate): reads and writes value_ without holding mu_. Clang's
  // -Wthread-safety reports: "reading variable 'value_' requires holding
  // mutex 'mu_'" / "writing variable ... requires holding mutex ...".
  int UnguardedIncrement() {
    value_ += 1;   // expected-error: writing without holding mu_
    return value_;  // expected-error: reading without holding mu_
  }

  // Correct counterpart, so the file also documents the intended pattern.
  int GuardedIncrement() {
    MutexLock lock(mu_);
    value_ += 1;
    return value_;
  }

 private:
  Mutex mu_;
  int value_ DSSP_GUARDED_BY(mu_) = 0;
};

// Anchor so -fsyntax-only sees the member functions instantiated.
int Touch() {
  Counter counter;
  return counter.UnguardedIncrement() + counter.GuardedIncrement();
}

}  // namespace dssp
