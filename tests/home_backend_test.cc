// InMemoryBackend tests behind the HomeBackend seam: prepared-statement
// cache hit/miss/evict/kill-switch behavior (bit-identical results either
// way), TTL'd metadata cache with explicit DDL/registration invalidation,
// lazy per-tenant catalog loading, the probe wire message, and Stats()
// surfacing the per-query program/interpreter counters.

#include "backend/in_memory_backend.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "backend/home_backend.h"
#include "catalog/schema.h"
#include "crypto/keyring.h"
#include "dssp/protocol.h"

namespace dssp::backend {
namespace {

using sql::Value;

// Three tables; only `kv` is touched by the registered templates, so lazy
// catalog loading must materialize exactly one of the three.
std::unique_ptr<InMemoryBackend> MakeBackend(BackendOptions options = {}) {
  auto backend = std::make_unique<InMemoryBackend>(
      "shop", crypto::KeyRing::FromPassphrase("backend-secret"), options);
  engine::Database& db = backend->database();
  EXPECT_TRUE(db.CreateTable(catalog::TableSchema(
                                 "kv",
                                 {{"id", catalog::ColumnType::kInt64},
                                  {"val", catalog::ColumnType::kInt64}},
                                 {"id"}))
                  .ok());
  EXPECT_TRUE(db.CreateTable(catalog::TableSchema(
                                 "orders",
                                 {{"oid", catalog::ColumnType::kInt64},
                                  {"total", catalog::ColumnType::kInt64}},
                                 {"oid"}))
                  .ok());
  EXPECT_TRUE(db.CreateTable(catalog::TableSchema(
                                 "audit_log",
                                 {{"seq", catalog::ColumnType::kInt64}},
                                 {"seq"}))
                  .ok());
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(db.InsertRow("kv", {Value(i), Value(i * 7)}).ok());
  }
  EXPECT_TRUE(
      backend->AddQueryTemplate("SELECT val FROM kv WHERE id = ?").ok());
  EXPECT_TRUE(
      backend->AddUpdateTemplate("UPDATE kv SET val = ? WHERE id = ?").ok());
  return backend;
}

std::string Enc(const InMemoryBackend& backend, const std::string& sql) {
  return backend.statement_cipher().Encrypt(sql);
}

StatusOr<std::string> Query(InMemoryBackend& backend, const std::string& sql) {
  return backend.HandleQuery(Enc(backend, sql), /*plaintext_result=*/true);
}

// ----- Prepared-statement cache -------------------------------------------

TEST(StatementCacheBehavior, PrepareOncePerConnectionThenHit) {
  auto backend = MakeBackend();
  const std::string sql = "SELECT val FROM kv WHERE id = 3";
  const auto first = Query(*backend, sql);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 4; ++i) {
    const auto again = Query(*backend, sql);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *first);  // Cached program, identical bytes.
  }

  const HomeBackendStats stats = backend->Stats();
  EXPECT_EQ(stats.statements.misses, 1u);
  EXPECT_EQ(stats.statements.hits, 4u);
  EXPECT_EQ(stats.statements.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.statements.hit_rate(), 0.8);
  EXPECT_EQ(stats.program_queries, 5u);
  EXPECT_EQ(stats.interpreter_fallback_queries, 0u);
}

TEST(StatementCacheBehavior, KillSwitchPreparesPerCallBitIdentically) {
  auto backend = MakeBackend();
  const std::string sql = "SELECT val FROM kv WHERE id = 11";
  const auto cached = Query(*backend, sql);
  ASSERT_TRUE(cached.ok());

  backend->SetStatementCacheEnabled(false);
  for (int i = 0; i < 3; ++i) {
    const auto uncached = Query(*backend, sql);
    ASSERT_TRUE(uncached.ok());
    EXPECT_EQ(*uncached, *cached);  // Same program, compiled fresh per call.
  }

  const HomeBackendStats stats = backend->Stats();
  EXPECT_EQ(stats.statements.unprepared_executions, 3u);
  EXPECT_EQ(stats.statements.misses, 1u);  // Only the pre-kill-switch query.
  EXPECT_EQ(stats.program_queries, 4u);  // Still the program path throughout.

  backend->SetStatementCacheEnabled(true);
  ASSERT_TRUE(Query(*backend, sql).ok());
  EXPECT_EQ(backend->Stats().statements.hits, 1u);  // Old entry still live.
}

TEST(StatementCacheBehavior, LruCapEvictsLeastRecentlyExecuted) {
  BackendOptions options;
  options.pool.size = 1;
  options.pool.statement_cache_capacity = 1;
  auto backend = MakeBackend(options);
  ASSERT_TRUE(
      backend->AddQueryTemplate("SELECT id FROM kv WHERE val = ?").ok());

  const std::string by_id = "SELECT val FROM kv WHERE id = 3";
  const std::string by_val = "SELECT id FROM kv WHERE val = 21";
  // Alternate two templates through a 1-entry cache: every execution evicts
  // the other's program.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(Query(*backend, by_id).ok());
    ASSERT_TRUE(Query(*backend, by_val).ok());
  }
  const HomeBackendStats stats = backend->Stats();
  EXPECT_EQ(stats.statements.hits, 0u);
  EXPECT_EQ(stats.statements.misses, 6u);
  EXPECT_EQ(stats.statements.evictions, 5u);  // All but the live entry.
  EXPECT_EQ(stats.statements.entries, 1u);
  EXPECT_EQ(stats.program_queries, 6u);  // Thrash hurts latency, not results.
}

TEST(StatementCacheBehavior, TemplateRegistrationInvalidatesPreparedPlans) {
  auto backend = MakeBackend();
  ASSERT_TRUE(Query(*backend, "SELECT val FROM kv WHERE id = 2").ok());
  EXPECT_EQ(backend->Stats().statements.entries, 1u);

  // New template: every prepared plan for this tenant is dropped.
  ASSERT_TRUE(
      backend->AddQueryTemplate("SELECT id FROM kv WHERE val = ?").ok());
  const HomeBackendStats stats = backend->Stats();
  EXPECT_EQ(stats.statements.entries, 0u);
  EXPECT_EQ(stats.statements.invalidations, 1u);

  // Next execution re-prepares and serves correctly.
  ASSERT_TRUE(Query(*backend, "SELECT val FROM kv WHERE id = 2").ok());
  EXPECT_EQ(backend->Stats().statements.misses, 2u);
}

TEST(StatementCacheBehavior, UnmatchedQueryFallsBackToInterpreter) {
  auto backend = MakeBackend();
  // No registered template has this shape: interpreter path, no prepare.
  const auto result = Query(*backend, "SELECT id FROM kv WHERE val > 10");
  ASSERT_TRUE(result.ok());
  const HomeBackendStats stats = backend->Stats();
  EXPECT_EQ(stats.interpreter_fallback_queries, 1u);
  EXPECT_EQ(stats.program_queries, 0u);
  EXPECT_EQ(stats.statements.misses, 0u);
}

// ----- Metadata / statistics cache ----------------------------------------

TEST(MetadataCacheBehavior, TtlServesThenExpiresAgainstBackendClock) {
  BackendOptions options;
  options.metadata_ttl_s = 10.0;
  auto backend = MakeBackend(options);

  // First op lazily materializes the touched tables (one statistics pass).
  ASSERT_TRUE(Query(*backend, "SELECT val FROM kv WHERE id = 1").ok());
  const auto warm = backend->DescribeTable("kv");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->table, "kv");
  EXPECT_EQ(warm->row_count, 50u);
  EXPECT_EQ(warm->primary_key, "id");
  ASSERT_EQ(warm->columns.size(), 2u);
  EXPECT_EQ(warm->columns[0], "id");
  EXPECT_EQ(warm->columns[1], "val");
  EXPECT_EQ(backend->Stats().metadata.hits, 1u);  // Served from the warm set.

  // Within TTL: still the cached snapshot.
  backend->Tick(5.0);
  ASSERT_TRUE(backend->DescribeTable("kv").ok());
  EXPECT_EQ(backend->Stats().metadata.hits, 2u);
  EXPECT_EQ(backend->Stats().metadata.expirations, 0u);

  // Past TTL: the entry expires and a fresh statistics pass runs.
  backend->Tick(11.0);
  const auto refreshed = backend->DescribeTable("kv");
  ASSERT_TRUE(refreshed.ok());
  EXPECT_DOUBLE_EQ(refreshed->computed_at_s, 11.0);
  const HomeBackendStats stats = backend->Stats();
  EXPECT_EQ(stats.metadata.expirations, 1u);
  EXPECT_GE(stats.metadata.loads, 2u);
}

TEST(MetadataCacheBehavior, DdlExplicitlyInvalidatesStatistics) {
  auto backend = MakeBackend();
  ASSERT_TRUE(Query(*backend, "SELECT val FROM kv WHERE id = 1").ok());
  EXPECT_GT(backend->Stats().metadata.entries, 0u);

  // DDL: a new table appears. The next catalog-aware operation must drop
  // every cached statistic rather than serve pre-DDL snapshots.
  ASSERT_TRUE(backend->database()
                  .CreateTable(catalog::TableSchema(
                      "returns", {{"rid", catalog::ColumnType::kInt64}},
                      {"rid"}))
                  .ok());
  ASSERT_TRUE(backend->DescribeTable("kv").ok());
  const HomeBackendStats stats = backend->Stats();
  EXPECT_GT(stats.metadata.invalidations, 0u);
  EXPECT_EQ(stats.tables_total, 4u);
}

TEST(MetadataCacheBehavior, RegistrationInvalidatesAndDescribeIsOnDemand) {
  auto backend = MakeBackend();
  ASSERT_TRUE(Query(*backend, "SELECT val FROM kv WHERE id = 1").ok());
  const uint64_t before = backend->Stats().metadata.invalidations;
  ASSERT_TRUE(backend->AddUpdateTemplate(
                     "UPDATE orders SET total = ? WHERE oid = ?")
                  .ok());
  EXPECT_GT(backend->Stats().metadata.invalidations, before);

  // An untouched table is never pre-warmed but can be described on demand.
  const auto log = backend->DescribeTable("audit_log");
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->row_count, 0u);
  EXPECT_FALSE(backend->DescribeTable("no_such_table").ok());
}

// ----- Lazy per-tenant catalog --------------------------------------------

TEST(LazyCatalog, OnlyTouchedTablesMaterialize) {
  auto backend = MakeBackend();
  EXPECT_FALSE(backend->catalog_loaded());
  EXPECT_EQ(backend->Stats().metadata.entries, 0u);

  ASSERT_TRUE(Query(*backend, "SELECT val FROM kv WHERE id = 1").ok());
  EXPECT_TRUE(backend->catalog_loaded());
  EXPECT_EQ(backend->TouchedTables(), (std::set<std::string>{"kv"}));

  const HomeBackendStats stats = backend->Stats();
  EXPECT_EQ(stats.tables_touched, 1u);
  EXPECT_EQ(stats.tables_total, 3u);
  EXPECT_EQ(stats.catalog_loads, 1u);
  EXPECT_EQ(stats.metadata.entries, 1u);  // Only `kv` was materialized.

  // Registering a template over `orders` re-scopes the touched set; the
  // next operation re-materializes with both tables.
  ASSERT_TRUE(
      backend->AddQueryTemplate("SELECT total FROM orders WHERE oid = ?")
          .ok());
  EXPECT_FALSE(backend->catalog_loaded());
  ASSERT_TRUE(Query(*backend, "SELECT val FROM kv WHERE id = 1").ok());
  EXPECT_EQ(backend->TouchedTables(),
            (std::set<std::string>{"kv", "orders"}));
  EXPECT_EQ(backend->Stats().tables_touched, 2u);
  EXPECT_EQ(backend->Stats().catalog_loads, 2u);
}

// ----- The HomeBackend seam ------------------------------------------------

TEST(HomeBackendSeam, DispatchAnswersProbesThroughTheInterface) {
  auto backend = MakeBackend();
  HomeBackend& seam = *backend;
  EXPECT_TRUE(seam.Ping().ok());

  const std::string response =
      service::DispatchFrame(seam, service::Encode(service::ProbeRequest{77}));
  const auto decoded = service::DecodeProbeResponse(response);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->token, 77u);
  // Probes are wire traffic, not queries.
  EXPECT_EQ(seam.Stats().queries_executed, 0u);
}

TEST(HomeBackendSeam, TableNamesComeFromTheCatalog) {
  auto backend = MakeBackend();
  const std::vector<std::string> names = backend->TableNames();
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()),
            (std::set<std::string>{"kv", "orders", "audit_log"}));
}

TEST(HomeBackendSeam, StatsSurfacesProgramAndInterpreterCounters) {
  auto backend = MakeBackend();
  ASSERT_TRUE(Query(*backend, "SELECT val FROM kv WHERE id = 4").ok());
  ASSERT_TRUE(Query(*backend, "SELECT id FROM kv WHERE val > 7").ok());
  ASSERT_TRUE(backend
                  ->HandleUpdate(
                      Enc(*backend, "UPDATE kv SET val = 9 WHERE id = 4"))
                  .ok());

  // The counters HomeServer always kept but never surfaced: one snapshot
  // now carries the execution split alongside pool and cache stats.
  const HomeBackendStats stats = backend->Stats();
  EXPECT_EQ(stats.queries_executed, 2u);
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.program_queries, 1u);
  EXPECT_EQ(stats.interpreter_fallback_queries, 1u);
  EXPECT_EQ(stats.program_queries, backend->program_queries());
  EXPECT_EQ(stats.interpreter_fallback_queries,
            backend->interpreter_fallback_queries());
  EXPECT_EQ(stats.pool.leases_granted, 3u);
  EXPECT_EQ(stats.pool.size, 8u);  // Default PoolOptions.
}

TEST(HomeBackendSeam, ProgramExecutionDisabledRoutesEverythingToInterpreter) {
  auto backend = MakeBackend();
  backend->SetProgramExecutionEnabled(false);
  const auto result = Query(*backend, "SELECT val FROM kv WHERE id = 6");
  ASSERT_TRUE(result.ok());
  backend->SetProgramExecutionEnabled(true);
  const auto programmed = Query(*backend, "SELECT val FROM kv WHERE id = 6");
  ASSERT_TRUE(programmed.ok());
  EXPECT_EQ(*result, *programmed);  // Differential: identical bytes.
  const HomeBackendStats stats = backend->Stats();
  EXPECT_EQ(stats.interpreter_fallback_queries, 1u);
  EXPECT_EQ(stats.program_queries, 1u);
}

}  // namespace
}  // namespace dssp::backend
