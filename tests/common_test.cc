#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"

namespace dssp {
namespace {

// ----- Status / StatusOr -----

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ConstraintViolationError("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseError("boom").ToString(), "parse error: boom");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status::Ok());
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InvalidArgumentError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(NotFoundError("missing"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string(1000, 'x'));
  std::string s = std::move(v).value();
  EXPECT_EQ(s.size(), 1000u);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  DSSP_ASSIGN_OR_RETURN(int half, Half(x));
  DSSP_ASSIGN_OR_RETURN(int quarter, Half(half));
  *out = quarter;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(UseAssignOrReturn(6, &out).code(),
            StatusCode::kInvalidArgument);  // 3 is odd.
}

// ----- SipHash -----

TEST(SipHashTest, ReferenceVector) {
  // Official SipHash-2-4 test vector: key = 000102...0f,
  // input = 00 01 ... 0e (15 bytes), expected output a129ca6149be45e5.
  const uint64_t k0 = 0x0706050403020100ULL;
  const uint64_t k1 = 0x0f0e0d0c0b0a0908ULL;
  std::string data;
  for (int i = 0; i < 15; ++i) data.push_back(static_cast<char>(i));
  EXPECT_EQ(SipHash24(k0, k1, data), 0xa129ca6149be45e5ULL);
}

TEST(SipHashTest, EmptyInputReferenceVector) {
  const uint64_t k0 = 0x0706050403020100ULL;
  const uint64_t k1 = 0x0f0e0d0c0b0a0908ULL;
  EXPECT_EQ(SipHash24(k0, k1, ""), 0x726fdb47dd0e0e31ULL);
}

TEST(SipHashTest, KeySensitivity) {
  EXPECT_NE(SipHash24(1, 2, "hello"), SipHash24(1, 3, "hello"));
  EXPECT_NE(SipHash24(1, 2, "hello"), SipHash24(2, 2, "hello"));
}

TEST(HashTest, CombineIsOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ----- Rng -----

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All seven values hit in 1000 draws.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(7.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 7.0, 0.15);
}

TEST(RngTest, NextBoolEdgeProbabilities) {
  Rng rng(17);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++trues;
  }
  EXPECT_NEAR(trues / 10000.0, 0.3, 0.03);
}

// ----- Zipf -----

TEST(ZipfTest, SamplesInRange) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = zipf.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(ZipfTest, RankOneIsMostPopular) {
  ZipfDistribution zipf(1000, 1.0);
  Rng rng(5);
  std::vector<int> counts(1001, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
  // Zipf(1.0): P(1)/P(10) ~ 10.
  EXPECT_GT(counts[1], 4 * counts[10]);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  Rng rng(5);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  for (int i = 1; i <= 10; ++i) {
    EXPECT_NEAR(counts[i], 10000, 600);
  }
}

// ----- strings -----

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(AsciiToLower("SeLeCt 1"), "select 1");
  EXPECT_EQ(AsciiToUpper("SeLeCt 1"), "SELECT 1");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(AsciiEqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(AsciiEqualsIgnoreCase("", ""));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("SELECT", "selec"));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("a", "b"));
}

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
}

}  // namespace
}  // namespace dssp
