#include <gtest/gtest.h>

#include "common/random.h"
#include "dssp/home_server.h"
#include "dssp/protocol.h"
#include "workloads/toystore.h"

namespace dssp::service {
namespace {

using sql::Value;

// ----- Frame codecs. -----

TEST(ProtocolCodecTest, QueryRequestRoundTrip) {
  const QueryRequest original{"ciphertext bytes \x00\x01\xff", true};
  const std::string frame = Encode(original);
  EXPECT_EQ(PeekType(frame), MessageType::kQueryRequest);
  auto decoded = DecodeQueryRequest(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->encrypted_statement, original.encrypted_statement);
  EXPECT_EQ(decoded->plaintext_result, original.plaintext_result);
}

TEST(ProtocolCodecTest, QueryResponseRoundTrip) {
  const QueryResponse original{std::string(1000, '\x7f')};
  auto decoded = DecodeQueryResponse(Encode(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->result_blob, original.result_blob);
}

TEST(ProtocolCodecTest, UpdateRequestResponseRoundTrip) {
  auto request = DecodeUpdateRequest(Encode(UpdateRequest{"enc"}));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->encrypted_statement, "enc");
  auto response = DecodeUpdateResponse(Encode(UpdateResponse{42}));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->rows_affected, 42u);
}

TEST(ProtocolCodecTest, ErrorRoundTrip) {
  const ErrorResponse original{StatusCode::kConstraintViolation, "fk"};
  auto decoded = DecodeErrorResponse(Encode(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kConstraintViolation);
  EXPECT_EQ(decoded->message, "fk");
}

TEST(ProtocolCodecTest, RejectsWrongTypeAndGarbage) {
  EXPECT_FALSE(PeekType("").has_value());
  // One past the last real type (kMessageTypeEnd) is out of range.
  EXPECT_FALSE(
      PeekType(std::string(
                   1, static_cast<char>(MessageType::kMessageTypeEnd)))
          .has_value());
  const std::string frame = Encode(UpdateResponse{1});
  EXPECT_FALSE(DecodeQueryResponse(frame).ok());
  EXPECT_FALSE(DecodeUpdateResponse(frame + "junk").ok());
  EXPECT_FALSE(DecodeUpdateResponse(frame.substr(0, 3)).ok());
  // An error frame claiming code kOk is malformed.
  std::string ok_error = Encode(ErrorResponse{StatusCode::kNotFound, "x"});
  ok_error[1] = 0;
  EXPECT_FALSE(DecodeErrorResponse(ok_error).ok());
}

TEST(ProtocolCodecTest, FuzzedFramesNeverCrash) {
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    std::string frame;
    const size_t length = rng.NextBelow(64);
    for (size_t i = 0; i < length; ++i) {
      frame.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    (void)DecodeQueryRequest(frame);
    (void)DecodeQueryResponse(frame);
    (void)DecodeUpdateRequest(frame);
    (void)DecodeUpdateResponse(frame);
    (void)DecodeErrorResponse(frame);
    (void)UnwrapQueryResponse(frame);
    (void)UnwrapUpdateResponse(frame);
  }
}

// ----- DispatchFrame against a real home server. -----

class DispatchTest : public ::testing::Test {
 protected:
  DispatchTest()
      : home_("toystore", crypto::KeyRing::FromPassphrase("proto")) {}

  void SetUp() override {
    auto bundle = workloads::MakeToystore();
    ASSERT_TRUE(bundle.ok());
    for (const std::string table : {"toys", "customers", "credit_card"}) {
      ASSERT_TRUE(home_.database()
                      .CreateTable(bundle->db->catalog().GetTable(table))
                      .ok());
      const engine::Table& src = bundle->db->GetTable(table);
      for (size_t slot : src.AllSlots()) {
        ASSERT_TRUE(home_.database().InsertRow(table, src.RowAt(slot)).ok());
      }
    }
  }

  HomeServer home_;
};

TEST_F(DispatchTest, QueryFlow) {
  const std::string frame = Encode(QueryRequest{
      home_.statement_cipher().Encrypt(
          "SELECT qty FROM toys WHERE toy_id = 5"),
      /*plaintext_result=*/true});
  const std::string response = DispatchFrame(home_, frame);
  EXPECT_EQ(PeekType(response), MessageType::kQueryResponse);
  auto blob = UnwrapQueryResponse(response);
  ASSERT_TRUE(blob.ok());
  auto result = engine::QueryResult::Deserialize(*blob);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows()[0][0], Value(36));
}

TEST_F(DispatchTest, UpdateFlow) {
  const std::string frame = Encode(UpdateRequest{
      home_.statement_cipher().Encrypt("DELETE FROM toys WHERE toy_id = 5")});
  auto effect = UnwrapUpdateResponse(DispatchFrame(home_, frame));
  ASSERT_TRUE(effect.ok());
  EXPECT_EQ(effect->rows_affected, 1u);
}

TEST_F(DispatchTest, ErrorsTravelAsErrorFrames) {
  // Constraint violation becomes an error frame that unwraps to the status.
  const std::string frame = Encode(UpdateRequest{
      home_.statement_cipher().Encrypt(
          "INSERT INTO credit_card (cid, number, zip_code) "
          "VALUES (999, 'n', 1)")});
  const std::string response = DispatchFrame(home_, frame);
  EXPECT_EQ(PeekType(response), MessageType::kError);
  auto effect = UnwrapUpdateResponse(response);
  ASSERT_FALSE(effect.ok());
  EXPECT_EQ(effect.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(DispatchTest, BadFramesGetErrorResponses) {
  EXPECT_EQ(PeekType(DispatchFrame(home_, "")), MessageType::kError);
  EXPECT_EQ(PeekType(DispatchFrame(home_, "\xff garbage")),
            MessageType::kError);
  // A response frame sent as a request is rejected.
  EXPECT_EQ(PeekType(DispatchFrame(home_, Encode(UpdateResponse{1}))),
            MessageType::kError);
}

}  // namespace
}  // namespace dssp::service
