#include <gtest/gtest.h>

#include "engine/query_result.h"

namespace dssp::engine {
namespace {

using sql::Value;

QueryResult Make(std::vector<Row> rows, bool ordered) {
  return QueryResult({"a", "b"}, std::move(rows), ordered);
}

TEST(QueryResultTest, Accessors) {
  const QueryResult r = Make({{Value(1), Value("x")}}, false);
  EXPECT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.num_columns(), 2u);
  EXPECT_FALSE(r.empty());
  EXPECT_FALSE(r.ordered());
  EXPECT_TRUE(QueryResult().empty());
}

TEST(QueryResultTest, UnorderedEqualityIsMultiset) {
  const QueryResult a =
      Make({{Value(1), Value("x")}, {Value(2), Value("y")}}, false);
  const QueryResult b =
      Make({{Value(2), Value("y")}, {Value(1), Value("x")}}, false);
  EXPECT_TRUE(a.SameResult(b));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(QueryResultTest, UnorderedMultisetCountsMatter) {
  const QueryResult a =
      Make({{Value(1), Value("x")}, {Value(1), Value("x")}}, false);
  const QueryResult b =
      Make({{Value(1), Value("x")}, {Value(2), Value("y")}}, false);
  EXPECT_FALSE(a.SameResult(b));
}

TEST(QueryResultTest, OrderedEqualityIsSequence) {
  const QueryResult a =
      Make({{Value(1), Value("x")}, {Value(2), Value("y")}}, true);
  const QueryResult b =
      Make({{Value(2), Value("y")}, {Value(1), Value("x")}}, true);
  EXPECT_FALSE(a.SameResult(b));
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(QueryResultTest, OrderednessDistinguishesResults) {
  const QueryResult a = Make({{Value(1), Value("x")}}, true);
  const QueryResult b = Make({{Value(1), Value("x")}}, false);
  EXPECT_FALSE(a.SameResult(b));
}

TEST(QueryResultTest, ColumnNamesMatter) {
  const QueryResult a({"a"}, {{Value(1)}}, false);
  const QueryResult b({"z"}, {{Value(1)}}, false);
  EXPECT_FALSE(a.SameResult(b));
}

TEST(QueryResultTest, SerializeDeserializeRoundTrip) {
  const QueryResult original(
      {"id", "name", "score"},
      {{Value(1), Value("alice"), Value(3.5)},
       {Value(2), Value::Null(), Value(-1.0)},
       {Value(int64_t{1} << 40), Value(""), Value(0.0)}},
      true);
  auto decoded = QueryResult::Deserialize(original.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->SameResult(original));
  EXPECT_EQ(decoded->column_names(), original.column_names());
  EXPECT_TRUE(decoded->ordered());
}

TEST(QueryResultTest, EmptyResultRoundTrip) {
  const QueryResult original({"only"}, {}, false);
  auto decoded = QueryResult::Deserialize(original.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->SameResult(original));
}

TEST(QueryResultTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(QueryResult::Deserialize("").ok());
  EXPECT_FALSE(QueryResult::Deserialize("x").ok());
  const std::string good = Make({{Value(1), Value("x")}}, false).Serialize();
  EXPECT_FALSE(QueryResult::Deserialize(good.substr(0, good.size() - 3)).ok());
  EXPECT_FALSE(QueryResult::Deserialize(good + "zz").ok());
}

TEST(QueryResultTest, ByteSizeTracksContent) {
  const QueryResult small = Make({{Value(1), Value("x")}}, false);
  QueryResult big = small;
  for (int i = 0; i < 100; ++i) {
    big.rows().push_back({Value(i), Value(std::string(50, 'y'))});
  }
  EXPECT_GT(big.ByteSize(), small.ByteSize() + 5000);
}

TEST(QueryResultTest, DebugStringTruncates) {
  std::vector<Row> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({Value(i), Value("r")});
  const QueryResult r = Make(std::move(rows), false);
  const std::string s = r.ToDebugString(/*max_rows=*/5);
  EXPECT_NE(s.find("25 more rows"), std::string::npos);
  EXPECT_NE(s.find("(30 rows)"), std::string::npos);
}

}  // namespace
}  // namespace dssp::engine
