// EventExecutor determinism tests: the epoch-based sharded executor must
// reproduce the exact global (time, seq) order a single min-heap produces,
// independent of shard count, thread count, and epoch width.

#include "sim/event_executor.h"

#include <gtest/gtest.h>

#include <queue>
#include <tuple>
#include <vector>

#include "common/random.h"

namespace dssp::sim {
namespace {

struct Executed {
  double time;
  uint64_t seq;
  int32_t client;
  SimEventKind kind;

  bool operator==(const Executed& other) const {
    return time == other.time && seq == other.seq &&
           client == other.client && kind == other.kind;
  }
};

// Reference model: the classic single priority queue with (time, seq)
// ordering, seq assigned in push order.
struct RefEvent {
  double time;
  uint64_t seq;
  int32_t client;

  bool operator>(const RefEvent& other) const {
    return time > other.time || (time == other.time && seq > other.seq);
  }
};

TEST(EventExecutorTest, EqualTimeEventsExecuteInScheduleOrder) {
  EventExecutorOptions options;
  options.shards = 7;  // Not a divisor of the client count: shards mix.
  options.harvest_threads = 1;
  EventExecutor executor(options);

  // Same instant, clients spread over every shard: only seq can order them.
  for (int32_t c = 0; c < 21; ++c) executor.Schedule(1.0, c);

  std::vector<Executed> order;
  executor.Run([&](const SimEvent& event) {
    order.push_back({event.time, event.seq, event.client, event.kind});
    return true;
  });

  ASSERT_EQ(order.size(), 21u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i].seq, i) << "position " << i;
    EXPECT_EQ(order[i].client, static_cast<int32_t>(i));
  }
}

// Runs a closed-loop workload (each event schedules a follow-up until a
// deterministic per-client horizon) under the given executor shape and
// returns the execution order.
std::vector<Executed> RunClosedLoop(const EventExecutorOptions& options,
                                    int num_clients, double horizon_s) {
  EventExecutor executor(options);
  Rng rng(1234);
  for (int32_t c = 0; c < num_clients; ++c) {
    executor.Schedule(rng.NextDouble() * 2.0, c);
  }
  Rng think(99);
  std::vector<Executed> order;
  executor.Run([&](const SimEvent& event) {
    order.push_back({event.time, event.seq, event.client, event.kind});
    // Deterministic follow-up think time; stops past the horizon. Includes
    // zero-delay reschedules, which land in the epoch being executed.
    const double delay = (event.seq % 5 == 0) ? 0.0 : think.NextExponential(0.5);
    const double next = event.time + delay;
    if (next <= horizon_s) executor.Schedule(next, event.client);
    return true;
  });
  return order;
}

TEST(EventExecutorTest, OrderMatchesSingleHeapReference) {
  EventExecutorOptions options;
  options.shards = 16;
  options.harvest_threads = 1;
  options.epoch_s = 0.25;
  const std::vector<Executed> order = RunClosedLoop(options, 50, 10.0);

  // Reference: identical workload through one priority queue.
  std::priority_queue<RefEvent, std::vector<RefEvent>, std::greater<RefEvent>>
      events;
  uint64_t seq = 0;
  Rng rng(1234);
  for (int32_t c = 0; c < 50; ++c) {
    events.push(RefEvent{rng.NextDouble() * 2.0, seq++, c});
  }
  Rng think(99);
  std::vector<Executed> reference;
  while (!events.empty()) {
    const RefEvent event = events.top();
    events.pop();
    reference.push_back(
        {event.time, event.seq, event.client, SimEventKind::kClient});
    const double delay =
        (event.seq % 5 == 0) ? 0.0 : think.NextExponential(0.5);
    const double next = event.time + delay;
    if (next <= 10.0) events.push(RefEvent{next, seq++, event.client});
  }

  ASSERT_EQ(order.size(), reference.size());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_TRUE(order[i] == reference[i]) << "diverged at event " << i;
  }
}

TEST(EventExecutorTest, OrderInvariantUnderShardAndThreadShape) {
  EventExecutorOptions base;
  base.shards = 1;
  base.harvest_threads = 1;
  base.epoch_s = 0.5;
  const std::vector<Executed> reference = RunClosedLoop(base, 64, 8.0);
  ASSERT_FALSE(reference.empty());

  struct Shape {
    size_t shards;
    int threads;
    double epoch_s;
  };
  for (const Shape& shape : {Shape{64, 4, 0.5}, Shape{3, 2, 0.05},
                             Shape{128, 8, 2.0}, Shape{16, 1, 0.125}}) {
    EventExecutorOptions options;
    options.shards = shape.shards;
    options.harvest_threads = shape.threads;
    options.epoch_s = shape.epoch_s;
    const std::vector<Executed> order = RunClosedLoop(options, 64, 8.0);
    ASSERT_EQ(order.size(), reference.size())
        << "shards=" << shape.shards << " threads=" << shape.threads;
    for (size_t i = 0; i < order.size(); ++i) {
      ASSERT_TRUE(order[i] == reference[i])
          << "shards=" << shape.shards << " threads=" << shape.threads
          << " diverged at event " << i;
    }
  }
}

TEST(EventExecutorTest, HandlerStopDiscardsRemainingEvents) {
  EventExecutor executor;
  for (int32_t c = 0; c < 10; ++c) {
    executor.Schedule(static_cast<double>(c), c);
  }
  int handled = 0;
  executor.Run([&](const SimEvent& event) {
    ++handled;
    return event.time <= 4.0;  // Stop on the first event past the horizon.
  });
  EXPECT_EQ(handled, 6);  // Events at t=0..4 plus the stopping one at t=5.
  EXPECT_EQ(executor.events_executed(), 6u);

  // The executor is reusable after a stop; nothing stale leaks out.
  executor.Schedule(100.0, 0);
  int resumed = 0;
  executor.Run([&](const SimEvent&) {
    ++resumed;
    return true;
  });
  EXPECT_EQ(resumed, 1);
}

TEST(EventExecutorTest, IntraEpochSchedulesInterleaveCorrectly) {
  EventExecutorOptions options;
  options.shards = 4;
  options.epoch_s = 100.0;  // Everything lands in one epoch.
  options.harvest_threads = 1;
  EventExecutor executor(options);
  executor.Schedule(1.0, 0);
  executor.Schedule(5.0, 1);

  std::vector<Executed> order;
  executor.Run([&](const SimEvent& event) {
    order.push_back({event.time, event.seq, event.client, event.kind});
    if (event.seq == 0) {
      // Scheduled mid-epoch: must execute between the two harvested events.
      executor.Schedule(3.0, 2);
    }
    return true;
  });

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].client, 0);
  EXPECT_EQ(order[1].client, 2);
  EXPECT_EQ(order[2].client, 1);
  EXPECT_EQ(executor.epochs_run(), 1u);
}

TEST(EventExecutorTest, ScenarioKindsShareShardZeroDeterministically) {
  EventExecutorOptions options;
  options.shards = 8;
  EventExecutor executor(options);
  executor.Schedule(2.0, 1, SimEventKind::kKill);
  executor.Schedule(2.0, 1, SimEventKind::kRejoin);
  executor.Schedule(2.0, 5);

  std::vector<SimEventKind> kinds;
  executor.Run([&](const SimEvent& event) {
    kinds.push_back(event.kind);
    return true;
  });
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], SimEventKind::kKill);
  EXPECT_EQ(kinds[1], SimEventKind::kRejoin);
  EXPECT_EQ(kinds[2], SimEventKind::kClient);
}

}  // namespace
}  // namespace dssp::sim
