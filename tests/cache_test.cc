#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "dssp/cache.h"

namespace dssp::service {
namespace {

CacheEntry Entry(const std::string& key, size_t template_index,
                 analysis::ExposureLevel level = analysis::ExposureLevel::kView) {
  CacheEntry entry;
  entry.key = key;
  entry.level = level;
  entry.template_index = template_index;
  entry.blob = "blob:" + key;
  return entry;
}

// Cross-checks the cache's own bookkeeping: every group entry key must be
// peekable, and the group index must account for exactly size() entries.
void ExpectConsistent(const QueryCache& cache) {
  size_t indexed = 0;
  for (size_t group : cache.GroupKeys()) {
    const std::vector<std::string> keys = cache.GroupEntryKeys(group);
    EXPECT_FALSE(keys.empty()) << "empty group " << group << " in index";
    for (const std::string& key : keys) {
      const std::optional<CacheEntry> entry = cache.Peek(key);
      ASSERT_TRUE(entry.has_value()) << "indexed key missing: " << key;
      EXPECT_EQ(entry->template_index, group);
    }
    indexed += keys.size();
  }
  EXPECT_EQ(indexed, cache.size());
}

TEST(QueryCacheTest, InsertLookupErase) {
  QueryCache cache;
  cache.Insert(Entry("k1", 0));
  EXPECT_EQ(cache.size(), 1u);
  const std::optional<CacheEntry> found = cache.Lookup("k1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->blob, "blob:k1");
  EXPECT_FALSE(cache.Lookup("k2").has_value());
  cache.Erase("k1");
  EXPECT_FALSE(cache.Lookup("k1").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryCacheTest, EraseMissingIsNoop) {
  QueryCache cache;
  cache.Erase("ghost");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.invalidation_removals(), 0u);
}

TEST(QueryCacheTest, InsertOverwrites) {
  QueryCache cache;
  cache.Insert(Entry("k", 0));
  CacheEntry updated = Entry("k", 1);
  updated.blob = "new";
  cache.Insert(updated);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup("k")->blob, "new");
  // The group index follows the overwrite.
  EXPECT_TRUE(cache.GroupEntryKeys(0).empty());
  EXPECT_EQ(cache.GroupEntryKeys(1).size(), 1u);
  // An in-place overwrite is neither an eviction nor an invalidation.
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.invalidation_removals(), 0u);
}

TEST(QueryCacheTest, GroupsTrackTemplates) {
  QueryCache cache;
  cache.Insert(Entry("a1", 0));
  cache.Insert(Entry("a2", 0));
  cache.Insert(Entry("b1", 1));
  cache.Insert(Entry("blind", CacheEntry::kNoTemplate,
                     analysis::ExposureLevel::kBlind));
  const std::vector<size_t> groups = cache.GroupKeys();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(cache.GroupEntryKeys(0).size(), 2u);
  EXPECT_EQ(cache.GroupEntryKeys(1).size(), 1u);
  EXPECT_EQ(cache.GroupEntryKeys(CacheEntry::kNoTemplate).size(), 1u);
  EXPECT_TRUE(cache.GroupEntryKeys(42).empty());
}

TEST(QueryCacheTest, EraseGroup) {
  QueryCache cache;
  cache.Insert(Entry("a1", 0));
  cache.Insert(Entry("a2", 0));
  cache.Insert(Entry("b1", 1));
  EXPECT_EQ(cache.EraseGroup(0), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Lookup("a1").has_value());
  EXPECT_TRUE(cache.Lookup("b1").has_value());
  EXPECT_EQ(cache.EraseGroup(0), 0u);
}

TEST(QueryCacheTest, Clear) {
  QueryCache cache;
  cache.Insert(Entry("a", 0));
  cache.Insert(Entry("b", 1));
  EXPECT_EQ(cache.Clear(), 2u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.GroupKeys().empty());
  // Clear is an administrative reset, not invalidation.
  EXPECT_EQ(cache.invalidation_removals(), 0u);
}

TEST(QueryCacheTest, PeekDoesNotTouchLru) {
  QueryCache cache;
  cache.SetCapacity(2);
  cache.Insert(Entry("old", 0));
  cache.Insert(Entry("new", 0));
  // Peek must not rescue "old" from eviction.
  EXPECT_TRUE(cache.Peek("old").has_value());
  cache.Insert(Entry("newest", 0));
  EXPECT_FALSE(cache.Peek("old").has_value());
  EXPECT_TRUE(cache.Peek("new").has_value());
}

TEST(QueryCacheTest, LruEvictionOrder) {
  QueryCache cache;
  cache.SetCapacity(3);
  cache.Insert(Entry("a", 0));
  cache.Insert(Entry("b", 0));
  cache.Insert(Entry("c", 1));
  // Touch "a": it becomes most recent; "b" is now the LRU victim.
  EXPECT_TRUE(cache.Lookup("a").has_value());
  cache.Insert(Entry("d", 1));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.Peek("b").has_value());
  EXPECT_TRUE(cache.Peek("a").has_value());
  EXPECT_EQ(cache.evictions(), 1u);
  // Group index stays consistent with the eviction.
  EXPECT_EQ(cache.GroupEntryKeys(0).size(), 1u);
  EXPECT_EQ(cache.GroupEntryKeys(1).size(), 2u);
}

TEST(QueryCacheTest, ShrinkingCapacityEvictsImmediately) {
  QueryCache cache;
  for (int i = 0; i < 10; ++i) {
    cache.Insert(Entry("k" + std::to_string(i), 0));
  }
  cache.SetCapacity(4);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 6u);
  // The four most recent survive.
  for (int i = 6; i < 10; ++i) {
    EXPECT_TRUE(cache.Peek("k" + std::to_string(i)).has_value()) << i;
  }
}

TEST(QueryCacheTest, ZeroCapacityMeansUnlimited) {
  QueryCache cache;
  cache.SetCapacity(0);
  for (int i = 0; i < 1000; ++i) {
    cache.Insert(Entry("k" + std::to_string(i), 0));
  }
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(QueryCacheTest, EraseGroupMaintainsLru) {
  QueryCache cache;
  cache.SetCapacity(3);
  cache.Insert(Entry("a", 0));
  cache.Insert(Entry("b", 1));
  cache.Insert(Entry("c", 0));
  EXPECT_EQ(cache.EraseGroup(0), 2u);
  // LRU list no longer references erased keys; inserting past capacity
  // evicts the true survivor order without crashing.
  cache.Insert(Entry("d", 1));
  cache.Insert(Entry("e", 1));
  cache.Insert(Entry("f", 1));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.Peek("b").has_value());
}

// Regression: capacity-shrink evictions and insert-overflow evictions used
// to be conflated in one counter, and invalidation removals were not
// distinguishable from evictions at all.
TEST(QueryCacheTest, EvictionCountersSplitByCause) {
  QueryCache cache;
  for (int i = 0; i < 6; ++i) {
    cache.Insert(Entry("k" + std::to_string(i), 0));
  }
  // Shrink: 6 entries -> capacity 4 evicts 2.
  cache.SetCapacity(4);
  EXPECT_EQ(cache.shrink_evictions(), 2u);
  EXPECT_EQ(cache.insert_evictions(), 0u);
  // Overflow: two more inserts at capacity evict 2 more.
  cache.Insert(Entry("k6", 0));
  cache.Insert(Entry("k7", 0));
  EXPECT_EQ(cache.insert_evictions(), 2u);
  EXPECT_EQ(cache.shrink_evictions(), 2u);
  EXPECT_EQ(cache.evictions(), 4u);
  // Invalidation removals are tracked separately from both.
  cache.Erase("k7");
  EXPECT_EQ(cache.EraseGroup(0), 3u);
  EXPECT_EQ(cache.invalidation_removals(), 4u);
  EXPECT_EQ(cache.evictions(), 4u);
}

TEST(QueryCacheTest, InvalidateEntriesFiltersGroupsThenEntries) {
  QueryCache cache;
  cache.Insert(Entry("a1", 0));
  cache.Insert(Entry("a2", 0));
  cache.Insert(Entry("b1", 1));
  cache.Insert(Entry("b2", 1));
  const size_t erased = cache.InvalidateEntries(
      [](size_t group) { return group == 1; },
      [](const CacheEntry& entry) { return entry.key != "b2"; });
  EXPECT_EQ(erased, 1u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.Peek("b1").has_value());
  EXPECT_TRUE(cache.Peek("b2").has_value());
  EXPECT_TRUE(cache.Peek("a1").has_value());
  EXPECT_EQ(cache.invalidation_removals(), 1u);
  ExpectConsistent(cache);
}

// LRU/group-index invariants across SetCapacity + EraseGroup +
// overwrite-Insert interleavings: the group index, LRU list, and size must
// stay mutually consistent through every mixed sequence.
TEST(QueryCacheTest, InvariantsSurviveMixedInterleavings) {
  QueryCache cache;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 12; ++i) {
      cache.Insert(Entry("k" + std::to_string(i), i % 3));
    }
    ExpectConsistent(cache);
    // Overwrite half of them into a different group.
    for (int i = 0; i < 6; ++i) {
      cache.Insert(Entry("k" + std::to_string(i), 3));
    }
    ExpectConsistent(cache);
    cache.SetCapacity(8);
    ExpectConsistent(cache);
    EXPECT_EQ(cache.size(), 8u);
    cache.EraseGroup(3 - round % 2);
    ExpectConsistent(cache);
    // Overwrite survivors in place at capacity, then grow again.
    for (int i = 6; i < 12; ++i) {
      cache.Insert(Entry("k" + std::to_string(i), 0));
    }
    ExpectConsistent(cache);
    EXPECT_LE(cache.size(), 8u);
    cache.SetCapacity(0);
  }
  // Every erased entry stayed accounted: size + all removals == inserts.
  ExpectConsistent(cache);
}

// ----- Stale side store (bounded-staleness retention). -----

TEST(StaleStoreTest, RetentionOffByDefault) {
  QueryCache cache;
  cache.Insert(Entry("k", 0));
  cache.Erase("k");
  EXPECT_EQ(cache.StaleSize(), 0u);
  EXPECT_FALSE(cache.LookupStale("k", 100).has_value());
}

TEST(StaleStoreTest, InvalidationRetainsAndKStalenessAges) {
  QueryCache cache;
  cache.SetStaleRetention(8);
  cache.Insert(Entry("k", 0));
  cache.Erase("k");  // Consistency removal: retained at epoch 0.
  cache.BumpUpdateEpoch();  // The update that killed it: now 1 behind.

  ASSERT_TRUE(cache.LookupStale("k", 1).has_value());
  EXPECT_EQ(cache.LookupStale("k", 1)->blob, "blob:k");
  EXPECT_FALSE(cache.LookupStale("k", 0).has_value());

  // Each further observed update ages the copy by one epoch; a bound of k
  // serves it until it is k+1 updates behind.
  cache.BumpUpdateEpoch();
  cache.BumpUpdateEpoch();
  EXPECT_FALSE(cache.LookupStale("k", 2).has_value());
  ASSERT_TRUE(cache.LookupStale("k", 3).has_value());
}

TEST(StaleStoreTest, EraseGroupAndInvalidateEntriesRetainToo) {
  QueryCache cache;
  cache.SetStaleRetention(8);
  cache.Insert(Entry("g0-a", 0));
  cache.Insert(Entry("g0-b", 0));
  cache.Insert(Entry("g1-a", 1));
  cache.EraseGroup(0);
  cache.InvalidateEntries([](size_t group) { return group == 1; },
                          [](const CacheEntry&) { return true; });
  cache.BumpUpdateEpoch();
  EXPECT_EQ(cache.StaleSize(), 3u);
  EXPECT_TRUE(cache.LookupStale("g0-a", 1).has_value());
  EXPECT_TRUE(cache.LookupStale("g0-b", 1).has_value());
  EXPECT_TRUE(cache.LookupStale("g1-a", 1).has_value());
}

TEST(StaleStoreTest, CapacityEvictionsAreNotRetained) {
  QueryCache cache;
  cache.SetStaleRetention(8);
  cache.SetCapacity(2);
  cache.Insert(Entry("a", 0));
  cache.Insert(Entry("b", 0));
  cache.Insert(Entry("c", 0));  // Insert-overflow evicts "a".
  ASSERT_EQ(cache.insert_evictions(), 1u);
  EXPECT_FALSE(cache.LookupStale("a", 100).has_value());

  cache.SetCapacity(1);  // Shrink evicts "b".
  ASSERT_EQ(cache.shrink_evictions(), 1u);
  EXPECT_FALSE(cache.LookupStale("b", 100).has_value());
  EXPECT_EQ(cache.StaleSize(), 0u);

  // An eviction victim that was ALSO invalidated earlier keeps only the
  // invalidation-time copy: eviction never refreshes or removes it.
  cache.SetCapacity(0);
  cache.Insert(Entry("d", 0));
  cache.Erase("d");
  cache.BumpUpdateEpoch();
  EXPECT_TRUE(cache.LookupStale("d", 1).has_value());
}

TEST(StaleStoreTest, FifoBoundDropsOldestRetained) {
  QueryCache cache;
  cache.SetStaleRetention(2);
  for (const char* key : {"a", "b", "c"}) {
    cache.Insert(Entry(key, 0));
    cache.Erase(key);
  }
  EXPECT_EQ(cache.StaleSize(), 2u);
  EXPECT_FALSE(cache.LookupStale("a", 100).has_value());  // Oldest dropped.
  EXPECT_TRUE(cache.LookupStale("b", 100).has_value());
  EXPECT_TRUE(cache.LookupStale("c", 100).has_value());

  // Re-invalidating a retained key refreshes its FIFO slot, not a new one.
  cache.Insert(Entry("b", 0));
  cache.Erase("b");
  EXPECT_EQ(cache.StaleSize(), 2u);
  EXPECT_TRUE(cache.LookupStale("c", 100).has_value());
}

TEST(StaleStoreTest, FreshInsertSupersedesStaleCopy) {
  QueryCache cache;
  cache.SetStaleRetention(8);
  cache.Insert(Entry("k", 0));
  cache.Erase("k");
  ASSERT_TRUE(cache.LookupStale("k", 100).has_value());

  // A fresh value for the key arrives: the stale copy must die with it —
  // serving it later would resurrect a value older than one the client
  // already saw.
  CacheEntry fresh = Entry("k", 0);
  fresh.blob = "fresh";
  cache.Insert(fresh);
  EXPECT_FALSE(cache.LookupStale("k", 100).has_value());
  EXPECT_EQ(cache.StaleSize(), 0u);

  // And invalidating the fresh value retains the NEW blob, not the old one.
  cache.Erase("k");
  cache.BumpUpdateEpoch();
  ASSERT_TRUE(cache.LookupStale("k", 1).has_value());
  EXPECT_EQ(cache.LookupStale("k", 1)->blob, "fresh");
}

TEST(StaleStoreTest, DisablingRetentionAndClearDropEverything) {
  QueryCache cache;
  cache.SetStaleRetention(8);
  cache.Insert(Entry("a", 0));
  cache.Erase("a");
  ASSERT_EQ(cache.StaleSize(), 1u);
  cache.SetStaleRetention(0);
  EXPECT_EQ(cache.StaleSize(), 0u);
  EXPECT_FALSE(cache.LookupStale("a", 100).has_value());

  cache.SetStaleRetention(8);
  cache.Insert(Entry("b", 0));
  cache.Erase("b");
  cache.Insert(Entry("c", 0));
  ASSERT_EQ(cache.StaleSize(), 1u);
  // Clear is an administrative reset: live entries AND stale copies go.
  cache.Clear();
  EXPECT_EQ(cache.StaleSize(), 0u);
  EXPECT_FALSE(cache.LookupStale("b", 100).has_value());
}

TEST(StaleStoreTest, ShrinkingRetentionTrimsOldestFirst) {
  QueryCache cache;
  cache.SetStaleRetention(8);
  for (int i = 0; i < 5; ++i) {
    const std::string key = "k" + std::to_string(i);
    cache.Insert(Entry(key, 0));
    cache.Erase(key);
  }
  ASSERT_EQ(cache.StaleSize(), 5u);
  cache.SetStaleRetention(2);
  EXPECT_EQ(cache.StaleSize(), 2u);
  EXPECT_TRUE(cache.LookupStale("k3", 100).has_value());
  EXPECT_TRUE(cache.LookupStale("k4", 100).has_value());
  EXPECT_FALSE(cache.LookupStale("k2", 100).has_value());
}

TEST(QueryCacheTest, OverwriteAtCapacityDoesNotEvict) {
  QueryCache cache;
  cache.SetCapacity(2);
  cache.Insert(Entry("a", 0));
  cache.Insert(Entry("b", 0));
  // Overwriting an existing key at full capacity replaces in place.
  cache.Insert(Entry("a", 1));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_TRUE(cache.Peek("a").has_value());
  EXPECT_TRUE(cache.Peek("b").has_value());
  ExpectConsistent(cache);
}

}  // namespace
}  // namespace dssp::service
