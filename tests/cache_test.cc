#include <gtest/gtest.h>

#include "dssp/cache.h"

namespace dssp::service {
namespace {

CacheEntry Entry(const std::string& key, size_t template_index,
                 analysis::ExposureLevel level = analysis::ExposureLevel::kView) {
  CacheEntry entry;
  entry.key = key;
  entry.level = level;
  entry.template_index = template_index;
  entry.blob = "blob:" + key;
  return entry;
}

TEST(QueryCacheTest, InsertLookupErase) {
  QueryCache cache;
  cache.Insert(Entry("k1", 0));
  EXPECT_EQ(cache.size(), 1u);
  const CacheEntry* found = cache.Lookup("k1");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->blob, "blob:k1");
  EXPECT_EQ(cache.Lookup("k2"), nullptr);
  cache.Erase("k1");
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryCacheTest, EraseMissingIsNoop) {
  QueryCache cache;
  cache.Erase("ghost");
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryCacheTest, InsertOverwrites) {
  QueryCache cache;
  cache.Insert(Entry("k", 0));
  CacheEntry updated = Entry("k", 1);
  updated.blob = "new";
  cache.Insert(updated);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup("k")->blob, "new");
  // The group index follows the overwrite.
  EXPECT_TRUE(cache.GroupEntryKeys(0).empty());
  EXPECT_EQ(cache.GroupEntryKeys(1).size(), 1u);
}

TEST(QueryCacheTest, GroupsTrackTemplates) {
  QueryCache cache;
  cache.Insert(Entry("a1", 0));
  cache.Insert(Entry("a2", 0));
  cache.Insert(Entry("b1", 1));
  cache.Insert(Entry("blind", CacheEntry::kNoTemplate,
                     analysis::ExposureLevel::kBlind));
  const std::vector<size_t> groups = cache.GroupKeys();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(cache.GroupEntryKeys(0).size(), 2u);
  EXPECT_EQ(cache.GroupEntryKeys(1).size(), 1u);
  EXPECT_EQ(cache.GroupEntryKeys(CacheEntry::kNoTemplate).size(), 1u);
  EXPECT_TRUE(cache.GroupEntryKeys(42).empty());
}

TEST(QueryCacheTest, EraseGroup) {
  QueryCache cache;
  cache.Insert(Entry("a1", 0));
  cache.Insert(Entry("a2", 0));
  cache.Insert(Entry("b1", 1));
  EXPECT_EQ(cache.EraseGroup(0), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup("a1"), nullptr);
  EXPECT_NE(cache.Lookup("b1"), nullptr);
  EXPECT_EQ(cache.EraseGroup(0), 0u);
}

TEST(QueryCacheTest, Clear) {
  QueryCache cache;
  cache.Insert(Entry("a", 0));
  cache.Insert(Entry("b", 1));
  EXPECT_EQ(cache.Clear(), 2u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.GroupKeys().empty());
}

TEST(QueryCacheTest, PeekDoesNotTouchLru) {
  QueryCache cache;
  cache.SetCapacity(2);
  cache.Insert(Entry("old", 0));
  cache.Insert(Entry("new", 0));
  // Peek must not rescue "old" from eviction.
  EXPECT_NE(cache.Peek("old"), nullptr);
  cache.Insert(Entry("newest", 0));
  EXPECT_EQ(cache.Peek("old"), nullptr);
  EXPECT_NE(cache.Peek("new"), nullptr);
}

TEST(QueryCacheTest, LruEvictionOrder) {
  QueryCache cache;
  cache.SetCapacity(3);
  cache.Insert(Entry("a", 0));
  cache.Insert(Entry("b", 0));
  cache.Insert(Entry("c", 1));
  // Touch "a": it becomes most recent; "b" is now the LRU victim.
  EXPECT_NE(cache.Lookup("a"), nullptr);
  cache.Insert(Entry("d", 1));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Peek("b"), nullptr);
  EXPECT_NE(cache.Peek("a"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  // Group index stays consistent with the eviction.
  EXPECT_EQ(cache.GroupEntryKeys(0).size(), 1u);
  EXPECT_EQ(cache.GroupEntryKeys(1).size(), 2u);
}

TEST(QueryCacheTest, ShrinkingCapacityEvictsImmediately) {
  QueryCache cache;
  for (int i = 0; i < 10; ++i) {
    cache.Insert(Entry("k" + std::to_string(i), 0));
  }
  cache.SetCapacity(4);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 6u);
  // The four most recent survive.
  for (int i = 6; i < 10; ++i) {
    EXPECT_NE(cache.Peek("k" + std::to_string(i)), nullptr) << i;
  }
}

TEST(QueryCacheTest, ZeroCapacityMeansUnlimited) {
  QueryCache cache;
  cache.SetCapacity(0);
  for (int i = 0; i < 1000; ++i) {
    cache.Insert(Entry("k" + std::to_string(i), 0));
  }
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(QueryCacheTest, EraseGroupMaintainsLru) {
  QueryCache cache;
  cache.SetCapacity(3);
  cache.Insert(Entry("a", 0));
  cache.Insert(Entry("b", 1));
  cache.Insert(Entry("c", 0));
  EXPECT_EQ(cache.EraseGroup(0), 2u);
  // LRU list no longer references erased keys; inserting past capacity
  // evicts the true survivor order without crashing.
  cache.Insert(Entry("d", 1));
  cache.Insert(Entry("e", 1));
  cache.Insert(Entry("f", 1));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Peek("b"), nullptr);
}

}  // namespace
}  // namespace dssp::service
