#include <gtest/gtest.h>

#include "catalog/schema.h"

namespace dssp::catalog {
namespace {

TableSchema Toys() {
  return TableSchema("toys",
                     {{"toy_id", ColumnType::kInt64},
                      {"toy_name", ColumnType::kString},
                      {"qty", ColumnType::kInt64}},
                     {"toy_id"});
}

TEST(TableSchemaTest, ColumnLookup) {
  const TableSchema toys = Toys();
  EXPECT_EQ(toys.ColumnIndex("toy_id"), 0u);
  EXPECT_EQ(toys.ColumnIndex("qty"), 2u);
  EXPECT_FALSE(toys.ColumnIndex("nope").has_value());
  EXPECT_TRUE(toys.HasColumn("toy_name"));
  EXPECT_EQ(toys.num_columns(), 3u);
}

TEST(TableSchemaTest, PrimaryKeyPredicates) {
  const TableSchema toys = Toys();
  EXPECT_TRUE(toys.IsPrimaryKeyColumn("toy_id"));
  EXPECT_FALSE(toys.IsPrimaryKeyColumn("qty"));
  EXPECT_TRUE(toys.IsSingleColumnPrimaryKey("toy_id"));
  EXPECT_FALSE(toys.IsSingleColumnPrimaryKey("qty"));

  const TableSchema composite(
      "t", {{"a", ColumnType::kInt64}, {"b", ColumnType::kInt64}},
      {"a", "b"});
  EXPECT_TRUE(composite.IsPrimaryKeyColumn("a"));
  EXPECT_FALSE(composite.IsSingleColumnPrimaryKey("a"));
}

TEST(ValueFitsColumnTest, Rules) {
  EXPECT_TRUE(ValueFitsColumn(sql::ValueType::kNull, ColumnType::kInt64));
  EXPECT_TRUE(ValueFitsColumn(sql::ValueType::kInt64, ColumnType::kInt64));
  EXPECT_TRUE(ValueFitsColumn(sql::ValueType::kInt64, ColumnType::kDouble));
  EXPECT_FALSE(ValueFitsColumn(sql::ValueType::kDouble, ColumnType::kInt64));
  EXPECT_TRUE(ValueFitsColumn(sql::ValueType::kString, ColumnType::kString));
  EXPECT_FALSE(ValueFitsColumn(sql::ValueType::kString, ColumnType::kInt64));
  EXPECT_FALSE(ValueFitsColumn(sql::ValueType::kInt64, ColumnType::kString));
}

TEST(CatalogTest, AddAndFind) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Toys()).ok());
  EXPECT_NE(catalog.FindTable("toys"), nullptr);
  EXPECT_EQ(catalog.FindTable("nope"), nullptr);
  EXPECT_EQ(catalog.GetTable("toys").name(), "toys");
  EXPECT_EQ(catalog.num_tables(), 1u);
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"toys"});
}

TEST(CatalogTest, RejectsDuplicateTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Toys()).ok());
  EXPECT_EQ(catalog.AddTable(Toys()).code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, RejectsUnknownPrimaryKeyColumn) {
  Catalog catalog;
  const TableSchema bad("t", {{"a", ColumnType::kInt64}}, {"nope"});
  EXPECT_EQ(catalog.AddTable(bad).code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, ForeignKeyValidation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Toys()).ok());

  // FK column must exist locally.
  EXPECT_FALSE(catalog
                   .AddTable(TableSchema(
                       "a", {{"x", ColumnType::kInt64}}, {"x"},
                       {ForeignKey{"missing", "toys", "toy_id"}}))
                   .ok());
  // FK must reference an existing table.
  EXPECT_FALSE(catalog
                   .AddTable(TableSchema(
                       "b", {{"x", ColumnType::kInt64}}, {"x"},
                       {ForeignKey{"x", "ghost", "toy_id"}}))
                   .ok());
  // FK must reference the single-column primary key.
  EXPECT_FALSE(catalog
                   .AddTable(TableSchema(
                       "c", {{"x", ColumnType::kInt64}}, {"x"},
                       {ForeignKey{"x", "toys", "qty"}}))
                   .ok());
  // Correct FK works.
  EXPECT_TRUE(catalog
                  .AddTable(TableSchema(
                      "d", {{"x", ColumnType::kInt64}}, {"x"},
                      {ForeignKey{"x", "toys", "toy_id"}}))
                  .ok());
}

}  // namespace
}  // namespace dssp::catalog
