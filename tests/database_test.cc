#include <gtest/gtest.h>

#include "engine/database.h"
#include "workloads/toystore.h"

namespace dssp::engine {
namespace {

using catalog::ColumnType;
using catalog::ForeignKey;
using catalog::TableSchema;
using sql::Value;

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bundle = workloads::MakeToystore();
    ASSERT_TRUE(bundle.ok());
    db_ = std::move(bundle->db);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, PopulationLoaded) {
  EXPECT_EQ(db_->GetTable("toys").num_rows(), 50u);
  EXPECT_EQ(db_->GetTable("customers").num_rows(), 20u);
  // Only the first half of the customers have cards on file.
  EXPECT_EQ(db_->GetTable("credit_card").num_rows(), 10u);
  EXPECT_EQ(db_->TotalRows(), 80u);
}

TEST_F(DatabaseTest, InsertStatementRequiresAllColumns) {
  EXPECT_FALSE(db_->Update("INSERT INTO toys (toy_id) VALUES (99)").ok());
  EXPECT_FALSE(
      db_->Update("INSERT INTO toys (toy_id, toy_name, qty, toy_id) "
                  "VALUES (99, 'x', 1, 99)")
          .ok());
  EXPECT_TRUE(
      db_->Update("INSERT INTO toys (toy_id, toy_name, qty) "
                  "VALUES (99, 'x', 1)")
          .ok());
}

TEST_F(DatabaseTest, InsertChecksForeignKeys) {
  // Customer 999 does not exist.
  const auto bad = db_->Update(
      "INSERT INTO credit_card (cid, number, zip_code) "
      "VALUES (999, 'n', 10000)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kConstraintViolation);

  // Customer 1 exists but already has a card (cid is the primary key).
  EXPECT_EQ(db_->Update("INSERT INTO credit_card (cid, number, zip_code) "
                        "VALUES (1, 'n', 10000)")
                .status()
                .code(),
            StatusCode::kConstraintViolation);
}

TEST_F(DatabaseTest, InsertNullFkAllowed) {
  ASSERT_TRUE(db_->CreateTable(TableSchema(
                     "wishlist",
                     {{"w_id", ColumnType::kInt64},
                      {"w_toy", ColumnType::kInt64}},
                     {"w_id"}, {ForeignKey{"w_toy", "toys", "toy_id"}}))
                  .ok());
  EXPECT_TRUE(
      db_->Update("INSERT INTO wishlist (w_id, w_toy) VALUES (1, NULL)")
          .ok());
}

TEST_F(DatabaseTest, DeleteByPredicate) {
  auto effect = db_->Update("DELETE FROM toys WHERE toy_id = 5");
  ASSERT_TRUE(effect.ok());
  EXPECT_EQ(effect->rows_affected, 1u);
  EXPECT_TRUE(effect->changed());

  effect = db_->Update("DELETE FROM toys WHERE toy_id = 5");
  ASSERT_TRUE(effect.ok());
  EXPECT_EQ(effect->rows_affected, 0u);
  EXPECT_FALSE(effect->changed());
}

TEST_F(DatabaseTest, DeleteWithRangePredicate) {
  // qty values are (i*7)%100+1 for i in 1..50.
  const auto before = db_->Query("SELECT COUNT(*) FROM toys WHERE qty <= 20");
  ASSERT_TRUE(before.ok());
  const int64_t matching = before->rows()[0][0].AsInt64();
  ASSERT_GT(matching, 0);

  const auto effect = db_->Update("DELETE FROM toys WHERE qty <= 20");
  ASSERT_TRUE(effect.ok());
  EXPECT_EQ(static_cast<int64_t>(effect->rows_affected), matching);
  EXPECT_EQ(db_->GetTable("toys").num_rows(),
            50u - static_cast<size_t>(matching));
}

TEST_F(DatabaseTest, ModificationUpdatesRow) {
  auto effect = db_->Update("UPDATE toys SET qty = 777 WHERE toy_id = 3");
  ASSERT_TRUE(effect.ok());
  EXPECT_EQ(effect->rows_affected, 1u);
  const auto check = db_->Query("SELECT qty FROM toys WHERE toy_id = 3");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows()[0][0], Value(777));
}

TEST_F(DatabaseTest, ModificationRejectsPrimaryKeyChange) {
  const auto bad = db_->Update("UPDATE toys SET toy_id = 99 WHERE qty = 8");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, ModificationTypeChecked) {
  EXPECT_FALSE(db_->Update("UPDATE toys SET qty = 'lots' WHERE toy_id = 1")
                   .ok());
}

TEST_F(DatabaseTest, ModificationWithNonKeyPredicate) {
  const auto effect =
      db_->Update("UPDATE toys SET qty = 1 WHERE toy_name = 'toy7'");
  ASSERT_TRUE(effect.ok());
  EXPECT_EQ(effect->rows_affected, 1u);
}

TEST_F(DatabaseTest, UpdateRejectsSelect) {
  EXPECT_FALSE(db_->Update("SELECT toy_id FROM toys WHERE toy_id = 1").ok());
}

TEST_F(DatabaseTest, QueryRejectsUpdates) {
  EXPECT_FALSE(db_->Query("DELETE FROM toys WHERE toy_id = 1").ok());
}

TEST_F(DatabaseTest, UnknownTableErrors) {
  EXPECT_FALSE(db_->Update("DELETE FROM ghosts WHERE a = 1").ok());
  EXPECT_FALSE(db_->Update("UPDATE ghosts SET a = 1 WHERE b = 2").ok());
  EXPECT_FALSE(db_->Update("INSERT INTO ghosts (a) VALUES (1)").ok());
  EXPECT_FALSE(db_->InsertRow("ghosts", {Value(1)}).ok());
}

TEST_F(DatabaseTest, QueryAfterDeleteReflectsState) {
  ASSERT_TRUE(db_->Update("DELETE FROM toys WHERE toy_id = 1").ok());
  const auto r = db_->Query("SELECT toy_id FROM toys WHERE toy_id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
}

}  // namespace
}  // namespace dssp::engine
