#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/tokenizer.h"

namespace dssp::sql {
namespace {

// ----- Tokenizer -----

TEST(TokenizerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT toy_id FROM toys WHERE qty >= 10");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // 8 tokens + end.
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "toy_id");
  EXPECT_EQ((*tokens)[6].type, TokenType::kSymbol);
  EXPECT_EQ((*tokens)[6].text, ">=");
  EXPECT_EQ((*tokens)[7].type, TokenType::kIntLiteral);
  EXPECT_EQ((*tokens)[8].type, TokenType::kEnd);
}

TEST(TokenizerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(TokenizerTest, StringLiteralsWithEscapedQuotes) {
  auto tokens = Tokenize("'it''s a test'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kStringLiteral);
  EXPECT_EQ((*tokens)[0].text, "it's a test");
}

TEST(TokenizerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(TokenizerTest, NumericLiterals) {
  auto tokens = Tokenize("1 -2 3.5 -4.25 1e3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIntLiteral);
  EXPECT_EQ((*tokens)[1].type, TokenType::kIntLiteral);
  EXPECT_EQ((*tokens)[1].text, "-2");
  EXPECT_EQ((*tokens)[2].type, TokenType::kDoubleLiteral);
  EXPECT_EQ((*tokens)[3].type, TokenType::kDoubleLiteral);
  EXPECT_EQ((*tokens)[4].type, TokenType::kDoubleLiteral);
}

TEST(TokenizerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("SELECT #").ok());
  EXPECT_FALSE(Tokenize("SELECT a; SELECT b").ok());
}

// ----- Parser: structure -----

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT toy_id FROM toys WHERE toy_name = ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind(), StatementKind::kSelect);
  EXPECT_EQ(stmt->num_params, 1);
  const SelectStatement& select = stmt->select();
  ASSERT_EQ(select.items.size(), 1u);
  EXPECT_EQ(select.items[0].column.column, "toy_id");
  ASSERT_EQ(select.from.size(), 1u);
  EXPECT_EQ(select.from[0].table, "toys");
  ASSERT_EQ(select.where.size(), 1u);
  EXPECT_EQ(select.where[0].op, CompareOp::kEq);
  EXPECT_TRUE(IsParameter(select.where[0].rhs));
}

TEST(ParserTest, JoinWithAliases) {
  auto stmt = Parse(
      "SELECT t1.toy_id, t2.qty FROM toys AS t1, toys t2 "
      "WHERE t1.toy_id = t2.toy_id");
  ASSERT_TRUE(stmt.ok());
  const SelectStatement& select = stmt->select();
  ASSERT_EQ(select.from.size(), 2u);
  EXPECT_EQ(select.from[0].alias, "t1");
  EXPECT_EQ(select.from[1].alias, "t2");  // Implicit alias.
  EXPECT_EQ(select.items[0].column.table, "t1");
}

TEST(ParserTest, OrderByLimitGroupByAggregates) {
  auto stmt = Parse(
      "SELECT i_subject, COUNT(i_id), MAX(i_cost) FROM item "
      "WHERE i_cost >= ? GROUP BY i_subject "
      "ORDER BY i_subject DESC LIMIT 5");
  ASSERT_TRUE(stmt.ok());
  const SelectStatement& select = stmt->select();
  EXPECT_TRUE(select.has_aggregate());
  ASSERT_EQ(select.items.size(), 3u);
  EXPECT_EQ(select.items[1].func, AggregateFunc::kCount);
  EXPECT_EQ(select.items[2].func, AggregateFunc::kMax);
  ASSERT_EQ(select.group_by.size(), 1u);
  ASSERT_EQ(select.order_by.size(), 1u);
  EXPECT_TRUE(select.order_by[0].descending);
  ASSERT_TRUE(select.limit.has_value());
  EXPECT_TRUE(IsLiteral(*select.limit));
}

TEST(ParserTest, CountStar) {
  auto stmt = Parse("SELECT COUNT(*) FROM toys WHERE qty > ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select().items[0].star);
  EXPECT_EQ(stmt->select().items[0].func, AggregateFunc::kCount);
}

TEST(ParserTest, StarOnlyForCount) {
  EXPECT_FALSE(Parse("SELECT SUM(*) FROM toys WHERE qty > ?").ok());
}

TEST(ParserTest, SelectStar) {
  auto stmt = Parse("SELECT * FROM toys WHERE toy_id = ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select().items[0].star);
  EXPECT_EQ(stmt->select().items[0].func, AggregateFunc::kNone);
}

TEST(ParserTest, ParameterNumberingLeftToRight) {
  auto stmt = Parse(
      "SELECT a FROM t WHERE b = ? AND c > ? AND d <= ? LIMIT ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->num_params, 4);
  const SelectStatement& select = stmt->select();
  EXPECT_EQ(std::get<Parameter>(select.where[0].rhs).index, 0);
  EXPECT_EQ(std::get<Parameter>(select.where[1].rhs).index, 1);
  EXPECT_EQ(std::get<Parameter>(select.where[2].rhs).index, 2);
  EXPECT_EQ(std::get<Parameter>(*select.limit).index, 3);
}

TEST(ParserTest, Insert) {
  auto stmt = Parse("INSERT INTO toys (toy_id, toy_name, qty) "
                    "VALUES (?, ?, 10)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind(), StatementKind::kInsert);
  const InsertStatement& insert = stmt->insert();
  EXPECT_EQ(insert.table, "toys");
  ASSERT_EQ(insert.columns.size(), 3u);
  EXPECT_TRUE(IsParameter(insert.values[0]));
  EXPECT_TRUE(IsLiteral(insert.values[2]));
}

TEST(ParserTest, InsertArityMismatchFails) {
  EXPECT_FALSE(Parse("INSERT INTO toys (a, b) VALUES (1)").ok());
}

TEST(ParserTest, InsertRejectsColumnOperands) {
  EXPECT_FALSE(Parse("INSERT INTO toys (a) VALUES (other_col)").ok());
}

TEST(ParserTest, Delete) {
  auto stmt = Parse("DELETE FROM toys WHERE toy_id = ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind(), StatementKind::kDelete);
  EXPECT_EQ(stmt->del().table, "toys");
  ASSERT_EQ(stmt->del().where.size(), 1u);
}

TEST(ParserTest, DeleteWithoutWhere) {
  auto stmt = Parse("DELETE FROM toys");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->del().where.empty());
}

TEST(ParserTest, Update) {
  auto stmt = Parse("UPDATE toys SET qty = ?, toy_name = 'x' "
                    "WHERE toy_id = ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind(), StatementKind::kUpdate);
  const UpdateStatement& update = stmt->update();
  ASSERT_EQ(update.set.size(), 2u);
  EXPECT_EQ(update.set[0].first, "qty");
  EXPECT_TRUE(IsParameter(update.set[0].second));
  EXPECT_TRUE(IsLiteral(update.set[1].second));
}

TEST(ParserTest, NullLiteral) {
  auto stmt = Parse("INSERT INTO t (a) VALUES (NULL)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::get<Value>(stmt->insert().values[0]).is_null());
}

TEST(ParserTest, ErrorsOnGarbage) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELEC a FROM t").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE a <> 1").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t 42").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE a = 1 42").ok());
  EXPECT_FALSE(Parse("UPDATE t WHERE a = 1").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1)").ok());
}

// ----- Round-trip property: ToSql(Parse(x)) re-parses to the same text. -----

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParse) {
  auto stmt = Parse(GetParam());
  ASSERT_TRUE(stmt.ok()) << GetParam() << ": " << stmt.status().ToString();
  const std::string printed = ToSql(*stmt);
  auto reparsed = Parse(printed);
  ASSERT_TRUE(reparsed.ok()) << printed;
  EXPECT_EQ(ToSql(*reparsed), printed);
  EXPECT_EQ(reparsed->num_params, stmt->num_params);
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "SELECT toy_id FROM toys WHERE toy_name = ?",
        "SELECT * FROM customer WHERE c_uname = ?",
        "SELECT t1.qty, t2.qty FROM toys AS t1, toys AS t2 "
        "WHERE t1.toy_name = ? AND t2.toy_name = ? AND t1.qty > t2.qty",
        "SELECT i_id, i_title FROM item, author "
        "WHERE item.i_a_id = author.a_id AND i_subject = ? "
        "ORDER BY i_title LIMIT 50",
        "SELECT MAX(qty) FROM toys WHERE qty >= ?",
        "SELECT i_subject, COUNT(i_id) FROM item WHERE i_cost >= ? "
        "GROUP BY i_subject ORDER BY i_subject",
        "SELECT a, b FROM t WHERE c < 3.5 AND d >= 'x' ORDER BY a DESC, b "
        "LIMIT ?",
        "INSERT INTO credit_card (cid, number, zip_code) VALUES (?, ?, ?)",
        "INSERT INTO t (a, b, c) VALUES (1, 2.5, 'three')",
        "DELETE FROM toys WHERE toy_id = ?",
        "DELETE FROM bids WHERE b_date < ?",
        "UPDATE toys SET qty = ? WHERE toy_id = ?",
        "UPDATE items SET it_max_bid = ?, it_nb_bids = ? WHERE it_id = ?"));

// ----- BindParameters -----

TEST(BindParametersTest, BindsAllSites) {
  Statement stmt = ParseOrDie(
      "SELECT a FROM t WHERE b = ? AND c > ? ORDER BY a LIMIT ?");
  Statement bound =
      BindParameters(stmt, {Value("x"), Value(10), Value(5)});
  EXPECT_EQ(bound.num_params, 0);
  EXPECT_EQ(ToSql(bound),
            "SELECT a FROM t WHERE b = 'x' AND c > 10 ORDER BY a LIMIT 5");
}

TEST(BindParametersTest, BindsUpdateKinds) {
  EXPECT_EQ(ToSql(BindParameters(
                ParseOrDie("INSERT INTO t (a, b) VALUES (?, ?)"),
                {Value(1), Value("z")})),
            "INSERT INTO t (a, b) VALUES (1, 'z')");
  EXPECT_EQ(ToSql(BindParameters(ParseOrDie("DELETE FROM t WHERE a = ?"),
                                 {Value(3)})),
            "DELETE FROM t WHERE a = 3");
  EXPECT_EQ(ToSql(BindParameters(
                ParseOrDie("UPDATE t SET a = ? WHERE b = ?"),
                {Value(1.5), Value("k")})),
            "UPDATE t SET a = 1.5 WHERE b = 'k'");
}

TEST(BindParametersTest, StringParameterQuoting) {
  Statement bound = BindParameters(
      ParseOrDie("SELECT a FROM t WHERE b = ?"), {Value("o'brien")});
  EXPECT_EQ(ToSql(bound), "SELECT a FROM t WHERE b = 'o''brien'");
  // The bound statement round-trips through the parser.
  auto reparsed = Parse(ToSql(bound));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(std::get<Value>(reparsed->select().where[0].rhs).AsString(),
            "o'brien");
}

}  // namespace
}  // namespace dssp::sql
