// Property/fuzz tests for the wire-protocol codecs: every message type
// round-trips; mutated, truncated, and extended frames are rejected cleanly
// (no crash, no overread — run under ASan via -DDSSP_ASAN=ON); and the
// sealed-frame envelope detects every byte of damage. Includes regression
// frames for the ReadString/ReadU64 length-overflow bug, where a 64-bit
// attacker-controlled length near UINT64_MAX wrapped the `pos + length`
// bounds check and walked past the end of the frame.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/random.h"
#include "crypto/keyring.h"
#include "dssp/home_server.h"
#include "dssp/protocol.h"

namespace dssp::service {
namespace {

std::string RandomBytes(Rng& rng, size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  return out;
}

void AppendLe64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

// Runs every decoder plus the client-side unwrappers over one frame. The
// point is the *absence* of crashes/overreads, so results are discarded.
void ExerciseAllDecoders(const std::string& frame) {
  (void)PeekType(frame);
  (void)DecodeQueryRequest(frame);
  (void)DecodeQueryResponse(frame);
  (void)DecodeUpdateRequest(frame);
  (void)DecodeUpdateResponse(frame);
  (void)DecodeErrorResponse(frame);
  (void)Unseal(frame);
  (void)UnwrapQueryResponse(frame);
  (void)UnwrapUpdateResponse(frame);
}

// One random structural mutation; always returns a string != `frame` unless
// the frame is empty.
std::string Mutate(Rng& rng, const std::string& frame) {
  if (frame.empty()) return std::string(1, '\x01');
  std::string out = frame;
  switch (rng.NextBelow(4)) {
    case 0: {  // Flip one random byte (guaranteed to change it).
      const size_t at = rng.NextBelow(out.size());
      out[at] = static_cast<char>(static_cast<uint8_t>(out[at]) ^
                                  (1 + rng.NextBelow(255)));
      return out;
    }
    case 1:  // Truncate.
      return out.substr(0, rng.NextBelow(out.size()));
    case 2: {  // Extend with random junk.
      const size_t extra = 1 + rng.NextBelow(16);
      return out + RandomBytes(rng, extra);
    }
    default: {  // Overwrite a random run of bytes.
      const size_t at = rng.NextBelow(out.size());
      const size_t run = 1 + rng.NextBelow(8);
      for (size_t i = at; i < out.size() && i < at + run; ++i) {
        out[i] = static_cast<char>(rng.NextBelow(256));
      }
      if (out == frame) out[at] = static_cast<char>(out[at] + 1);
      return out;
    }
  }
}

// ----- Regression: the ReadString/ReadU64 length-overflow. -----

TEST(ProtocolOverflowRegressionTest, HugeLengthInQueryRequestIsRejected) {
  // [kQueryRequest][plaintext_result=0][length=UINT64_MAX]["x"]. Before the
  // fix, `*pos + length` wrapped to a small value, passed the bounds check,
  // and substr walked off the frame.
  std::string frame(1, '\x01');
  frame.push_back('\x00');
  AppendLe64(&frame, UINT64_MAX);
  frame.push_back('x');
  auto decoded = DecodeQueryRequest(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(ProtocolOverflowRegressionTest, WrappingLengthsAreRejectedEverywhere) {
  // Lengths chosen so `pos + length` wraps to values in [0, frame.size()).
  for (const uint64_t length :
       {UINT64_MAX, UINT64_MAX - 1, UINT64_MAX - 9, UINT64_MAX - 64}) {
    std::string query(1, '\x01');
    query.push_back('\x01');
    AppendLe64(&query, length);
    query += std::string(32, 'q');
    EXPECT_FALSE(DecodeQueryRequest(query).ok()) << length;

    std::string response(1, '\x02');
    AppendLe64(&response, length);
    response += std::string(32, 'r');
    EXPECT_FALSE(DecodeQueryResponse(response).ok()) << length;

    std::string update(1, '\x03');
    AppendLe64(&update, length);
    update += std::string(32, 'u');
    EXPECT_FALSE(DecodeUpdateRequest(update).ok()) << length;

    std::string error(1, '\x05');
    AppendLe64(&error, 4);  // Valid status code...
    AppendLe64(&error, length);  // ...then a wrapping message length.
    error += std::string(32, 'e');
    EXPECT_FALSE(DecodeErrorResponse(error).ok()) << length;
  }
}

TEST(ProtocolOverflowRegressionTest, TruncatedFixedFieldsAreRejected) {
  // ReadU64 with fewer than 8 bytes remaining, at every truncation point.
  const std::string frame = Encode(UpdateResponse{0x1122334455667788ull});
  for (size_t keep = 0; keep < frame.size(); ++keep) {
    EXPECT_FALSE(DecodeUpdateResponse(frame.substr(0, keep)).ok()) << keep;
  }
}

// ----- Round-trip properties over random payloads. -----

TEST(ProtocolRoundTripPropertyTest, AllTypesRoundTripRandomPayloads) {
  Rng rng(0xF0F0);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string payload = RandomBytes(rng, rng.NextBelow(256));

    const QueryRequest qreq{payload, rng.NextBool(0.5)};
    auto qreq2 = DecodeQueryRequest(Encode(qreq));
    ASSERT_TRUE(qreq2.ok());
    EXPECT_EQ(qreq2->encrypted_statement, qreq.encrypted_statement);
    EXPECT_EQ(qreq2->plaintext_result, qreq.plaintext_result);

    auto qresp = DecodeQueryResponse(Encode(QueryResponse{payload}));
    ASSERT_TRUE(qresp.ok());
    EXPECT_EQ(qresp->result_blob, payload);

    // Update requests both without a nonce (legacy frame) and with one.
    UpdateRequest ureq{payload};
    auto ureq2 = DecodeUpdateRequest(Encode(ureq));
    ASSERT_TRUE(ureq2.ok());
    EXPECT_EQ(ureq2->encrypted_statement, payload);
    EXPECT_EQ(ureq2->nonce, 0u);
    ureq.nonce = rng.Next() | 1;  // Nonzero.
    auto ureq3 = DecodeUpdateRequest(Encode(ureq));
    ASSERT_TRUE(ureq3.ok());
    EXPECT_EQ(ureq3->encrypted_statement, payload);
    EXPECT_EQ(ureq3->nonce, ureq.nonce);

    auto uresp = DecodeUpdateResponse(Encode(UpdateResponse{rng.Next()}));
    ASSERT_TRUE(uresp.ok());

    const ErrorResponse err{StatusCode::kNotFound, payload};
    auto err2 = DecodeErrorResponse(Encode(err));
    ASSERT_TRUE(err2.ok());
    EXPECT_EQ(err2->code, err.code);
    EXPECT_EQ(err2->message, err.message);
  }
}

TEST(ProtocolRoundTripPropertyTest, NonceCompatibility) {
  // A nonce-free frame is byte-identical to the pre-nonce encoding; an
  // explicit zero nonce on the wire is rejected (zero means "absent").
  const std::string legacy = Encode(UpdateRequest{"stmt"});
  std::string with_zero = legacy;
  AppendLe64(&with_zero, 0);
  EXPECT_FALSE(DecodeUpdateRequest(with_zero).ok());
  // A partial trailing nonce is rejected too.
  std::string partial = legacy;
  partial.push_back('\x07');
  EXPECT_FALSE(DecodeUpdateRequest(partial).ok());
}

TEST(ProtocolRoundTripPropertyTest, SealUnsealRoundTripsEveryType) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string payload = RandomBytes(rng, rng.NextBelow(128));
    const std::string frames[] = {
        Encode(QueryRequest{payload, false}),
        Encode(QueryResponse{payload}),
        Encode(UpdateRequest{payload, rng.Next() | 1}),
        Encode(UpdateResponse{rng.Next()}),
        Encode(ErrorResponse{StatusCode::kUnavailable, payload}),
    };
    for (const std::string& frame : frames) {
      const std::string sealed = Seal(frame);
      EXPECT_EQ(PeekType(sealed), MessageType::kSealed);
      auto inner = Unseal(sealed);
      ASSERT_TRUE(inner.ok());
      EXPECT_EQ(*inner, frame);
      // Double-sealing must not round-trip silently.
      EXPECT_FALSE(Unseal(Seal(sealed)).ok());
    }
  }
}

// ----- Mutation fuzz: decoders fail cleanly, seals detect damage. -----

TEST(ProtocolMutationFuzzTest, MutatedFramesNeverCrashAnyDecoder) {
  Rng rng(0xD00D);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string payload = RandomBytes(rng, rng.NextBelow(64));
    std::string frame;
    switch (rng.NextBelow(6)) {
      case 0: frame = Encode(QueryRequest{payload, rng.NextBool(0.5)}); break;
      case 1: frame = Encode(QueryResponse{payload}); break;
      case 2:
        frame = Encode(UpdateRequest{
            payload, rng.NextBool(0.5) ? (rng.Next() | 1) : 0});
        break;
      case 3: frame = Encode(UpdateResponse{rng.Next()}); break;
      case 4:
        frame = Encode(ErrorResponse{StatusCode::kParseError, payload});
        break;
      default: frame = Seal(Encode(QueryResponse{payload})); break;
    }
    // Up to three stacked mutations.
    const int rounds = 1 + static_cast<int>(rng.NextBelow(3));
    for (int i = 0; i < rounds; ++i) frame = Mutate(rng, frame);
    ExerciseAllDecoders(frame);
  }
}

TEST(ProtocolMutationFuzzTest, PureGarbageNeverCrashesAnyDecoder) {
  Rng rng(0xA5A5);
  for (int trial = 0; trial < 2000; ++trial) {
    ExerciseAllDecoders(RandomBytes(rng, rng.NextBelow(96)));
  }
}

TEST(ProtocolMutationFuzzTest, SealedFrameDetectsEveryMutation) {
  Rng rng(0x5EA1);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::string inner =
        Encode(QueryResponse{RandomBytes(rng, rng.NextBelow(64))});
    const std::string sealed = Seal(inner);
    const std::string mutated = Mutate(rng, sealed);
    if (mutated == sealed) continue;
    auto unsealed = Unseal(mutated);
    // Either the damage is detected, or (vanishing 64-bit checksum
    // collision aside) the inner frame survived untouched. Silent
    // acceptance of a *different* inner frame is the one forbidden outcome.
    if (unsealed.ok()) {
      EXPECT_EQ(*unsealed, inner);
    } else {
      EXPECT_EQ(unsealed.status().code(), StatusCode::kCorruptFrame);
    }
  }
}

TEST(ProtocolMutationFuzzTest, SingleBitFlipsAlwaysDetected) {
  // Exhaustive single-bit damage over a sealed frame: every flip must be
  // caught (type byte -> not sealed; checksum or body -> mismatch).
  const std::string inner = Encode(QueryResponse{"the result blob"});
  const std::string sealed = Seal(inner);
  for (size_t byte = 0; byte < sealed.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = sealed;
      damaged[byte] =
          static_cast<char>(static_cast<uint8_t>(damaged[byte]) ^ (1 << bit));
      auto unsealed = Unseal(damaged);
      EXPECT_FALSE(unsealed.ok()) << "byte " << byte << " bit " << bit;
    }
  }
}

// ----- DispatchFrame under fuzzed input: always answers, never crashes. ---

class DispatchFuzzTest : public ::testing::Test {
 protected:
  // No schema: garbage ciphertext already fails at decrypt/parse, which is
  // exactly the path hostile frames take.
  DispatchFuzzTest()
      : home_("fuzz", crypto::KeyRing::FromPassphrase("fuzz-secret")) {}

  HomeServer home_;
};

TEST_F(DispatchFuzzTest, GarbageAndMutatedFramesGetWellFormedReplies) {
  Rng rng(0xC0DE);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string frame;
    if (rng.NextBool(0.5)) {
      frame = RandomBytes(rng, rng.NextBelow(96));
    } else {
      frame = Mutate(
          rng, Encode(QueryRequest{RandomBytes(rng, rng.NextBelow(48)),
                                   rng.NextBool(0.5)}));
    }
    const std::string response = DispatchFrame(home_, frame);
    const auto type = PeekType(response);
    ASSERT_TRUE(type.has_value());
    if (*type == MessageType::kError) {
      EXPECT_TRUE(DecodeErrorResponse(response).ok());
    }
  }
}

TEST_F(DispatchFuzzTest, ResponseTypedRequestsAreRejectedWithErrorFrames) {
  for (const std::string& frame :
       {Encode(QueryResponse{"blob"}), Encode(UpdateResponse{3}),
        Encode(ErrorResponse{StatusCode::kNotFound, "x"})}) {
    const std::string response = DispatchFrame(home_, frame);
    ASSERT_EQ(PeekType(response), MessageType::kError);
    auto error = DecodeErrorResponse(response);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, StatusCode::kInvalidArgument);
  }
}

TEST_F(DispatchFuzzTest, SealedRequestsGetSealedReplies) {
  // A valid sealed request (even one whose inner statement is garbage) gets
  // a sealed reply; a damaged sealed request gets a sealed kCorruptFrame.
  const std::string request = Seal(Encode(QueryRequest{"not-ciphertext"}));
  auto reply = Unseal(DispatchFrame(home_, request));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(PeekType(*reply), MessageType::kError);  // Decrypt/parse failed.

  std::string damaged = request;
  damaged[damaged.size() / 2] ^= 0x40;
  auto corrupt_reply = Unseal(DispatchFrame(home_, damaged));
  ASSERT_TRUE(corrupt_reply.ok());
  auto error = DecodeErrorResponse(*corrupt_reply);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, StatusCode::kCorruptFrame);
}

}  // namespace
}  // namespace dssp::service
