#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "sim/histogram.h"

namespace dssp::sim {
namespace {

TEST(HistogramTest, EmptyReturnsZeros) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.9), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
}

TEST(HistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(0.25);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.25);
  EXPECT_DOUBLE_EQ(h.Min(), 0.25);
  EXPECT_DOUBLE_EQ(h.Max(), 0.25);
  // Single sample: every quantile is that sample (within bucket error,
  // clamped to the observed range -> exact here).
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.25);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.25);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.25);
}

TEST(HistogramTest, MeanIsExact) {
  LatencyHistogram h;
  h.Record(1.0);
  h.Record(2.0);
  h.Record(6.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
}

TEST(HistogramTest, QuantilesWithinRelativeError) {
  // Uniform samples 1..1000 ms: nearest-rank quantiles are known.
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i / 1000.0);
  for (double p : {0.10, 0.50, 0.90, 0.99}) {
    const double expected = p;  // Nearest rank of uniform grid ~ p seconds.
    const double actual = h.Percentile(p);
    EXPECT_NEAR(actual, expected, expected * 0.03) << "p=" << p;
  }
}

TEST(HistogramTest, SkewedDistributionTail) {
  // 99 fast samples and one slow one: p99 must land near the slow tail
  // boundary, p90 in the fast mass.
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(0.010);
  h.Record(5.0);
  EXPECT_NEAR(h.Percentile(0.90), 0.010, 0.001);
  EXPECT_NEAR(h.Percentile(0.999), 5.0, 5.0 * 0.03);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
}

TEST(HistogramTest, OutOfRangeValuesAreClamped) {
  LatencyHistogram h;
  h.Record(0.0);        // Below 1 µs.
  h.Record(1e-9);       // Below 1 µs.
  h.Record(5000.0);     // Above 1000 s.
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Max(), 5000.0);  // Exact extremes still tracked.
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
}

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Rng rng(7);
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.NextExponential(0.3);
    if (i % 2 == 0) a.Record(v);
    else b.Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  EXPECT_DOUBLE_EQ(a.Min(), combined.Min());
  EXPECT_DOUBLE_EQ(a.Max(), combined.Max());
  for (double p : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p));
  }
}

TEST(HistogramTest, MergeIntoEmpty) {
  LatencyHistogram a;
  LatencyHistogram b;
  b.Record(1.5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.Max(), 1.5);
  // Merging an empty histogram is a no-op.
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
}

TEST(HistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(1.0);
  h.Reset();
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.Percentile(0.9), 0.0);
  h.Record(2.0);
  EXPECT_DOUBLE_EQ(h.Min(), 2.0);
}

// Regression: Record used to DSSP_CHECK-abort on negative input. Latencies
// computed as differences of floating-point timestamps can come out as tiny
// negative values; they must clamp to zero instead.
TEST(HistogramTest, NegativeJitterClampsToZero) {
  LatencyHistogram h;
  h.Record(-1e-15);
  h.Record(-0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  // Mixing with positive samples keeps the stats sane.
  h.Record(1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 1.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
}

TEST(HistogramTest, MonotoneQuantiles) {
  Rng rng(11);
  LatencyHistogram h;
  for (int i = 0; i < 5000; ++i) h.Record(rng.NextExponential(0.5));
  double previous = 0;
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double q = h.Percentile(p);
    EXPECT_GE(q, previous);
    previous = q;
  }
}

}  // namespace
}  // namespace dssp::sim
