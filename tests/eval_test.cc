#include <gtest/gtest.h>

#include "engine/eval.h"
#include "sql/parser.h"

namespace dssp::engine {
namespace {

using catalog::ColumnType;
using catalog::TableSchema;
using sql::CompareOp;
using sql::Value;

// ----- CompareValues over the full operator/outcome grid. -----

struct CompareCase {
  Value lhs;
  CompareOp op;
  Value rhs;
  bool expected;
};

class CompareValuesTest : public ::testing::TestWithParam<CompareCase> {};

TEST_P(CompareValuesTest, Evaluates) {
  const CompareCase& c = GetParam();
  EXPECT_EQ(CompareValues(c.lhs, c.op, c.rhs), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompareValuesTest,
    ::testing::Values(
        CompareCase{Value(1), CompareOp::kEq, Value(1), true},
        CompareCase{Value(1), CompareOp::kEq, Value(2), false},
        CompareCase{Value(1), CompareOp::kLt, Value(2), true},
        CompareCase{Value(2), CompareOp::kLt, Value(2), false},
        CompareCase{Value(2), CompareOp::kLe, Value(2), true},
        CompareCase{Value(3), CompareOp::kLe, Value(2), false},
        CompareCase{Value(3), CompareOp::kGt, Value(2), true},
        CompareCase{Value(2), CompareOp::kGt, Value(2), false},
        CompareCase{Value(2), CompareOp::kGe, Value(2), true},
        CompareCase{Value(1), CompareOp::kGe, Value(2), false},
        // Cross numeric types.
        CompareCase{Value(2), CompareOp::kEq, Value(2.0), true},
        CompareCase{Value(1.5), CompareOp::kLt, Value(2), true},
        // Strings.
        CompareCase{Value("a"), CompareOp::kLt, Value("b"), true},
        CompareCase{Value("b"), CompareOp::kGe, Value("b"), true},
        CompareCase{Value("ba"), CompareOp::kGt, Value("b"), true},
        // NULL makes every comparison false.
        CompareCase{Value::Null(), CompareOp::kEq, Value::Null(), false},
        CompareCase{Value::Null(), CompareOp::kLe, Value(1), false},
        CompareCase{Value(1), CompareOp::kGe, Value::Null(), false}));

// ----- EvalPredicateOnRow. -----

class EvalPredicateTest : public ::testing::Test {
 protected:
  EvalPredicateTest()
      : schema_("toys",
                {{"toy_id", ColumnType::kInt64},
                 {"toy_name", ColumnType::kString},
                 {"qty", ColumnType::kInt64}},
                {"toy_id"}) {}

  std::vector<sql::Comparison> Where(const std::string& sql) {
    // Parse a DELETE just to reuse the WHERE grammar.
    return sql::ParseOrDie("DELETE FROM toys WHERE " + sql).del().where;
  }

  TableSchema schema_;
  Row row_{Value(5), Value("car"), Value(10)};
};

TEST_F(EvalPredicateTest, SingleConjunct) {
  EXPECT_TRUE(*EvalPredicateOnRow(schema_, Where("toy_id = 5"), row_));
  EXPECT_FALSE(*EvalPredicateOnRow(schema_, Where("toy_id = 6"), row_));
}

TEST_F(EvalPredicateTest, ConjunctionShortCircuitsToFalse) {
  EXPECT_FALSE(*EvalPredicateOnRow(
      schema_, Where("toy_id = 5 AND qty > 50"), row_));
  EXPECT_TRUE(*EvalPredicateOnRow(
      schema_, Where("toy_id = 5 AND qty > 5 AND toy_name = 'car'"), row_));
}

TEST_F(EvalPredicateTest, EmptyPredicateIsTrue) {
  EXPECT_TRUE(*EvalPredicateOnRow(schema_, {}, row_));
}

TEST_F(EvalPredicateTest, ColumnVsColumn) {
  EXPECT_TRUE(*EvalPredicateOnRow(schema_, Where("qty > toy_id"), row_));
  EXPECT_FALSE(*EvalPredicateOnRow(schema_, Where("qty < toy_id"), row_));
}

TEST_F(EvalPredicateTest, ReversedOperandOrder) {
  EXPECT_TRUE(*EvalPredicateOnRow(schema_, Where("5 = toy_id"), row_));
  EXPECT_TRUE(*EvalPredicateOnRow(schema_, Where("20 > qty"), row_));
}

TEST_F(EvalPredicateTest, QualifiedColumnsAndAliases) {
  EXPECT_TRUE(
      *EvalPredicateOnRow(schema_, Where("toys.toy_id = 5"), row_));
  auto aliased =
      EvalPredicateOnRow(schema_, Where("t.toy_id = 5"), row_, "t");
  ASSERT_TRUE(aliased.ok());
  EXPECT_TRUE(*aliased);
  // Wrong qualifier is an error, not false.
  EXPECT_FALSE(
      EvalPredicateOnRow(schema_, Where("other.toy_id = 5"), row_).ok());
}

TEST_F(EvalPredicateTest, NullValuedColumnsNeverMatch) {
  const Row with_null{Value(5), Value::Null(), Value(10)};
  EXPECT_FALSE(
      *EvalPredicateOnRow(schema_, Where("toy_name = 'car'"), with_null));
}

TEST_F(EvalPredicateTest, Errors) {
  // Unknown column.
  EXPECT_FALSE(EvalPredicateOnRow(schema_, Where("ghost = 1"), row_).ok());
  // Unbound parameter.
  EXPECT_FALSE(
      EvalPredicateOnRow(schema_, Where("toy_id = ?"), row_).ok());
  // Incomparable types.
  EXPECT_FALSE(
      EvalPredicateOnRow(schema_, Where("toy_name > 5"), row_).ok());
}

}  // namespace
}  // namespace dssp::engine
